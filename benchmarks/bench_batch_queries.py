"""E-batch — batched pipelined queries vs N sequential ``remote_query`` calls.

The ``repro.api`` acceptance experiment: N queries to one target network
issued (a) sequentially through the legacy ``InteropClient.remote_query``
(each call pays its own CMDAC policy lookup, discovery lookup, envelope
round-trip, and failover loop) and (b) as one pipelined batch through
:class:`repro.api.InteropGateway` (one of each, shared across members,
with the serving driver fanning the members concurrently).

Both paths run the full trusted-transfer protocol — proof collection,
end-to-end encryption, and client-side proof verification per member — so
the delta isolates the gateway's amortization.
"""

from __future__ import annotations

import time

import pytest

from repro.api import InteropGateway, MetricsInterceptor
from repro.sim import format_table

BL_ADDRESS = "stl/trade-logistics/TradeLensCC/GetBillOfLading"
N_QUERIES = 8
ROUNDS = 3


@pytest.fixture(scope="module")
def source_metrics(scenario) -> MetricsInterceptor:
    """Per-kind metrics on the source relay, shared by every run here."""
    metrics = MetricsInterceptor()
    scenario.stl_relay.use(metrics)
    return metrics


def print_kind_breakdown(metrics: MetricsInterceptor, title: str) -> None:
    """Render snapshot()'s per-message-kind breakdown as a table."""
    snapshot = metrics.snapshot()
    rows = [
        (
            name,
            str(detail["requests"]),
            str(detail["errors"]),
            f"{detail['seconds_mean'] * 1e3:8.3f} ms",
            f"{detail['seconds_p50'] * 1e3:8.3f} ms",
            f"{detail['seconds_p95'] * 1e3:8.3f} ms",
            f"{detail['seconds_max'] * 1e3:8.3f} ms",
        )
        for name, detail in snapshot["kinds"].items()
    ]
    print(f"\n{title} — source relay per-kind metrics "
          f"({snapshot['requests_total']} requests total)")
    print(format_table(
        rows, headers=["kind", "requests", "errors", "mean", "p50", "p95", "max"]
    ))


def _run_sequential(client, po_ref: str):
    return [client.remote_query(BL_ADDRESS, [po_ref]) for _ in range(N_QUERIES)]


def _run_batched(gateway: InteropGateway, po_ref: str):
    handles = [
        gateway.query(BL_ADDRESS).with_args(po_ref).submit()
        for _ in range(N_QUERIES)
    ]
    return [handle.result() for handle in handles]


def _best_of(rounds: int, fn) -> tuple[float, object]:
    best = float("inf")
    last = None
    for _ in range(rounds):
        started = time.perf_counter()
        last = fn()
        best = min(best, time.perf_counter() - started)
    return best, last


def test_batched_beats_sequential(scenario, source_metrics, bench_report):
    """Acceptance: batched N-query latency < N sequential queries."""
    client = scenario.swt_seller_client.interop_client
    gateway = InteropGateway.from_client(client)
    po_ref = scenario.po_ref

    sequential_s, sequential_results = _best_of(
        ROUNDS, lambda: _run_sequential(client, po_ref)
    )
    batched_s, batched_results = _best_of(
        ROUNDS, lambda: _run_batched(gateway, po_ref)
    )

    # Both paths return identical, fully-verified documents.
    assert len(sequential_results) == len(batched_results) == N_QUERIES
    assert all(b"BL-" in result.data for result in sequential_results)
    assert all(b"BL-" in result.data for result in batched_results)

    rows = [
        (f"{N_QUERIES} x sequential remote_query", f"{sequential_s * 1e3:9.2f} ms", ""),
        (
            f"1 x batched gateway flush ({N_QUERIES} members)",
            f"{batched_s * 1e3:9.2f} ms",
            f"{sequential_s / batched_s:5.2f}x",
        ),
    ]
    print(f"\nE-batch — pipelined batch vs sequential ({N_QUERIES} queries, best of {ROUNDS})")
    print(format_table(rows, headers=["path", "latency", "speedup"]))

    bench_report.record(
        "batch",
        "batched-vs-sequential",
        queries=N_QUERIES,
        sequential_s=sequential_s,
        batched_s=batched_s,
        speedup=sequential_s / batched_s,
    )
    assert batched_s < sequential_s, (
        f"batched path ({batched_s:.4f}s) must beat {N_QUERIES} sequential "
        f"queries ({sequential_s:.4f}s)"
    )
    print_kind_breakdown(source_metrics, "E-batch acceptance")


def test_bench_batched_query_flush(benchmark, scenario, source_metrics):
    """Wall-clock of one batched flush of N member queries."""
    gateway = InteropGateway.from_client(scenario.swt_seller_client.interop_client)
    results = benchmark.pedantic(
        lambda: _run_batched(gateway, scenario.po_ref), rounds=3, iterations=1
    )
    assert all(b"BL-" in result.data for result in results)
    print_kind_breakdown(source_metrics, "batched flush")


def test_bench_sequential_query_baseline(benchmark, scenario, source_metrics):
    """Wall-clock of the same N queries through the legacy client."""
    client = scenario.swt_seller_client.interop_client
    results = benchmark.pedantic(
        lambda: _run_sequential(client, scenario.po_ref), rounds=3, iterations=1
    )
    assert all(b"BL-" in result.data for result in results)
    print_kind_breakdown(source_metrics, "sequential baseline")
