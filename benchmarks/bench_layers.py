"""E1 — Figure 1: the layered interaction model, costed per layer.

Figure 1 stratifies interoperability into technical, syntactic, semantic
and governance layers. This bench attributes the measurable cost of one
cross-network query to those layers: transport framing (technical), wire
serialization (syntactic), proof generation/validation and policy
evaluation (semantic), and the consensus-recorded configuration reads the
governance layer prescribes.
"""

from __future__ import annotations

import time

from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import AttestationProofScheme, ProofBundle, decrypt_attestation
from repro.proto.messages import NetworkQuery, RelayEnvelope
from repro.sim import format_table

POLICY = "AND(org:seller-org, org:carrier-org)"


def _timed(fn, repeat=50):
    start = time.perf_counter()
    for _ in range(repeat):
        result = fn()
    return (time.perf_counter() - start) / repeat, result


def test_layer_cost_breakdown(benchmark, scenario):
    client = scenario.swt_seller_client
    fetched = client.fetch_bill_of_lading(scenario.po_ref)
    response = fetched.response
    envelope = RelayEnvelope(version=1, kind=2, request_id="r", payload=response.encode())
    envelope_bytes = envelope.encode()

    # Syntactic: wire encode/decode of the full response envelope.
    syntactic, _ = _timed(lambda: RelayEnvelope.decode(envelope_bytes).encode())

    # Technical: transport dispatch through the relay (minus driver work) —
    # approximated by an error-path round trip (decode + route + encode).
    technical, _ = _timed(lambda: scenario.stl_relay.handle_request(b"\x00"))

    # Semantic: proof validation against the recorded configuration.
    scheme = AttestationProofScheme()
    org_roots = {
        org_id: org.msp.root_certificate
        for org_id, org in scenario.stl.organizations.items()
    }
    from repro.proto.address import parse_address

    address = parse_address(fetched.address)
    policy = parse_verification_policy(POLICY)

    def validate():
        return scheme.validate_bundle(
            fetched.proof,
            expected_network="stl",
            expected_address=address,
            expected_args=fetched.args,
            expected_nonce=fetched.nonce,
            expected_data_hash=fetched.data_hash,
            policy=policy,
            org_roots=org_roots,
        )

    semantic, attesters = _timed(validate, repeat=10)
    assert len(attesters) == 2

    # Governance: reading consensus-recorded config + policy via the CMDAC.
    seller = scenario.swt.org("seller-bank-org").member("seller")

    def governance_read():
        scenario.swt.gateway.evaluate(seller, "cmdac", "GetVerificationPolicy", ["stl"])
        scenario.swt.gateway.evaluate(seller, "cmdac", "GetNetworkConfig", ["stl"])

    governance, _ = _timed(governance_read, repeat=10)

    rows = [
        ("technical (relay transport/framing)", f"{technical * 1e6:9.1f} us"),
        ("syntactic (wire serialization)", f"{syntactic * 1e6:9.1f} us"),
        ("semantic (proof validation, 2 attesters)", f"{semantic * 1e6:9.1f} us"),
        ("governance (CMDAC config + policy reads)", f"{governance * 1e6:9.1f} us"),
    ]
    print("\nE1 / Figure 1 — per-layer cost of one cross-network query")
    print(format_table(rows, headers=["layer", "mean cost"]))
    # Shape: the semantic layer (signature checks) dominates serialization.
    assert semantic > syntactic

    benchmark(validate)


def test_bench_wire_roundtrip(benchmark, scenario):
    """Serialization micro-benchmark: query encode+decode."""
    client = scenario.swt_seller_client
    fetched = client.fetch_bill_of_lading(scenario.po_ref)
    payload = fetched.response.encode()

    from repro.proto.messages import QueryResponse

    benchmark(lambda: QueryResponse.decode(payload))


def test_bench_attestation_decrypt(benchmark, scenario):
    """Client-side metadata decryption cost per attestation."""
    client = scenario.swt_seller_client
    fetched = client.fetch_bill_of_lading(scenario.po_ref)
    wire_attestation = fetched.response.attestations[0]
    identity = scenario.swt.org("seller-bank-org").member("seller")
    result = benchmark(
        lambda: decrypt_attestation(wire_attestation, identity.keypair.private)
    )
    assert result.metadata().network == "stl"
