"""E8 — §5 generalization: one relay protocol, three platforms.

"To extend our protocol to other permissioned blockchains, the relay
service ... can be directly reused ... The system contracts need
platform-specific implementations." This bench runs the *identical*
client code against Fabric, Corda-like and Quorum-like source networks
and prints a per-platform comparison.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.corda import CordaNetwork, LinearState
from repro.fabric.identity import Organization
from repro.interop.client import InteropClient
from repro.interop.contracts.ports import InteropPort
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.corda_driver import CordaDriver
from repro.interop.drivers.quorum_driver import QuorumDriver
from repro.interop.relay import RelayService
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg
from repro.quorum import DocumentRegistryContract, QuorumNetwork
from repro.sim import format_table

DOC = json.dumps({"po_ref": "PO-GEN", "value": 42}, sort_keys=True)


@pytest.fixture(scope="module")
def multi_platform(scenario):
    """The Fabric scenario plus Corda-like and Quorum-like sources, all
    discoverable through one registry and one destination client."""
    registry: InMemoryRegistry = scenario.discovery
    dest_org = Organization("dest-org", network="destnet")
    identity = dest_org.enroll("app", role="client")
    dest_config = NetworkConfigMsg(
        network_id="destnet",
        platform="fabric",
        organizations=[
            OrganizationConfigMsg(
                org_id="dest-org",
                msp_id="dest-orgMSP",
                root_certificate=dest_org.msp.root_certificate.to_bytes(),
            )
        ],
    )

    corda = CordaNetwork("cordanet")
    node_a = corda.add_node("nodeA")
    corda.add_node("nodeB")
    node_a.propose(
        [],
        [
            LinearState(
                linear_id="DOC-GEN",
                kind="doc",
                data=json.loads(DOC),
                participants=("nodeA", "nodeB"),
            )
        ],
        "Record",
    )
    corda_port = InteropPort("cordanet")
    corda_port.record_network_config(dest_config)
    corda_port.add_access_rule("destnet", "dest-org", "vault", "GetState")
    corda_relay = RelayService("cordanet", registry)
    corda_relay.register_driver(CordaDriver(corda, corda_port))
    registry.register("cordanet", corda_relay)

    quorum = QuorumNetwork("quorumnet")
    quorum.deploy_contract(DocumentRegistryContract())
    quorum.add_peer("peer1", "op-org-1")
    quorum.add_peer("peer2", "op-org-2")
    q_admin = quorum.enroll_client("admin", "op-org-1")
    quorum.submit_transaction(
        q_admin, "document-registry", "RegisterDocument", ["DOC-GEN", DOC]
    )
    quorum_port = InteropPort("quorumnet")
    quorum_port.record_network_config(dest_config)
    quorum_port.add_access_rule("destnet", "dest-org", "document-registry", "GetDocument")
    quorum_relay = RelayService("quorumnet", registry)
    quorum_relay.register_driver(QuorumDriver(quorum, quorum_port))
    registry.register("quorumnet", quorum_relay)

    dest_relay = RelayService("destnet", registry)
    client = InteropClient(identity, dest_relay, "destnet")
    return {"client": client, "scenario": scenario}


QUERIES = {
    "fabric": (
        None,  # filled per-scenario (uses the STL B/L address)
        "AND(org:seller-org, org:carrier-org)",
    ),
    "corda": ("cordanet/vault/vault/GetState#DOC-GEN", "AND(org:nodeA, org:nodeB)"),
    "quorum": (
        "quorumnet/state/document-registry/GetDocument#DOC-GEN",
        "AND(org:op-org-1, org:op-org-2)",
    ),
}


def _run_query(multi_platform, platform):
    scenario = multi_platform["scenario"]
    if platform == "fabric":
        client = scenario.swt_seller_client.interop_client
        return client.remote_query(
            "stl/trade-logistics/TradeLensCC/GetBillOfLading",
            [scenario.po_ref],
            policy=QUERIES["fabric"][1],
        )
    address_with_arg, policy = QUERIES[platform]
    address, _, arg = address_with_arg.partition("#")
    return multi_platform["client"].remote_query(address, [arg], policy=policy)


def test_same_relay_protocol_across_platforms(benchmark, multi_platform):
    rows = []
    for platform in ("fabric", "corda", "quorum"):
        start = time.perf_counter()
        result = _run_query(multi_platform, platform)
        elapsed = time.perf_counter() - start
        orgs = sorted({a.metadata().org for a in result.proof.attestations})
        rows.append(
            (
                platform,
                f"{elapsed * 1e3:7.2f} ms",
                str(len(result.proof)),
                ", ".join(orgs),
            )
        )
        assert len(result.proof) == 2
    print("\nE8 / §5 — identical client + relay over three platforms")
    print(
        format_table(
            rows, headers=["source platform", "query latency", "attestations", "attesting orgs"]
        )
    )
    benchmark(lambda: _run_query(multi_platform, "corda"))


def test_bench_quorum_query(benchmark, multi_platform):
    result = benchmark(lambda: _run_query(multi_platform, "quorum"))
    assert json.loads(result.data)["po_ref"] == "PO-GEN"


def test_notary_policy_query(benchmark, multi_platform):
    """Corda-specific: notary signatures inside the verification policy."""
    client = multi_platform["client"]
    result = benchmark(
        lambda: client.remote_query(
            "cordanet/vault/vault/GetState",
            ["DOC-GEN"],
            policy="AND(org:nodeA, org:notary-org)",
        )
    )
    orgs = {a.metadata().org for a in result.proof.attestations}
    assert "notary-org" in orgs
