"""E-fleet — req/s scaling across relay replicas behind one network id.

Successor to ``bench_redundant_relays``: that experiment proved N
registered relays give *availability* (a survivor answers); this one
measures whether they give *scale*. N replica relays front one source
network, each a real :class:`repro.net.RelayServer` with a deliberately
small worker pool (2) and 10 ms of simulated serve latency, so a single
replica saturates early and adding replicas is the only way up. A
destination relay reaches them through :class:`BalancedDiscovery` —
power-of-two-choices spreading reads across the pool — while 16 client
threads pipeline queries.

Second experiment: the paper's §5 redundancy story under churn. With the
fleet serving a full storm, one replica is killed mid-run; the
:class:`ReadinessMonitor` (polling the real ``/readyz`` probes) evicts
it and the failover loop absorbs the in-flight race. Acceptance: zero
caller-visible errors.

Acceptance: req/s scales >= 2.5x from 1 -> 4 replicas at ``work_ms=10``.
Results land in ``BENCH_fleet.json``. CI runs a reduced matrix via
``FLEET_REPLICAS=1,2`` (the scaling assertion only fires when both the
1- and 4-replica rows are measured).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.api.middleware import percentile
from repro.interop.discovery import InMemoryRegistry
from repro.interop.relay import RelayService
from repro.net import BalancedDiscovery, ReadinessMonitor, RelayServer
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    NetworkAddressMsg,
    NetworkQuery,
)
from repro.sim import format_table

from benchmarks.bench_transport_throughput import (
    BenchDriver,
    SimulatedWorkInterceptor,
)

SOURCE = "fleet-src"
DESTINATION = "fleet-dst"
N_CLIENTS = 16
QUERIES_PER_CLIENT = 6
WORK_MS = 10.0
WORKERS_PER_REPLICA = 2
ROUNDS = 2
SUITE = "fleet"
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def replica_counts() -> list[int]:
    """The replica matrix — overridable for CI (``FLEET_REPLICAS=1,2``)."""
    raw = os.environ.get("FLEET_REPLICAS", "1,2,4,8")
    counts = sorted({int(part) for part in raw.split(",") if part.strip()})
    if not counts or any(count < 1 for count in counts):
        raise ValueError(f"bad FLEET_REPLICAS: {raw!r}")
    return counts


@contextmanager
def fleet(replica_count: int, probe: bool = False):
    """N replica servers fronting SOURCE + a balanced destination relay.

    Every replica is an independent :class:`RelayService` (its own
    idempotency record, as separate processes would have) behind its own
    :class:`RelayServer`; the destination discovers their ``tcp://``
    endpoints through one :class:`BalancedDiscovery` pool.
    """
    inner = InMemoryRegistry()
    servers: list[RelayServer] = []
    endpoints = []
    try:
        for index in range(replica_count):
            replica = RelayService(SOURCE, inner, relay_id=f"fleet-{index}")
            replica.register_driver(BenchDriver(SOURCE))
            replica.use(SimulatedWorkInterceptor(WORK_MS / 1e3))
            server = RelayServer(
                replica,
                max_workers=WORKERS_PER_REPLICA,
                probe_port=0 if probe else None,
            ).start()
            servers.append(server)
            endpoint = server.endpoint(timeout=10.0)
            endpoints.append(endpoint)
            inner.register(SOURCE, endpoint)
        balanced = BalancedDiscovery(inner)
        destination = RelayService(DESTINATION, balanced)
        yield destination, balanced, servers, endpoints
    finally:
        for endpoint in endpoints:
            endpoint.close()
        for server in servers:
            server.stop()


def make_query(tag: str) -> NetworkQuery:
    return NetworkQuery(
        version=PROTOCOL_VERSION,
        address=NetworkAddressMsg(
            network=SOURCE, ledger="ledger", contract="docs", function="Get"
        ),
        args=["K-1"],
        nonce=tag,
    )


def drive_clients(
    destination: RelayService,
    queries_per_client: int = QUERIES_PER_CLIENT,
    on_progress=None,
) -> tuple[float, list[float], list[Exception]]:
    """N threads x M sequential queries; returns (wall_s, latencies, errors)."""
    latencies: list[float] = []
    errors: list[Exception] = []
    lock = threading.Lock()
    barrier = threading.Barrier(N_CLIENTS)
    progress = {"done": 0}

    def worker(client_index: int) -> None:
        barrier.wait(timeout=10.0)
        mine = []
        for sequence in range(queries_per_client):
            query = make_query(f"n-{client_index}-{sequence}")
            started = time.perf_counter()
            try:
                response = destination.remote_query(query)
                assert response.status == STATUS_OK
                assert response.result_plain == b"doc:" + query.nonce.encode()
            except Exception as exc:  # noqa: BLE001 - the experiment counts caller-visible errors
                with lock:
                    errors.append(exc)
                continue
            mine.append(time.perf_counter() - started)
            with lock:
                progress["done"] += 1
                if on_progress is not None:
                    on_progress(progress["done"])
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, latencies, errors


def measure(destination: RelayService) -> dict:
    best_wall, best_latencies = float("inf"), []
    for _ in range(ROUNDS):
        wall, latencies, errors = drive_clients(destination)
        assert not errors, errors
        if wall < best_wall:
            best_wall, best_latencies = wall, latencies
    ordered = sorted(best_latencies)
    total = N_CLIENTS * QUERIES_PER_CLIENT
    return {
        "clients": N_CLIENTS,
        "queries_per_client": QUERIES_PER_CLIENT,
        "work_ms": WORK_MS,
        "workers_per_replica": WORKERS_PER_REPLICA,
        "wall_s": best_wall,
        "requests_per_s": total / best_wall,
        "p50_ms": percentile(ordered, 0.50) * 1e3,
        "p95_ms": percentile(ordered, 0.95) * 1e3,
    }


def test_fleet_throughput_scales_with_replicas(bench_report):
    """Acceptance: req/s scales >= 2.5x from 1 -> 4 replicas (when both
    are in the matrix), with per-count rows recorded to JSON."""
    results: dict[int, dict] = {}
    for count in replica_counts():
        with fleet(count) as (destination, balanced, _servers, _endpoints):
            metrics = measure(destination)
            snapshot = balanced.pools()[0]
            # p2c really spread the wave: every replica took traffic.
            assert all(
                member["requests"] > 0
                for member in snapshot["members"].values()
            ), snapshot
            metrics["replicas"] = count
            results[count] = metrics

    rows = [
        (
            f"{count} replica{'s' if count > 1 else ''}",
            f"{metrics['requests_per_s']:8.1f} req/s",
            f"{metrics['p50_ms']:7.2f} ms",
            f"{metrics['p95_ms']:7.2f} ms",
        )
        for count, metrics in sorted(results.items())
    ]
    print(
        f"\nE-fleet — {N_CLIENTS} clients x {QUERIES_PER_CLIENT} queries, "
        f"{WORK_MS:.0f}ms work, {WORKERS_PER_REPLICA} workers/replica "
        f"(best of {ROUNDS})"
    )
    print(format_table(rows, headers=["fleet", "throughput", "p50", "p95"]))

    for count, metrics in sorted(results.items()):
        bench_report.record(SUITE, f"replicas-{count}", **metrics)

    if 1 in results and 4 in results:
        scaling = results[4]["requests_per_s"] / results[1]["requests_per_s"]
        bench_report.record(
            SUITE,
            "scaling",
            one_to_four=scaling,
            acceptance_threshold=2.5,
        )
        print(f"1 -> 4 replica scaling: {scaling:.2f}x (acceptance >= 2.5x)")
        target = bench_report.write_suite(SUITE, DEFAULT_JSON)
        print(f"fleet trajectory written to {target}")
        assert scaling >= 2.5, (
            f"4 replicas must serve >= 2.5x the req/s of 1, "
            f"measured {scaling:.2f}x"
        )
    else:
        target = bench_report.write_suite(SUITE, DEFAULT_JSON)
        print(f"fleet trajectory written to {target} (reduced matrix, "
              f"scaling assertion skipped)")


def test_kill_one_replica_mid_run_zero_caller_errors(bench_report):
    """Acceptance: killing a replica mid-storm is invisible to callers —
    the readiness monitor (polling real ``/readyz`` probes) evicts it,
    failover absorbs the in-flight race, survivors take the traffic."""
    counts = replica_counts()
    count = max((c for c in counts if c >= 2), default=2)
    total = N_CLIENTS * QUERIES_PER_CLIENT
    with fleet(count, probe=True) as (destination, balanced, servers, endpoints):
        pool = balanced.pool(SOURCE)
        balanced.lookup(SOURCE)  # populate the pool before monitoring
        monitor = ReadinessMonitor(
            pool,
            probe_urls={
                endpoint.address: server.probe.url
                for endpoint, server in zip(endpoints, servers)
            },
            interval=0.05,
            timeout=1.0,
        ).start()
        victim = servers[0]
        victim_address = endpoints[0].address
        killed = threading.Event()

        def on_progress(done: int) -> None:
            # Pull the trigger mid-storm, from inside a caller thread.
            if done >= total // 4 and not killed.is_set():
                killed.set()
                threading.Thread(target=victim.stop, daemon=True).start()

        try:
            wall, latencies, errors = drive_clients(
                destination, on_progress=on_progress
            )
        finally:
            monitor.stop()

        assert killed.is_set(), "storm finished before the kill fired"
        assert errors == [], (
            f"{len(errors)} caller-visible error(s) after replica kill: "
            f"{errors[:3]}"
        )
        assert len(latencies) == total
        snapshot = pool.snapshot()
        assert snapshot["members"][victim_address]["evicted"], (
            "monitor never evicted the killed replica"
        )
        survivors_served = sum(
            member["requests"]
            for key, member in snapshot["members"].items()
            if key != victim_address
        )
        assert survivors_served > 0
        bench_report.record(
            SUITE,
            "kill-one-replica",
            replicas=count,
            requests=total,
            caller_errors=len(errors),
            evictions=snapshot["evictions"],
            wall_s=wall,
            requests_per_s=total / wall,
        )
        target = bench_report.write_suite(SUITE, DEFAULT_JSON)
        print(
            f"\nE-fleet/kill — {count} replicas, replica 0 killed mid-run: "
            f"{len(errors)} caller errors, {snapshot['evictions']} eviction(s), "
            f"{total / wall:.1f} req/s through the churn"
        )
        print(f"fleet trajectory written to {target}")
