"""E-transport — concurrent socket serving vs single-in-flight vs local.

The transport acceptance experiment: 8 concurrent clients each pipeline
queries at one source relay reached three ways:

- ``local``          — the in-process :class:`LocalTransport` call, 8
                       client threads sharing the relay object directly;
- ``tcp-concurrent`` — a :class:`repro.net.RelayServer` with an 8-worker
                       executor: the asyncio loop multiplexes connections
                       and requests are served in parallel;
- ``tcp-serial``     — the same server restricted to ``max_workers=1``:
                       a relay that accepts concurrently but serves one
                       request at a time (what a naive blocking
                       accept-serve-reply loop would do).

What is under test is the *transport and relay machinery*: envelope
framing, connection pooling, the interceptor chain, and the executor's
ability to overlap serving latency. The serving latency itself is
injected — a ``SimulatedWorkInterceptor`` sleeps ``WORK_MS`` per request,
standing in for the source network's endorsement/consensus round-trip,
which the in-process ledger sim answers in microseconds. The protocol's
cryptographic cost is intentionally excluded here (it is pure-Python CPU
work, GIL-serialized in a single process, and already measured by
``bench_batch_queries``/``bench_protocol_e2e``); a deployment overlaps
*waits*, and that is exactly what a concurrent relay server must do.

A second experiment bounds the observability plane's cost: the same
8-client wave over tcp-concurrent with the full ops plane wired (a
:class:`MetricsInterceptor` feeding a registry plus the probe listener
that :mod:`repro.ops` exporters scrape) must stay within 5% of the plain
server's throughput on the sleep-dominated path. A ``work_ms=0`` row is
also recorded for both so the trajectory captures the pure-machinery
ceiling, where the relative cost of metrics bookkeeping is largest; that
ratio is recorded but not asserted (it is noise-dominated).

Acceptance: at 8 clients, tcp-concurrent throughput >= 2x tcp-serial,
and ops-enabled throughput >= 0.95x plain at ``work_ms=10``. Results
land in ``BENCH_transport.json`` (and ``--json PATH`` adds them to the
combined session report).
"""

from __future__ import annotations

import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.api.middleware import MetricsInterceptor, percentile
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import RelayService
from repro.net import RelayServer
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
)
from repro.sim import format_table

SOURCE = "bench-src"
DESTINATION = "bench-dst"
N_CLIENTS = 8
QUERIES_PER_CLIENT = 4
WORK_MS = 10.0
ROUNDS = 3
SUITE = "transport"
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_transport.json"


class BenchDriver(NetworkDriver):
    """Answers instantly; the serve-latency interceptor supplies the wait."""

    platform = "bench"

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=b"doc:" + query.nonce.encode(),
        )


class SimulatedWorkInterceptor:
    """Adds ``seconds`` of wall-clock serving latency per request.

    Models the endorsement/consensus round the source network performs
    per query in a real deployment. A concurrent server overlaps these
    waits across requests; a single-in-flight server stacks them.
    """

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds

    def __call__(self, ctx, call_next):
        time.sleep(self.seconds)
        return call_next(ctx)


def build_topology(work_ms: float, with_ops: bool = False):
    """Source relay (driver + injected latency) and a bare destination.

    ``with_ops`` wires the full observability plane the way a deployment
    would: a :class:`MetricsInterceptor` on the serve path (its registry
    binding happens when the probe starts) ahead of the simulated work.
    """
    registry = InMemoryRegistry()
    source_relay = RelayService(SOURCE, registry)
    source_relay.register_driver(BenchDriver(SOURCE))
    if with_ops:
        source_relay.use(MetricsInterceptor())
    if work_ms:
        source_relay.use(SimulatedWorkInterceptor(work_ms / 1e3))
    destination_relay = RelayService(DESTINATION, registry)
    registry.register(SOURCE, source_relay)
    registry.register(DESTINATION, destination_relay)
    return registry, source_relay, destination_relay


@pytest.fixture(scope="module")
def topology():
    return build_topology(WORK_MS)


def make_query(tag: str) -> NetworkQuery:
    return NetworkQuery(
        version=PROTOCOL_VERSION,
        address=NetworkAddressMsg(
            network=SOURCE, ledger="ledger", contract="docs", function="Get"
        ),
        args=["K-1"],
        nonce=tag,
    )


def drive_clients(destination_relay: RelayService) -> tuple[float, list[float]]:
    """N threads x M sequential queries; returns (wall_s, per-request s)."""
    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(N_CLIENTS)

    def worker(client_index: int) -> None:
        barrier.wait(timeout=10.0)
        mine = []
        for sequence in range(QUERIES_PER_CLIENT):
            query = make_query(f"n-{client_index}-{sequence}")
            started = time.perf_counter()
            response = destination_relay.remote_query(query)
            mine.append(time.perf_counter() - started)
            assert response.status == STATUS_OK
            assert response.result_plain == b"doc:" + query.nonce.encode()
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, latencies


def swap_source_endpoints(registry: InMemoryRegistry, replacement) -> list:
    original = registry.lookup(SOURCE)
    for endpoint in original:
        registry.unregister(SOURCE, endpoint)
    registry.register(SOURCE, replacement)
    return original


def restore_source_endpoints(registry: InMemoryRegistry, original: list) -> None:
    for endpoint in list(registry.lookup(SOURCE)):
        registry.unregister(SOURCE, endpoint)
    for endpoint in original:
        registry.register(SOURCE, endpoint)


def measure(destination_relay: RelayService, work_ms: float = WORK_MS) -> dict:
    best_wall, best_latencies = float("inf"), []
    for _ in range(ROUNDS):
        wall, latencies = drive_clients(destination_relay)
        if wall < best_wall:
            best_wall, best_latencies = wall, latencies
    ordered = sorted(best_latencies)
    total = N_CLIENTS * QUERIES_PER_CLIENT
    return {
        "clients": N_CLIENTS,
        "queries_per_client": QUERIES_PER_CLIENT,
        "work_ms": work_ms,
        "wall_s": best_wall,
        "requests_per_s": total / best_wall,
        "p50_ms": percentile(ordered, 0.50) * 1e3,
        "p95_ms": percentile(ordered, 0.95) * 1e3,
    }


def test_concurrent_tcp_beats_single_in_flight(topology, bench_report):
    """Acceptance: concurrent TCP serving >= 2x single-in-flight at 8
    clients, with per-path requests/sec and p50/p95 recorded to JSON."""
    registry, source_relay, destination_relay = topology

    results: dict[str, dict] = {}
    results["local"] = measure(destination_relay)

    for label, workers in (("tcp-concurrent", 8), ("tcp-serial", 1)):
        with RelayServer(source_relay, max_workers=workers) as server:
            original = swap_source_endpoints(
                registry, server.endpoint(timeout=30.0)
            )
            try:
                results[label] = measure(destination_relay)
            finally:
                restore_source_endpoints(registry, original)

    rows = [
        (
            label,
            f"{metrics['requests_per_s']:8.1f} req/s",
            f"{metrics['p50_ms']:7.2f} ms",
            f"{metrics['p95_ms']:7.2f} ms",
            f"{metrics['wall_s'] * 1e3:8.1f} ms",
        )
        for label, metrics in results.items()
    ]
    print(
        f"\nE-transport — {N_CLIENTS} clients x {QUERIES_PER_CLIENT} queries, "
        f"{WORK_MS:.0f}ms simulated serve latency (best of {ROUNDS})"
    )
    print(format_table(rows, headers=["path", "throughput", "p50", "p95", "wall"]))

    for label, metrics in results.items():
        bench_report.record(SUITE, label, **metrics)
    speedup = (
        results["tcp-concurrent"]["requests_per_s"]
        / results["tcp-serial"]["requests_per_s"]
    )
    bench_report.record(
        SUITE,
        "speedup",
        concurrent_over_serial=speedup,
        acceptance_threshold=2.0,
    )
    target = bench_report.write_suite(SUITE, DEFAULT_JSON)
    print(f"transport trajectory written to {target} "
          f"(concurrent/serial speedup {speedup:.2f}x)")

    assert speedup >= 2.0, (
        f"concurrent TCP serving must beat single-in-flight by >= 2x at "
        f"{N_CLIENTS} clients, measured {speedup:.2f}x"
    )


def run_over_tcp(work_ms: float, with_ops: bool) -> dict:
    """One measured wave over a fresh topology behind an 8-worker server.

    With ``with_ops`` the server also opens its probe port, which binds
    the interceptor's registry and registers the relay/server exporters —
    the same wiring ``--metrics-port`` turns on in a deployment. The
    scrape at the end both validates the exposition and makes the
    measurement honest: collectors actually walk the stats objects.
    """
    registry, source_relay, destination_relay = build_topology(work_ms, with_ops)
    kwargs = {"probe_port": 0} if with_ops else {}
    with RelayServer(source_relay, max_workers=8, **kwargs) as server:
        original = swap_source_endpoints(registry, server.endpoint(timeout=30.0))
        try:
            metrics = measure(destination_relay, work_ms=work_ms)
            if with_ops:
                from repro.testing import parse_exposition

                with urllib.request.urlopen(
                    f"{server.probe.url}/metrics", timeout=5.0
                ) as response:
                    families = parse_exposition(response.read().decode("utf-8"))
                served = sum(
                    s.value
                    for s in families["repro_relay_requests_total"].samples
                )
                assert served == ROUNDS * N_CLIENTS * QUERIES_PER_CLIENT
        finally:
            restore_source_endpoints(registry, original)
    return metrics


def test_ops_plane_overhead_within_bound(bench_report):
    """Acceptance: wiring the ops plane (metrics interceptor + exporters
    + probe listener) costs <= 5% throughput on the sleep-dominated path.
    The work_ms=0 ratio is recorded for the trajectory but not asserted:
    at zero injected latency the wave is machinery-bound and the ratio is
    dominated by scheduler noise."""
    results = {
        label: run_over_tcp(work_ms, with_ops)
        for label, work_ms, with_ops in (
            ("tcp-plain", WORK_MS, False),
            ("tcp-ops", WORK_MS, True),
            ("tcp-zero-work", 0.0, False),
            ("tcp-zero-work-ops", 0.0, True),
        )
    }

    rows = [
        (
            label,
            f"{metrics['work_ms']:4.0f} ms",
            f"{metrics['requests_per_s']:8.1f} req/s",
            f"{metrics['p95_ms']:7.2f} ms",
        )
        for label, metrics in results.items()
    ]
    print(
        f"\nE-transport/ops — {N_CLIENTS} clients x {QUERIES_PER_CLIENT} "
        f"queries, plain vs full ops plane (best of {ROUNDS})"
    )
    print(format_table(rows, headers=["path", "work", "throughput", "p95"]))

    ops_over_plain = (
        results["tcp-ops"]["requests_per_s"]
        / results["tcp-plain"]["requests_per_s"]
    )
    zero_work_ratio = (
        results["tcp-zero-work-ops"]["requests_per_s"]
        / results["tcp-zero-work"]["requests_per_s"]
    )
    for label in ("tcp-ops", "tcp-zero-work", "tcp-zero-work-ops"):
        bench_report.record(SUITE, label, **results[label])
    bench_report.record(
        SUITE,
        "ops-overhead",
        plain_requests_per_s=results["tcp-plain"]["requests_per_s"],
        ops_over_plain=ops_over_plain,
        zero_work_ops_over_plain=zero_work_ratio,
        acceptance_threshold=0.95,
    )
    target = bench_report.write_suite(SUITE, DEFAULT_JSON)
    print(
        f"transport trajectory written to {target} "
        f"(ops/plain {ops_over_plain:.3f}x at {WORK_MS:.0f}ms, "
        f"{zero_work_ratio:.3f}x at zero work)"
    )

    assert ops_over_plain >= 0.95, (
        f"ops plane must cost <= 5% throughput at {WORK_MS:.0f}ms serve "
        f"latency, measured {ops_over_plain:.3f}x"
    )


def test_bench_tcp_concurrent_throughput(benchmark, topology):
    """Wall-clock of one concurrent-client wave over the TCP server."""
    registry, source_relay, destination_relay = topology
    with RelayServer(source_relay, max_workers=8) as server:
        original = swap_source_endpoints(registry, server.endpoint(timeout=30.0))
        try:
            benchmark.pedantic(
                lambda: drive_clients(destination_relay), rounds=3, iterations=1
            )
        finally:
            restore_source_endpoints(registry, original)
