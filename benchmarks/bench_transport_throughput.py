"""E-transport — concurrent socket serving vs single-in-flight vs local.

The transport acceptance experiment: 8 concurrent clients each pipeline
queries at one source relay reached three ways:

- ``local``          — the in-process :class:`LocalTransport` call, 8
                       client threads sharing the relay object directly;
- ``tcp-concurrent`` — a :class:`repro.net.RelayServer` with an 8-worker
                       executor: the asyncio loop multiplexes connections
                       and requests are served in parallel;
- ``tcp-serial``     — the same server restricted to ``max_workers=1``:
                       a relay that accepts concurrently but serves one
                       request at a time (what a naive blocking
                       accept-serve-reply loop would do).

What is under test is the *transport and relay machinery*: envelope
framing, connection pooling, the interceptor chain, and the executor's
ability to overlap serving latency. The serving latency itself is
injected — a ``SimulatedWorkInterceptor`` sleeps ``WORK_MS`` per request,
standing in for the source network's endorsement/consensus round-trip,
which the in-process ledger sim answers in microseconds. The protocol's
cryptographic cost is intentionally excluded here (it is pure-Python CPU
work, GIL-serialized in a single process, and already measured by
``bench_batch_queries``/``bench_protocol_e2e``); a deployment overlaps
*waits*, and that is exactly what a concurrent relay server must do.

Acceptance: at 8 clients, tcp-concurrent throughput >= 2x tcp-serial.
Results land in ``BENCH_transport.json`` (and ``--json PATH`` adds them
to the combined session report).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.api.middleware import percentile
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import RelayService
from repro.net import RelayServer
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
)
from repro.sim import format_table

SOURCE = "bench-src"
DESTINATION = "bench-dst"
N_CLIENTS = 8
QUERIES_PER_CLIENT = 4
WORK_MS = 10.0
ROUNDS = 3
SUITE = "transport"
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_transport.json"


class BenchDriver(NetworkDriver):
    """Answers instantly; the serve-latency interceptor supplies the wait."""

    platform = "bench"

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=b"doc:" + query.nonce.encode(),
        )


class SimulatedWorkInterceptor:
    """Adds ``seconds`` of wall-clock serving latency per request.

    Models the endorsement/consensus round the source network performs
    per query in a real deployment. A concurrent server overlaps these
    waits across requests; a single-in-flight server stacks them.
    """

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds

    def __call__(self, ctx, call_next):
        time.sleep(self.seconds)
        return call_next(ctx)


@pytest.fixture(scope="module")
def topology():
    registry = InMemoryRegistry()
    source_relay = RelayService(SOURCE, registry)
    source_relay.register_driver(BenchDriver(SOURCE))
    source_relay.use(SimulatedWorkInterceptor(WORK_MS / 1e3))
    destination_relay = RelayService(DESTINATION, registry)
    registry.register(SOURCE, source_relay)
    registry.register(DESTINATION, destination_relay)
    return registry, source_relay, destination_relay


def make_query(tag: str) -> NetworkQuery:
    return NetworkQuery(
        version=PROTOCOL_VERSION,
        address=NetworkAddressMsg(
            network=SOURCE, ledger="ledger", contract="docs", function="Get"
        ),
        args=["K-1"],
        nonce=tag,
    )


def drive_clients(destination_relay: RelayService) -> tuple[float, list[float]]:
    """N threads x M sequential queries; returns (wall_s, per-request s)."""
    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(N_CLIENTS)

    def worker(client_index: int) -> None:
        barrier.wait(timeout=10.0)
        mine = []
        for sequence in range(QUERIES_PER_CLIENT):
            query = make_query(f"n-{client_index}-{sequence}")
            started = time.perf_counter()
            response = destination_relay.remote_query(query)
            mine.append(time.perf_counter() - started)
            assert response.status == STATUS_OK
            assert response.result_plain == b"doc:" + query.nonce.encode()
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, latencies


def swap_source_endpoints(registry: InMemoryRegistry, replacement) -> list:
    original = registry.lookup(SOURCE)
    for endpoint in original:
        registry.unregister(SOURCE, endpoint)
    registry.register(SOURCE, replacement)
    return original


def restore_source_endpoints(registry: InMemoryRegistry, original: list) -> None:
    for endpoint in list(registry.lookup(SOURCE)):
        registry.unregister(SOURCE, endpoint)
    for endpoint in original:
        registry.register(SOURCE, endpoint)


def measure(destination_relay: RelayService) -> dict:
    best_wall, best_latencies = float("inf"), []
    for _ in range(ROUNDS):
        wall, latencies = drive_clients(destination_relay)
        if wall < best_wall:
            best_wall, best_latencies = wall, latencies
    ordered = sorted(best_latencies)
    total = N_CLIENTS * QUERIES_PER_CLIENT
    return {
        "clients": N_CLIENTS,
        "queries_per_client": QUERIES_PER_CLIENT,
        "work_ms": WORK_MS,
        "wall_s": best_wall,
        "requests_per_s": total / best_wall,
        "p50_ms": percentile(ordered, 0.50) * 1e3,
        "p95_ms": percentile(ordered, 0.95) * 1e3,
    }


def test_concurrent_tcp_beats_single_in_flight(topology, bench_report):
    """Acceptance: concurrent TCP serving >= 2x single-in-flight at 8
    clients, with per-path requests/sec and p50/p95 recorded to JSON."""
    registry, source_relay, destination_relay = topology

    results: dict[str, dict] = {}
    results["local"] = measure(destination_relay)

    for label, workers in (("tcp-concurrent", 8), ("tcp-serial", 1)):
        with RelayServer(source_relay, max_workers=workers) as server:
            original = swap_source_endpoints(
                registry, server.endpoint(timeout=30.0)
            )
            try:
                results[label] = measure(destination_relay)
            finally:
                restore_source_endpoints(registry, original)

    rows = [
        (
            label,
            f"{metrics['requests_per_s']:8.1f} req/s",
            f"{metrics['p50_ms']:7.2f} ms",
            f"{metrics['p95_ms']:7.2f} ms",
            f"{metrics['wall_s'] * 1e3:8.1f} ms",
        )
        for label, metrics in results.items()
    ]
    print(
        f"\nE-transport — {N_CLIENTS} clients x {QUERIES_PER_CLIENT} queries, "
        f"{WORK_MS:.0f}ms simulated serve latency (best of {ROUNDS})"
    )
    print(format_table(rows, headers=["path", "throughput", "p50", "p95", "wall"]))

    for label, metrics in results.items():
        bench_report.record(SUITE, label, **metrics)
    speedup = (
        results["tcp-concurrent"]["requests_per_s"]
        / results["tcp-serial"]["requests_per_s"]
    )
    bench_report.record(
        SUITE,
        "speedup",
        concurrent_over_serial=speedup,
        acceptance_threshold=2.0,
    )
    target = bench_report.write_suite(SUITE, DEFAULT_JSON)
    print(f"transport trajectory written to {target} "
          f"(concurrent/serial speedup {speedup:.2f}x)")

    assert speedup >= 2.0, (
        f"concurrent TCP serving must beat single-in-flight by >= 2x at "
        f"{N_CLIENTS} clients, measured {speedup:.2f}x"
    )


def test_bench_tcp_concurrent_throughput(benchmark, topology):
    """Wall-clock of one concurrent-client wave over the TCP server."""
    registry, source_relay, destination_relay = topology
    with RelayServer(source_relay, max_workers=8) as server:
        original = swap_source_endpoints(registry, server.endpoint(timeout=30.0))
        try:
            benchmark.pedantic(
                lambda: drive_clients(destination_relay), rounds=3, iterations=1
            )
        finally:
            restore_source_endpoints(registry, original)
