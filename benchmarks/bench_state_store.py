"""E-store — the durability tax: MemoryStore vs SqliteStore WAL.

Two layers of the PR 7 state subsystem are measured:

- **raw store ops** — single puts, batched puts, random gets, and a
  namespace scan against each backend (``memory``, ``sqlite-fsync-off``,
  ``sqlite-fsync-on``). Every SqliteStore put is a WAL append (+fsync
  when enabled); the batched path amortizes one commit over many ops.
- **relay serving** — a relay serving distinct transact envelopes, each
  of which installs one durable idempotency record. This is the number
  an operator trades against: what turning on ``--state-dir`` (and
  fsync) costs per exactly-once request.

The MemoryStore relay path is the baseline — it is the default backend
and must keep ``BENCH_transport.json`` throughput intact (within 5%),
which ``bench_transport_throughput`` itself asserts against a live
MemoryStore-backed relay. Results land in ``BENCH_store.json`` (and
``--json PATH`` adds them to the combined session report).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import RelayService
from repro.proto.messages import (
    MSG_KIND_TRANSACT_REQUEST,
    PROTOCOL_VERSION,
    STATUS_OK,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
    RelayEnvelope,
)
from repro.sim import format_table
from repro.store import MemoryStore, SqliteStore

SOURCE = "bench-src"
N_OPS = 400
BATCH_SIZE = 32
N_REQUESTS = 150
ROUNDS = 3
VALUE = b"x" * 64
BACKENDS = ("memory", "sqlite-fsync-off", "sqlite-fsync-on")
SUITE = "store"
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def open_backend(name: str, root: Path):
    if name == "memory":
        return MemoryStore()
    return SqliteStore(root / name, fsync=name.endswith("-on"))


class BenchTransactDriver(NetworkDriver):
    """Commits instantly; what's under test is the durable record write."""

    platform = "bench"
    supports_transactions = True

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        raise AssertionError("only transactions are served in this bench")

    def execute_transaction(self, query: NetworkQuery) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=b"committed:" + query.nonce.encode(),
        )


def transact_envelope(tag: str) -> bytes:
    return RelayEnvelope(
        version=PROTOCOL_VERSION,
        kind=MSG_KIND_TRANSACT_REQUEST,
        request_id=f"req-{tag}",
        source_network="bench-dst",
        destination_network=SOURCE,
        payload=NetworkQuery(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network=SOURCE, ledger="ledger", contract="docs", function="Put"
            ),
            args=[tag],
            nonce=f"n-{tag}",
        ).encode(),
    ).encode()


def best_of(rounds: int, run) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def measure_store_ops(backend: str, root: Path) -> dict:
    """Each round writes into a fresh namespace so puts are inserts."""
    store = open_backend(backend, root)
    generation = iter(range(1_000_000))

    def put_round() -> str:
        namespace = f"bench/g{next(generation)}"
        for index in range(N_OPS):
            store.put(namespace, f"k-{index:05d}", VALUE)
        return namespace

    def batch_round() -> None:
        namespace = f"bench/g{next(generation)}"
        for start in range(0, N_OPS, BATCH_SIZE):
            with store.batch() as batch:
                for index in range(start, start + BATCH_SIZE):
                    batch.put(namespace, f"k-{index:05d}", VALUE)

    try:
        put_s = best_of(ROUNDS, put_round)
        batch_s = best_of(ROUNDS, batch_round)
        namespace = put_round()  # a warm namespace for the read side
        get_s = best_of(
            ROUNDS,
            lambda: [
                store.get(namespace, f"k-{index:05d}") for index in range(N_OPS)
            ],
        )
        scan_s = best_of(ROUNDS, lambda: store.scan(namespace))
        return {
            "ops": N_OPS,
            "value_bytes": len(VALUE),
            "put_ops_per_s": N_OPS / put_s,
            "batched_put_ops_per_s": N_OPS / batch_s,
            "batch_size": BATCH_SIZE,
            "get_ops_per_s": N_OPS / get_s,
            "scan_ms": scan_s * 1e3,
        }
    finally:
        store.close()


def measure_relay(backend: str, root: Path) -> dict:
    """Requests/sec serving N distinct exactly-once transact requests."""
    store = open_backend(backend, root)
    registry = InMemoryRegistry()
    relay = RelayService(
        SOURCE, registry, store=store, idempotency_capacity=4 * N_REQUESTS * ROUNDS
    )
    relay.register_driver(BenchTransactDriver(SOURCE))
    registry.register(SOURCE, relay)
    generation = iter(range(1_000_000))

    def serve_round() -> None:
        marker = next(generation)
        for index in range(N_REQUESTS):
            relay.handle_request(transact_envelope(f"{marker}-{index}"))

    try:
        wall = best_of(ROUNDS, serve_round)
        return {
            "requests": N_REQUESTS,
            "requests_per_s": N_REQUESTS / wall,
            "per_request_us": wall / N_REQUESTS * 1e6,
        }
    finally:
        store.close()


def test_durability_tax_is_measured_and_bounded(tmp_path, bench_report):
    """Acceptance: the sqlite overhead is recorded to BENCH_store.json,
    and the batched WAL path amortizes the per-commit cost."""
    store_results = {
        backend: measure_store_ops(backend, tmp_path / "ops") for backend in BACKENDS
    }
    relay_results = {
        backend: measure_relay(backend, tmp_path / "relay") for backend in BACKENDS
    }

    rows = [
        (
            backend,
            f"{store_results[backend]['put_ops_per_s']:10.0f}/s",
            f"{store_results[backend]['batched_put_ops_per_s']:10.0f}/s",
            f"{store_results[backend]['get_ops_per_s']:10.0f}/s",
            f"{relay_results[backend]['requests_per_s']:8.1f} req/s",
        )
        for backend in BACKENDS
    ]
    print(
        f"\nE-store — durability tax ({N_OPS} puts, batches of {BATCH_SIZE}, "
        f"{N_REQUESTS} relay requests; best of {ROUNDS})"
    )
    print(
        format_table(
            rows, headers=["backend", "put", "batched put", "get", "relay"]
        )
    )

    baseline = relay_results["memory"]["requests_per_s"]
    for backend in BACKENDS:
        bench_report.record(SUITE, f"ops-{backend}", **store_results[backend])
        bench_report.record(
            SUITE,
            f"relay-{backend}",
            relay_overhead_pct=(
                (baseline / relay_results[backend]["requests_per_s"] - 1.0) * 100.0
            ),
            **relay_results[backend],
        )
    target = bench_report.write_suite(SUITE, DEFAULT_JSON)
    print(f"store trajectory written to {target}")

    for backend in ("sqlite-fsync-off", "sqlite-fsync-on"):
        amortized = store_results[backend]["batched_put_ops_per_s"]
        single = store_results[backend]["put_ops_per_s"]
        assert amortized > single, (
            f"{backend}: batched WAL commits must amortize the per-commit "
            f"cost ({amortized:.0f}/s vs {single:.0f}/s single puts)"
        )
    # The volatile default must not be paying a visible durability tax.
    assert relay_results["memory"]["requests_per_s"] > 0
