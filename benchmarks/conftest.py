"""Shared fixtures for the benchmark/experiment harness.

Each ``bench_*.py`` file regenerates one artifact of the paper (see the
experiment index in DESIGN.md). Benchmarks print their experiment tables
to stdout; run with ``pytest benchmarks/ --benchmark-only -s`` to see them
alongside the timing statistics.

Machine-readable results: every suite can record metrics on the shared
session-scoped :class:`BenchReport` (the ``bench_report`` fixture);
passing ``--json PATH`` writes the combined report there at session end.
Suites that track a perf trajectory in-repo (``BENCH_*.json``) also pass
a default path to :meth:`BenchReport.write_suite` so the artifact appears
even without the flag.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.apps import build_trade_scenario


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write machine-readable benchmark results (all suites) to PATH",
    )


class BenchReport:
    """Accumulates named metric dicts; serializes to a stable JSON shape."""

    SCHEMA = "repro-bench/1"

    def __init__(self) -> None:
        self.entries: list[dict] = []

    def record(self, suite: str, name: str, **metrics) -> dict:
        entry = {"suite": suite, "name": name, "metrics": metrics}
        self.entries.append(entry)
        return entry

    def payload(self, suite: str | None = None) -> dict:
        entries = [
            entry for entry in self.entries if suite is None or entry["suite"] == suite
        ]
        return {
            "schema": self.SCHEMA,
            "python": platform.python_version(),
            "entries": entries,
        }

    def write(self, path: str | Path, suite: str | None = None) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.payload(suite), indent=2, sort_keys=True) + "\n")
        return path

    def write_suite(self, suite: str, default_path: str | Path) -> Path:
        """Write one suite's entries to its in-repo ``BENCH_*.json``."""
        return self.write(default_path, suite=suite)


@pytest.fixture(scope="session")
def bench_report(request) -> BenchReport:
    report = BenchReport()
    yield report
    path = request.config.getoption("--json")
    if path and report.entries:
        target = report.write(path)
        print(f"\nbenchmark results written to {target}")


@pytest.fixture(scope="module")
def scenario():
    """A ready STL+SWT interop deployment with one issued B/L and L/C."""
    scenario = build_trade_scenario()
    po_ref = "PO-BENCH-001"
    scenario.buyer_app.request_lc(po_ref, "buyer-corp", "seller-corp", 50_000.0)
    scenario.buyer_bank_app.issue_lc(po_ref)
    scenario.stl_seller_app.create_shipment(po_ref, "bench goods")
    scenario.carrier_app.accept_shipment(po_ref)
    scenario.carrier_app.record_handover(po_ref)
    scenario.carrier_app.issue_bill_of_lading(po_ref, vessel="MV Bench")
    scenario.po_ref = po_ref  # type: ignore[attr-defined]
    return scenario
