"""Shared fixtures for the benchmark/experiment harness.

Each ``bench_*.py`` file regenerates one artifact of the paper (see the
experiment index in DESIGN.md). Benchmarks print their experiment tables
to stdout; run with ``pytest benchmarks/ --benchmark-only -s`` to see them
alongside the timing statistics.
"""

from __future__ import annotations

import pytest

from repro.apps import build_trade_scenario


@pytest.fixture(scope="module")
def scenario():
    """A ready STL+SWT interop deployment with one issued B/L and L/C."""
    scenario = build_trade_scenario()
    po_ref = "PO-BENCH-001"
    scenario.buyer_app.request_lc(po_ref, "buyer-corp", "seller-corp", 50_000.0)
    scenario.buyer_bank_app.issue_lc(po_ref)
    scenario.stl_seller_app.create_shipment(po_ref, "bench goods")
    scenario.carrier_app.accept_shipment(po_ref)
    scenario.carrier_app.record_handover(po_ref)
    scenario.carrier_app.issue_bill_of_lading(po_ref, vessel="MV Bench")
    scenario.po_ref = po_ref  # type: ignore[attr-defined]
    return scenario
