"""E4 — Figure 4: the end-to-end protocol instance, component breakdown.

Reproduces the §4.3 protocol run (SWT-SC query -> STL proof collection ->
response decryption -> proof-carrying UploadDispatchDocs) and reports
where the time goes, including the contract-invocation counts that
motivated combining Configuration Management and Data Acceptance into one
CMDAC "for runtime efficiency".
"""

from __future__ import annotations

import itertools
import time

from repro.apps import build_trade_scenario
from repro.sim import format_table

_COUNTER = itertools.count()


def _fresh_po(scenario) -> str:
    po_ref = f"PO-E2E-{next(_COUNTER):04d}"
    scenario.buyer_app.request_lc(po_ref, "b", "s", 10_000.0)
    scenario.buyer_bank_app.issue_lc(po_ref)
    scenario.stl_seller_app.create_shipment(po_ref, "goods")
    scenario.carrier_app.accept_shipment(po_ref)
    scenario.carrier_app.record_handover(po_ref)
    scenario.carrier_app.issue_bill_of_lading(po_ref, "MV E2E")
    return po_ref


def test_protocol_component_breakdown(benchmark, scenario):
    client = scenario.swt_seller_client
    po_ref = _fresh_po(scenario)

    endorsements_before = sum(p.endorsement_count for p in scenario.stl.peers)
    start = time.perf_counter()
    fetched = client.fetch_bill_of_lading(po_ref)
    fetch_seconds = time.perf_counter() - start
    endorsements_for_proof = (
        sum(p.endorsement_count for p in scenario.stl.peers) - endorsements_before
    )

    start = time.perf_counter()
    lc = client.upload_dispatch_docs(po_ref, fetched)
    commit_seconds = time.perf_counter() - start
    assert lc["status"] == "DOCS_UPLOADED"

    rows = [
        ("steps 1-9: query + proof collection + decryption", f"{fetch_seconds * 1e3:8.2f} ms"),
        ("step 10: proof-carrying transaction commit", f"{commit_seconds * 1e3:8.2f} ms"),
        ("attestations in proof", str(len(fetched.proof))),
        ("source peer executions for proof", str(endorsements_for_proof)),
        ("proof bundle size (bytes, JSON)", str(len(fetched.proof_json))),
    ]
    print("\nE4 / Figure 4 — protocol instance component breakdown")
    print(format_table(rows, headers=["component", "value"]))
    # Shape: both sides involve two source peers (policy) and the proof is
    # self-contained (kilobytes, not megabytes).
    assert endorsements_for_proof == 2
    assert len(fetched.proof_json) < 64 * 1024

    # Benchmark the repeatable half (the trusted query).
    benchmark(lambda: client.fetch_bill_of_lading(po_ref))


def test_bench_full_fetch_and_upload(benchmark):
    """Whole §4.3 instance per round, each against a fresh purchase order."""
    scenario = build_trade_scenario()

    def setup():
        return (_fresh_po(scenario),), {}

    def run(po_ref):
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        return scenario.swt_seller_client.upload_dispatch_docs(po_ref, fetched)

    lc = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert lc["status"] == "DOCS_UPLOADED"


def test_bench_cmdac_validate_proof(benchmark, scenario):
    """Destination-side proof validation in isolation (CMDAC.ValidateProof
    evaluated on a peer, no ordering)."""
    client = scenario.swt_seller_client
    po_ref = _fresh_po(scenario)
    fetched = client.fetch_bill_of_lading(po_ref)
    from repro.crypto.hashing import sha256
    from repro.utils.encoding import canonical_json

    seller = scenario.swt.org("seller-bank-org").member("seller")
    args = [
        "stl",
        fetched.address,
        canonical_json([po_ref]).decode("ascii"),
        fetched.nonce,
        sha256(fetched.data).hex(),
        fetched.proof_json,
    ]
    # evaluate() only simulates: the nonce is never committed, so the same
    # proof validates repeatedly — ideal for isolating validation cost.
    result = benchmark(
        lambda: scenario.swt.gateway.evaluate(seller, "cmdac", "ValidateProof", args)
    )
    assert result == b"OK"
