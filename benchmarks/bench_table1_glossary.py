"""E5 — Table 1: the use-case acronym glossary.

Regenerates the paper's only table verbatim (it is a glossary, not a
measurement; included for completeness of the per-artifact index).
"""

from __future__ import annotations

from repro.apps.glossary import GLOSSARY, render_glossary


def test_table1_glossary(benchmark):
    text = benchmark(render_glossary)
    print("\nE5 / Table 1 — common use case acronyms")
    print(text)
    assert len(GLOSSARY) == 7
    for acronym in ("L/C", "B/L", "(S)TL", "(S)WT", "SWT-SC", "ECC", "CMDAC"):
        assert acronym in text
