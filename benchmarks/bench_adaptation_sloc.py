"""E7 — §5 "ease of use and adaptation": the SLOC table.

The paper reports one-time adaptation costs of ~35 SLOC (source
chaincode), ~20 SLOC (destination chaincode) and ~80 SLOC (destination
application). This bench measures the same quantities from this repo's
marked ``[interop-begin]/[interop-end]`` regions and prints paper vs
measured. Absolute counts differ (Python vs Go/JS); the shape — tens of
lines, destination app largest — is the reproduced result.
"""

from __future__ import annotations

from repro.sim import format_table, measure_adaptation


def test_adaptation_sloc_table(benchmark):
    report = benchmark(measure_adaptation)

    print("\nE7 / §5 — adaptation cost (added SLOC), paper vs measured")
    print(format_table(report.rows(), headers=["adaptation site", "paper", "measured"]))

    # Shape assertions (see EXPERIMENTS.md for discussion):
    assert 0 < report.source_chaincode_sloc <= report.PAPER_SOURCE_CHAINCODE * 2
    assert 0 < report.destination_chaincode_sloc <= report.PAPER_DESTINATION_CHAINCODE * 2
    assert 0 < report.destination_app_sloc <= report.PAPER_DESTINATION_APP * 2
    assert report.destination_app_sloc > report.destination_chaincode_sloc


def test_rule_only_exposure_extension(benchmark, scenario):
    """'Permitting access to functions other than GetBillOfLading only
    requires the addition of a policy rule, and no further chaincode
    modification' — measured: unlocking GetShipment is one transaction."""
    admin = scenario.stl.org("seller-org").member("admin")

    added = benchmark.pedantic(
        lambda: scenario.stl.gateway.submit(
            admin,
            "ecc",
            "AddAccessRule",
            ["swt", "seller-bank-org", "TradeLensCC", "GetShipment"],
        ),
        rounds=1,
        iterations=1,
    )
    assert added.committed
    result = scenario.swt_seller_client.interop_client.remote_query(
        "stl/trade-logistics/TradeLensCC/GetShipment",
        [scenario.po_ref],
        policy="AND(org:seller-org, org:carrier-org)",
    )
    assert b"goods" in result.data
    print("\nE7b — exposing a second function took 1 policy transaction, 0 SLOC")
