"""E10 — ablation: proof size and cost vs verification-policy strictness.

The paper leaves "construction of an optimal verification policy from a
network's consensus policy" to future work (§7); this bench maps the
trade-off space on a 4-org source network: stricter policies (more
required attesting orgs) buy stronger trust at linearly growing proof
size, collection cost, and validation cost.
"""

from __future__ import annotations

import time

import pytest

from repro.fabric import Chaincode, NetworkBuilder
from repro.fabric.identity import Organization
from repro.interop.bootstrap import create_fabric_relay, enable_fabric_interop
from repro.interop.client import InteropClient
from repro.interop.contracts.cmdac import CMDAC_NAME
from repro.interop.discovery import InMemoryRegistry
from repro.interop.relay import RelayService
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg
from repro.sim import format_table

ORG_COUNT = 4


class RegistryChaincode(Chaincode):
    name = "registry"

    def invoke(self, stub):
        if stub.function == "init":
            return b"ok"
        if stub.function == "Put":
            stub.put_state(stub.args[0], stub.args[1].encode())
            return b"ok"
        if stub.function == "Get":
            interop_raw = stub.get_transient("interop")
            value = stub.get_state(stub.args[0]) or b""
            if interop_raw is not None:
                import json

                ctx = json.loads(interop_raw)
                stub.invoke_chaincode(
                    "ecc",
                    "CheckAccess",
                    [ctx["requesting_network"], ctx["requesting_org"], self.name, "Get"],
                )
                return stub.invoke_chaincode(
                    "ecc",
                    "SealResponse",
                    [value.hex(), ctx["client_pubkey"], "true" if ctx["confidential"] else "false"],
                )
            return value
        raise Exception("unknown function")


@pytest.fixture(scope="module")
def big_source():
    """A 4-org source network with one peer per org and one document."""
    builder = NetworkBuilder("bignet", channel="main")
    for index in range(ORG_COUNT):
        builder.add_org(f"org{index}")
        builder.add_peer("peer0", f"org{index}")
    builder.add_client("admin", "org0")
    network = builder.build()
    admin = network.org("org0").member("admin")
    policy = "AND(" + ", ".join(f"'org{i}.peer'" for i in range(ORG_COUNT)) + ")"
    network.deploy_chaincode(RegistryChaincode(), policy, initializer=admin)
    enable_fabric_interop(network, admin)
    network.gateway.submit(admin, "registry", "Put", ["doc", '{"payload": "x"}'])

    registry = InMemoryRegistry()
    create_fabric_relay(network, registry)

    dest_org = Organization("dest-org", network="destnet")
    identity = dest_org.enroll("app", role="client")
    dest_config = NetworkConfigMsg(
        network_id="destnet",
        platform="fabric",
        organizations=[
            OrganizationConfigMsg(
                org_id="dest-org",
                msp_id="dest-orgMSP",
                root_certificate=dest_org.msp.root_certificate.to_bytes(),
            )
        ],
    )
    network.gateway.submit(
        admin, CMDAC_NAME, "RecordNetworkConfig", ["destnet", dest_config.encode().hex()]
    )
    network.gateway.submit(
        admin, "ecc", "AddAccessRule", ["destnet", "dest-org", "registry", "Get"]
    )
    dest_relay = RelayService("destnet", registry)
    client = InteropClient(identity, dest_relay, "destnet")
    return network, client


def _policy_for(orgs: int) -> str:
    if orgs == 1:
        return "org:org0"
    return "AND(" + ", ".join(f"org:org{i}" for i in range(orgs)) + ")"


def test_policy_strictness_sweep(benchmark, big_source):
    network, client = big_source
    rows = []
    sizes = []
    for orgs in range(1, ORG_COUNT + 1):
        policy = _policy_for(orgs)
        start = time.perf_counter()
        result = client.remote_query("bignet/main/registry/Get", ["doc"], policy=policy)
        elapsed = time.perf_counter() - start
        proof_bytes = len(result.proof_json)
        sizes.append(proof_bytes)
        rows.append(
            (
                str(orgs),
                str(len(result.proof)),
                f"{proof_bytes}",
                f"{elapsed * 1e3:7.2f} ms",
            )
        )
        assert len(result.proof) == orgs
    print("\nE10 — proof cost vs verification-policy strictness (4-org network)")
    print(
        format_table(
            rows,
            headers=["required orgs", "attestations", "proof bytes", "query latency"],
        )
    )
    # Shape: proof size grows monotonically (≈ linearly) with strictness.
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0] * (ORG_COUNT - 1) * 0.5

    benchmark(
        lambda: client.remote_query(
            "bignet/main/registry/Get", ["doc"], policy=_policy_for(ORG_COUNT)
        )
    )


def test_bench_loosest_policy(benchmark, big_source):
    """Baseline: single-org policy (cheapest proof)."""
    network, client = big_source
    result = benchmark(
        lambda: client.remote_query(
            "bignet/main/registry/Get", ["doc"], policy=_policy_for(1)
        )
    )
    assert len(result.proof) == 1


def test_bench_outof_threshold_policy(benchmark, big_source):
    """OutOf(2, ...) policies: strictness between OR and AND."""
    network, client = big_source
    policy = "OutOf(2, " + ", ".join(f"org:org{i}" for i in range(ORG_COUNT)) + ")"
    result = benchmark(
        lambda: client.remote_query("bignet/main/registry/Get", ["doc"], policy=policy)
    )
    assert len(result.proof) == 2
