"""E9 — §5 availability: query success under relay failure vs redundancy.

"The effects of DoS attacks can be mitigated by adding redundant relays."
This bench deploys k = 1..3 relays for the source network, fails a
growing number of them, and reports the query success rate — the
crossover (success iff at least one relay survives) is the reproduced
shape.
"""

from __future__ import annotations

from repro.apps import build_trade_scenario
from repro.errors import RelayUnavailableError
from repro.sim import format_table

PO = "PO-AVAIL"


def _scenario_with_relays(k: int):
    scenario = build_trade_scenario(stl_relay_count=k)
    scenario.stl_seller_app.create_shipment(PO, "goods")
    scenario.carrier_app.accept_shipment(PO)
    scenario.carrier_app.record_handover(PO)
    scenario.carrier_app.issue_bill_of_lading(PO, "MV A")
    return scenario


def _query_succeeds(scenario) -> bool:
    try:
        scenario.swt_seller_client.fetch_bill_of_lading(PO)
    except RelayUnavailableError:
        return False
    return True


def test_success_vs_relay_failures(benchmark):
    rows = []
    for total_relays in (1, 2, 3):
        for failed in range(0, total_relays + 1):
            scenario = _scenario_with_relays(total_relays)
            for relay in scenario.stl_relays[:failed]:
                relay.available = False
            ok = _query_succeeds(scenario)
            rows.append(
                (
                    str(total_relays),
                    str(failed),
                    "served" if ok else "UNAVAILABLE",
                )
            )
            assert ok == (failed < total_relays)
    print("\nE9 / §5 — availability under relay failure")
    print(format_table(rows, headers=["relays deployed", "relays failed", "query outcome"]))

    # Benchmark the failover cost: first relay dead, second serves.
    scenario = _scenario_with_relays(2)
    scenario.stl_relays[0].available = False
    benchmark(lambda: scenario.swt_seller_client.fetch_bill_of_lading(PO))
    assert scenario.swt_relay.stats.failovers > 0


def test_bench_no_failover_baseline(benchmark):
    """Baseline for the failover bench: all relays healthy."""
    scenario = _scenario_with_relays(2)
    benchmark(lambda: scenario.swt_seller_client.fetch_bill_of_lading(PO))
