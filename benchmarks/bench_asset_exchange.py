"""E-assets — atomic exchanges and N-party cycles through real relays.

The HTLC subsystem's throughput experiment, in two parts:

- *exchanges*: N independent asset pairs (one on each network) swapped by
  N concurrent :class:`~repro.assets.AssetExchangeCoordinator` runs, every
  leg riding ``MSG_KIND_ASSET_*`` envelopes plus two proof-carrying
  lock-verification queries per exchange;
- *cycles*: one :class:`~repro.assets.CycleCoordinator` driving an
  N-network ring (each leg on its own Quorum network, ring governance
  wired port-to-port), swept over ring sizes to chart cycles/sec and the
  p95 lock→final-claim window against N.

Both report the lock→claim latency (first escrow to final claim, the
window in which value is at risk) and feed the shared
:class:`BenchReport`; the ``assets`` suite is written to
``BENCH_assets.json`` so the trajectory is tracked in-repo (and uploaded
as a CI artifact).

Each relay is fronted by a :class:`SerializingInterceptor` (the in-process
substrates are not thread-safe), so concurrency buys overlap *across* the
two networks — which is exactly where a real deployment's parallelism
lives too.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.api import InteropGateway, MetricsInterceptor, SerializingInterceptor
from repro.api.middleware import percentile
from repro.assets import FabricAssetChaincode, QuorumAssetContract
from repro.fabric import NetworkBuilder
from repro.interop import InMemoryRegistry, InteropClient, RelayService
from repro.interop.bootstrap import (
    create_fabric_relay,
    enable_fabric_interop,
    record_foreign_network,
)
from repro.interop.contracts.ports import InteropPort
from repro.interop.drivers.quorum_driver import QuorumDriver
from repro.quorum import QuorumNetwork
from repro.sim import format_table
from repro.utils.clock import SimulatedClock

SUITE = "assets"
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_assets.json"

N_EXCHANGES = 8
WORKERS = 4
OFFER_POLICY = "AND(org:traders-org, org:audit-org)"
ASK_POLICY = "AND(org:op-org-1, org:op-org-2)"

#: Ring sizes the cycle sweep charts, and completed cycles per size.
CYCLE_SIZES = (2, 3, 4, 5)
CYCLE_RUNS = 3


@pytest.fixture(scope="module")
def asset_scenario():
    """Two mutually-configured networks with N asset pairs pre-issued."""
    fabric = (
        NetworkBuilder("fabnet", channel="trade")
        .add_org("traders-org")
        .add_org("audit-org")
        .add_peer("peer0", "traders-org")
        .add_peer("peer0", "audit-org")
        .add_client("admin", "traders-org")
        .add_client("alice", "traders-org")
        .build()
    )
    fabric_admin = fabric.org("traders-org").member("admin")
    alice = fabric.org("traders-org").member("alice")
    enable_fabric_interop(fabric, fabric_admin)
    fabric.deploy_chaincode(
        FabricAssetChaincode(),
        "AND('traders-org.peer', 'audit-org.peer')",
        initializer=fabric_admin,
    )

    quorum = QuorumNetwork("quornet")
    quorum.deploy_contract(QuorumAssetContract())
    quorum.add_peer("peer1", "op-org-1")
    quorum.add_peer("peer2", "op-org-2")
    bob = quorum.enroll_client("bob", "op-org-1")
    quorum_invoker = quorum.enroll_client("asset-invoker", "op-org-1")
    quorum_port = InteropPort("quornet")
    quorum_port.record_network_config(fabric.export_config())
    for function in ("LockAsset", "ClaimAsset", "UnlockAsset", "GetLock"):
        quorum_port.add_access_rule("fabnet", "traders-org", "asset-vault", function)

    for index in range(N_EXCHANGES):
        fabric.gateway.submit(
            fabric_admin,
            "assetscc",
            "Issue",
            [f"GOLD-{index}", "alice@fabnet", "{}"],
        )
        quorum.submit_transaction(
            quorum_invoker,
            "asset-vault",
            "Issue",
            [f"OIL-{index}", "bob@quornet", "{}"],
        )

    registry = InMemoryRegistry()
    fabric_metrics = MetricsInterceptor()
    fabric_relay = create_fabric_relay(
        fabric, registry, middleware=[SerializingInterceptor(), fabric_metrics]
    )
    fabric_invoker = fabric.org("traders-org").enroll("asset-invoker", role="client")
    fabric_relay.driver_for("fabnet").enable_assets(fabric_invoker)

    quorum_metrics = MetricsInterceptor()
    quorum_relay = RelayService("quornet", registry)
    quorum_relay.use(SerializingInterceptor(), quorum_metrics)
    quorum_driver = QuorumDriver(quorum, quorum_port)
    quorum_driver.enable_assets(quorum_invoker)
    quorum_relay.register_driver(quorum_driver)
    registry.register("quornet", quorum_relay)

    for function in ("ClaimAsset", "UnlockAsset", "GetLock"):
        fabric.gateway.submit(
            fabric_admin,
            "ecc",
            "AddAccessRule",
            ["quornet", "op-org-1", "assetscc", function],
        )
    record_foreign_network(fabric, fabric_admin, quorum, verification_policy=ASK_POLICY)

    alice_client = InteropClient(alice, fabric_relay, "fabnet", gateway=fabric.gateway)
    bob_client = InteropClient(bob, quorum_relay, "quornet")
    return {
        "gateway": InteropGateway.from_client(alice_client),
        "bob_client": bob_client,
        "fabric_metrics": fabric_metrics,
        "quorum_metrics": quorum_metrics,
        "fabric_relay": fabric_relay,
        "quorum_relay": quorum_relay,
    }


def _run_exchange(scenario, index: int) -> float:
    """One full atomic exchange; returns its lock→claim latency (s)."""
    exchange = (
        scenario["gateway"]
        .exchange()
        .offer("fabnet/trade/assetscc", f"GOLD-{index}")
        .ask("quornet/state/asset-vault", f"OIL-{index}")
        .with_counterparty(scenario["bob_client"])
        .with_timeouts(offer=600.0, counter=300.0)
        .with_policies(offer=OFFER_POLICY, ask=ASK_POLICY)
        .build()
    )
    started = time.perf_counter()
    result = exchange.run()
    elapsed = time.perf_counter() - started
    assert result.completed
    return elapsed


def print_relay_kinds(metrics: MetricsInterceptor, title: str) -> None:
    snapshot = metrics.snapshot()
    rows = [
        (
            name,
            str(detail["requests"]),
            str(detail["errors"]),
            f"{detail['seconds_p50'] * 1e3:8.3f} ms",
            f"{detail['seconds_p95'] * 1e3:8.3f} ms",
            f"{detail['seconds_max'] * 1e3:8.3f} ms",
        )
        for name, detail in snapshot["kinds"].items()
    ]
    print(f"\n{title} ({snapshot['requests_total']} requests)")
    print(format_table(rows, headers=["kind", "requests", "errors", "p50", "p95", "max"]))


def test_concurrent_exchanges_throughput(asset_scenario, bench_report):
    """Acceptance: N concurrent exchanges all complete; report throughput."""
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=WORKERS) as executor:
        latencies = list(
            executor.map(
                lambda index: _run_exchange(asset_scenario, index),
                range(N_EXCHANGES),
            )
        )
    wall = time.perf_counter() - started
    assert len(latencies) == N_EXCHANGES

    latencies.sort()
    rows = [
        ("exchanges completed", str(N_EXCHANGES), ""),
        ("workers", str(WORKERS), ""),
        ("wall clock", f"{wall * 1e3:9.2f} ms", ""),
        ("throughput", f"{N_EXCHANGES / wall:9.2f}", "exchanges/sec"),
        ("lock→claim p50", f"{percentile(latencies, 0.50) * 1e3:9.2f} ms", ""),
        ("lock→claim p95", f"{percentile(latencies, 0.95) * 1e3:9.2f} ms", ""),
        ("lock→claim max", f"{latencies[-1] * 1e3:9.2f} ms", ""),
    ]
    print(f"\nE-assets — {N_EXCHANGES} concurrent Fabric↔Quorum atomic exchanges")
    print(format_table(rows, headers=["metric", "value", "unit"]))

    # Every exchange crossed both relays (2 fabric + 3 quorum commands each).
    assert asset_scenario["fabric_relay"].stats.asset_commands_served == 2 * N_EXCHANGES
    assert asset_scenario["quorum_relay"].stats.asset_commands_served == 3 * N_EXCHANGES

    print_relay_kinds(
        asset_scenario["fabric_metrics"], "fabnet relay per-kind metrics"
    )
    print_relay_kinds(
        asset_scenario["quorum_metrics"], "quornet relay per-kind metrics"
    )
    bench_report.record(
        SUITE,
        "exchange-2party",
        exchanges=N_EXCHANGES,
        workers=WORKERS,
        exchanges_per_s=N_EXCHANGES / wall,
        lock_to_claim_p50_ms=percentile(latencies, 0.50) * 1e3,
        lock_to_claim_p95_ms=percentile(latencies, 0.95) * 1e3,
        lock_to_claim_max_ms=latencies[-1] * 1e3,
    )


# -- N-party cycles --------------------------------------------------------------


def build_quorum_ring(n: int, runs: int):
    """``n`` Quorum networks wired into a swap ring.

    Party ``i`` lives on its own network with its own two-org endorsement
    (so each leg's proof-carrying readbacks attest under a real AND
    policy), and ring governance mirrors the cycle protocol: each vault's
    port admits exactly its downstream neighbour for ``ClaimAsset`` and
    ``GetLock``. ``runs`` asset generations are pre-issued per leg.
    """
    clock = SimulatedClock(1_000.0)
    registry = InMemoryRegistry()
    nodes = []
    for index in range(n):
        name = f"ring{index}"
        network = QuorumNetwork(name, clock=clock)
        network.deploy_contract(QuorumAssetContract())
        network.add_peer("peerA", f"org-a-{index}")
        network.add_peer("peerB", f"org-b-{index}")
        party = network.enroll_client(f"party{index}", f"org-a-{index}")
        invoker = network.enroll_client("asset-invoker", f"org-a-{index}")
        for run in range(runs):
            network.submit_transaction(
                invoker,
                "asset-vault",
                "Issue",
                [f"CY-{index}-{run}", f"party{index}@{name}", "{}"],
            )
        port = InteropPort(name)
        relay = RelayService(name, registry, clock=clock)
        driver = QuorumDriver(network, port)
        driver.enable_assets(invoker)
        relay.register_driver(driver)
        registry.register(name, relay)
        nodes.append(
            SimpleNamespace(
                name=name,
                network=network,
                port=port,
                relay=relay,
                org=f"org-a-{index}",
                policy=f"AND(org:org-a-{index}, org:org-b-{index})",
                client=InteropClient(party, relay, name),
            )
        )
    for index, node in enumerate(nodes):
        downstream = nodes[(index + 1) % n]
        node.port.record_network_config(downstream.network.export_config())
        for function in ("ClaimAsset", "GetLock"):
            node.port.add_access_rule(
                downstream.name, downstream.org, "asset-vault", function
            )
    return nodes


def run_cycle(nodes, run: int) -> float:
    """One full N-party cycle; returns its lock→final-claim latency (s)."""
    builder = InteropGateway.from_client(nodes[0].client).exchange_cycle()
    for index, node in enumerate(nodes):
        builder.leg(
            f"{node.name}/state/asset-vault",
            f"CY-{index}-{run}",
            party=None if index == 0 else node.client,
            policy=node.policy,
        )
    builder.with_window(timeout=7_200.0, hop_gap=120.0)
    started = time.perf_counter()
    result = builder.run()
    elapsed = time.perf_counter() - started
    assert result.completed
    return elapsed


def test_cycle_throughput_vs_ring_size(bench_report):
    """Acceptance: the cycle sweep completes atomically at every ring
    size; cycles/sec and the p95 lock→final-claim window are recorded to
    ``BENCH_assets.json`` (alongside the 2-party exchange entries)."""
    rows = []
    for size in CYCLE_SIZES:
        nodes = build_quorum_ring(size, CYCLE_RUNS)
        started = time.perf_counter()
        latencies = sorted(run_cycle(nodes, run) for run in range(CYCLE_RUNS))
        wall = time.perf_counter() - started
        # Every asset moved one hop around the ring: party i's asset is
        # now owned by party i+1 — the atomicity acceptance, per size.
        for index, node in enumerate(nodes):
            claimer = nodes[(index + 1) % size]
            for run in range(CYCLE_RUNS):
                raw = node.network.peers[0].storage_snapshot("asset-vault")[
                    f"asset/CY-{index}-{run}"
                ]
                assert f'"{claimer.client.identity.name}@' in raw.decode()
        p95 = percentile(latencies, 0.95)
        rows.append(
            (
                str(size),
                f"{CYCLE_RUNS / wall:8.2f}",
                f"{percentile(latencies, 0.50) * 1e3:9.2f} ms",
                f"{p95 * 1e3:9.2f} ms",
                f"{latencies[-1] * 1e3:9.2f} ms",
            )
        )
        bench_report.record(
            SUITE,
            f"cycle-{size}party",
            legs=size,
            cycles=CYCLE_RUNS,
            cycles_per_s=CYCLE_RUNS / wall,
            lock_to_claim_p50_ms=percentile(latencies, 0.50) * 1e3,
            lock_to_claim_p95_ms=p95 * 1e3,
            lock_to_claim_max_ms=latencies[-1] * 1e3,
        )
    print(
        f"\nE-assets — N-party cyclic swaps ({CYCLE_RUNS} cycles per ring size)"
    )
    print(
        format_table(
            rows,
            headers=["legs", "cycles/s", "p50", "p95", "max"],
        )
    )
    target = bench_report.write_suite(SUITE, DEFAULT_JSON)
    print(f"assets trajectory written to {target}")
