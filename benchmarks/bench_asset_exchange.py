"""E-assets — concurrent Fabric↔Quorum atomic exchanges through two relays.

The HTLC subsystem's throughput experiment: N independent asset pairs
(one on each network) swapped by N concurrent
:class:`~repro.assets.AssetExchangeCoordinator` runs, every leg riding
``MSG_KIND_ASSET_*`` envelopes plus two proof-carrying lock-verification
queries per exchange. Reports exchanges/sec and the p50/p95/max
lock→claim latency (first escrow to final claim, the window in which
value is at risk), alongside the source relays' per-kind metrics.

Each relay is fronted by a :class:`SerializingInterceptor` (the in-process
substrates are not thread-safe), so concurrency buys overlap *across* the
two networks — which is exactly where a real deployment's parallelism
lives too.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import InteropGateway, MetricsInterceptor, SerializingInterceptor
from repro.api.middleware import percentile
from repro.assets import FabricAssetChaincode, QuorumAssetContract
from repro.fabric import NetworkBuilder
from repro.interop import InMemoryRegistry, InteropClient, RelayService
from repro.interop.bootstrap import (
    create_fabric_relay,
    enable_fabric_interop,
    record_foreign_network,
)
from repro.interop.contracts.ports import InteropPort
from repro.interop.drivers.quorum_driver import QuorumDriver
from repro.quorum import QuorumNetwork
from repro.sim import format_table

N_EXCHANGES = 8
WORKERS = 4
OFFER_POLICY = "AND(org:traders-org, org:audit-org)"
ASK_POLICY = "AND(org:op-org-1, org:op-org-2)"


@pytest.fixture(scope="module")
def asset_scenario():
    """Two mutually-configured networks with N asset pairs pre-issued."""
    fabric = (
        NetworkBuilder("fabnet", channel="trade")
        .add_org("traders-org")
        .add_org("audit-org")
        .add_peer("peer0", "traders-org")
        .add_peer("peer0", "audit-org")
        .add_client("admin", "traders-org")
        .add_client("alice", "traders-org")
        .build()
    )
    fabric_admin = fabric.org("traders-org").member("admin")
    alice = fabric.org("traders-org").member("alice")
    enable_fabric_interop(fabric, fabric_admin)
    fabric.deploy_chaincode(
        FabricAssetChaincode(),
        "AND('traders-org.peer', 'audit-org.peer')",
        initializer=fabric_admin,
    )

    quorum = QuorumNetwork("quornet")
    quorum.deploy_contract(QuorumAssetContract())
    quorum.add_peer("peer1", "op-org-1")
    quorum.add_peer("peer2", "op-org-2")
    bob = quorum.enroll_client("bob", "op-org-1")
    quorum_invoker = quorum.enroll_client("asset-invoker", "op-org-1")
    quorum_port = InteropPort("quornet")
    quorum_port.record_network_config(fabric.export_config())
    for function in ("LockAsset", "ClaimAsset", "UnlockAsset", "GetLock"):
        quorum_port.add_access_rule("fabnet", "traders-org", "asset-vault", function)

    for index in range(N_EXCHANGES):
        fabric.gateway.submit(
            fabric_admin,
            "assetscc",
            "Issue",
            [f"GOLD-{index}", "alice@fabnet", "{}"],
        )
        quorum.submit_transaction(
            quorum_invoker,
            "asset-vault",
            "Issue",
            [f"OIL-{index}", "bob@quornet", "{}"],
        )

    registry = InMemoryRegistry()
    fabric_metrics = MetricsInterceptor()
    fabric_relay = create_fabric_relay(
        fabric, registry, middleware=[SerializingInterceptor(), fabric_metrics]
    )
    fabric_invoker = fabric.org("traders-org").enroll("asset-invoker", role="client")
    fabric_relay.driver_for("fabnet").enable_assets(fabric_invoker)

    quorum_metrics = MetricsInterceptor()
    quorum_relay = RelayService("quornet", registry)
    quorum_relay.use(SerializingInterceptor(), quorum_metrics)
    quorum_driver = QuorumDriver(quorum, quorum_port)
    quorum_driver.enable_assets(quorum_invoker)
    quorum_relay.register_driver(quorum_driver)
    registry.register("quornet", quorum_relay)

    for function in ("ClaimAsset", "UnlockAsset", "GetLock"):
        fabric.gateway.submit(
            fabric_admin,
            "ecc",
            "AddAccessRule",
            ["quornet", "op-org-1", "assetscc", function],
        )
    record_foreign_network(fabric, fabric_admin, quorum, verification_policy=ASK_POLICY)

    alice_client = InteropClient(alice, fabric_relay, "fabnet", gateway=fabric.gateway)
    bob_client = InteropClient(bob, quorum_relay, "quornet")
    return {
        "gateway": InteropGateway.from_client(alice_client),
        "bob_client": bob_client,
        "fabric_metrics": fabric_metrics,
        "quorum_metrics": quorum_metrics,
        "fabric_relay": fabric_relay,
        "quorum_relay": quorum_relay,
    }


def _run_exchange(scenario, index: int) -> float:
    """One full atomic exchange; returns its lock→claim latency (s)."""
    exchange = (
        scenario["gateway"]
        .exchange()
        .offer("fabnet/trade/assetscc", f"GOLD-{index}")
        .ask("quornet/state/asset-vault", f"OIL-{index}")
        .with_counterparty(scenario["bob_client"])
        .with_timeouts(offer=600.0, counter=300.0)
        .with_policies(offer=OFFER_POLICY, ask=ASK_POLICY)
        .build()
    )
    started = time.perf_counter()
    result = exchange.run()
    elapsed = time.perf_counter() - started
    assert result.completed
    return elapsed


def print_relay_kinds(metrics: MetricsInterceptor, title: str) -> None:
    snapshot = metrics.snapshot()
    rows = [
        (
            name,
            str(detail["requests"]),
            str(detail["errors"]),
            f"{detail['seconds_p50'] * 1e3:8.3f} ms",
            f"{detail['seconds_p95'] * 1e3:8.3f} ms",
            f"{detail['seconds_max'] * 1e3:8.3f} ms",
        )
        for name, detail in snapshot["kinds"].items()
    ]
    print(f"\n{title} ({snapshot['requests_total']} requests)")
    print(format_table(rows, headers=["kind", "requests", "errors", "p50", "p95", "max"]))


def test_concurrent_exchanges_throughput(asset_scenario):
    """Acceptance: N concurrent exchanges all complete; report throughput."""
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=WORKERS) as executor:
        latencies = list(
            executor.map(
                lambda index: _run_exchange(asset_scenario, index),
                range(N_EXCHANGES),
            )
        )
    wall = time.perf_counter() - started
    assert len(latencies) == N_EXCHANGES

    latencies.sort()
    rows = [
        ("exchanges completed", str(N_EXCHANGES), ""),
        ("workers", str(WORKERS), ""),
        ("wall clock", f"{wall * 1e3:9.2f} ms", ""),
        ("throughput", f"{N_EXCHANGES / wall:9.2f}", "exchanges/sec"),
        ("lock→claim p50", f"{percentile(latencies, 0.50) * 1e3:9.2f} ms", ""),
        ("lock→claim p95", f"{percentile(latencies, 0.95) * 1e3:9.2f} ms", ""),
        ("lock→claim max", f"{latencies[-1] * 1e3:9.2f} ms", ""),
    ]
    print(f"\nE-assets — {N_EXCHANGES} concurrent Fabric↔Quorum atomic exchanges")
    print(format_table(rows, headers=["metric", "value", "unit"]))

    # Every exchange crossed both relays (2 fabric + 3 quorum commands each).
    assert asset_scenario["fabric_relay"].stats.asset_commands_served == 2 * N_EXCHANGES
    assert asset_scenario["quorum_relay"].stats.asset_commands_served == 3 * N_EXCHANGES

    print_relay_kinds(
        asset_scenario["fabric_metrics"], "fabnet relay per-kind metrics"
    )
    print_relay_kinds(
        asset_scenario["quorum_metrics"], "quornet relay per-kind metrics"
    )
