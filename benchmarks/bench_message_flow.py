"""E2 — Figure 2: the ten-step message flow with per-step latency.

Regenerates the architecture walk-through of §3.3 as a measured table:
each protocol step is executed for real (in-process) and additionally
charged its modeled network/consensus latency, giving the shape of a
deployed two-network interaction. The pytest-benchmark entries measure
the real end-to-end cross-network query on this machine.
"""

from __future__ import annotations

from repro.sim import LatencyModel, LatencyProfile, StepTimer, format_table
from repro.utils.clock import SimulatedClock


def test_figure2_step_latency_table(benchmark, scenario):
    """Execute steps (1)-(10) of Figure 2, charging modeled latencies."""
    po_ref = scenario.po_ref
    clock = SimulatedClock()
    model = LatencyModel(clock, profile=LatencyProfile(), seed=11)
    timer = StepTimer(clock)
    client = scenario.swt_seller_client

    # Steps 1-9 are an idempotent query; the benchmark measures their real
    # in-process cost (proof collection, encryption, validation included).
    benchmark(lambda: client.fetch_bill_of_lading(po_ref))

    with timer.step("1.  app -> local relay: submit request"):
        model.charge("lan_hop")
    with timer.step("2.  local relay: discovery lookup"):
        model.charge("lan_hop")
        scenario.discovery.lookup("stl")
    with timer.step("3.  serialize + forward to source relay (WAN)"):
        model.charge("wan_hop")
    with timer.step("4.  source relay: deserialize + route to driver"):
        model.charge("lan_hop")
    with timer.step("5-7. driver: policy-driven proof collection (2 peers)"):
        fetched = client.fetch_bill_of_lading(po_ref)
        model.charge("lan_hop", count=2)
        model.charge("chaincode_exec", count=2)
        model.charge("crypto_op", count=4)  # seal + sign per peer
    with timer.step("8.  source relay -> destination relay (WAN)"):
        model.charge("wan_hop")
    with timer.step("9.  relay -> app: decrypt result + proof"):
        model.charge("lan_hop")
        model.charge("crypto_op", count=3)
    with timer.step("10. proof-carrying transaction commit (endorse+order)"):
        lc = client.upload_dispatch_docs(po_ref, fetched)
        model.charge("chaincode_exec", count=2)
        model.charge("crypto_op", count=2)
        model.charge("ordering")

    assert lc["status"] == "DOCS_UPLOADED"
    print("\nE2 / Figure 2 — ten-step message flow, modeled two-DC deployment")
    print(format_table(timer.rows(), headers=["step", "latency", "share"]))
    rows = {record.name: record.seconds for record in timer.records}
    # Shape: the consensus-backed commit (step 10) dominates a lookup hop.
    assert rows["10. proof-carrying transaction commit (endorse+order)"] > rows[
        "2.  local relay: discovery lookup"
    ]


def test_bench_end_to_end_query(benchmark, scenario):
    """Real wall-clock of one trusted cross-network query (steps 1-9)."""
    client = scenario.swt_seller_client
    fetched = benchmark(lambda: client.fetch_bill_of_lading(scenario.po_ref))
    assert b"BL-" in fetched.data


def test_bench_query_without_confidentiality(benchmark, scenario):
    """Ablation: the same query with encryption disabled (lower crypto cost)."""
    client = scenario.swt_seller_client
    fetched = benchmark(
        lambda: client.fetch_bill_of_lading(scenario.po_ref, confidential=False)
    )
    assert b"BL-" in fetched.data
