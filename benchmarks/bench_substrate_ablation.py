"""Substrate ablations: ordering service and CMDAC-combination choices.

Two design-choice studies DESIGN.md calls out:

- solo vs Raft ordering (cluster sizes 1/3/5): the fault-tolerance tax on
  destination-side commit latency;
- combined CMDAC vs hypothetical split contracts: counts the
  chaincode-to-chaincode invocations per proof validation that §4.3's
  "combined for runtime efficiency" decision saves.
"""

from __future__ import annotations

import itertools
import time

from repro.fabric import Chaincode, NetworkBuilder
from repro.fabric.chaincode import require_args
from repro.sim import format_table

_COUNTER = itertools.count()


class KV(Chaincode):
    name = "kv"

    def invoke(self, stub):
        if stub.function == "init":
            return b"ok"
        if stub.function == "put":
            key, value = require_args(stub, 2)
            stub.put_state(key, value.encode())
            return b"ok"
        raise Exception("unknown")


def _network(orderer: str, cluster_size: int = 3):
    builder = (
        NetworkBuilder(f"abl-{next(_COUNTER)}")
        .add_org("org1")
        .add_peer("peer0", "org1")
        .add_client("app", "org1")
    )
    if orderer == "raft":
        builder.with_raft_orderer(cluster_size=cluster_size)
    net = builder.build()
    app = net.org("org1").member("app")
    net.deploy_chaincode(KV(), "'org1.peer'", initializer=app)
    return net, app


def test_ordering_service_ablation(benchmark):
    rows = []
    configs = [("solo", 1), ("raft", 1), ("raft", 3), ("raft", 5)]
    for kind, size in configs:
        net, app = _network(kind, cluster_size=size)
        start = time.perf_counter()
        count = 20
        for index in range(count):
            net.gateway.submit(app, "kv", "put", [f"k{index}", "v"])
        elapsed = time.perf_counter() - start
        rows.append(
            (
                f"{kind} (n={size})" if kind == "raft" else "solo",
                f"{elapsed / count * 1e3:8.3f} ms/tx",
            )
        )
    print("\nAblation — ordering service choice vs commit latency")
    print(format_table(rows, headers=["orderer", "mean commit latency"]))

    net, app = _network("solo")
    benchmark(lambda: net.gateway.submit(app, "kv", "put", ["bench", "v"]))


def test_raft_commit_latency(benchmark):
    net, app = _network("raft", cluster_size=3)
    benchmark(lambda: net.gateway.submit(app, "kv", "put", ["bench", "v"]))


def test_cmdac_combination_ablation(benchmark, scenario):
    """Count cross-contract invocations per destination-side validation.

    With the combined CMDAC, UploadDispatchDocs makes exactly one cc2cc
    call; split Config-Management / Data-Acceptance contracts would need
    at least three (policy read, config read, acceptance check) — the
    §4.3 "runtime efficiency" rationale, quantified.
    """
    from repro.fabric.chaincode import ChaincodeStub

    calls: list[tuple[str, str]] = []
    original = ChaincodeStub.invoke_chaincode

    def counting(self, chaincode_name, function, args):
        calls.append((chaincode_name, function))
        return original(self, chaincode_name, function, args)

    po_ref = f"PO-ABL-{next(_COUNTER)}"
    scenario.buyer_app.request_lc(po_ref, "b", "s", 10.0)
    scenario.buyer_bank_app.issue_lc(po_ref)
    scenario.stl_seller_app.create_shipment(po_ref, "goods")
    scenario.carrier_app.accept_shipment(po_ref)
    scenario.carrier_app.record_handover(po_ref)
    scenario.carrier_app.issue_bill_of_lading(po_ref, "MV Abl")
    fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)

    ChaincodeStub.invoke_chaincode = counting  # type: ignore[method-assign]
    try:
        scenario.swt_seller_client.upload_dispatch_docs(po_ref, fetched)
    finally:
        ChaincodeStub.invoke_chaincode = original  # type: ignore[method-assign]

    cmdac_calls_per_peer = [c for c in calls if c[0] == "cmdac"]
    # Two endorsing peers each make exactly one combined-CMDAC call.
    per_peer = len(cmdac_calls_per_peer) / 2
    rows = [
        ("combined CMDAC (this repo, per endorsing peer)", f"{per_peer:.0f} cc2cc call"),
        ("split CM + DA contracts (hypothetical minimum)", "3 cc2cc calls"),
    ]
    print("\nAblation — §4.3 combined-CMDAC decision, cross-contract calls")
    print(format_table(rows, headers=["design", "invocations per validation"]))
    assert per_peer == 1

    benchmark(lambda: scenario.swt_seller_client.fetch_bill_of_lading(po_ref))
