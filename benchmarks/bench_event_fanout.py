"""E-events — publish → verified delivery latency for N subscribers.

The §2 third primitive through the gateway: N ``GatewaySession``
subscribers hold relay-envelope subscriptions to the same chaincode event;
one source-network commit fans N ``MSG_KIND_EVENT_PUBLISH`` envelopes out
through discovery + the interceptor chain, and each subscriber then
upgrades its unauthenticated notification to trusted data with a
proof-carrying query (notify-then-verify).

The two phases are reported separately because they scale differently:
the *push* is one compact envelope per subscriber (no crypto), while the
*verify* runs the full trusted-transfer protocol per subscriber — the
price of not believing unauthenticated notifications.
"""

from __future__ import annotations

import time

import pytest

from repro.api import EventVerifier, InteropGateway
from repro.interop.events import enable_relay_events
from repro.sim import format_table

GET_BL_ADDRESS = "stl/trade-logistics/TradeLensCC/GetBillOfLading"
CHAINCODE_ADDRESS = "stl/trade-logistics/TradeLensCC"
EVENT_NAME = "BillOfLadingIssued"
POLICY = "AND(org:seller-org, org:carrier-org)"
SUBSCRIBER_COUNTS = (1, 4, 8)


@pytest.fixture(scope="module")
def event_scenario(scenario):
    """The bench scenario with relay-side events enabled and exposed."""
    stl_admin = scenario.stl.org("seller-org").member("admin")
    enable_relay_events(scenario.stl, scenario.stl_relay, stl_admin)
    scenario.stl.gateway.submit(
        stl_admin,
        "ecc",
        "AddAccessRule",
        ["swt", "seller-bank-org", "TradeLensCC", f"event:{EVENT_NAME}"],
    )
    return scenario


def _verifier() -> EventVerifier:
    return EventVerifier(
        address=GET_BL_ADDRESS,
        args=lambda notification: [notification.payload.decode()],
        policy=POLICY,
    )


def _issue(scenario, po_ref: str) -> None:
    scenario.stl_seller_app.create_shipment(po_ref, "fanout goods")
    scenario.carrier_app.accept_shipment(po_ref)
    scenario.carrier_app.record_handover(po_ref)
    scenario.carrier_app.issue_bill_of_lading(po_ref, vessel="MV Fanout")


def _run_fanout(scenario, subscribers: int, po_ref: str):
    """Subscribe N sessions, publish once, verify every delivery."""
    gateway = InteropGateway.from_client(scenario.swt_seller_client.interop_client)
    sessions = [gateway.session() for _ in range(subscribers)]
    streams = [
        session.subscribe(CHAINCODE_ADDRESS, EVENT_NAME, verifier=_verifier())
        for session in sessions
    ]
    published_before = scenario.stl_relay.stats.events_published

    push_started = time.perf_counter()
    _issue(scenario, po_ref)
    push_seconds = time.perf_counter() - push_started

    verify_started = time.perf_counter()
    events = [stream.take() for stream in streams]
    verify_seconds = time.perf_counter() - verify_started

    assert all(event is not None for event in events)
    assert all(event.notification.payload == po_ref.encode() for event in events)
    assert all(len(event.verification.proof) == 2 for event in events)
    assert (
        scenario.stl_relay.stats.events_published - published_before == subscribers
    )
    for session in sessions:
        session.close()
    return push_seconds, verify_seconds


def test_event_fanout_scaling(event_scenario):
    """Acceptance: every subscriber gets its verified event; the table
    shows how publish fan-out and verification cost scale with N."""
    rows = []
    for index, subscribers in enumerate(SUBSCRIBER_COUNTS):
        push_s, verify_s = _run_fanout(
            event_scenario, subscribers, f"PO-FAN-{index}"
        )
        rows.append(
            (
                str(subscribers),
                f"{push_s * 1e3:9.2f} ms",
                f"{verify_s * 1e3:9.2f} ms",
                f"{(push_s + verify_s) * 1e3:9.2f} ms",
                f"{(push_s + verify_s) / subscribers * 1e3:9.2f} ms",
            )
        )
    print(f"\nE-events — publish → verified delivery ({EVENT_NAME})")
    print(
        format_table(
            rows,
            headers=[
                "subscribers",
                "commit+push",
                "verify (proof-backed)",
                "total",
                "per subscriber",
            ],
        )
    )


def test_bench_single_subscriber_roundtrip(benchmark, event_scenario):
    """Wall-clock of one publish → verified-delivery round."""
    counter = iter(range(1000))

    def run():
        return _run_fanout(
            event_scenario, 1, f"PO-FAN-BENCH-{next(counter)}"
        )

    push_s, verify_s = benchmark.pedantic(run, rounds=3, iterations=1)
    assert push_s >= 0 and verify_s >= 0
