"""E6/E11 — §5 security evaluation: the CIA-triad attack matrix.

Runs every attack from the threat-model harness against the live protocol
and prints attack -> outcome, reproducing the paper's security argument
as measurements: confidentiality (malicious relay cannot read or
exfiltrate), integrity (tampering detected), availability (DoS shed +
redundant-relay mitigation), and replay protection.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import build_trade_scenario
from repro.errors import EndorsementError, ProofError, RelayUnavailableError
from repro.testing import (
    DroppingRelay,
    EavesdroppingRelay,
    TamperingRelay,
    TAMPER_PROOF,
    TAMPER_RESULT,
)
from repro.interop.discovery import InMemoryRegistry
from repro.sim import format_table

POLICY = "AND(org:seller-org, org:carrier-org)"


def fresh_scenario(po_ref="PO-SEC", **kwargs):
    scenario = build_trade_scenario(**kwargs)
    scenario.buyer_app.request_lc(po_ref, "b", "s", 10_000.0)
    scenario.buyer_bank_app.issue_lc(po_ref)
    scenario.stl_seller_app.create_shipment(po_ref, "secret goods")
    scenario.carrier_app.accept_shipment(po_ref)
    scenario.carrier_app.record_handover(po_ref)
    scenario.carrier_app.issue_bill_of_lading(po_ref, "MV Sec")
    return scenario


def interpose(scenario, factory):
    registry: InMemoryRegistry = scenario.discovery
    original = registry.lookup("stl")[0]
    wrapper = factory(original)
    registry.unregister("stl", original)
    registry.register("stl", wrapper)
    return wrapper


def test_cia_attack_matrix(benchmark):
    rows = []

    # --- Integrity: tampering relays -------------------------------------
    for mode, label in ((TAMPER_RESULT, "tamper result"), (TAMPER_PROOF, "tamper proof")):
        scenario = fresh_scenario()
        interpose(scenario, lambda inner: TamperingRelay(inner, mode=mode))
        try:
            scenario.swt_seller_client.fetch_bill_of_lading("PO-SEC")
            outcome = "ATTACK SUCCEEDED"
        except ProofError:
            outcome = "detected (ProofError)"
        rows.append((f"integrity: malicious relay, {label}", outcome))
        assert outcome.startswith("detected")

    # --- Confidentiality: eavesdropping + exfiltration --------------------
    scenario = fresh_scenario()
    eavesdropper = interpose(scenario, EavesdroppingRelay)
    fetched = scenario.swt_seller_client.fetch_bill_of_lading("PO-SEC")
    org_roots = {
        org_id: org.msp.root_certificate
        for org_id, org in scenario.stl.organizations.items()
    }
    read = eavesdropper.plaintext_visible(fetched.data)
    exfil = eavesdropper.exfiltrated_proof_validates(org_roots, POLICY)
    rows.append(
        ("confidentiality: relay reads result", "ATTACK SUCCEEDED" if read else "blocked (encrypted)")
    )
    rows.append(
        ("confidentiality: relay exfiltrates proof", "ATTACK SUCCEEDED" if exfil else "blocked (metadata encrypted)")
    )
    assert not read and not exfil

    # Ablation: without confidentiality both attacks succeed.
    scenario = fresh_scenario()
    eavesdropper = interpose(scenario, EavesdroppingRelay)
    plain = scenario.swt_seller_client.fetch_bill_of_lading("PO-SEC", confidential=False)
    read_plain = eavesdropper.plaintext_visible(plain.data)
    plain_org_roots = {
        org_id: org.msp.root_certificate
        for org_id, org in scenario.stl.organizations.items()
    }
    exfil_plain = eavesdropper.exfiltrated_proof_validates(plain_org_roots, POLICY)
    rows.append(
        (
            "ablation: encryption disabled -> relay reads",
            "attack succeeds (as expected)" if read_plain else "UNEXPECTEDLY BLOCKED",
        )
    )
    rows.append(
        (
            "ablation: encryption disabled -> exfiltration",
            "attack succeeds (as expected)" if exfil_plain else "UNEXPECTEDLY BLOCKED",
        )
    )
    assert read_plain and exfil_plain

    # --- Availability: dropping relay, with and without redundancy --------
    scenario = fresh_scenario()
    interpose(scenario, DroppingRelay)
    try:
        scenario.swt_seller_client.fetch_bill_of_lading("PO-SEC")
        single = "unexpectedly served"
    except RelayUnavailableError:
        single = "DoS succeeds (single relay)"
    rows.append(("availability: censoring relay, k=1 relays", single))

    scenario = fresh_scenario(stl_relay_count=2)
    scenario.stl_relays[0].available = False
    fetched = scenario.swt_seller_client.fetch_bill_of_lading("PO-SEC")
    rows.append(
        ("availability: relay down, k=2 redundant relays", "served via failover")
    )
    assert json.loads(fetched.data)["po_ref"] == "PO-SEC"

    # --- Replay protection -------------------------------------------------
    scenario = fresh_scenario()
    fetched = scenario.swt_seller_client.fetch_bill_of_lading("PO-SEC")
    scenario.swt_seller_client.upload_dispatch_docs("PO-SEC", fetched)
    from repro.crypto.hashing import sha256
    from repro.utils.encoding import canonical_json

    try:
        scenario.swt.gateway.submit(
            scenario.swt.org("seller-bank-org").member("seller"),
            "cmdac",
            "ValidateProof",
            [
                "stl",
                fetched.address,
                canonical_json(["PO-SEC"]).decode("ascii"),
                fetched.nonce,
                sha256(fetched.data).hex(),
                fetched.proof_json,
            ],
        )
        replay = "ATTACK SUCCEEDED"
    except EndorsementError:
        replay = "rejected (nonce consumed on ledger)"
    rows.append(("replay: resubmit captured valid proof", replay))
    assert replay.startswith("rejected")

    print("\nE6 / §5 security — CIA attack matrix")
    print(format_table(rows, headers=["attack", "outcome"]))

    # Benchmark: the cost of detecting a tampered response.
    scenario = fresh_scenario()
    interpose(scenario, lambda inner: TamperingRelay(inner, mode=TAMPER_RESULT))

    def detect():
        with pytest.raises(ProofError):
            scenario.swt_seller_client.fetch_bill_of_lading("PO-SEC")

    benchmark(detect)
