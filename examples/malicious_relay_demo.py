#!/usr/bin/env python3
"""Security demo: the protocol under a malicious relay (§5 CIA analysis).

Interposes adversarial relays between the trade networks and shows each
attack being defeated: result tampering (integrity), eavesdropping and
proof exfiltration (confidentiality), and relay failure with redundant-
relay failover (availability). Finally demonstrates replay rejection.

Run::

    python examples/malicious_relay_demo.py
"""

from __future__ import annotations

from repro.apps import build_trade_scenario
from repro.errors import EndorsementError, ProofError, RelayUnavailableError
from repro.testing import (
    DroppingRelay,
    EavesdroppingRelay,
    TamperingRelay,
    TAMPER_RESULT,
)

PO = "PO-SEC-DEMO"


def prepared(stl_relay_count: int = 1):
    scenario = build_trade_scenario(stl_relay_count=stl_relay_count)
    scenario.buyer_app.request_lc(PO, "buyer-corp", "seller-corp", 10_000.0)
    scenario.buyer_bank_app.issue_lc(PO)
    scenario.stl_seller_app.create_shipment(PO, "confidential cargo manifest")
    scenario.carrier_app.accept_shipment(PO)
    scenario.carrier_app.record_handover(PO)
    scenario.carrier_app.issue_bill_of_lading(PO, "MV Demo")
    return scenario


def interpose(scenario, factory):
    registry = scenario.discovery
    original = registry.lookup("stl")[0]
    wrapper = factory(original)
    registry.unregister("stl", original)
    registry.register("stl", wrapper)
    return wrapper


def main() -> None:
    print("--- integrity: relay tampers with the encrypted result ---")
    scenario = prepared()
    interpose(scenario, lambda inner: TamperingRelay(inner, mode=TAMPER_RESULT))
    try:
        scenario.swt_seller_client.fetch_bill_of_lading(PO)
        print("  !!! tampering went UNDETECTED")
    except ProofError as exc:
        print(f"  tampering detected: {exc}")

    print("\n--- confidentiality: relay records all traffic ---")
    scenario = prepared()
    eavesdropper = interpose(scenario, EavesdroppingRelay)
    fetched = scenario.swt_seller_client.fetch_bill_of_lading(PO)
    visible = eavesdropper.plaintext_visible(fetched.data)
    print(f"  relay captured {len(eavesdropper.captured)} exchange(s)")
    print(f"  plaintext B/L visible to relay: {visible}")
    org_roots = {
        org_id: org.msp.root_certificate
        for org_id, org in scenario.stl.organizations.items()
    }
    exfil = eavesdropper.exfiltrated_proof_validates(
        org_roots, "AND(org:seller-org, org:carrier-org)"
    )
    print(f"  captured proof verifiable by third party: {exfil}")
    assert not visible and not exfil

    print("\n--- availability: relay drops requests; redundancy recovers ---")
    scenario = prepared()
    interpose(scenario, DroppingRelay)
    try:
        scenario.swt_seller_client.fetch_bill_of_lading(PO)
    except RelayUnavailableError:
        print("  single censoring relay: query UNAVAILABLE (as the paper admits)")
    scenario = prepared(stl_relay_count=2)
    scenario.stl_relays[0].available = False
    fetched = scenario.swt_seller_client.fetch_bill_of_lading(PO)
    print(f"  with 2 redundant relays, one down: served "
          f"(failovers={scenario.swt_relay.stats.failovers})")

    print("\n--- replay: resubmitting a consumed proof ---")
    scenario = prepared()
    fetched = scenario.swt_seller_client.fetch_bill_of_lading(PO)
    scenario.swt_seller_client.upload_dispatch_docs(PO, fetched)
    from repro.crypto.hashing import sha256
    from repro.utils.encoding import canonical_json

    try:
        scenario.swt.gateway.submit(
            scenario.swt.org("seller-bank-org").member("seller"),
            "cmdac",
            "ValidateProof",
            [
                "stl",
                fetched.address,
                canonical_json([PO]).decode("ascii"),
                fetched.nonce,
                sha256(fetched.data).hex(),
                fetched.proof_json,
            ],
        )
        print("  !!! replay ACCEPTED")
    except EndorsementError as exc:
        print(f"  replay rejected: {exc}")


if __name__ == "__main__":
    main()
