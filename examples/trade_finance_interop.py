#!/usr/bin/env python3
"""The paper's full use case (Figure 3): STL + SWT trade interoperation.

Runs all ten steps — L/C issuance on Simplified We.Trade, shipment and
bill-of-lading issuance on Simplified TradeLens, the trusted cross-network
B/L query with proof, and payment — then demonstrates the fraud the
protocol prevents: a seller trying to claim payment with a forged B/L.

Run::

    python examples/trade_finance_interop.py
"""

from __future__ import annotations

import json

from repro.apps import build_trade_scenario, run_full_use_case
from repro.errors import EndorsementError


def main() -> None:
    print("=" * 72)
    print("Use case: letter of credit (SWT) backed by a bill of lading (STL)")
    print("=" * 72)

    scenario = build_trade_scenario()
    result = run_full_use_case(scenario, po_ref="PO-2019-0042")

    for step in result.steps:
        print("  " + step)

    print("\nBill of lading transferred with proof:")
    print(json.dumps(result.bill_of_lading, indent=2))
    print(f"\nFinal letter of credit status: {result.final_lc['status']}")

    # ----------------------------------------------------------------------
    # The fraud scenario §4.2 motivates: "the seller ... has incentive to
    # forge a B/L and claim payment".
    # ----------------------------------------------------------------------
    print("\n" + "=" * 72)
    print("Fraud attempt: seller uploads a forged B/L without a real proof")
    print("=" * 72)
    po_ref = "PO-2019-0043"
    scenario.buyer_app.request_lc(po_ref, "buyer-corp", "seller-corp", 99_000.0)
    scenario.buyer_bank_app.issue_lc(po_ref)
    forged_bl = json.dumps({"po_ref": po_ref, "bl_id": "BL-FORGED", "vessel": "MV Ghost"})
    try:
        scenario.swt.gateway.submit(
            scenario.swt.org("seller-bank-org").member("seller"),
            "WeTradeCC",
            "UploadDispatchDocs",
            [po_ref, forged_bl, "made-up-nonce", "[]"],
        )
        print("  !!! forged B/L was ACCEPTED — this must never happen")
    except EndorsementError as exc:
        print(f"  forged B/L rejected by the Data Acceptance contract:")
        print(f"    {exc}")

    lc = scenario.swt_seller_client.get_lc(po_ref)
    print(f"\n  L/C for {po_ref} remains {lc['status']!r}; no payment without")
    print("  a consensus-backed proof from STL.")


if __name__ == "__main__":
    main()
