#!/usr/bin/env python3
"""Ops-plane smoke test: boot a relay, hit its probes, validate the scrape.

CI's ``ops`` job runs this after the ops test suite: it starts a
:class:`repro.net.RelayServer` with its probe port open, drives a few
queries over the real TCP frame socket, then acts as the monitoring
stack would —

- ``GET /healthz`` must answer 200 ``{"status": "alive"}``;
- ``GET /readyz`` must answer 200 with every readiness check passing;
- ``GET /metrics`` must parse under the strict test-suite exposition
  grammar (:func:`repro.testing.parse_exposition`) and contain the
  request counters, the per-kind latency histogram, relay/server stats,
  and store counters for the traffic just driven.

The raw scrape is written to ``--out`` (default ``ops-scrape.txt``) and
uploaded as a CI artifact, so every green build carries an example of
what a Prometheus server sees.

Run::

    PYTHONPATH=src python examples/ops_probe_smoke.py --out ops-scrape.txt
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from pathlib import Path

from repro.api.middleware import MetricsInterceptor
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import RelayService
from repro.net import RelayServer
from repro.ops.metrics import EXPOSITION_CONTENT_TYPE
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
)
from repro.testing import parse_exposition

SOURCE = "smoke-src"
DESTINATION = "smoke-dst"
N_QUERIES = 5

#: Families the scrape must expose for the traffic this script drives.
REQUIRED_FAMILIES = (
    "repro_relay_requests_total",
    "repro_relay_request_seconds",
    "repro_relay_stats_total",
    "repro_relay_idempotency_entries",
    "repro_store_ops_total",
    "repro_relay_server_total",
    "repro_relay_server_in_flight",
)


class SmokeDriver(NetworkDriver):
    platform = "smoke"

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=b"doc:" + query.nonce.encode(),
        )


def get(url: str) -> tuple[int, str, bytes]:
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read(),
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="ops-scrape.txt",
        help="write the validated /metrics payload here (CI artifact)",
    )
    arguments = parser.parse_args()

    registry = InMemoryRegistry()
    source_relay = RelayService(SOURCE, registry, relay_id="relay-smoke-src")
    source_relay.register_driver(SmokeDriver(SOURCE))
    source_relay.use(MetricsInterceptor())
    destination_relay = RelayService(DESTINATION, registry)
    registry.register(DESTINATION, destination_relay)

    with RelayServer(source_relay, max_workers=4, probe_port=0) as server:
        registry.register(SOURCE, server.endpoint(timeout=10.0))
        print(f"relay serving at {server.address}, probe at {server.probe.url}")

        for sequence in range(N_QUERIES):
            query = NetworkQuery(
                version=PROTOCOL_VERSION,
                address=NetworkAddressMsg(
                    network=SOURCE,
                    ledger="ledger",
                    contract="docs",
                    function="Get",
                ),
                args=["K-1"],
                nonce=f"smoke-{sequence}",
            )
            response = destination_relay.remote_query(query)
            assert response.status == STATUS_OK

        status, content_type, body = get(f"{server.probe.url}/healthz")
        assert status == 200, f"/healthz answered {status}"
        assert json.loads(body) == {"status": "alive"}
        print("healthz: alive")

        status, _, body = get(f"{server.probe.url}/readyz")
        payload = json.loads(body)
        assert status == 200, f"/readyz answered {status}: {payload}"
        assert payload["ready"] is True
        failing = [check for check in payload["checks"] if not check["ok"]]
        assert not failing, f"failing readiness checks: {failing}"
        print(f"readyz : ready ({len(payload['checks'])} checks pass)")

        status, content_type, body = get(f"{server.probe.url}/metrics")
        assert status == 200, f"/metrics answered {status}"
        assert content_type == EXPOSITION_CONTENT_TYPE, content_type
        scrape = body.decode("utf-8")
        families = parse_exposition(scrape)  # raises on any grammar violation
        missing = [name for name in REQUIRED_FAMILIES if name not in families]
        assert not missing, f"scrape is missing families: {missing}"

        requests_served = sum(
            sample.value
            for sample in families["repro_relay_requests_total"].samples
        )
        assert requests_served == N_QUERIES, (
            f"expected {N_QUERIES} served requests in the scrape, "
            f"saw {requests_served}"
        )
        latency = families["repro_relay_request_seconds"]
        assert latency.kind == "histogram"

    target = Path(arguments.out)
    target.write_text(scrape)
    print(
        f"metrics: {len(families)} families, {requests_served:.0f} requests "
        f"counted — exposition valid, scrape written to {target}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
