#!/usr/bin/env python3
"""Two relays, two OS processes, one socket between them.

The deployment shape the paper implies: each network's relay is a real
service on its own host. This demo runs the *source* network (ledger,
drivers, relay, :class:`repro.net.RelayServer`) in a child Python
process, and the *destination* network in the parent; the only channel
between them is the TCP socket carrying length-prefixed relay envelopes.

The parent never holds a Python reference into the source network — it
cannot "cheat" past the protocol. Everything it learns arrives as
serialized envelopes whose proofs it verifies against the source
network's MSP roots, which is the whole point: the socket is the
untrusted edge, and the data is exactly as trustworthy as it proves
itself to be.

Run::

    PYTHONPATH=src python examples/tcp_relay_demo.py

With ``--state-dir DIR`` the source relay journals its state to a
:class:`repro.store.SqliteStore` rooted there, and the demo adds a
second act: commit a cross-network transaction, ``kill()`` the relay
process mid-conversation, respawn it on the same state directory, and
replay the captured transaction envelope — the restarted relay answers
byte-for-byte from its durable record instead of executing twice.

With ``--metrics-port PORT`` (0 picks a free port) the source relay
opens its ops probe next to the frame socket and the parent scrapes
``/readyz`` and ``/metrics`` across the process boundary, like a
Prometheus server would. ``--json-logs`` switches the source relay to
one-JSON-line-per-record logging on stderr with the trace-id of the
request each record served — grep for the id of a query you issued and
every hop is there.

(The child is spawned automatically; ``--serve`` is its internal mode.)
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


# ---------------------------------------------------------------------------
# Child process: the source network, served on a socket.
# ---------------------------------------------------------------------------

SOURCE_MSP_ROOT_PREFIX = "MSP-ROOT "
READY_PREFIX = "READY "
PROBE_PREFIX = "PROBE "

# The destination network's identity configuration must be recorded on
# the source ledger (§3.3 initialization). Processes cannot share Python
# objects, so the demo pins the destination's org with a fixed seed and
# both sides derive the same MSP root from it.
DEST_NETWORK = "dest-net"
DEST_ORG = "consumer-org"
POLICY = "AND(org:producer-org, org:auditor-org)"


def serve(
    host: str,
    state_dir: str | None = None,
    metrics_port: int | None = None,
    json_logs: bool = False,
    replicas: int = 1,
) -> None:
    """Build the source network and serve its relay(s) on socket(s).

    With ``replicas > 1`` the ONE source network is fronted by N
    independent relay services, each behind its own
    :class:`~repro.net.RelayServer` and ops probe — the fleet topology:
    many relay processes-worth of serving capacity, one network
    identity, one set of MSP roots for proofs to verify against. The
    parent may send ``KILL <i>`` on stdin to crash replica ``i``
    mid-conversation.
    """
    from repro.api.middleware import MetricsInterceptor
    from repro.fabric import NetworkBuilder
    from repro.interop.bootstrap import create_fabric_relay, enable_fabric_interop
    from repro.interop.discovery import InMemoryRegistry
    from repro.net import RelayServer
    from repro.proto.messages import NetworkConfigMsg

    if json_logs:
        # One JSON line per record on stderr, trace-id field included —
        # what a deployment ships to its log pipeline.
        import logging

        from repro.ops import configure_json_logging

        configure_json_logging(level=logging.DEBUG)  # show per-hop records

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from quickstart import DocumentChaincode  # the §5 ~tens-of-SLOC contract

    source = (
        NetworkBuilder("source-net")
        .add_org("producer-org")
        .add_org("auditor-org")
        .add_peer("peer0", "producer-org")
        .add_peer("peer0", "auditor-org")
        .add_client("admin", "producer-org")
        .build()
    )
    admin = source.org("producer-org").member("admin")
    enable_fabric_interop(source, admin)
    source.deploy_chaincode(
        DocumentChaincode(),
        "AND('producer-org.peer', 'auditor-org.peer')",
        initializer=admin,
    )
    source.gateway.submit(
        admin, "docs", "Put", ["invoice-7", '{"amount": 1200, "currency": "USD"}']
    )

    # §3.3: record the destination network's configuration (sent by the
    # parent over stdin as hex-encoded wire bytes) + an exposure rule.
    config_hex = sys.stdin.readline().strip()
    config = NetworkConfigMsg.decode(bytes.fromhex(config_hex))
    source.gateway.submit(
        admin, "cmdac", "RecordNetworkConfig", [config.network_id, config_hex]
    )
    source.gateway.submit(
        admin, "ecc", "AddAccessRule", [DEST_NETWORK, DEST_ORG, "docs", "Get"]
    )
    source.gateway.submit(
        admin, "ecc", "AddAccessRule", [DEST_NETWORK, DEST_ORG, "docs", "Put"]
    )

    # ``--state-dir`` makes the relay durable: its exactly-once record
    # and served subscriptions live in a SqliteStore that a respawned
    # process re-opens (create_fabric_relay recovers it automatically).
    # A fleet always opens probes (port 0) — the parent's readiness
    # monitor needs /readyz to drive eviction.
    want_ops = metrics_port is not None or replicas > 1
    servers = []
    for index in range(replicas):
        replica_state = (
            str(Path(state_dir) / f"replica-{index}") if state_dir else None
        )
        middleware = [MetricsInterceptor()] if want_ops else None
        relay = create_fabric_relay(
            source,
            InMemoryRegistry(),
            state_dir=replica_state,
            middleware=middleware,
        )
        probe_port = metrics_port if (replicas == 1 and index == 0) else (
            0 if want_ops else None
        )
        servers.append(
            RelayServer(
                relay, host=host, port=0, max_workers=4, probe_port=probe_port
            ).start()
        )

    # Hand the parent what it needs: our addresses and our MSP roots (in
    # a real deployment these travel out of band / via governance).
    print(SOURCE_MSP_ROOT_PREFIX + source.export_config().encode().hex(), flush=True)
    for server in servers:
        if server.probe is not None:
            print(PROBE_PREFIX + server.probe.url, flush=True)
    print(
        READY_PREFIX + " ".join(server.address for server in servers),
        flush=True,
    )
    try:
        # Serve until the parent closes our stdin; a "KILL <i>" line
        # crashes replica i (the fleet demo's churn injection).
        for line in sys.stdin:
            command = line.strip().split()
            if len(command) == 2 and command[0] == "KILL":
                servers[int(command[1])].stop()
                print(f"KILLED {command[1]}", flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        for server in servers:
            server.stop()


# ---------------------------------------------------------------------------
# Parent process: the destination network, dialing tcp://.
# ---------------------------------------------------------------------------


def spawn_source(
    destination,
    state_dir: str | None,
    metrics_port: int | None = None,
    json_logs: bool = False,
    replicas: int = 1,
):
    """Spawn the source-relay process; returns (child, addresses,
    config_hex, probe_urls) — one address (and, when the ops plane is
    on, one probe url) per replica."""
    command = [sys.executable, __file__, "--serve", "127.0.0.1"]
    if state_dir:
        command += ["--state-dir", state_dir]
    if metrics_port is not None:
        command += ["--metrics-port", str(metrics_port)]
    if json_logs:
        command += ["--json-logs"]
    if replicas != 1:
        command += ["--replicas", str(replicas)]
    child = subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )
    assert child.stdin is not None and child.stdout is not None
    child.stdin.write(destination.export_config().encode().hex() + "\n")
    child.stdin.flush()

    source_config_hex = ""
    addresses: list[str] = []
    probe_urls: list[str] = []
    for line in child.stdout:
        if line.startswith(SOURCE_MSP_ROOT_PREFIX):
            source_config_hex = line[len(SOURCE_MSP_ROOT_PREFIX):].strip()
        elif line.startswith(PROBE_PREFIX):
            probe_urls.append(line[len(PROBE_PREFIX):].strip())
        elif line.startswith(READY_PREFIX):
            addresses = line[len(READY_PREFIX):].strip().split()
            break
    if not addresses:
        raise RuntimeError("source relay process never became ready")
    return child, addresses, source_config_hex, probe_urls


def main(
    state_dir: str | None = None,
    metrics_port: int | None = None,
    json_logs: bool = False,
    replicas: int = 1,
) -> None:
    from repro.fabric import NetworkBuilder
    from repro.interop.bootstrap import enable_fabric_interop
    from repro.interop.client import InteropClient
    from repro.interop.contracts.cmdac import CMDAC_NAME
    from repro.interop.discovery import AddressResolver, FileRegistry
    from repro.interop.relay import RelayService
    from repro.net import BalancedDiscovery, ReadinessMonitor
    from repro.proto.messages import NetworkConfigMsg
    import tempfile
    import time

    destination = (
        NetworkBuilder(DEST_NETWORK)
        .add_org(DEST_ORG)
        .add_peer("peer0", DEST_ORG)
        .add_client("admin", DEST_ORG)
        .add_client("app", DEST_ORG)
        .build()
    )
    dest_admin = destination.org(DEST_ORG).member("admin")
    enable_fabric_interop(destination, dest_admin)

    # --- spawn the source-network relay(s) as a separate OS process -------
    child, addresses, source_config_hex, probe_urls = spawn_source(
        destination,
        state_dir,
        metrics_port=metrics_port,
        json_logs=json_logs,
        replicas=replicas,
    )
    address = addresses[0]
    probe_url = probe_urls[0] if probe_urls else ""
    try:
        if len(addresses) == 1:
            print(f"source relay process {child.pid} serving at {address}")
        else:
            print(f"source relay process {child.pid} serving "
                  f"{len(addresses)} replicas at {', '.join(addresses)}")
        if probe_url:
            print(f"ops probe listening at {probe_url} "
                  f"(/healthz /readyz /metrics)")

        # §3.3 on our side: record the source network's configuration and
        # a verification policy, so proofs validate against *ledger*
        # -recorded roots, not anything the socket told us at query time.
        source_config = NetworkConfigMsg.decode(bytes.fromhex(source_config_hex))
        destination.gateway.submit(
            dest_admin,
            CMDAC_NAME,
            "RecordNetworkConfig",
            [source_config.network_id, source_config_hex],
        )
        destination.gateway.submit(
            dest_admin,
            CMDAC_NAME,
            "SetVerificationPolicy",
            [source_config.network_id, POLICY],
        )

        # --- discovery: a registry FILE naming tcp:// address(es) --------
        # Exactly the paper's PoC shape ("a local file-based registry was
        # plugged into the SWT Relay", §4.3) — except the addresses now
        # cross a process boundary. With --replicas the registry names
        # the whole fleet and a BalancedDiscovery pool spreads traffic
        # over it.
        registry_file = Path(tempfile.mkstemp(suffix=".json")[1])
        registry_file.write_text(json.dumps({"source-net": addresses}))
        resolver = AddressResolver()  # tcp:// dialing is built in
        registry = FileRegistry(registry_file, resolver)
        balanced = BalancedDiscovery(registry) if len(addresses) > 1 else None
        relay = RelayService(DEST_NETWORK, balanced or registry)

        # --- a trusted cross-process, cross-network query -----------------
        app = destination.org(DEST_ORG).member("app")
        client = InteropClient(app, relay, DEST_NETWORK, gateway=destination.gateway)
        result = client.remote_query("source-net/main/docs/Get", ["invoice-7"])

        print(f"\nfetched over TCP : {result.data.decode()}")
        print(f"proof            : {len(result.proof)} attestations "
              f"({', '.join(sorted(a.metadata().org for a in result.proof.attestations))})")
        print("\nThe socket is the untrusted edge: every byte crossed a real")
        print("process boundary, and the result was accepted only because its")
        print("attestations verified against the source MSP roots recorded on")
        print("the destination ledger. Kill -9 the child and the same query")
        print("raises a typed RelayUnavailableError instead.")

        # --- ops plane (--metrics-port): scrape the child like Prometheus --
        if probe_url:
            import urllib.request

            with urllib.request.urlopen(f"{probe_url}/readyz", timeout=5.0) as rsp:
                ready = json.loads(rsp.read())
            with urllib.request.urlopen(f"{probe_url}/metrics", timeout=5.0) as rsp:
                scrape = rsp.read().decode()
            print(f"\nreadyz across the process boundary: ready={ready['ready']} "
                  f"({len(ready['checks'])} checks)")
            for line in scrape.splitlines():
                if line.startswith("repro_relay_requests_total"):
                    print(f"scraped          : {line}")

        # --- fleet act (--replicas N): balance, kill one, keep serving ----
        if balanced is not None:
            monitor = ReadinessMonitor(
                balanced.pool("source-net"),
                probe_urls=dict(zip(addresses, probe_urls)),
                interval=0.1,
                timeout=2.0,
            ).start()
            try:
                for sequence in range(12):
                    client.remote_query(
                        "source-net/main/docs/Get", ["invoice-7"]
                    )
                snapshot = balanced.pools()[0]
                spread = {
                    key.rsplit(":", 1)[-1]: member["requests"]
                    for key, member in sorted(snapshot["members"].items())
                }
                print(f"\n12 queries p2c-balanced across {len(addresses)} "
                      f"replicas (requests per port): {spread}")

                # Churn: crash replica 0 inside the child process, let the
                # readiness monitor evict it, and keep querying — the
                # callers never see the difference.
                assert child.stdin is not None and child.stdout is not None
                child.stdin.write("KILL 0\n")
                child.stdin.flush()
                child.stdout.readline()  # the KILLED ack
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    members = balanced.pools()[0]["members"]
                    if members[addresses[0]]["evicted"]:
                        break
                    time.sleep(0.05)
                for sequence in range(12):
                    client.remote_query(
                        "source-net/main/docs/Get", ["invoice-7"]
                    )
                snapshot = balanced.pools()[0]
                print(f"killed replica 0 mid-conversation: monitor evicted "
                      f"it ({snapshot['evictions']} eviction), 12 more "
                      f"queries served by the survivors with zero errors")
            finally:
                monitor.stop()

        # --- act two (--state-dir): crash the relay, replay the past -------
        if state_dir and len(addresses) == 1:
            from repro.interop.transactions import RemoteTransactionClient
            from repro.proto.messages import (
                MSG_KIND_TRANSACT_REQUEST,
                PROTOCOL_VERSION,
                RelayEnvelope,
            )

            prepared = RemoteTransactionClient(client).prepare_transaction(
                "source-net/main/docs/Put",
                ["receipt-9", '{"paid": true}'],
            )
            raw = RelayEnvelope(
                version=PROTOCOL_VERSION,
                kind=MSG_KIND_TRANSACT_REQUEST,
                request_id="demo-receipt-9",
                source_network=DEST_NETWORK,
                destination_network="source-net",
                payload=prepared.query.encode(),
            ).encode()
            first = resolver.resolve(address).handle_request(raw)
            print(f"\ncommitted receipt-9 via request_id=demo-receipt-9 "
                  f"({len(first)}-byte reply)")

            child.kill()
            child.wait(timeout=10)
            print(f"killed relay process {child.pid} (simulated crash)")

            child, addresses, _, _ = spawn_source(destination, state_dir)
            address = addresses[0]
            registry_file.write_text(json.dumps({"source-net": [address]}))
            print(f"respawned as {child.pid} at {address} "
                  f"on the same --state-dir")

            second = resolver.resolve(address).handle_request(raw)
            assert second == first, "replay must be answered from the record"
            print("\nreplayed the SAME captured envelope: the restarted relay")
            print("answered byte-for-byte from its durable exactly-once record")
            print("— the transaction did not execute a second time. Without")
            print("--state-dir that record dies with the process.")
        registry_file.unlink()
    finally:
        if child.stdin is not None:
            child.stdin.close()
        child.wait(timeout=10)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", metavar="HOST", help=argparse.SUPPRESS)
    parser.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="journal the source relay's state to a SqliteStore rooted "
        "here and demo crash + replay recovery (e.g. /tmp/relay-state)",
    )
    parser.add_argument(
        "--metrics-port",
        metavar="PORT",
        type=int,
        default=None,
        help="open the source relay's ops probe (GET /healthz /readyz "
        "/metrics, Prometheus text exposition) on this port; 0 picks a "
        "free one. The parent scrapes it across the process boundary.",
    )
    parser.add_argument(
        "--replicas",
        metavar="N",
        type=int,
        default=1,
        help="serve the source network through N relay replicas (one "
        "process, N sockets + probes) and demo client-side balancing, "
        "readiness-driven eviction, and a mid-conversation replica kill",
    )
    parser.add_argument(
        "--json-logs",
        action="store_true",
        help="emit one JSON log line per record (trace-id field included) "
        "on the source relay's stderr, as a deployment would ship to its "
        "log pipeline",
    )
    arguments = parser.parse_args()
    if arguments.serve:
        serve(
            arguments.serve,
            state_dir=arguments.state_dir,
            metrics_port=arguments.metrics_port,
            json_logs=arguments.json_logs,
            replicas=arguments.replicas,
        )
    else:
        main(
            state_dir=arguments.state_dir,
            metrics_port=arguments.metrics_port,
            json_logs=arguments.json_logs,
            replicas=arguments.replicas,
        )
