#!/usr/bin/env python3
"""§5 generalization demo: one client querying three DLT platforms.

The same relay protocol and client code fetch proof-carrying data from a
Fabric-like network, a Corda-like network (with the notary in the
verification policy), and a Quorum-like network — only the per-platform
drivers and system-contract ports differ.

Run::

    python examples/cross_platform_query.py
"""

from __future__ import annotations

import json

from repro.corda import CordaNetwork, LinearState
from repro.fabric.identity import Organization
from repro.interop import InMemoryRegistry, InteropClient, RelayService
from repro.interop.contracts.ports import InteropPort
from repro.interop.drivers.corda_driver import CordaDriver
from repro.interop.drivers.quorum_driver import QuorumDriver
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg
from repro.quorum import DocumentRegistryContract, QuorumNetwork

DOCUMENT = {"po_ref": "PO-XP-1", "commodity": "coffee", "weight_kg": 18_000}


def main() -> None:
    registry = InMemoryRegistry()

    # --- The requesting side: one identity, one local relay, one client ----
    dest_org = Organization("dest-org", network="dest-net")
    identity = dest_org.enroll("analyst", role="client")
    dest_config = NetworkConfigMsg(
        network_id="dest-net",
        platform="fabric",
        organizations=[
            OrganizationConfigMsg(
                org_id="dest-org",
                msp_id="dest-orgMSP",
                root_certificate=dest_org.msp.root_certificate.to_bytes(),
            )
        ],
    )
    client = InteropClient(identity, RelayService("dest-net", registry), "dest-net")

    # --- Source 1: Corda-like network with a notary --------------------------
    corda = CordaNetwork("corda-net")
    node_a = corda.add_node("nodeA")
    corda.add_node("nodeB")
    node_a.propose(
        [],
        [
            LinearState(
                linear_id="DOC-XP",
                kind="trade-doc",
                data=DOCUMENT,
                participants=("nodeA", "nodeB"),
            )
        ],
        "Record",
    )
    corda_port = InteropPort("corda-net")
    corda_port.record_network_config(dest_config)
    corda_port.add_access_rule("dest-net", "dest-org", "vault", "GetState")
    corda_relay = RelayService("corda-net", registry)
    corda_relay.register_driver(CordaDriver(corda, corda_port))
    registry.register("corda-net", corda_relay)

    # --- Source 2: Quorum-like network ---------------------------------------
    quorum = QuorumNetwork("quorum-net")
    quorum.deploy_contract(DocumentRegistryContract())
    quorum.add_peer("peer1", "operator-1")
    quorum.add_peer("peer2", "operator-2")
    q_admin = quorum.enroll_client("admin", "operator-1")
    quorum.submit_transaction(
        q_admin,
        "document-registry",
        "RegisterDocument",
        ["DOC-XP", json.dumps(DOCUMENT, sort_keys=True)],
    )
    quorum_port = InteropPort("quorum-net")
    quorum_port.record_network_config(dest_config)
    quorum_port.add_access_rule(
        "dest-net", "dest-org", "document-registry", "GetDocument"
    )
    quorum_relay = RelayService("quorum-net", registry)
    quorum_relay.register_driver(QuorumDriver(quorum, quorum_port))
    registry.register("quorum-net", quorum_relay)

    # --- Identical client code against both platforms -------------------------
    queries = [
        ("corda-net/vault/vault/GetState", ["DOC-XP"], "AND(org:nodeA, org:notary-org)"),
        (
            "quorum-net/state/document-registry/GetDocument",
            ["DOC-XP"],
            "AND(org:operator-1, org:operator-2)",
        ),
    ]
    for address, args, policy in queries:
        result = client.remote_query(address, args, policy=policy)
        attesters = sorted(a.metadata().org for a in result.proof.attestations)
        platform = address.split("/", 1)[0]
        print(f"{platform:12s} -> data fetched, {len(result.proof)} attestations "
              f"from {attesters}")
        payload = json.loads(result.data)
        document = payload.get("data", payload)
        assert document["po_ref"] == "PO-XP-1"

    print("\nSame relay protocol, same client, same proof format — only the")
    print("network drivers and system-contract ports are platform-specific,")
    print("exactly as §5 of the paper argues.")


if __name__ == "__main__":
    main()
