#!/usr/bin/env python3
"""Quickstart: trusted data transfer between two blockchain networks.

Builds two independent Fabric-like networks, augments them for
interoperability (relays + system contracts), links them, and performs a
cross-network query whose response carries a consensus-backed proof.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

import json

from repro.api import EventVerifier, InteropGateway
from repro.fabric import Chaincode, NetworkBuilder
from repro.fabric.chaincode import require_args
from repro.interop import (
    InMemoryRegistry,
    InteropClient,
    RelayService,
    create_fabric_relay,
    enable_fabric_interop,
    link_networks,
)
from repro.interop.events import enable_relay_events
from repro.interop.transactions import enable_remote_transactions


class DocumentChaincode(Chaincode):
    """A tiny source-side contract: store and fetch documents.

    The interop-enabled dispatch (ECC check + response sealing) is the
    one-time ~tens-of-SLOC adaptation described in the paper's §5.
    """

    name = "docs"

    def invoke(self, stub):
        if stub.function == "init":
            return b"ok"
        interop_raw = stub.get_transient("interop")
        if stub.function == "Put":
            key, value = require_args(stub, 2)
            stub.put_state(key, value.encode())
            stub.set_event("DocumentStored", key.encode())
            return b"ok"
        if stub.function == "Get":
            (key,) = require_args(stub, 1)
            value = stub.get_state(key)
            if value is None:
                raise ValueError(f"no document {key!r}")
            if interop_raw is not None:  # incoming relay query
                ctx = json.loads(interop_raw)
                stub.invoke_chaincode(
                    "ecc",
                    "CheckAccess",
                    [ctx["requesting_network"], ctx["requesting_org"], self.name, "Get"],
                )
                return stub.invoke_chaincode(
                    "ecc",
                    "SealResponse",
                    [
                        value.hex(),
                        ctx["client_pubkey"],
                        "true" if ctx["confidential"] else "false",
                    ],
                )
            return value
        raise ValueError(f"unknown function {stub.function}")


def main() -> None:
    # --- 1. Two independent, self-governing networks -----------------------
    source = (
        NetworkBuilder("source-net")
        .add_org("producer-org")
        .add_org("auditor-org")
        .add_peer("peer0", "producer-org")
        .add_peer("peer0", "auditor-org")
        .add_client("admin", "producer-org")
        .build()
    )
    destination = (
        NetworkBuilder("dest-net")
        .add_org("consumer-org")
        .add_peer("peer0", "consumer-org")
        .add_client("admin", "consumer-org")
        .add_client("app", "consumer-org")
        .build()
    )
    source_admin = source.org("producer-org").member("admin")
    dest_admin = destination.org("consumer-org").member("admin")

    source.deploy_chaincode(
        DocumentChaincode(),
        "AND('producer-org.peer', 'auditor-org.peer')",
        initializer=source_admin,
    )
    source.gateway.submit(
        source_admin, "docs", "Put", ["invoice-7", '{"amount": 1200, "currency": "USD"}']
    )
    print(f"source network up: {len(source.peers)} peers, "
          f"ledger height {source.peers[0].ledger.height}")

    # --- 2. Augment for interoperability (no protocol changes) -------------
    enable_fabric_interop(source, source_admin)
    enable_fabric_interop(destination, dest_admin)
    link_networks(destination, dest_admin, source, source_admin)

    # Exposure control: consumer-org of dest-net may call docs/Get.
    source.gateway.submit(
        source_admin, "ecc", "AddAccessRule", ["dest-net", "consumer-org", "docs", "Get"]
    )

    # --- 3. Relays + discovery ---------------------------------------------
    registry = InMemoryRegistry()
    source_relay = create_fabric_relay(source, registry)
    dest_relay = RelayService("dest-net", registry)

    # --- 4. A trusted cross-network query -----------------------------------
    app = destination.org("consumer-org").member("app")
    client = InteropClient(app, dest_relay, "dest-net", gateway=destination.gateway)
    result = client.remote_query("source-net/main/docs/Get", ["invoice-7"])

    print(f"\nfetched data   : {result.data.decode()}")
    print(f"proof          : {len(result.proof)} attestations "
          f"({', '.join(sorted(a.metadata().org for a in result.proof.attestations))})")
    print(f"nonce          : {result.nonce}")
    print(f"proof size     : {len(result.proof_json)} bytes (JSON)")
    print("\nEach attestation is a source-peer signature over the query, the")
    print("nonce, and the result hash — validated against the source network's")
    print("MSP roots recorded on the destination ledger. No trusted mediator.")

    # --- 5. Batched, pipelined queries via the unified gateway ---------------
    # The repro.api façade wraps the same machinery with a fluent builder and
    # future-style handles: every submit() below is pipelined, and all three
    # queries travel to source-net in ONE batch envelope — one discovery
    # lookup, one round-trip, one failover loop, with the source driver
    # fanning the members concurrently.
    for key, value in [
        ("invoice-8", '{"amount": 760, "currency": "EUR"}'),
        ("invoice-9", '{"amount": 90, "currency": "GBP"}'),
    ]:
        source.gateway.submit(source_admin, "docs", "Put", [key, value])

    gateway = InteropGateway.from_client(client)
    handles = [
        gateway.query("source-net/main/docs/Get").with_args(key).submit()
        for key in ("invoice-7", "invoice-8", "invoice-9")
    ]
    print("\nbatched fetch via InteropGateway (one envelope round-trip):")
    for key, handle in zip(("invoice-7", "invoice-8", "invoice-9"), handles):
        document = handle.result()  # first result() flushes the whole set
        print(f"  {key}: {document.data.decode()}  "
              f"[{len(document.proof)} attestations]")
    source_relay_stats = registry.lookup("source-net")[0].stats
    print(f"source relay totals: {source_relay_stats.requests_served} queries "
          f"served, {source_relay_stats.batches_served} batch envelope(s)")

    # --- 6. Transact and subscribe through the gateway -----------------------
    # The other two §2 primitives ride the same relay machinery. A remote
    # *transaction* runs through the source network's endorse-order-commit
    # pipeline under a designated local invoker, and its attestations cover
    # the committed tx id/block. A *subscription* taps the source event hub
    # via relay envelopes; because notifications are unauthenticated, the
    # VerifiedEventStream upgrades each one with a follow-up proof-carrying
    # query before the application sees it (notify-then-verify).
    invoker = source.org("producer-org").enroll("interop-invoker", role="client")
    enable_remote_transactions(source, source_relay, invoker, discovery=registry)
    enable_relay_events(source, source_relay, source_admin)
    # Events invert the flow: the *source* relay must be able to discover
    # the subscriber's relay to push notifications to it.
    registry.register("dest-net", dest_relay)
    source.gateway.submit(
        source_admin, "ecc", "AddAccessRule", ["dest-net", "consumer-org", "docs", "Put"]
    )
    source.gateway.submit(
        source_admin, "ecc", "AddAccessRule",
        ["dest-net", "consumer-org", "docs", "event:DocumentStored"],
    )

    verifier = EventVerifier(
        address="source-net/main/docs/Get",
        # The notification payload is the stored key; fetching it with a
        # proof-carrying query IS the verification (a forged key fails the
        # query), so the consistency check just requires a non-empty doc.
        args=lambda notification: [notification.payload.decode()],
        check=lambda notification, result: result.data != b"",
    )
    stream = gateway.subscribe("source-net/main/docs", "DocumentStored",
                               verifier=verifier)

    outcome = (
        gateway.transact("source-net/main/docs/Put")
        .with_args("invoice-10", '{"amount": 3400, "currency": "CHF"}')
        .execute()
    )
    print(f"\nremote transaction: committed as {outcome.tx_id} in block "
          f"{outcome.block_number}, attested by "
          f"{', '.join(outcome.attesting_orgs)}")

    event = stream.take()  # verifies via a proof-carrying query
    print(f"verified event    : {event.notification.name} for "
          f"{event.notification.payload.decode()} -> trusted data "
          f"{event.data.decode()} [{len(event.verification.proof)} attestations]")
    print("the notification itself is untrusted; a tampered one would fail")
    print("its follow-up query and land in stream.rejected instead.")
    stream.close()

    # --- 7. Atomic asset exchange: Fabric <-> Quorum (HTLC) ------------------
    # The same envelope + proof machinery now carries VALUE: a trader on the
    # Fabric source network swaps GOLD-1 for OIL-9 held by a dealer on a
    # Quorum network, atomically, with no shared trusted party. Each side
    # escrows under a hash-time-lock; each verifies the other's escrow with
    # a PROOF-CARRYING GetLock query before its irreversible step; the claim
    # reveals the preimage on-ledger, which unlocks the other leg.
    from repro.assets import FabricAssetChaincode, QuorumAssetContract
    from repro.interop.bootstrap import record_foreign_network
    from repro.interop.contracts.ports import InteropPort
    from repro.interop.drivers.quorum_driver import QuorumDriver
    from repro.quorum import QuorumNetwork

    # The Fabric side hosts the HTLC vault as ordinary chaincode...
    source.deploy_chaincode(
        FabricAssetChaincode(),
        "AND('producer-org.peer', 'auditor-org.peer')",
        initializer=source_admin,
    )
    trader = source.org("producer-org").enroll("trader", role="client")
    source.gateway.submit(
        source_admin, "assetscc", "Issue", ["GOLD-1", "trader@source-net", "{}"]
    )
    # ...and a Quorum commodity network hosts it as a contract.
    commodity = QuorumNetwork("commodity-net")
    commodity.deploy_contract(QuorumAssetContract())
    commodity.add_peer("peer1", "dealer-org")
    commodity.add_peer("peer2", "exchange-org")
    dealer = commodity.enroll_client("dealer", "dealer-org")
    commodity_invoker = commodity.enroll_client("asset-invoker", "dealer-org")
    commodity.submit_transaction(
        commodity_invoker, "asset-vault", "Issue",
        ["OIL-9", "dealer@commodity-net", "{}"],
    )

    # Mutual governance: each side whitelists the other's HTLC verbs and
    # records the other's identity configuration for proof validation.
    commodity_port = InteropPort("commodity-net")
    commodity_port.record_network_config(source.export_config())
    for fn in ("LockAsset", "ClaimAsset", "UnlockAsset", "GetLock"):
        commodity_port.add_access_rule(
            "source-net", "producer-org", "asset-vault", fn
        )
    for fn in ("ClaimAsset", "UnlockAsset", "GetLock"):
        source.gateway.submit(
            source_admin, "ecc", "AddAccessRule",
            ["commodity-net", "dealer-org", "assetscc", fn],
        )
    record_foreign_network(
        source, source_admin, commodity,
        verification_policy="AND(org:dealer-org, org:exchange-org)",
    )

    # Asset capability on both relays (driver-level AssetLedgerPort).
    asset_invoker = source.org("producer-org").enroll("asset-invoker", role="client")
    source_relay.driver_for("source-net").enable_assets(asset_invoker)
    commodity_relay = RelayService("commodity-net", registry)
    commodity_driver = QuorumDriver(commodity, commodity_port)
    commodity_driver.enable_assets(commodity_invoker)
    commodity_relay.register_driver(commodity_driver)
    registry.register("commodity-net", commodity_relay)

    trader_client = InteropClient(trader, source_relay, "source-net",
                                  gateway=source.gateway)
    dealer_client = InteropClient(dealer, commodity_relay, "commodity-net")

    exchange = (
        InteropGateway.from_client(trader_client)
        .exchange()
        .offer("source-net/main/assetscc", "GOLD-1")
        .ask("commodity-net/state/asset-vault", "OIL-9")
        .with_counterparty(dealer_client)
        .with_timeouts(offer=600.0, counter=300.0)
        .with_policies(offer="AND(org:producer-org, org:auditor-org)",
                       ask="AND(org:dealer-org, org:exchange-org)")
        .build()
    )
    outcome = exchange.run()
    gold = json.loads(source.gateway.evaluate(
        source_admin, "assetscc", "GetAsset", ["GOLD-1"]))
    oil = json.loads(commodity.peers[0].storage_snapshot(
        "asset-vault")["asset/OIL-9"].decode())
    print(f"\natomic exchange  : {outcome.state.value} "
          f"(hashlock {outcome.hashlock.hex()[:16]}…)")
    print(f"GOLD-1 owner     : {gold['owner']}  (was trader@source-net)")
    print(f"OIL-9 owner      : {oil['owner']}  (was dealer@commodity-net)")
    print("had either party walked away before the reveal, abort() + refund()")
    print("would have unwound both escrows after their timelocks — the claim")
    print("and refund windows partition time, so nothing double-spends.")

    # --- 8. Deployment: relays as network services on real sockets -----------
    # So far every envelope travelled as an in-process call. In the paper's
    # deployment each relay is a *service* other networks reach over the
    # wire; repro.net supplies that transport without touching one protocol
    # rule. Each relay goes behind an asyncio RelayServer speaking
    # length-prefixed envelope frames; discovery hands back pooled
    # TcpRelayEndpoints for tcp://host:port addresses; the failover loop,
    # interceptors, proofs — everything above the socket — runs unchanged.
    # (Run examples/tcp_relay_demo.py for the same topology as two separate
    # OS processes.)
    from repro.net import RelayServer

    source_server = RelayServer(source_relay, max_workers=4).start()
    dest_server = RelayServer(dest_relay, max_workers=4).start()
    # Re-point discovery at the sockets: from here on, the ONLY path
    # between the two relays is framed envelopes on TCP connections.
    for network_id, server in (("source-net", source_server),
                               ("dest-net", dest_server)):
        for endpoint in list(registry.lookup(network_id)):
            registry.unregister(network_id, endpoint)
        registry.register(network_id, server.endpoint(timeout=10.0))

    socket_result = client.remote_query("source-net/main/docs/Get", ["invoice-7"])
    assert socket_result.data == result.data  # same data, same proofs
    print(f"\nsocket deployment: {source_server.address} <-> {dest_server.address}")
    print(f"re-fetched over TCP: {socket_result.data.decode()} "
          f"[{len(socket_result.proof)} attestations]")
    print("trust boundary: the socket is the UNTRUSTED edge — drop, delay,")
    print("duplicate, or corrupt the frames and the protocol still only")
    print("accepts data whose proofs verify end-to-end; transport failures")
    print("surface as typed RelayUnavailableError and engage failover.")
    source_server.stop()
    dest_server.stop()

    # --- 9. Durability: kill the relay, keep its promises --------------------
    # Every relay above kept its exactly-once record in process memory
    # (the MemoryStore default): crash one and a replayed transaction
    # envelope would execute TWICE on the source ledger. Deployments
    # start the relay with --state-dir instead, which journals that
    # record (and the served-subscription table) into a SqliteStore —
    # an fsync-on-commit write-ahead log checkpointed into sqlite.
    # Walkthrough: commit through a durable relay, kill it, restart it
    # on the same directory, and replay the captured envelope.
    import tempfile

    from repro.interop.transactions import RemoteTransactionClient
    from repro.proto.messages import (
        MSG_KIND_TRANSACT_REQUEST,
        PROTOCOL_VERSION,
        RelayEnvelope,
    )

    state_dir = tempfile.mkdtemp(prefix="quickstart-relay-")
    for endpoint in list(registry.lookup("source-net")):
        registry.unregister("source-net", endpoint)
    durable_relay = create_fabric_relay(source, registry, state_dir=state_dir)
    enable_remote_transactions(source, durable_relay, invoker, discovery=registry)

    prepared = RemoteTransactionClient(client).prepare_transaction(
        "source-net/main/docs/Put",
        ["invoice-11", '{"amount": 12, "currency": "USD"}'],
    )
    raw = RelayEnvelope(
        version=PROTOCOL_VERSION,
        kind=MSG_KIND_TRANSACT_REQUEST,
        request_id="req-invoice-11",  # the exactly-once identity
        source_network="dest-net",
        destination_network="source-net",
        payload=prepared.query.encode(),
    ).encode()
    first_reply = durable_relay.handle_request(raw)
    print(f"\ndurable relay     : journaling to {state_dir}")
    print(f"committed         : invoice-11 under request_id=req-invoice-11")

    durable_relay.store.close()  # the "crash": object gone, handles dead
    for endpoint in list(registry.lookup("source-net")):
        registry.unregister("source-net", endpoint)
    del durable_relay

    restarted_relay = create_fabric_relay(source, registry, state_dir=state_dir)
    enable_remote_transactions(source, restarted_relay, invoker, discovery=registry)
    replayed = restarted_relay.handle_request(raw)
    assert replayed == first_reply  # answered from the durable record
    assert restarted_relay.stats.duplicates_suppressed == 1
    print("restarted relay   : same --state-dir, fresh process state")
    print("replayed envelope : answered byte-for-byte from the durable")
    print("record — invoice-11 was NOT committed a second time. The same")
    print("journal re-opens event taps on recover(); the exchange")
    print("coordinator journals its HTLC ladder the same way, so a crash")
    print("between lock and claim resumes instead of stranding escrows.")
    restarted_relay.store.close()

    # --- 10. Observability: one trace id, scraped metrics, probes ------------
    # Deployments start the relay with --metrics-port and --json-logs
    # (see examples/tcp_relay_demo.py). The first opens an HTTP probe
    # listener next to the frame socket: GET /healthz (liveness),
    # /readyz (store open + drivers attached + executor accepting, the
    # eviction signal a fleet balancer watches) and /metrics (Prometheus
    # text exposition fed by the interceptor chain, relay/server stats,
    # and store counters). The second routes every "repro.*" logger
    # through one JSON formatter. Each request carries a trace id in its
    # envelope headers across every hop — the same id appears in log
    # records from the client session, both relays, the TCP frame
    # server, and the driver, and comes back in error replies too.
    import urllib.request

    from repro.api.middleware import MetricsInterceptor
    from repro.ops import activate, capture_logs, new_trace

    for endpoint in list(registry.lookup("source-net")):
        registry.unregister("source-net", endpoint)
    source_relay.use(MetricsInterceptor())  # bound when the probe starts
    ops_server = RelayServer(source_relay, max_workers=4, probe_port=0).start()
    registry.register("source-net", ops_server.endpoint(timeout=10.0))

    with capture_logs() as captured:
        with activate(new_trace()) as trace:
            client.remote_query("source-net/main/docs/Get", ["invoice-7"])
    layers = sorted({r["logger"] for r in captured.with_trace(trace.trace_id)})
    print(f"\ntrace {trace.trace_id} crossed layers: {', '.join(layers)}")

    with urllib.request.urlopen(f"{ops_server.probe.url}/readyz", timeout=5.0) as rsp:
        print(f"readyz           : {rsp.read().decode()}")
    with urllib.request.urlopen(f"{ops_server.probe.url}/metrics", timeout=5.0) as rsp:
        scrape = rsp.read().decode()
    print("scrape excerpt   :")
    for line in scrape.splitlines():
        if line.startswith("repro_relay_requests_total"):
            print(f"  {line}")
    ops_server.stop()

    # --- 11. Fleet: N replicas, one network id, balanced + health-evicted ----
    # One relay per network is a bottleneck AND a single point of failure
    # (the paper's §5 DoS concern). A fleet runs N replica relays for the
    # same network id; BalancedDiscovery wraps any DiscoveryService and
    # turns each lookup into a managed pool: read-only envelopes spread
    # by power-of-two-choices on live in-flight counts, side-effecting
    # ones stick to a replica by consistent hash of their request_id (so
    # idempotent replays land on the SAME replica and exactly-once holds
    # fleet-wide even though each replica keeps its own record). A
    # ReadinessMonitor polls every replica's /readyz probe and benches
    # not-ready members — they drop to the END of the failover order, so
    # a fully-benched fleet degrades to plain failover, never an outage.
    import time

    from repro.net import BalancedDiscovery, ReadinessMonitor

    for endpoint in list(registry.lookup("source-net")):
        registry.unregister("source-net", endpoint)
    replica_servers = [
        RelayServer(
            create_fabric_relay(source, InMemoryRegistry()),
            max_workers=4,
            probe_port=0,
        ).start()
        for _ in range(2)
    ]
    fleet_endpoints = [s.endpoint(timeout=10.0) for s in replica_servers]
    for endpoint in fleet_endpoints:
        registry.register("source-net", endpoint)

    balanced = BalancedDiscovery(registry)
    fleet_relay = RelayService("dest-net", balanced)
    fleet_client = InteropClient(
        app, fleet_relay, "dest-net", gateway=destination.gateway
    )
    monitor = ReadinessMonitor(
        balanced.pool("source-net"),
        probe_urls={
            endpoint.address: server.probe.url
            for endpoint, server in zip(fleet_endpoints, replica_servers)
        },
        interval=0.1,
    ).start()
    try:
        for i in range(12):
            fleet_client.remote_query("source-net/main/docs/Get", ["invoice-7"])
        snapshot = balanced.pools()[0]
        spread = {
            key.rsplit(":", 1)[-1]: member["requests"]
            for key, member in sorted(snapshot["members"].items())
        }
        print(f"\nfleet of 2       : 12 queries balanced across ports {spread}")

        replica_servers[0].stop()  # the crash; its /readyz now refuses
        victim = fleet_endpoints[0].address
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if balanced.pools()[0]["members"][victim]["evicted"]:
                break
            time.sleep(0.05)
        for i in range(6):
            fleet_client.remote_query("source-net/main/docs/Get", ["invoice-7"])
        print("replica 0 killed : monitor evicted it off /readyz; 6 more")
        print("queries served by the survivor — zero caller-visible errors.")
    finally:
        monitor.stop()
        balanced.close()
        for server in replica_servers:
            server.stop()

    # --- 12. Three-party cycle: Fabric -> Quorum -> Corda -> Fabric ----------
    # The two-party swap of §7 generalises to a ring settled by ONE
    # preimage: the trader wants the dealer's oil, the dealer wants a
    # collector's artwork on a Corda network, the collector wants the
    # trader's gold. Every leg locks under the same hashlock with
    # per-hop DECREMENTED timelocks (leg i expires hop_gap earlier than
    # leg i-1); claims then cascade backward from the preimage holder,
    # each claim publishing on-ledger exactly the secret the upstream
    # neighbour needs. The decrement is the safety margin: a downstream
    # claim inside its own window leaves every upstream window open.
    from repro.assets.contracts import issue_corda_asset
    from repro.corda import CordaNetwork
    from repro.interop.drivers.corda_driver import CordaDriver
    from repro.store import MemoryStore

    # §§8–11 re-pointed source-net discovery at (now stopped) sockets;
    # restore the in-process relay for this walkthrough.
    for endpoint in list(registry.lookup("source-net")):
        registry.unregister("source-net", endpoint)
    registry.register("source-net", source_relay)

    # Fresh assets on the two existing networks...
    source.gateway.submit(
        source_admin, "assetscc", "Issue", ["GOLD-2", "trader@source-net", "{}"]
    )
    commodity.submit_transaction(
        commodity_invoker, "asset-vault", "Issue",
        ["OIL-10", "dealer@commodity-net", "{}"],
    )
    # ...and a third, Corda-based art network joins the ring.
    art = CordaNetwork("art-net")
    collector_node = art.add_node("carol")
    art.add_node("dana")
    art_port = InteropPort("art-net")
    art_relay = RelayService("art-net", registry)
    art_driver = CordaDriver(art, art_port)
    art_driver.enable_assets("carol")
    art_relay.register_driver(art_driver)
    registry.register("art-net", art_relay)
    issue_corda_asset(art, collector_node, "ART-7", "carol@art-net")

    # Ring governance: each vault admits its DOWNSTREAM neighbour (the
    # party that verifies and claims it). source-net already admits the
    # dealer from §7; the two new edges:
    record_foreign_network(
        source, source_admin, art,
        verification_policy="AND(org:carol, org:dana)",
    )
    commodity_port.record_network_config(art.export_config())
    art_port.record_network_config(source.export_config())
    for fn in ("ClaimAsset", "GetLock"):
        commodity_port.add_access_rule("art-net", "carol", "asset-vault", fn)
        art_port.add_access_rule("source-net", "producer-org", "asset-vault", fn)

    collector_client = InteropClient(collector_node.identity, art_relay, "art-net")
    ring = (
        InteropGateway.from_client(trader_client)     # trader is party 0
        .exchange_cycle()
        .leg("source-net/main/assetscc", "GOLD-2",
             policy="AND(org:producer-org, org:auditor-org)")
        .leg("commodity-net/state/asset-vault", "OIL-10", party=dealer_client,
             policy="AND(org:dealer-org, org:exchange-org)")
        .leg("art-net/vault/asset-vault", "ART-7", party=collector_client,
             policy="AND(org:carol, org:dana)")
        .with_window(timeout=7_200.0, hop_gap=120.0)  # leg i expires 120s earlier
        .journal_to(MemoryStore())  # point at a SqliteStore (§9) to survive crashes
        .run()
    )
    gold2 = json.loads(source.gateway.evaluate(
        source_admin, "assetscc", "GetAsset", ["GOLD-2"]))
    oil10 = json.loads(commodity.peers[0].storage_snapshot(
        "asset-vault")["asset/OIL-10"].decode())
    _, art_state = collector_node.lookup("ART-7")
    print(f"\nthree-party ring : {ring.state.value} "
          f"(one hashlock {ring.hashlock.hex()[:16]}…)")
    print(f"GOLD-2 owner     : {gold2['owner']}  (was trader@source-net)")
    print(f"OIL-10 owner     : {oil10['owner']}  (was dealer@commodity-net)")
    print(f"ART-7 owner      : {art_state.data['asset']['owner']}  (was carol@art-net)")
    print("every asset moved ONE hop around the ring, atomically; had any")
    print("leg stalled, the decremented windows guarantee each escrow is")
    print("refundable in turn — and the journal makes the coordinator")
    print("recoverable mid-cycle via CycleCoordinator.recover(store, id).")


if __name__ == "__main__":
    main()
