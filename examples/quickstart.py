#!/usr/bin/env python3
"""Quickstart: trusted data transfer between two blockchain networks.

Builds two independent Fabric-like networks, augments them for
interoperability (relays + system contracts), links them, and performs a
cross-network query whose response carries a consensus-backed proof.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

import json

from repro.api import EventVerifier, InteropGateway
from repro.fabric import Chaincode, NetworkBuilder
from repro.fabric.chaincode import require_args
from repro.interop import (
    InMemoryRegistry,
    InteropClient,
    RelayService,
    create_fabric_relay,
    enable_fabric_interop,
    link_networks,
)
from repro.interop.events import enable_relay_events
from repro.interop.transactions import enable_remote_transactions


class DocumentChaincode(Chaincode):
    """A tiny source-side contract: store and fetch documents.

    The interop-enabled dispatch (ECC check + response sealing) is the
    one-time ~tens-of-SLOC adaptation described in the paper's §5.
    """

    name = "docs"

    def invoke(self, stub):
        if stub.function == "init":
            return b"ok"
        interop_raw = stub.get_transient("interop")
        if stub.function == "Put":
            key, value = require_args(stub, 2)
            stub.put_state(key, value.encode())
            stub.set_event("DocumentStored", key.encode())
            return b"ok"
        if stub.function == "Get":
            (key,) = require_args(stub, 1)
            value = stub.get_state(key)
            if value is None:
                raise ValueError(f"no document {key!r}")
            if interop_raw is not None:  # incoming relay query
                ctx = json.loads(interop_raw)
                stub.invoke_chaincode(
                    "ecc",
                    "CheckAccess",
                    [ctx["requesting_network"], ctx["requesting_org"], self.name, "Get"],
                )
                return stub.invoke_chaincode(
                    "ecc",
                    "SealResponse",
                    [
                        value.hex(),
                        ctx["client_pubkey"],
                        "true" if ctx["confidential"] else "false",
                    ],
                )
            return value
        raise ValueError(f"unknown function {stub.function}")


def main() -> None:
    # --- 1. Two independent, self-governing networks -----------------------
    source = (
        NetworkBuilder("source-net")
        .add_org("producer-org")
        .add_org("auditor-org")
        .add_peer("peer0", "producer-org")
        .add_peer("peer0", "auditor-org")
        .add_client("admin", "producer-org")
        .build()
    )
    destination = (
        NetworkBuilder("dest-net")
        .add_org("consumer-org")
        .add_peer("peer0", "consumer-org")
        .add_client("admin", "consumer-org")
        .add_client("app", "consumer-org")
        .build()
    )
    source_admin = source.org("producer-org").member("admin")
    dest_admin = destination.org("consumer-org").member("admin")

    source.deploy_chaincode(
        DocumentChaincode(),
        "AND('producer-org.peer', 'auditor-org.peer')",
        initializer=source_admin,
    )
    source.gateway.submit(
        source_admin, "docs", "Put", ["invoice-7", '{"amount": 1200, "currency": "USD"}']
    )
    print(f"source network up: {len(source.peers)} peers, "
          f"ledger height {source.peers[0].ledger.height}")

    # --- 2. Augment for interoperability (no protocol changes) -------------
    enable_fabric_interop(source, source_admin)
    enable_fabric_interop(destination, dest_admin)
    link_networks(destination, dest_admin, source, source_admin)

    # Exposure control: consumer-org of dest-net may call docs/Get.
    source.gateway.submit(
        source_admin, "ecc", "AddAccessRule", ["dest-net", "consumer-org", "docs", "Get"]
    )

    # --- 3. Relays + discovery ---------------------------------------------
    registry = InMemoryRegistry()
    source_relay = create_fabric_relay(source, registry)
    dest_relay = RelayService("dest-net", registry)

    # --- 4. A trusted cross-network query -----------------------------------
    app = destination.org("consumer-org").member("app")
    client = InteropClient(app, dest_relay, "dest-net", gateway=destination.gateway)
    result = client.remote_query("source-net/main/docs/Get", ["invoice-7"])

    print(f"\nfetched data   : {result.data.decode()}")
    print(f"proof          : {len(result.proof)} attestations "
          f"({', '.join(sorted(a.metadata().org for a in result.proof.attestations))})")
    print(f"nonce          : {result.nonce}")
    print(f"proof size     : {len(result.proof_json)} bytes (JSON)")
    print("\nEach attestation is a source-peer signature over the query, the")
    print("nonce, and the result hash — validated against the source network's")
    print("MSP roots recorded on the destination ledger. No trusted mediator.")

    # --- 5. Batched, pipelined queries via the unified gateway ---------------
    # The repro.api façade wraps the same machinery with a fluent builder and
    # future-style handles: every submit() below is pipelined, and all three
    # queries travel to source-net in ONE batch envelope — one discovery
    # lookup, one round-trip, one failover loop, with the source driver
    # fanning the members concurrently.
    for key, value in [
        ("invoice-8", '{"amount": 760, "currency": "EUR"}'),
        ("invoice-9", '{"amount": 90, "currency": "GBP"}'),
    ]:
        source.gateway.submit(source_admin, "docs", "Put", [key, value])

    gateway = InteropGateway.from_client(client)
    handles = [
        gateway.query("source-net/main/docs/Get").with_args(key).submit()
        for key in ("invoice-7", "invoice-8", "invoice-9")
    ]
    print("\nbatched fetch via InteropGateway (one envelope round-trip):")
    for key, handle in zip(("invoice-7", "invoice-8", "invoice-9"), handles):
        document = handle.result()  # first result() flushes the whole set
        print(f"  {key}: {document.data.decode()}  "
              f"[{len(document.proof)} attestations]")
    source_relay_stats = registry.lookup("source-net")[0].stats
    print(f"source relay totals: {source_relay_stats.requests_served} queries "
          f"served, {source_relay_stats.batches_served} batch envelope(s)")

    # --- 6. Transact and subscribe through the gateway -----------------------
    # The other two §2 primitives ride the same relay machinery. A remote
    # *transaction* runs through the source network's endorse-order-commit
    # pipeline under a designated local invoker, and its attestations cover
    # the committed tx id/block. A *subscription* taps the source event hub
    # via relay envelopes; because notifications are unauthenticated, the
    # VerifiedEventStream upgrades each one with a follow-up proof-carrying
    # query before the application sees it (notify-then-verify).
    invoker = source.org("producer-org").enroll("interop-invoker", role="client")
    enable_remote_transactions(source, source_relay, invoker, discovery=registry)
    enable_relay_events(source, source_relay, source_admin)
    # Events invert the flow: the *source* relay must be able to discover
    # the subscriber's relay to push notifications to it.
    registry.register("dest-net", dest_relay)
    source.gateway.submit(
        source_admin, "ecc", "AddAccessRule", ["dest-net", "consumer-org", "docs", "Put"]
    )
    source.gateway.submit(
        source_admin, "ecc", "AddAccessRule",
        ["dest-net", "consumer-org", "docs", "event:DocumentStored"],
    )

    verifier = EventVerifier(
        address="source-net/main/docs/Get",
        # The notification payload is the stored key; fetching it with a
        # proof-carrying query IS the verification (a forged key fails the
        # query), so the consistency check just requires a non-empty doc.
        args=lambda notification: [notification.payload.decode()],
        check=lambda notification, result: result.data != b"",
    )
    stream = gateway.subscribe("source-net/main/docs", "DocumentStored",
                               verifier=verifier)

    outcome = (
        gateway.transact("source-net/main/docs/Put")
        .with_args("invoice-10", '{"amount": 3400, "currency": "CHF"}')
        .execute()
    )
    print(f"\nremote transaction: committed as {outcome.tx_id} in block "
          f"{outcome.block_number}, attested by "
          f"{', '.join(outcome.attesting_orgs)}")

    event = stream.take()  # verifies via a proof-carrying query
    print(f"verified event    : {event.notification.name} for "
          f"{event.notification.payload.decode()} -> trusted data "
          f"{event.data.decode()} [{len(event.verification.proof)} attestations]")
    print("the notification itself is untrusted; a tampered one would fail")
    print("its follow-up query and land in stream.rejected instead.")
    stream.close()


if __name__ == "__main__":
    main()
