"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.apps import build_trade_scenario, run_full_use_case
from repro.crypto.keys import generate_keypair


@pytest.fixture(scope="session")
def session_keypair():
    """One deterministic key pair for read-only crypto assertions."""
    return generate_keypair(seed=b"test-suite")


@pytest.fixture()
def trade_scenario():
    """A freshly-assembled STL+SWT interop scenario (mutable per test)."""
    return build_trade_scenario()


@pytest.fixture()
def shipped_scenario(trade_scenario):
    """A scenario advanced to 'B/L issued and L/C issued' (pre step 9)."""
    po_ref = "PO-TEST-001"
    trade_scenario.buyer_app.request_lc(po_ref, "buyer-corp", "seller-corp", 1000.0)
    trade_scenario.buyer_bank_app.issue_lc(po_ref)
    trade_scenario.stl_seller_app.create_shipment(po_ref, "test goods")
    trade_scenario.carrier_app.accept_shipment(po_ref)
    trade_scenario.carrier_app.record_handover(po_ref)
    trade_scenario.carrier_app.issue_bill_of_lading(po_ref, vessel="MV Test")
    return trade_scenario, po_ref


@pytest.fixture(scope="module")
def completed_use_case():
    """A full use-case run (module-scoped: read-only assertions only)."""
    scenario = build_trade_scenario()
    result = run_full_use_case(scenario, po_ref="PO-MODULE-001")
    return scenario, result
