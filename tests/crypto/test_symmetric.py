"""Tests for ChaCha20, the AEAD construction, HKDF and hashing helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aead import KEY_LEN, NONCE_LEN, open_, seal
from repro.crypto.chacha20 import chacha20_xor
from repro.crypto.hashing import constant_time_equal, hmac_sha256, sha256, sha256_hex
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract
from repro.errors import DecryptionError


class TestChaCha20RFC8439:
    """Official test vector from RFC 8439 §2.4.2."""

    KEY = bytes(range(32))
    NONCE = bytes.fromhex("000000000000004a00000000")
    PLAINTEXT = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    CIPHERTEXT = bytes.fromhex(
        "6e2e359a2568f98041ba0728dd0d6981"
        "e97e7aec1d4360c20a27afccfd9fae0b"
        "f91b65c5524733ab8f593dabcd62b357"
        "1639d624e65152ab8f530c359f0861d8"
        "07ca0dbf500d6a6156a38e088a22b65e"
        "52bc514d16ccf806818ce91ab7793736"
        "5af90bbf74a35be6b40b8eedf2785e42"
        "874d"
    )

    def test_rfc8439_encrypt(self):
        assert (
            chacha20_xor(self.KEY, self.NONCE, self.PLAINTEXT, initial_counter=1)
            == self.CIPHERTEXT
        )

    def test_rfc8439_decrypt(self):
        assert (
            chacha20_xor(self.KEY, self.NONCE, self.CIPHERTEXT, initial_counter=1)
            == self.PLAINTEXT
        )

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            chacha20_xor(b"\x00" * 31, self.NONCE, b"data")

    def test_nonce_length_enforced(self):
        with pytest.raises(ValueError):
            chacha20_xor(self.KEY, b"\x00" * 11, b"data")

    def test_empty_plaintext(self):
        assert chacha20_xor(self.KEY, self.NONCE, b"") == b""

    @settings(max_examples=25, deadline=None)
    @given(data=st.binary(max_size=1024))
    def test_xor_is_involution(self, data):
        once = chacha20_xor(self.KEY, self.NONCE, data)
        assert chacha20_xor(self.KEY, self.NONCE, once) == data


class TestAEAD:
    KEY = bytes(range(KEY_LEN))

    def test_roundtrip(self):
        box = seal(self.KEY, b"secret", b"context")
        assert open_(self.KEY, box, b"context") == b"secret"

    def test_tampered_ciphertext_rejected(self):
        box = bytearray(seal(self.KEY, b"secret"))
        box[NONCE_LEN] ^= 0x01
        with pytest.raises(DecryptionError):
            open_(self.KEY, bytes(box))

    def test_tampered_tag_rejected(self):
        box = bytearray(seal(self.KEY, b"secret"))
        box[-1] ^= 0x01
        with pytest.raises(DecryptionError):
            open_(self.KEY, bytes(box))

    def test_associated_data_mismatch_rejected(self):
        box = seal(self.KEY, b"secret", b"ad-1")
        with pytest.raises(DecryptionError):
            open_(self.KEY, box, b"ad-2")

    def test_truncated_box_rejected(self):
        with pytest.raises(DecryptionError):
            open_(self.KEY, b"\x00" * (NONCE_LEN + 10))

    def test_wrong_key_rejected(self):
        box = seal(self.KEY, b"secret")
        with pytest.raises(DecryptionError):
            open_(bytes(reversed(self.KEY)), box)

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            seal(b"\x00" * 16, b"data")

    def test_explicit_nonce_is_deterministic(self):
        nonce = b"\x07" * NONCE_LEN
        assert seal(self.KEY, b"x", nonce=nonce) == seal(self.KEY, b"x", nonce=nonce)

    def test_random_nonces_differ(self):
        assert seal(self.KEY, b"x") != seal(self.KEY, b"x")

    @settings(max_examples=25, deadline=None)
    @given(data=st.binary(max_size=512), ad=st.binary(max_size=64))
    def test_roundtrip_property(self, data, ad):
        assert open_(self.KEY, seal(self.KEY, data, ad), ad) == data


class TestHKDF:
    """RFC 5869 Test Case 1."""

    IKM = b"\x0b" * 22
    SALT = bytes(range(13))
    INFO = bytes(range(0xF0, 0xFA))

    def test_rfc5869_case1(self):
        okm = hkdf(self.IKM, 42, salt=self.SALT, info=self.INFO)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_extract_then_expand_matches_oneshot(self):
        prk = hkdf_extract(self.SALT, self.IKM)
        assert hkdf_expand(prk, self.INFO, 42) == hkdf(
            self.IKM, 42, salt=self.SALT, info=self.INFO
        )

    def test_empty_salt_allowed(self):
        assert len(hkdf(b"ikm", 32)) == 32

    def test_output_length_respected(self):
        for length in (1, 31, 32, 33, 100):
            assert len(hkdf(b"ikm", length)) == length

    def test_too_long_output_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", 255 * 32 + 1)

    def test_different_info_different_keys(self):
        assert hkdf(b"ikm", 32, info=b"a") != hkdf(b"ikm", 32, info=b"b")


class TestHashing:
    def test_sha256_known_value(self):
        assert sha256_hex(b"abc") == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha256_multi_chunk(self):
        assert sha256(b"ab", b"c") == sha256(b"abc")

    def test_hmac_multi_chunk(self):
        assert hmac_sha256(b"k", b"ab", b"c") == hmac_sha256(b"k", b"abc")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"same", b"same")
        assert not constant_time_equal(b"same", b"diff")
