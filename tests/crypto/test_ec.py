"""Tests for P-256 curve arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ec
from repro.errors import InvalidKeyError

scalars = st.integers(min_value=1, max_value=ec.N - 1)


class TestCurveBasics:
    def test_generator_is_on_curve(self):
        assert ec.is_on_curve(ec.GENERATOR)

    def test_infinity_is_on_curve(self):
        assert ec.is_on_curve(None)

    def test_off_curve_point_rejected(self):
        assert not ec.is_on_curve((1, 1))

    def test_out_of_range_coordinates_rejected(self):
        assert not ec.is_on_curve((ec.P + 1, 2))

    def test_generator_has_order_n(self):
        assert ec.scalar_mult(ec.N) is None

    def test_known_scalar_multiple(self):
        # 2G for P-256 (published test value).
        point = ec.scalar_mult(2)
        assert point is not None
        assert point[0] == int(
            "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978", 16
        )
        assert point[1] == int(
            "07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1", 16
        )


class TestGroupLaws:
    def test_add_identity(self):
        assert ec.point_add(ec.GENERATOR, None) == ec.GENERATOR
        assert ec.point_add(None, ec.GENERATOR) == ec.GENERATOR

    def test_add_inverse_is_infinity(self):
        assert ec.point_add(ec.GENERATOR, ec.point_neg(ec.GENERATOR)) is None

    def test_double_matches_add(self):
        assert ec.point_double(ec.GENERATOR) == ec.point_add(
            ec.GENERATOR, ec.GENERATOR
        )

    def test_associativity_sample(self):
        p2 = ec.scalar_mult(2)
        p3 = ec.scalar_mult(3)
        left = ec.point_add(ec.point_add(ec.GENERATOR, p2), p3)
        right = ec.point_add(ec.GENERATOR, ec.point_add(p2, p3))
        assert left == right

    @settings(max_examples=20, deadline=None)
    @given(a=scalars, b=scalars)
    def test_scalar_mult_distributes_over_addition(self, a, b):
        combined = ec.scalar_mult((a + b) % ec.N)
        separate = ec.point_add(ec.scalar_mult(a), ec.scalar_mult(b))
        assert combined == separate

    @settings(max_examples=10, deadline=None)
    @given(k=scalars)
    def test_scalar_mult_results_stay_on_curve(self, k):
        assert ec.is_on_curve(ec.scalar_mult(k))

    def test_scalar_mult_zero_is_infinity(self):
        assert ec.scalar_mult(0) is None

    def test_scalar_mult_rejects_off_curve_point(self):
        with pytest.raises(InvalidKeyError):
            ec.scalar_mult(2, (1, 1))


class TestEncoding:
    def test_roundtrip(self):
        encoded = ec.encode_point(ec.GENERATOR)
        assert len(encoded) == 65
        assert encoded[0] == 0x04
        assert ec.decode_point(encoded) == ec.GENERATOR

    def test_cannot_encode_infinity(self):
        with pytest.raises(InvalidKeyError):
            ec.encode_point(None)

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(InvalidKeyError):
            ec.decode_point(b"\x04" + b"\x00" * 10)

    def test_decode_rejects_wrong_prefix(self):
        encoded = bytearray(ec.encode_point(ec.GENERATOR))
        encoded[0] = 0x02
        with pytest.raises(InvalidKeyError):
            ec.decode_point(bytes(encoded))

    def test_decode_rejects_off_curve(self):
        bogus = b"\x04" + (5).to_bytes(32, "big") + (7).to_bytes(32, "big")
        with pytest.raises(InvalidKeyError):
            ec.decode_point(bogus)

    def test_inverse_mod(self):
        for value in (1, 2, 12345, ec.N - 1):
            assert (value * ec.inverse_mod(value, ec.N)) % ec.N == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ec.inverse_mod(0, ec.P)
