"""Tests for ECIES hybrid encryption, certificates/CAs, and Merkle trees."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.certs import (
    Certificate,
    CertificateAuthority,
    Subject,
    validate_chain,
)
from repro.crypto.ecies import ecies_decrypt, ecies_encrypt
from repro.crypto.keys import generate_keypair
from repro.crypto.merkle import AuditStep, MerkleTree, verify_audit_path
from repro.errors import CertificateError, DecryptionError


@pytest.fixture(scope="module")
def recipient():
    return generate_keypair(seed=b"ecies-recipient")


class TestECIES:
    def test_roundtrip(self, recipient):
        box = ecies_encrypt(recipient.public, b"top secret")
        assert ecies_decrypt(recipient.private, box) == b"top secret"

    def test_associated_data_binding(self, recipient):
        box = ecies_encrypt(recipient.public, b"data", b"ad")
        assert ecies_decrypt(recipient.private, box, b"ad") == b"data"
        with pytest.raises(DecryptionError):
            ecies_decrypt(recipient.private, box, b"other")

    def test_wrong_recipient_cannot_decrypt(self, recipient):
        box = ecies_encrypt(recipient.public, b"data")
        other = generate_keypair(seed=b"interloper")
        with pytest.raises(DecryptionError):
            ecies_decrypt(other.private, box)

    def test_ciphertexts_are_randomized(self, recipient):
        assert ecies_encrypt(recipient.public, b"x") != ecies_encrypt(
            recipient.public, b"x"
        )

    def test_fixed_ephemeral_reuses_public_prefix(self, recipient):
        ephemeral = generate_keypair(seed=b"fixed-ephemeral")
        a = ecies_encrypt(recipient.public, b"x", ephemeral=ephemeral)
        b = ecies_encrypt(recipient.public, b"x", ephemeral=ephemeral)
        # The ephemeral public key prefix is fixed; the AEAD nonce still
        # randomizes the remainder of the box.
        assert a[:65] == b[:65] == ephemeral.public.to_bytes()
        assert ecies_decrypt(recipient.private, a) == b"x"
        assert ecies_decrypt(recipient.private, b) == b"x"

    def test_truncated_box_rejected(self, recipient):
        with pytest.raises(DecryptionError):
            ecies_decrypt(recipient.private, b"\x04" + b"\x00" * 30)

    def test_tampered_ephemeral_key_rejected(self, recipient):
        box = bytearray(ecies_encrypt(recipient.public, b"data"))
        box[10] ^= 0x01
        with pytest.raises((DecryptionError, Exception)):
            ecies_decrypt(recipient.private, bytes(box))

    def test_empty_plaintext(self, recipient):
        box = ecies_encrypt(recipient.public, b"")
        assert ecies_decrypt(recipient.private, box) == b""

    @settings(max_examples=10, deadline=None)
    @given(data=st.binary(max_size=256))
    def test_roundtrip_property(self, recipient, data):
        assert ecies_decrypt(recipient.private, ecies_encrypt(recipient.public, data)) == data


class TestCertificates:
    @pytest.fixture(scope="class")
    def ca(self):
        return CertificateAuthority("acme-org", network="acme-net")

    def test_root_is_self_signed(self, ca):
        assert ca.root_certificate.is_self_signed
        assert ca.root_certificate.verify_signed_by(ca.public_key)

    def test_issue_and_validate(self, ca):
        keypair, cert = ca.enroll("peer0", role="peer")
        assert cert.subject.common_name == "peer0"
        assert cert.subject.organization == "acme-org"
        assert cert.subject.role == "peer"
        assert cert.public_key == keypair.public
        root = validate_chain(cert, [ca.root_certificate])
        assert root is ca.root_certificate

    def test_serial_numbers_increase(self, ca):
        _, cert_a = ca.enroll("a")
        _, cert_b = ca.enroll("b")
        assert cert_b.serial > cert_a.serial

    def test_serialization_roundtrip(self, ca):
        _, cert = ca.enroll("roundtrip")
        assert Certificate.from_bytes(cert.to_bytes()) == cert

    def test_malformed_bytes_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.from_bytes(b"not json at all")

    def test_validation_rejects_unknown_issuer(self, ca):
        other = CertificateAuthority("other-org")
        _, cert = other.enroll("impostor")
        with pytest.raises(CertificateError, match="no trusted root"):
            validate_chain(cert, [ca.root_certificate])

    def test_validation_rejects_expired(self):
        ca = CertificateAuthority("short-org", validity_seconds=10.0)
        _, cert = ca.enroll("member")
        with pytest.raises(CertificateError, match="validity"):
            validate_chain(cert, [ca.root_certificate], at_time=100.0)

    def test_validation_rejects_forged_signature(self, ca):
        _, cert = ca.enroll("victim")
        forged = Certificate(
            subject=Subject("mallory", "acme-org", "admin", "acme-net"),
            issuer=cert.issuer,
            public_key=cert.public_key,
            serial=cert.serial,
            not_before=cert.not_before,
            not_after=cert.not_after,
            signature=cert.signature,  # signature over different TBS bytes
        )
        with pytest.raises(CertificateError, match="invalid signature"):
            validate_chain(forged, [ca.root_certificate])

    def test_validation_rejects_non_self_signed_root(self, ca):
        _, member = ca.enroll("member-as-root")
        with pytest.raises(CertificateError, match="not self-signed"):
            validate_chain(member, [member])


class TestMerkle:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert verify_audit_path(b"only", tree.audit_path(0), tree.root)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_audit_paths_for_all_leaves(self):
        leaves = [f"leaf-{i}".encode() for i in range(7)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert verify_audit_path(leaf, tree.audit_path(index), tree.root)

    def test_wrong_leaf_fails(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        assert not verify_audit_path(b"x", tree.audit_path(1), tree.root)

    def test_wrong_root_fails(self):
        tree = MerkleTree([b"a", b"b"])
        assert not verify_audit_path(b"a", tree.audit_path(0), b"\x00" * 32)

    def test_root_depends_on_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_leaf_interior_domain_separation(self):
        # A tree over one leaf must differ from a tree whose root equals
        # that leaf's raw hash (second-preimage hardening).
        inner = MerkleTree([b"a", b"b"])
        assert MerkleTree([inner.root]).root != inner.root

    def test_index_out_of_range(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.audit_path(1)

    def test_len(self):
        assert len(MerkleTree([b"a", b"b", b"c"])) == 3

    @settings(max_examples=20, deadline=None)
    @given(
        leaves=st.lists(st.binary(min_size=0, max_size=32), min_size=1, max_size=33),
        data=st.data(),
    )
    def test_audit_path_property(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(0, len(leaves) - 1))
        path = tree.audit_path(index)
        assert verify_audit_path(leaves[index], path, tree.root)

    def test_tampered_path_step_fails(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        path = tree.audit_path(2)
        tampered = [AuditStep(sibling=b"\x00" * 32, sibling_is_left=s.sibling_is_left) for s in path]
        assert not verify_audit_path(b"c", tampered, tree.root)
