"""Tests for ECDSA signatures and key handling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ec
from repro.crypto.ecdsa import Signature, sign, verify, verify_or_raise
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, generate_keypair
from repro.errors import InvalidKeyError, InvalidSignatureError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(seed=b"ecdsa-tests")


class TestKeys:
    def test_generate_is_deterministic_with_seed(self):
        a = generate_keypair(seed=b"same")
        b = generate_keypair(seed=b"same")
        assert a.private.d == b.private.d

    def test_generate_differs_across_seeds(self):
        assert generate_keypair(seed=b"x").private.d != generate_keypair(seed=b"y").private.d

    def test_public_key_matches_private(self, keypair):
        assert keypair.private.public_key() == keypair.public

    def test_private_key_range_enforced(self):
        with pytest.raises(InvalidKeyError):
            PrivateKey(0)
        with pytest.raises(InvalidKeyError):
            PrivateKey(ec.N)

    def test_public_key_must_be_on_curve(self):
        with pytest.raises(InvalidKeyError):
            PublicKey(1, 1)

    def test_private_serialization_roundtrip(self, keypair):
        raw = keypair.private.to_bytes()
        assert len(raw) == 32
        assert PrivateKey.from_bytes(raw) == keypair.private

    def test_private_wrong_length_rejected(self):
        with pytest.raises(InvalidKeyError):
            PrivateKey.from_bytes(b"\x01" * 31)

    def test_public_serialization_roundtrip(self, keypair):
        raw = keypair.public.to_bytes()
        assert len(raw) == 65
        assert PublicKey.from_bytes(raw) == keypair.public

    def test_fingerprint_is_stable_and_short(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 16

    def test_keypair_from_private(self, keypair):
        rebuilt = KeyPair.from_private(keypair.private)
        assert rebuilt.public == keypair.public


class TestSignatures:
    def test_sign_verify_roundtrip(self, keypair):
        signature = sign(keypair.private, b"payload")
        assert verify(keypair.public, b"payload", signature)

    def test_deterministic_nonces(self, keypair):
        assert sign(keypair.private, b"m") == sign(keypair.private, b"m")

    def test_different_messages_different_signatures(self, keypair):
        assert sign(keypair.private, b"m1") != sign(keypair.private, b"m2")

    def test_tampered_message_fails(self, keypair):
        signature = sign(keypair.private, b"payload")
        assert not verify(keypair.public, b"payloae", signature)

    def test_wrong_key_fails(self, keypair):
        other = generate_keypair(seed=b"other")
        signature = sign(keypair.private, b"payload")
        assert not verify(other.public, b"payload", signature)

    def test_low_s_normalization(self, keypair):
        signature = sign(keypair.private, b"payload")
        assert signature.s <= ec.N // 2

    def test_out_of_range_components_rejected(self, keypair):
        assert not verify(keypair.public, b"m", Signature(0, 1))
        assert not verify(keypair.public, b"m", Signature(1, ec.N))

    def test_serialization_roundtrip(self, keypair):
        signature = sign(keypair.private, b"payload")
        raw = signature.to_bytes()
        assert len(raw) == 64
        assert Signature.from_bytes(raw) == signature

    def test_bad_serialization_length(self):
        with pytest.raises(InvalidSignatureError):
            Signature.from_bytes(b"\x00" * 63)

    def test_verify_or_raise(self, keypair):
        signature = sign(keypair.private, b"payload")
        verify_or_raise(keypair.public, b"payload", signature)
        with pytest.raises(InvalidSignatureError):
            verify_or_raise(keypair.public, b"other", signature)

    def test_empty_message_signable(self, keypair):
        assert verify(keypair.public, b"", sign(keypair.private, b""))

    @settings(max_examples=15, deadline=None)
    @given(message=st.binary(min_size=0, max_size=512))
    def test_roundtrip_property(self, keypair, message):
        signature = sign(keypair.private, message)
        assert verify(keypair.public, message, signature)

    @settings(max_examples=10, deadline=None)
    @given(message=st.binary(min_size=1, max_size=64), flip=st.integers(0, 63))
    def test_signature_corruption_detected(self, keypair, message, flip):
        signature = sign(keypair.private, message)
        raw = bytearray(signature.to_bytes())
        raw[flip % len(raw)] ^= 0x01
        try:
            corrupted = Signature.from_bytes(bytes(raw))
        except InvalidSignatureError:
            return
        assert not verify(keypair.public, message, corrupted)
