"""Property tests for the append-only WAL (hypothesis).

The durability contract the rest of the repo leans on:

1. replay of a cleanly-closed WAL reconstructs exactly the applied
   batches, in order;
2. a torn final record (the process died mid-``write``/pre-``fsync``)
   is dropped on reopen and NEVER corrupts earlier records;
3. arbitrary junk appended after the last good frame is likewise
   confined to the tail;
4. a reopened-after-tear WAL accepts new appends and replays the
   repaired history plus the new batches.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import StoreOp, WriteAheadLog, apply_ops_to_map
from repro.store.wal import HEADER_LEN

NAMESPACES = st.sampled_from(["relay/idempotency", "assets/exchanges", "n"])
KEYS = st.text(alphabet="abcdef-", min_size=1, max_size=8)
VALUES = st.binary(max_size=24)

OPS = st.one_of(
    st.builds(StoreOp.put, NAMESPACES, KEYS, VALUES),
    st.builds(StoreOp.delete, NAMESPACES, KEYS),
)

BATCHES = st.lists(st.lists(OPS, min_size=1, max_size=4), max_size=8)
NONEMPTY_BATCHES = st.lists(
    st.lists(OPS, min_size=1, max_size=4), min_size=1, max_size=6
)


def _write_wal(directory: str, batches) -> tuple[Path, list[int]]:
    """Append ``batches``; return the path and the size after each append."""
    path = Path(directory) / "journal.wal"
    wal = WriteAheadLog(path, fsync=False)
    sizes = []
    for batch in batches:
        wal.append(batch)
        sizes.append(wal.size_bytes)
    wal.close()
    return path, sizes


def _final_state(batches) -> dict:
    expected: dict[str, dict[str, bytes]] = {}
    for batch in batches:
        apply_ops_to_map(expected, batch)
    return expected


@settings(max_examples=60, deadline=None)
@given(batches=BATCHES)
def test_replay_reconstructs_final_state(batches):
    """Clean close → reopen replays every batch; applying the replayed
    batches yields the same map as applying the originals."""
    with tempfile.TemporaryDirectory() as directory:
        path, _ = _write_wal(directory, batches)
        reopened = WriteAheadLog(path, fsync=False)
        try:
            assert reopened.recovered == [list(batch) for batch in batches]
            assert _final_state(reopened.recovered) == _final_state(batches)
        finally:
            reopened.close()


@settings(max_examples=60, deadline=None)
@given(batches=NONEMPTY_BATCHES, cut=st.integers(min_value=0))
def test_torn_final_record_dropped_earlier_records_intact(batches, cut):
    """Truncate anywhere inside (or at the start of) the last frame: the
    final batch vanishes, every earlier batch replays untouched."""
    with tempfile.TemporaryDirectory() as directory:
        path, sizes = _write_wal(directory, batches)
        last_start = sizes[-2] if len(sizes) > 1 else HEADER_LEN
        cut_point = last_start + cut % (sizes[-1] - last_start)
        with open(path, "r+b") as handle:
            handle.truncate(cut_point)
        reopened = WriteAheadLog(path, fsync=False)
        try:
            assert reopened.recovered == [list(b) for b in batches[:-1]]
        finally:
            reopened.close()


@settings(max_examples=60, deadline=None)
@given(batches=BATCHES, junk=st.binary(min_size=1, max_size=16))
def test_junk_tail_never_corrupts_committed_batches(batches, junk):
    """Garbage after the last good frame (a torn write of any shape) may
    at worst be dropped — committed batches always replay."""
    with tempfile.TemporaryDirectory() as directory:
        path, _ = _write_wal(directory, batches)
        with open(path, "ab") as handle:
            handle.write(junk)
        reopened = WriteAheadLog(path, fsync=False)
        try:
            assert reopened.recovered[: len(batches)] == [
                list(batch) for batch in batches
            ]
        finally:
            reopened.close()


@settings(max_examples=40, deadline=None)
@given(
    batches=NONEMPTY_BATCHES,
    tail=st.lists(st.lists(OPS, min_size=1, max_size=3), min_size=1, max_size=3),
)
def test_reopen_after_tear_accepts_appends(batches, tail):
    """A torn WAL self-repairs on open: subsequent appends commit, and a
    further reopen replays repaired history + the new batches."""
    with tempfile.TemporaryDirectory() as directory:
        path, sizes = _write_wal(directory, batches)
        last_start = sizes[-2] if len(sizes) > 1 else HEADER_LEN
        with open(path, "r+b") as handle:
            handle.truncate(last_start + 3)  # mid-header tear
        repaired = WriteAheadLog(path, fsync=False)
        for batch in tail:
            repaired.append(batch)
        repaired.close()
        reopened = WriteAheadLog(path, fsync=False)
        try:
            assert reopened.recovered == [
                list(batch) for batch in batches[:-1] + tail
            ]
        finally:
            reopened.close()
