"""Coordinator crash recovery: journal + proof-carrying readbacks.

A coordinator journaling to a :class:`~repro.store.SqliteStore` is
killed at various points of the HTLC ladder; a fresh process
:meth:`~repro.assets.AssetExchangeCoordinator.resume`\\ s it from the
journal, :meth:`recover`\\ s the one in-flight ambiguity through
``GetLock`` readbacks against the ledgers, and :meth:`run` finishes the
exchange — ownership swaps exactly once on both heterogeneous ledgers.
"""

from __future__ import annotations

import pytest

from repro.assets import ExchangeState
from repro.assets.coordinator import (
    NS_EXCHANGES,
    AssetExchangeCoordinator,
    AssetSpec,
)
from repro.errors import AssetError, ExchangeStateError
from repro.store import SqliteStore

OFFER_ADDRESS = "fabnet/trade/assetscc"
ASK_ADDRESS = "quornet/state/asset-vault"
OFFER_POLICY = "AND(org:traders-org, org:audit-org)"
ASK_POLICY = "AND(org:op-org-1, org:op-org-2)"

EXCHANGE_ID = "exch-recovery-1"


def build_coordinator(scenario, store, exchange_id=EXCHANGE_ID):
    return AssetExchangeCoordinator(
        scenario.alice_client,
        scenario.bob_client,
        AssetSpec.parse(OFFER_ADDRESS, "GOLD-1"),
        AssetSpec.parse(ASK_ADDRESS, "OIL-9"),
        offer_policy=OFFER_POLICY,
        ask_policy=ASK_POLICY,
        store=store,
        exchange_id=exchange_id,
    )


def crash_and_resume(scenario, store, tmp_path, exchange_id=EXCHANGE_ID):
    """Model the coordinator process dying: its store handle closes, a
    fresh process reopens the state directory and resumes the journal."""
    store.close()
    reopened = SqliteStore(tmp_path / "coordinator", fsync=False)
    resumed = AssetExchangeCoordinator.resume(
        scenario.alice_client,
        scenario.bob_client,
        reopened,
        exchange_id,
        offer_policy=OFFER_POLICY,
        ask_policy=ASK_POLICY,
    )
    return resumed, reopened


class TestCrashRecovery:
    def test_killed_between_counter_lock_and_claim_completes(
        self, exchange_scenario, tmp_path
    ):
        """THE acceptance scenario: crash after the counter lock is
        verified, before any claim — the resumed coordinator finishes
        and both ledgers swap ownership exactly once."""
        scenario = exchange_scenario
        store = SqliteStore(tmp_path / "coordinator", fsync=False)
        coordinator = build_coordinator(scenario, store)
        coordinator.lock_offer()
        coordinator.verify_offer()
        coordinator.lock_counter()
        coordinator.verify_counter()
        del coordinator  # the process dies here

        resumed, reopened = crash_and_resume(scenario, store, tmp_path)
        assert resumed.state is ExchangeState.COUNTER_VERIFIED
        # No claim was in flight: recovery's readback sees the ask escrow
        # still locked and leaves the machine where the journal put it.
        assert resumed.recover() is ExchangeState.COUNTER_VERIFIED
        result = resumed.run()

        assert result.completed
        assert result.preimage == resumed.preimage
        assert scenario.gold_owner() == "bob@quornet"
        assert scenario.oil_owner() == "alice@fabnet"
        reopened.close()

    def test_claim_landed_but_unjournaled_is_fast_forwarded(
        self, exchange_scenario, tmp_path
    ):
        """Crash between the counter claim committing and the journal
        write: the preimage is already PUBLIC on the ask ledger, so
        recovery must move past the reveal instead of re-claiming."""
        scenario = exchange_scenario
        store = SqliteStore(tmp_path / "coordinator", fsync=False)
        coordinator = build_coordinator(scenario, store)
        coordinator.lock_offer()
        coordinator.verify_offer()
        coordinator.lock_counter()
        coordinator.verify_counter()
        stale = store.get(NS_EXCHANGES, EXCHANGE_ID)
        coordinator.claim_counter()  # commits on the Quorum vault...
        store.put(NS_EXCHANGES, EXCHANGE_ID, stale)  # ...journal lost

        resumed, reopened = crash_and_resume(scenario, store, tmp_path)
        assert resumed.state is ExchangeState.COUNTER_VERIFIED
        assert resumed.recover() is ExchangeState.COUNTER_CLAIMED
        assert resumed.result.preimage == resumed.preimage
        result = resumed.run()

        assert result.completed
        assert scenario.gold_owner() == "bob@quornet"
        assert scenario.oil_owner() == "alice@fabnet"
        reopened.close()

    def test_offer_lock_landed_but_unjournaled_is_fast_forwarded(
        self, exchange_scenario, tmp_path
    ):
        """Crash between the offer lock committing and the journal write:
        the responder's readback finds the escrow under this exchange's
        hashlock and fast-forwards past the lock step."""
        scenario = exchange_scenario
        store = SqliteStore(tmp_path / "coordinator", fsync=False)
        coordinator = build_coordinator(scenario, store)
        stale = store.get(NS_EXCHANGES, EXCHANGE_ID)
        coordinator.lock_offer()
        store.put(NS_EXCHANGES, EXCHANGE_ID, stale)

        resumed, reopened = crash_and_resume(scenario, store, tmp_path)
        assert resumed.state is ExchangeState.CREATED
        assert resumed.recover() is ExchangeState.OFFER_LOCKED
        assert resumed.offer_deadline is not None
        result = resumed.run()

        assert result.completed
        assert scenario.gold_owner() == "bob@quornet"
        assert scenario.oil_owner() == "alice@fabnet"
        reopened.close()

    def test_refunded_leg_is_not_refunded_again_after_crash(
        self, exchange_scenario, tmp_path
    ):
        """The per-leg refund flags are journaled the moment each unlock
        lands: a coordinator that died mid-refund (counter leg unwound,
        offer leg's timelock still running) must unwind ONLY the offer
        leg after resume."""
        scenario = exchange_scenario
        store = SqliteStore(tmp_path / "coordinator", fsync=False)
        coordinator = build_coordinator(scenario, store)
        coordinator.lock_offer()
        coordinator.verify_offer()
        coordinator.lock_counter()
        # Counter timelock (300s) expires; offer timelock (600s) has not.
        scenario.clock.advance(350.0)
        with pytest.raises(AssetError, match="offer refund refused"):
            coordinator.refund()  # counter unwound, then the crash

        resumed, reopened = crash_and_resume(scenario, store, tmp_path)
        assert resumed.state is ExchangeState.COUNTER_LOCKED
        scenario.clock.advance(300.0)  # now the offer window is open too
        acks = resumed.refund()
        assert len(acks) == 1  # ONLY the offer leg; no counter re-unlock
        assert acks[0].asset_id == "GOLD-1"
        assert resumed.state is ExchangeState.REFUNDED
        assert scenario.gold_owner() == "alice@fabnet"
        assert scenario.oil_owner() == "bob@quornet"
        reopened.close()

    def test_resume_unknown_exchange_raises(self, exchange_scenario, tmp_path):
        store = SqliteStore(tmp_path / "coordinator", fsync=False)
        with pytest.raises(ExchangeStateError, match="no journaled exchange"):
            AssetExchangeCoordinator.resume(
                exchange_scenario.alice_client,
                exchange_scenario.bob_client,
                store,
                "exch-never-started",
            )
        store.close()
