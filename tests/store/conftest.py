"""Shared fixture for coordinator crash-recovery: the same ready
Fabric↔Quorum deployment as ``tests/assets`` (``GOLD-1`` owned by
``alice@fabnet``, ``OIL-9`` by ``bob@quornet``, one shared
:class:`SimulatedClock`), rebuilt here so the store suite stays
self-contained.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.assets import FabricAssetChaincode, QuorumAssetContract
from repro.fabric import NetworkBuilder
from repro.interop import InMemoryRegistry, InteropClient, RelayService
from repro.interop.bootstrap import (
    create_fabric_relay,
    enable_fabric_interop,
    record_foreign_network,
)
from repro.interop.contracts.ports import InteropPort
from repro.interop.drivers.quorum_driver import QuorumDriver
from repro.quorum import QuorumNetwork
from repro.utils.clock import SimulatedClock

OFFER_ADDRESS = "fabnet/trade/assetscc"
ASK_ADDRESS = "quornet/state/asset-vault"
OFFER_POLICY = "AND(org:traders-org, org:audit-org)"
ASK_POLICY = "AND(org:op-org-1, org:op-org-2)"


@pytest.fixture()
def exchange_scenario():
    clock = SimulatedClock(1_000.0)

    fabric = (
        NetworkBuilder("fabnet", channel="trade", clock=clock)
        .add_org("traders-org")
        .add_org("audit-org")
        .add_peer("peer0", "traders-org")
        .add_peer("peer0", "audit-org")
        .add_client("admin", "traders-org")
        .add_client("alice", "traders-org")
        .build()
    )
    fabric_admin = fabric.org("traders-org").member("admin")
    alice = fabric.org("traders-org").member("alice")
    enable_fabric_interop(fabric, fabric_admin)
    fabric.deploy_chaincode(
        FabricAssetChaincode(),
        "AND('traders-org.peer', 'audit-org.peer')",
        initializer=fabric_admin,
    )
    fabric.gateway.submit(
        fabric_admin, "assetscc", "Issue", ["GOLD-1", "alice@fabnet", "{}"]
    )

    quorum = QuorumNetwork("quornet", clock=clock)
    quorum.deploy_contract(QuorumAssetContract())
    quorum.add_peer("peer1", "op-org-1")
    quorum.add_peer("peer2", "op-org-2")
    bob = quorum.enroll_client("bob", "op-org-1")
    quorum_invoker = quorum.enroll_client("asset-invoker", "op-org-1")
    quorum.submit_transaction(
        quorum_invoker, "asset-vault", "Issue", ["OIL-9", "bob@quornet", "{}"]
    )
    quorum_port = InteropPort("quornet")
    quorum_port.record_network_config(fabric.export_config())
    for function in ("LockAsset", "ClaimAsset", "UnlockAsset", "GetLock"):
        quorum_port.add_access_rule("fabnet", "traders-org", "asset-vault", function)

    registry = InMemoryRegistry()
    fabric_relay = create_fabric_relay(fabric, registry)
    fabric_invoker = fabric.org("traders-org").enroll("asset-invoker", role="client")
    fabric_relay.driver_for("fabnet").enable_assets(fabric_invoker)

    quorum_relay = RelayService("quornet", registry, clock=clock)
    quorum_driver = QuorumDriver(quorum, quorum_port)
    quorum_driver.enable_assets(quorum_invoker)
    quorum_relay.register_driver(quorum_driver)
    registry.register("quornet", quorum_relay)

    for function in ("ClaimAsset", "UnlockAsset", "GetLock"):
        fabric.gateway.submit(
            fabric_admin,
            "ecc",
            "AddAccessRule",
            ["quornet", "op-org-1", "assetscc", function],
        )
    record_foreign_network(
        fabric, fabric_admin, quorum, verification_policy=ASK_POLICY
    )

    def gold_owner() -> str:
        raw = fabric.gateway.evaluate(fabric_admin, "assetscc", "GetAsset", ["GOLD-1"])
        return json.loads(raw)["owner"]

    def oil_owner() -> str:
        raw = quorum.peers[0].storage_snapshot("asset-vault")["asset/OIL-9"]
        return json.loads(raw.decode())["owner"]

    return SimpleNamespace(
        clock=clock,
        fabric=fabric,
        fabric_admin=fabric_admin,
        fabric_relay=fabric_relay,
        quorum=quorum,
        quorum_port=quorum_port,
        quorum_relay=quorum_relay,
        registry=registry,
        alice_client=InteropClient(alice, fabric_relay, "fabnet", gateway=fabric.gateway),
        bob_client=InteropClient(bob, quorum_relay, "quornet"),
        gold_owner=gold_owner,
        oil_owner=oil_owner,
    )
