"""Backend conformance for the :class:`repro.store.StateStore` seam.

Both backends must agree on the read/write/batch semantics; only
durability across process boundaries (modeled as close + reopen of the
same directory) separates them.
"""

from __future__ import annotations

import pytest

from repro.errors import StoreCorruptionError, StoreError, StoreMigrationError
from repro.store import (
    MemoryStore,
    SqliteStore,
    StateStore,
    StoreOp,
    open_store,
)


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        backend: StateStore = MemoryStore()
    else:
        backend = SqliteStore(tmp_path / "state", fsync=False)
    yield backend
    backend.close()


class TestCommonSemantics:
    def test_put_get_delete_roundtrip(self, store):
        assert store.get("ns", "k") is None
        store.put("ns", "k", b"v1")
        assert store.get("ns", "k") == b"v1"
        store.put("ns", "k", b"v2")  # overwrite
        assert store.get("ns", "k") == b"v2"
        store.delete("ns", "k")
        assert store.get("ns", "k") is None
        store.delete("ns", "k")  # idempotent

    def test_namespaces_are_disjoint(self, store):
        store.put("a", "k", b"in-a")
        store.put("b", "k", b"in-b")
        assert store.get("a", "k") == b"in-a"
        assert store.get("b", "k") == b"in-b"
        store.delete("a", "k")
        assert store.get("b", "k") == b"in-b"

    def test_scan_is_sorted_and_prefix_filtered(self, store):
        store.put("ns", "b", b"2")
        store.put("ns", "a", b"1")
        store.put("ns", "ab", b"3")
        store.put("other", "a", b"x")
        assert store.scan("ns") == [("a", b"1"), ("ab", b"3"), ("b", b"2")]
        assert store.scan("ns", prefix="a") == [("a", b"1"), ("ab", b"3")]
        assert store.scan("missing") == []

    def test_batch_commits_atomically_on_clean_exit(self, store):
        with store.batch() as batch:
            batch.put("ns", "x", b"1").put("ns", "y", b"2").delete("ns", "x")
        assert store.get("ns", "x") is None
        assert store.get("ns", "y") == b"2"

    def test_batch_discarded_on_exception(self, store):
        store.put("ns", "kept", b"original")
        with pytest.raises(RuntimeError):
            with store.batch() as batch:
                batch.put("ns", "kept", b"clobbered")
                batch.put("ns", "new", b"never")
                raise RuntimeError("crash mid-batch")
        assert store.get("ns", "kept") == b"original"
        assert store.get("ns", "new") is None

    def test_malformed_ops_rejected(self, store):
        with pytest.raises(StoreError):
            StoreOp.put("", "k", b"v")
        with pytest.raises(StoreError):
            StoreOp.put("ns", "", b"v")
        with pytest.raises(StoreError):
            StoreOp.put("ns", "k", "not-bytes")
        with pytest.raises(StoreError):
            StoreOp(op=7, namespace="ns", key="k")


class TestDurabilityBoundary:
    def test_memory_store_state_dies_with_the_object(self, tmp_path):
        first = MemoryStore()
        first.put("ns", "k", b"v")
        first.close()
        assert MemoryStore().get("ns", "k") is None
        assert first.persistent is False

    def test_sqlite_store_survives_reopen(self, tmp_path):
        directory = tmp_path / "state"
        store = SqliteStore(directory, fsync=False)
        store.put("ns", "k", b"v")
        store.put("ns", "gone", b"x")
        store.delete("ns", "gone")
        store.close()
        reopened = SqliteStore(directory, fsync=False)
        try:
            assert reopened.persistent is True
            assert reopened.get("ns", "k") == b"v"
            assert reopened.get("ns", "gone") is None
        finally:
            reopened.close()

    def test_sqlite_recovers_wal_tail_without_close(self, tmp_path):
        """No close(), no checkpoint — the fsync'd WAL alone carries the
        committed batches across the 'crash'."""
        directory = tmp_path / "state"
        store = SqliteStore(directory, fsync=False, checkpoint_bytes=1 << 30)
        store.put("ns", "a", b"1")
        store.put("ns", "b", b"2")
        # Simulated crash: drop the object without close()/checkpoint().
        store._conn.close()
        store._wal._file.close()
        reopened = SqliteStore(directory, fsync=False)
        try:
            assert reopened.scan("ns") == [("a", b"1"), ("b", b"2")]
        finally:
            reopened.close()

    def test_size_triggered_checkpoint_folds_wal_into_sqlite(self, tmp_path):
        directory = tmp_path / "state"
        store = SqliteStore(directory, fsync=False, checkpoint_bytes=64)
        for index in range(8):
            store.put("ns", f"k{index}", b"x" * 16)
        assert store._wal.size_bytes < 64 + 16 * 8  # truncated at least once
        rows = store._conn.execute("SELECT COUNT(*) FROM kv").fetchone()[0]
        assert rows > 0
        store.close()
        reopened = SqliteStore(directory, fsync=False)
        try:
            assert len(reopened.scan("ns")) == 8
        finally:
            reopened.close()


class TestMigrations:
    def test_migration_hook_rewrites_image(self, tmp_path):
        directory = tmp_path / "state"
        v1 = SqliteStore(directory, fsync=False, schema_version=1)
        v1.put("ns", "k", b"payload")
        v1.close()

        def upgrade(conn):
            conn.execute("UPDATE kv SET value = CAST(value || '-v2' AS BLOB)")

        v2 = SqliteStore(
            directory, fsync=False, schema_version=2, migrations={2: upgrade}
        )
        try:
            assert v2.get("ns", "k") == b"payload-v2"
        finally:
            v2.close()
        # The stamped version sticks: reopening at 2 runs no hooks.
        again = SqliteStore(directory, fsync=False, schema_version=2)
        try:
            assert again.get("ns", "k") == b"payload-v2"
        finally:
            again.close()

    def test_missing_migration_step_refuses_to_open(self, tmp_path):
        directory = tmp_path / "state"
        SqliteStore(directory, fsync=False, schema_version=1).close()
        with pytest.raises(StoreMigrationError):
            SqliteStore(directory, fsync=False, schema_version=3, migrations={})

    def test_future_schema_version_refuses_to_open(self, tmp_path):
        directory = tmp_path / "state"
        SqliteStore(directory, fsync=False, schema_version=5).close()
        with pytest.raises(StoreMigrationError):
            SqliteStore(directory, fsync=False, schema_version=1)

    def test_wal_checkpoint_version_mismatch_is_corruption(self, tmp_path):
        directory = tmp_path / "state"
        SqliteStore(directory, fsync=False).close()
        wal_path = directory / "state.wal"
        blob = bytearray(wal_path.read_bytes())
        blob[8] = 9  # header version byte
        wal_path.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptionError):
            SqliteStore(directory, fsync=False, schema_version=9)


class TestOpenStore:
    def test_none_means_volatile_memory(self):
        store = open_store(None)
        assert isinstance(store, MemoryStore)

    def test_path_means_durable_sqlite(self, tmp_path):
        store = open_store(tmp_path / "state", fsync=False)
        try:
            assert isinstance(store, SqliteStore)
            assert store.persistent is True
        finally:
            store.close()
