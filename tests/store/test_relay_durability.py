"""Relay durability: idempotency record + subscription table survive
a crash when backed by a :class:`~repro.store.SqliteStore`.

These are unit-level tests against minimal in-test drivers (the full
three-platform matrix lives in ``tests/conformance/test_crash_recovery``):
a "crash" is modeled as dropping the relay object, closing its store,
and rebuilding both from the state directory — exactly what a restarted
process does.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import NS_IDEMPOTENCY, NS_SUBSCRIPTIONS, RelayService
from repro.proto.messages import (
    MSG_KIND_ERROR,
    MSG_KIND_EVENT_SUBSCRIBE,
    MSG_KIND_EVENT_UNSUBSCRIBE,
    MSG_KIND_TRANSACT_REQUEST,
    MSG_KIND_TRANSACT_RESPONSE,
    PROTOCOL_VERSION,
    STATUS_OK,
    EventSubscribeRequest,
    EventUnsubscribeRequest,
    NetworkAddressMsg,
    NetworkQuery,
    RelayEnvelope,
)
from repro.store import MemoryStore, SqliteStore

SOURCE = "srcnet"
SUBSCRIBER = "destnet"


class CountingTransactDriver(NetworkDriver):
    """Commits are observable so double-execution is visible."""

    supports_transactions = True

    def __init__(self, network_id: str = SOURCE) -> None:
        super().__init__(network_id)
        self.commits: list[str] = []

    def execute_query(self, query: NetworkQuery):
        raise AssertionError("queries are not part of these scenarios")

    def execute_transaction(self, query: NetworkQuery):
        from repro.proto.messages import QueryResponse

        self.commits.append(query.args[0])
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=f"committed-{len(self.commits)}".encode("utf-8"),
        )


class TapRecordingEventDriver(NetworkDriver):
    """An event hub whose taps are plain dicts we can emit through."""

    supports_events = True

    def __init__(self, network_id: str = SOURCE) -> None:
        super().__init__(network_id)
        self.taps: dict[int, tuple[EventSubscribeRequest, object]] = {}
        self._next = 0

    def execute_query(self, query: NetworkQuery):
        raise AssertionError("queries are not part of these scenarios")

    def open_event_tap(self, request: EventSubscribeRequest, listener):
        self._next += 1
        self.taps[self._next] = (request, listener)
        return self._next

    def close_event_tap(self, tap) -> None:
        self.taps.pop(tap, None)

    def emit(self, name: str, payload: bytes) -> None:
        for _, listener in list(self.taps.values()):
            listener(
                SimpleNamespace(
                    chaincode="cc",
                    name=name,
                    payload=payload,
                    block_number=1,
                    tx_id="tx-1",
                )
            )


def transact_envelope(tag: str, request_id: str) -> bytes:
    return RelayEnvelope(
        version=PROTOCOL_VERSION,
        kind=MSG_KIND_TRANSACT_REQUEST,
        request_id=request_id,
        source_network=SUBSCRIBER,
        destination_network=SOURCE,
        payload=NetworkQuery(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network=SOURCE, ledger="ledger", contract="cc", function="Put"
            ),
            args=[tag],
            nonce=f"nonce-{request_id}",
        ).encode(),
    ).encode()


def make_relay(store, capacity: int = 1024):
    registry = InMemoryRegistry()
    driver = CountingTransactDriver()
    relay = RelayService(
        SOURCE, registry, store=store, idempotency_capacity=capacity
    )
    relay.register_driver(driver)
    registry.register(SOURCE, relay)
    return relay, driver


class TestDurableIdempotency:
    def test_replay_answered_from_disk_after_restart(self, tmp_path):
        """THE acceptance scenario: the relay executes a side-effecting
        envelope, crashes, restarts on the same state directory — the
        byte-identical replay gets the recorded reply, zero re-commits."""
        raw = transact_envelope("DUR-1", "req-dur-1")
        store = SqliteStore(tmp_path / "relay", fsync=False)
        relay, driver = make_relay(store)
        first = relay.handle_request(raw)
        assert RelayEnvelope.decode(first).kind == MSG_KIND_TRANSACT_RESPONSE
        assert driver.commits == ["DUR-1"]
        store.close()  # crash: relay + store objects die here

        restarted_store = SqliteStore(tmp_path / "relay", fsync=False)
        restarted, fresh_driver = make_relay(restarted_store)
        second = restarted.handle_request(raw)
        assert second == first  # the recorded reply, byte for byte
        assert fresh_driver.commits == []  # nothing re-executed
        assert restarted.stats.duplicates_suppressed == 1
        restarted_store.close()

    def test_fifo_eviction_order_survives_restart(self, tmp_path):
        """The restarted relay continues evicting exactly where the
        crashed one stopped: oldest-persisted goes first."""
        store = SqliteStore(tmp_path / "relay", fsync=False)
        relay, driver = make_relay(store, capacity=2)
        raws = [
            transact_envelope(f"EV-{i}", f"req-ev-{i}") for i in range(3)
        ]
        for raw in raws:
            relay.handle_request(raw)
        # Capacity 2: req-ev-0 was evicted, from the store too.
        assert [key for key, _ in store.scan(NS_IDEMPOTENCY)] == [
            "req-ev-1",
            "req-ev-2",
        ]
        store.close()

        restarted_store = SqliteStore(tmp_path / "relay", fsync=False)
        restarted, fresh_driver = make_relay(restarted_store, capacity=2)
        restarted.handle_request(raws[1])  # suppressed from disk
        assert fresh_driver.commits == []
        restarted.handle_request(raws[0])  # evicted: re-routes for real
        assert fresh_driver.commits == ["EV-0"]
        # ...and that re-execution pushed out the oldest survivor
        # (scan is key-sorted; FIFO order lives in the sequence prefix).
        assert [key for key, _ in restarted_store.scan(NS_IDEMPOTENCY)] == [
            "req-ev-0",
            "req-ev-2",
        ]
        restarted_store.close()

    def test_restart_with_smaller_capacity_trims_disk(self, tmp_path):
        store = SqliteStore(tmp_path / "relay", fsync=False)
        relay, _ = make_relay(store, capacity=4)
        for index in range(4):
            relay.handle_request(
                transact_envelope(f"TRIM-{index}", f"req-trim-{index}")
            )
        store.close()

        restarted_store = SqliteStore(tmp_path / "relay", fsync=False)
        restarted, _ = make_relay(restarted_store, capacity=2)
        assert [key for key, _ in restarted_store.scan(NS_IDEMPOTENCY)] == [
            "req-trim-2",
            "req-trim-3",
        ]
        assert len(restarted._idempotency) == 2
        restarted_store.close()

    def test_memory_store_expresses_restart_with_state(self):
        """The volatile default still supports handing one store object
        to a successor relay — state survives the *relay* object, not
        the process (conformance's restart-with-state path)."""
        shared = MemoryStore()
        raw = transact_envelope("MEM-1", "req-mem-1")
        relay, driver = make_relay(shared)
        first = relay.handle_request(raw)
        assert driver.commits == ["MEM-1"]

        restarted, fresh_driver = make_relay(shared)
        assert restarted.handle_request(raw) == first
        assert fresh_driver.commits == []

    def test_answered_error_is_durably_pinned_too(self, tmp_path):
        """Exactly-once covers unsuccessful outcomes: an *answered* error
        (here: no capable driver) is the request's recorded reply, and a
        post-restart replay of the same request_id gets that same answer
        — a retry is a new intent and carries a new request_id."""
        store = SqliteStore(tmp_path / "relay", fsync=False)
        registry = InMemoryRegistry()
        relay = RelayService(SOURCE, registry, store=store)
        raw = transact_envelope("LATE-1", "req-late-1")
        reply = relay.handle_request(raw)
        assert RelayEnvelope.decode(reply).kind == MSG_KIND_ERROR
        store.close()

        restarted_store = SqliteStore(tmp_path / "relay", fsync=False)
        restarted, fresh_driver = make_relay(restarted_store)
        assert restarted.handle_request(raw) == reply
        assert fresh_driver.commits == []
        fresh = restarted.handle_request(
            transact_envelope("LATE-1", "req-late-2")
        )
        assert RelayEnvelope.decode(fresh).kind == MSG_KIND_TRANSACT_RESPONSE
        assert fresh_driver.commits == ["LATE-1"]
        restarted_store.close()


def subscribe_envelope(subscription_id: str, request_id: str) -> bytes:
    return RelayEnvelope(
        version=PROTOCOL_VERSION,
        kind=MSG_KIND_EVENT_SUBSCRIBE,
        request_id=request_id,
        source_network=SUBSCRIBER,
        destination_network=SOURCE,
        payload=EventSubscribeRequest(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network=SOURCE, ledger="ledger", contract="cc"
            ),
            event_name="*",
            subscription_id=subscription_id,
        ).encode(),
    ).encode()


def make_event_topology(tmp_path, registry=None):
    """Source relay (durable) + subscriber relay with a collecting sink."""
    registry = registry or InMemoryRegistry()
    store = SqliteStore(tmp_path / "relay", fsync=False)
    driver = TapRecordingEventDriver()
    source = RelayService(SOURCE, registry, store=store)
    source.register_driver(driver)
    registry.register(SOURCE, source)
    subscriber = RelayService(SUBSCRIBER, registry)
    registry.register(SUBSCRIBER, subscriber)
    delivered: list = []
    return SimpleNamespace(
        registry=registry,
        store=store,
        driver=driver,
        source=source,
        subscriber=subscriber,
        delivered=delivered,
    )


class TestDurableSubscriptions:
    def test_recover_retaps_subscription_after_restart(self, tmp_path):
        topo = make_event_topology(tmp_path)
        topo.source.handle_request(subscribe_envelope("sub-dur-1", "req-sub-1"))
        topo.subscriber.register_event_sink("sub-dur-1", topo.delivered.append)
        assert len(topo.driver.taps) == 1
        topo.store.close()  # source relay crashes

        # Restart: new store, new relay, re-registered driver, recover().
        restarted_store = SqliteStore(tmp_path / "relay", fsync=False)
        fresh_driver = TapRecordingEventDriver()
        restarted = RelayService(SOURCE, topo.registry, store=restarted_store)
        restarted.register_driver(fresh_driver)
        restored = restarted.recover()
        assert restored == ["sub-dur-1"]
        assert len(fresh_driver.taps) == 1

        fresh_driver.emit("Stored", b"after-restart")
        assert [n.payload for n in topo.delivered] == [b"after-restart"]
        assert restarted.stats.events_published == 1
        restarted_store.close()

    def test_recover_waits_for_missing_driver(self, tmp_path):
        topo = make_event_topology(tmp_path)
        topo.source.handle_request(subscribe_envelope("sub-dur-2", "req-sub-2"))
        topo.store.close()

        restarted_store = SqliteStore(tmp_path / "relay", fsync=False)
        restarted = RelayService(SOURCE, topo.registry, store=restarted_store)
        assert restarted.recover() == []  # no driver yet: left durable
        assert len(restarted_store.scan(NS_SUBSCRIPTIONS)) == 1

        late_driver = TapRecordingEventDriver()
        restarted.register_driver(late_driver)
        assert restarted.recover() == ["sub-dur-2"]
        assert restarted.recover() == []  # already live: no double tap
        assert len(late_driver.taps) == 1
        restarted_store.close()

    def test_unsubscribe_clears_durable_record(self, tmp_path):
        topo = make_event_topology(tmp_path)
        topo.source.handle_request(subscribe_envelope("sub-dur-3", "req-sub-3"))
        unsubscribe = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_EVENT_UNSUBSCRIBE,
            request_id="req-unsub-3",
            source_network=SUBSCRIBER,
            destination_network=SOURCE,
            payload=EventUnsubscribeRequest(
                version=PROTOCOL_VERSION, subscription_id="sub-dur-3"
            ).encode(),
        ).encode()
        topo.source.handle_request(unsubscribe)
        assert topo.store.scan(NS_SUBSCRIPTIONS) == []
        topo.store.close()

        restarted_store = SqliteStore(tmp_path / "relay", fsync=False)
        fresh_driver = TapRecordingEventDriver()
        restarted = RelayService(SOURCE, topo.registry, store=restarted_store)
        restarted.register_driver(fresh_driver)
        assert restarted.recover() == []
        assert fresh_driver.taps == {}
        restarted_store.close()

    def test_corrupt_subscription_record_dropped_not_fatal(self, tmp_path):
        topo = make_event_topology(tmp_path)
        topo.source.handle_request(subscribe_envelope("sub-dur-4", "req-sub-4"))
        topo.store.put(NS_SUBSCRIPTIONS, "sub-junk", b"\xff not json")
        topo.store.close()

        restarted_store = SqliteStore(tmp_path / "relay", fsync=False)
        fresh_driver = TapRecordingEventDriver()
        restarted = RelayService(SOURCE, topo.registry, store=restarted_store)
        restarted.register_driver(fresh_driver)
        assert restarted.recover() == ["sub-dur-4"]  # healthy one survives
        assert restarted_store.get(NS_SUBSCRIPTIONS, "sub-junk") is None
        restarted_store.close()


class TestConstructorContract:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RelayService(SOURCE, InMemoryRegistry(), idempotency_capacity=0)

    def test_default_store_is_volatile_memory(self):
        relay = RelayService(SOURCE, InMemoryRegistry())
        assert isinstance(relay.store, MemoryStore)
        assert relay.store.persistent is False
