"""Frame codec: round-trips, fuzzing, and defensive rejection.

The framing layer faces the untrusted edge, so the properties under test
are adversarial: any payload round-trips through any chunking of the
stream; truncation, oversize, and garbage are *typed* failures
(:class:`DecodeError`) decided without buffering the claimed payload —
never a hang, never a silently mis-framed message.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError
from repro.net.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    encode_frame,
    read_frame,
)
from repro.wire.varint import encode_varint


payloads = st.lists(st.binary(min_size=0, max_size=512), min_size=0, max_size=20)


class TestRoundTrip:
    @given(payloads)
    def test_all_at_once(self, items):
        decoder = FrameDecoder()
        stream = b"".join(encode_frame(item) for item in items)
        completed = decoder.feed(stream)
        assert completed == len(items)
        assert list(decoder.frames()) == items
        decoder.finish()  # clean boundary

    @given(payloads, st.integers(min_value=1, max_value=7))
    def test_arbitrary_chunking(self, items, chunk_size):
        """Frame boundaries never align with read boundaries on a stream."""
        decoder = FrameDecoder()
        stream = b"".join(encode_frame(item) for item in items)
        out = []
        for start in range(0, len(stream), chunk_size):
            decoder.feed(stream[start : start + chunk_size])
            out.extend(decoder.frames())
        assert out == items
        decoder.finish()

    @given(st.binary(min_size=0, max_size=2048))
    def test_single_frame_identity(self, payload):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(payload)) == 1
        assert decoder.next_frame() == payload
        assert decoder.next_frame() is None

    def test_empty_frame(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b""))
        assert decoder.next_frame() == b""


class TestDefensiveRejection:
    def test_truncated_frame_waits_then_fails_finish(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"x" * 100)
        assert decoder.feed(frame[:50]) == 0  # incomplete: waits, no hang
        assert decoder.next_frame() is None
        with pytest.raises(DecodeError, match="mid-frame"):
            decoder.finish()

    def test_truncated_prefix_waits_then_fails_finish(self):
        decoder = FrameDecoder()
        # A 300-byte length takes a 2-byte varint; feed only the first.
        prefix = encode_varint(300)
        decoder.feed(prefix[:1])
        assert decoder.next_frame() is None
        with pytest.raises(DecodeError):
            decoder.finish()

    def test_oversized_length_rejected_before_payload(self):
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(DecodeError, match="exceeds"):
            # Only the prefix is fed: rejection must not need the body.
            decoder.feed(encode_varint(1 << 20))

    def test_garbage_prefix_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(DecodeError, match="garbage"):
            decoder.feed(b"\xff" * 16)  # can never terminate as a varint

    def test_length_overflowing_64_bits_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(DecodeError):
            decoder.feed(b"\xff" * 9 + b"\x7f" + b"payload")

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=200)
    def test_fuzz_never_hangs_or_escapes_typed_errors(self, junk):
        """Arbitrary bytes either wait, deliver frames, or raise DecodeError."""
        decoder = FrameDecoder(max_frame_bytes=4096)
        try:
            decoder.feed(junk)
            list(decoder.frames())
            decoder.finish()
        except DecodeError:
            pass  # the only acceptable failure type


class TestAsyncReadFrame:
    def run(self, coro):
        return asyncio.new_event_loop().run_until_complete(coro)

    def feed_reader(self, data: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_reads_frames_then_clean_eof(self):
        async def scenario():
            reader = self.feed_reader(encode_frame(b"one") + encode_frame(b"two"))
            assert await read_frame(reader) == b"one"
            assert await read_frame(reader) == b"two"
            assert await read_frame(reader) is None

        self.run(scenario())

    def test_eof_inside_prefix_is_typed(self):
        async def scenario():
            reader = self.feed_reader(encode_varint(300)[:1])
            with pytest.raises(DecodeError, match="length prefix"):
                await read_frame(reader)

        self.run(scenario())

    def test_eof_mid_payload_is_typed(self):
        async def scenario():
            reader = self.feed_reader(encode_frame(b"x" * 100)[:40])
            with pytest.raises(DecodeError, match="mid-frame"):
                await read_frame(reader)

        self.run(scenario())

    def test_oversized_rejected_without_reading_payload(self):
        async def scenario():
            # The declared length is absurd and the payload never arrives;
            # rejection must come from the prefix alone (no hang).
            reader = self.feed_reader(encode_varint(DEFAULT_MAX_FRAME_BYTES + 1),
                                      eof=False)
            with pytest.raises(DecodeError, match="exceeds"):
                await read_frame(reader)

        self.run(scenario())

    def test_garbage_prefix_rejected(self):
        async def scenario():
            reader = self.feed_reader(b"\xff" * 16)
            with pytest.raises(DecodeError, match="garbage"):
                await read_frame(reader)

        self.run(scenario())
