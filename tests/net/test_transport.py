"""The transport seam: addresses, endpoints, servers, and failure modes.

These tests drive the transport layer with a protocol-free echo service
(the envelope protocol's own behavior over sockets is covered by
``tests/conformance/test_socket_transport.py``); here the contract under
test is the seam itself: scheme routing, pooling, timeouts, concurrency,
and the promise that every transport failure surfaces as the typed
:class:`RelayUnavailableError` the failover loop expects.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.errors import DiscoveryError, RelayUnavailableError
from repro.interop.discovery import AddressResolver, FileRegistry
from repro.net import (
    LocalTransport,
    RelayServer,
    TcpRelayEndpoint,
    TcpTransport,
    address_scheme,
    encode_frame,
    parse_tcp_address,
)


class EchoService:
    """A stand-in RelayService: echoes, optionally slowly or down."""

    def __init__(self, network_id: str = "echo") -> None:
        self.network_id = network_id
        self.available = True
        self.delay = 0.0
        self.served = 0
        self._lock = threading.Lock()

    def handle_request(self, data: bytes) -> bytes:
        if not self.available:
            raise RelayUnavailableError("echo relay is down")
        if self.delay:
            time.sleep(self.delay)
        with self._lock:
            self.served += 1
        return b"echo:" + data


@pytest.fixture()
def echo_server():
    service = EchoService()
    with RelayServer(service, max_workers=4) as server:
        yield service, server


class TestAddressing:
    def test_scheme_extraction(self):
        assert address_scheme("tcp://h:1") == "tcp"
        assert address_scheme("relay://stl-1") == "relay"
        assert address_scheme("no-scheme") == ""

    def test_parse_tcp_address(self):
        assert parse_tcp_address("tcp://10.0.0.7:9100") == ("10.0.0.7", 9100)
        assert parse_tcp_address("tcp://[::1]:9100") == ("::1", 9100)

    @pytest.mark.parametrize(
        "bad",
        [
            "relay://stl-1",
            "tcp://nohost",
            "tcp://:9100",
            "tcp://host:port",
            "tcp://host:0",
            "tcp://host:70000",
        ],
    )
    def test_parse_tcp_address_rejects(self, bad):
        with pytest.raises(DiscoveryError):
            parse_tcp_address(bad)


class TestLocalTransport:
    def test_bind_and_connect(self):
        transport = LocalTransport()
        sentinel = object()
        transport.bind("relay://stl-1", sentinel)
        assert transport.connect("relay://stl-1") is sentinel
        with pytest.raises(DiscoveryError):
            transport.connect("relay://unknown")
        transport.unbind("relay://stl-1")
        with pytest.raises(DiscoveryError):
            transport.connect("relay://stl-1")


class TestAddressResolver:
    def test_explicit_bind_wins(self, echo_server):
        _, server = echo_server
        resolver = AddressResolver()
        sentinel = EchoService("pinned")
        # Even a tcp:// address, when explicitly bound, stays in-process:
        resolver.bind(server.address, sentinel)
        assert resolver.resolve(server.address) is sentinel

    def test_tcp_scheme_dials(self, echo_server):
        _, server = echo_server
        resolver = AddressResolver()
        endpoint = resolver.resolve(server.address)
        assert endpoint.handle_request(b"ping") == b"echo:ping"
        # Cached per address: a second lookup reuses the pooled endpoint.
        assert resolver.resolve(server.address) is endpoint

    def test_unknown_scheme_and_unbound_address_fail(self):
        resolver = AddressResolver()
        with pytest.raises(DiscoveryError):
            resolver.resolve("grpc://host:1")
        with pytest.raises(DiscoveryError):
            resolver.resolve("relay://never-bound")

    def test_file_registry_mixes_local_and_tcp(self, echo_server, tmp_path):
        """A registry file can point one network at a socket and another
        at an in-process relay — the transport seam is per-address."""
        _, server = echo_server
        resolver = AddressResolver()
        local_relay = EchoService("local")
        resolver.bind("relay://local-1", local_relay)
        path = tmp_path / "registry.json"
        path.write_text(json.dumps({
            "sockets": [server.address],
            "inproc": ["relay://local-1"],
        }))
        registry = FileRegistry(path, resolver)
        (socket_endpoint,) = registry.lookup("sockets")
        assert socket_endpoint.handle_request(b"hi") == b"echo:hi"
        assert registry.lookup("inproc") == [local_relay]


class TestTcpEndpoint:
    def test_round_trip_and_pool_reuse(self, echo_server):
        _, server = echo_server
        endpoint = server.endpoint(timeout=5.0)
        for i in range(5):
            assert endpoint.handle_request(b"m%d" % i) == b"echo:m%d" % i
        assert endpoint.connections_dialed == 1  # sequential reuse
        endpoint.close()

    def test_concurrent_callers_get_own_connections(self, echo_server):
        service, server = echo_server
        service.delay = 0.05
        endpoint = server.endpoint(timeout=5.0)
        replies: list[bytes] = []
        lock = threading.Lock()

        def worker(i: int) -> None:
            reply = endpoint.handle_request(b"c%d" % i)
            with lock:
                replies.append(reply)

        started = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        assert sorted(replies) == [b"echo:c%d" % i for i in range(4)]
        assert endpoint.connections_dialed == 4
        # Four 50ms requests overlapped (well under 4 x 50ms serial).
        assert elapsed < 0.18, f"requests did not overlap: {elapsed:.3f}s"
        endpoint.close()

    def test_connect_refused_is_typed(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        endpoint = TcpRelayEndpoint("127.0.0.1", free_port, timeout=1.0)
        with pytest.raises(RelayUnavailableError, match="cannot connect"):
            endpoint.handle_request(b"x")

    def test_request_timeout_is_typed(self, echo_server):
        service, server = echo_server
        service.delay = 2.0
        endpoint = server.endpoint(timeout=0.2)
        with pytest.raises(RelayUnavailableError, match="unreachable"):
            endpoint.handle_request(b"slow")
        endpoint.close()

    def test_unavailable_relay_surfaces_as_typed_transport_failure(
        self, echo_server
    ):
        service, server = echo_server
        service.available = False
        endpoint = server.endpoint(timeout=2.0)
        with pytest.raises(RelayUnavailableError):
            endpoint.handle_request(b"x")
        # ... and recovers once the relay is back.
        service.available = True
        assert endpoint.handle_request(b"y") == b"echo:y"
        endpoint.close()

    def test_closed_endpoint_refuses(self, echo_server):
        _, server = echo_server
        endpoint = server.endpoint()
        endpoint.close()
        with pytest.raises(RelayUnavailableError, match="closed"):
            endpoint.handle_request(b"x")

    def test_stale_pooled_connection_redials_once(self):
        """A connection the server closed while idle in the pool must not
        surface as a caller-visible failure — one fresh redial absorbs it."""
        service = EchoService()
        server = RelayServer(service).start()
        port = server.port
        endpoint = TcpRelayEndpoint("127.0.0.1", port, timeout=5.0)
        assert endpoint.handle_request(b"one") == b"echo:one"  # pools a conn
        server.stop()  # kills the pooled connection server-side
        server = RelayServer(service, port=port).start()  # same address
        try:
            assert endpoint.handle_request(b"two") == b"echo:two"
            assert endpoint.connections_dialed == 2  # exactly one redial
        finally:
            endpoint.close()
            server.stop()

    def test_dead_server_with_stale_pool_still_fails_typed(self):
        service = EchoService()
        server = RelayServer(service).start()
        endpoint = server.endpoint(timeout=1.0)
        assert endpoint.handle_request(b"one") == b"echo:one"
        server.stop()  # nothing listening anymore: redial must fail typed
        with pytest.raises(RelayUnavailableError):
            endpoint.handle_request(b"two")
        endpoint.close()

    def test_one_deadline_covers_stale_retry(self):
        """The whole request — first attempt, redial, retry — runs on ONE
        monotonic deadline, never stacked fresh timeouts.

        Regression: the stale-pool retry used to dial and round-trip on a
        fresh full ``timeout`` each, so a request whose pooled connection
        died slowly and whose retry hit a dribbling server blocked for a
        multiple of the configured timeout. Staged here: the pooled
        connection burns 0.6s before dying byte-less (stale → retry
        engages), then the redialed connection only ever dribbles an
        incomplete frame. Pre-fix total ≈ 0.6s + a fresh 1.0s retry
        budget; post-fix the retry inherits the remaining 0.4s.
        """
        from repro.net import FrameDecoder

        hold, timeout = 0.6, 1.0
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]
        stop = threading.Event()
        # An incomplete frame to dribble: a long-payload frame fed one
        # byte at a time never completes, but never trips DecodeError.
        blob = encode_frame(b"y" * 50_000)

        def read_request(conn) -> bool:
            decoder = FrameDecoder(1 << 20)
            while not stop.is_set():
                if decoder.next_frame() is not None:
                    return True
                chunk = conn.recv(4096)
                if not chunk:
                    return False
                decoder.feed(chunk)
            return False

        def serve():
            # Connection 1: answer one request properly (primes the
            # pool), then on the next request hold 0.6s and die silent.
            conn1, _ = listener.accept()
            if read_request(conn1):
                conn1.sendall(encode_frame(b"echo:one"))
            read_request(conn1)
            stop.wait(hold)
            conn1.close()
            # Connection 2 (the stale retry's redial): dribble forever.
            conn2, _ = listener.accept()
            read_request(conn2)
            for byte in blob:
                if stop.wait(0.15):
                    break
                try:
                    conn2.sendall(bytes([byte]))
                except OSError:
                    break
            conn2.close()

        server_thread = threading.Thread(target=serve, daemon=True)
        server_thread.start()
        endpoint = TcpRelayEndpoint("127.0.0.1", port, timeout=timeout)
        try:
            assert endpoint.handle_request(b"one") == b"echo:one"
            started = time.monotonic()
            with pytest.raises(RelayUnavailableError):
                endpoint.handle_request(b"two")
            elapsed = time.monotonic() - started
            assert elapsed < timeout * 1.45, (
                f"request blocked {elapsed:.2f}s — stale retry stacked a "
                f"fresh timeout on top of the {timeout}s budget"
            )
        finally:
            stop.set()
            endpoint.close()
            listener.close()
            server_thread.join(timeout=5.0)

    def test_dial_respects_exhausted_deadline(self, echo_server):
        _, server = echo_server
        endpoint = TcpRelayEndpoint(server.host, server.port, timeout=1.0)
        with pytest.raises(RelayUnavailableError, match="deadline exhausted"):
            endpoint._dial(time.monotonic() - 0.001)
        endpoint.close()


class TestRelayServer:
    def test_concurrent_serving_overlaps(self, echo_server):
        service, server = echo_server
        service.delay = 0.05
        endpoint = server.endpoint(timeout=5.0)
        threads = [
            threading.Thread(target=endpoint.handle_request, args=(b"x",))
            for _ in range(4)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        assert elapsed < 0.18
        assert server.stats.in_flight_peak >= 2
        assert server.stats.frames_served >= 4
        endpoint.close()

    def test_single_worker_serializes(self):
        service = EchoService()
        service.delay = 0.05
        with RelayServer(service, max_workers=1) as server:
            endpoint = server.endpoint(timeout=5.0)
            threads = [
                threading.Thread(target=endpoint.handle_request, args=(b"x",))
                for _ in range(4)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            assert elapsed >= 0.18, "single worker must serve one at a time"
            endpoint.close()

    def test_garbage_frame_closes_connection(self, echo_server):
        _, server = echo_server
        raw = socket.create_connection((server.host, server.port), timeout=3.0)
        raw.sendall(b"\xff" * 32)
        raw.settimeout(3.0)
        assert raw.recv(1024) == b""  # server hung up, no reply bytes
        raw.close()

    def test_oversized_frame_closes_connection(self):
        service = EchoService()
        with RelayServer(service, max_frame_bytes=1024) as server:
            raw = socket.create_connection((server.host, server.port), timeout=3.0)
            raw.sendall(encode_frame(b"z" * 2048))
            raw.settimeout(3.0)
            assert raw.recv(1024) == b""
            raw.close()
            assert service.served == 0  # rejected before serving

    def test_stop_then_start_rebinds_cleanly(self):
        service = EchoService()
        server = RelayServer(service)
        server.start()
        first_address = server.address
        assert server.endpoint(timeout=3.0).handle_request(b"a") == b"echo:a"
        server.stop()
        server.start()  # restart must wait for the NEW bind, not the old one
        assert server.endpoint(timeout=3.0).handle_request(b"b") == b"echo:b"
        assert server.address != ""  # bound (port=0 means a fresh port)
        assert first_address  # old address was real too
        server.stop()

    def test_tcp_transport_reuses_endpoint_per_address(self, echo_server):
        _, server = echo_server
        transport = TcpTransport(timeout=5.0)
        first = transport.connect(server.address)
        second = transport.connect(server.address)
        assert first is second
        assert first.handle_request(b"t") == b"echo:t"
        transport.close()

    def test_tcp_transport_redials_closed_endpoint(self, echo_server):
        """A close()d endpoint must not poison its address forever.

        Regression: the per-address cache used to hand the same closed
        endpoint back on every connect, so once anything closed it the
        address was permanently unreachable ("endpoint has been closed")
        even though the relay behind it was healthy.
        """
        _, server = echo_server
        transport = TcpTransport(timeout=5.0)
        first = transport.connect(server.address)
        assert first.handle_request(b"a") == b"echo:a"
        first.close()
        assert first.closed
        second = transport.connect(server.address)
        assert second is not first
        assert second.handle_request(b"b") == b"echo:b"
        transport.close()
