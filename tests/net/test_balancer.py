"""The fleet layer: endpoint pools, balancing strategies, health eviction.

Unit tests drive :class:`EndpointPool` / :class:`BalancedDiscovery` with
seeded RNGs and fake endpoints for determinism; the lifecycle tests at
the bottom run a real :class:`RelayServer` with its ``/readyz`` probe
and assert the :class:`ReadinessMonitor` evicts and restores replicas as
the probe flips.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.errors import DiscoveryError, RelayUnavailableError
from repro.interop.discovery import InMemoryRegistry
from repro.net.balancer import (
    BalancedDiscovery,
    EndpointPool,
    ReadinessMonitor,
    endpoint_key,
)


class FakeEndpoint:
    """A scriptable in-process endpoint with per-member scorekeeping."""

    def __init__(self, name: str, fail: bool = False) -> None:
        self.relay_id = name
        self.fail = fail
        self.served = 0
        #: When set, requests block on this event (to pin in-flight > 0).
        self.hold: threading.Event | None = None
        self._lock = threading.Lock()

    def handle_request(self, data: bytes) -> bytes:
        if self.hold is not None:
            self.hold.wait(5.0)
        if self.fail:
            raise RelayUnavailableError(f"{self.relay_id} is down")
        with self._lock:
            self.served += 1
        return b"ok:" + self.relay_id.encode()


def make_pool(names, seed=7) -> tuple[EndpointPool, dict[str, FakeEndpoint]]:
    endpoints = {name: FakeEndpoint(name) for name in names}
    pool = EndpointPool("fleet-net", rng=random.Random(seed))
    pool.update(list(endpoints.values()))
    return pool, endpoints


class TestEndpointKey:
    def test_prefers_address_then_relay_id(self):
        class Addressed:
            address = "tcp://h:1"
            relay_id = "r-1"

        assert endpoint_key(Addressed()) == "tcp://h:1"
        assert endpoint_key(FakeEndpoint("r-2")) == "r-2"
        anon = object()
        assert endpoint_key(anon) == f"endpoint-{id(anon):x}"


class TestPowerOfTwoChoices:
    def test_busier_member_never_heads_the_order(self):
        """With one member visibly loaded and the rest idle, p2c must
        never put the loaded one first: either the sampled pair excludes
        it, or the idle partner of the pair wins."""
        pool, endpoints = make_pool(["a", "b", "c"])
        endpoints["a"].hold = hold = threading.Event()
        # Pin one request in flight on "a" through the pool's wrapper.
        (head,) = [
            c for c in pool.candidates() if c.key == "a"
        ]
        pinned = threading.Thread(target=head.handle_request, args=(b"x",))
        pinned.start()
        try:
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if pool.snapshot()["members"]["a"]["in_flight"] == 1:
                    break
                time.sleep(0.005)
            assert pool.snapshot()["members"]["a"]["in_flight"] == 1
            heads = {pool.candidates()[0].key for _ in range(100)}
            assert "a" not in heads
            assert heads == {"b", "c"}
        finally:
            hold.set()
            pinned.join(timeout=5.0)
        assert pool.snapshot()["members"]["a"]["in_flight"] == 0

    def test_idle_pool_spreads_first_choice(self):
        pool, _ = make_pool(["a", "b", "c", "d"])
        heads = [pool.candidates()[0].key for _ in range(200)]
        # All members lead sometimes — no fixed-first starvation.
        assert set(heads) == {"a", "b", "c", "d"}
        assert pool.snapshot()["p2c_decisions"] == 200

    def test_ordering_always_contains_every_member(self):
        pool, _ = make_pool(["a", "b", "c"])
        for _ in range(20):
            assert sorted(c.key for c in pool.candidates()) == ["a", "b", "c"]


class TestConsistentHashing:
    def test_same_request_id_same_head_every_time(self):
        pool, _ = make_pool(["a", "b", "c", "d"])
        heads = {
            pool.candidates(request_id="req-42", side_effecting=True)[0].key
            for _ in range(20)
        }
        assert len(heads) == 1
        assert pool.snapshot()["sticky_decisions"] == 20

    def test_placement_is_stable_across_pool_instances(self):
        """The ring hash is keyed, not process-salted: a rebuilt pool
        (client restart) maps every request id to the same replica."""
        pool_a, _ = make_pool(["a", "b", "c", "d"], seed=1)
        pool_b, _ = make_pool(["a", "b", "c", "d"], seed=999)
        for i in range(50):
            rid = f"req-{i}"
            assert (
                pool_a.candidates(request_id=rid, side_effecting=True)[0].key
                == pool_b.candidates(request_id=rid, side_effecting=True)[0].key
            )

    def test_scale_out_remaps_only_a_fraction(self):
        pool_small, _ = make_pool(["a", "b", "c", "d"])
        pool_big, _ = make_pool(["a", "b", "c", "d", "e"])
        ids = [f"req-{i}" for i in range(300)]
        before = {
            rid: pool_small.candidates(request_id=rid, side_effecting=True)[0].key
            for rid in ids
        }
        after = {
            rid: pool_big.candidates(request_id=rid, side_effecting=True)[0].key
            for rid in ids
        }
        moved = sum(1 for rid in ids if before[rid] != after[rid])
        # Ideal is 1/5 of keys; consistent hashing should stay well under
        # the ~4/5 a modulo rehash would move.
        assert moved / len(ids) < 0.45
        # Every id that moved went TO the new member, nowhere else.
        assert all(after[rid] == "e" for rid in ids if before[rid] != after[rid])

    def test_member_loss_remaps_only_its_keys(self):
        pool, endpoints = make_pool(["a", "b", "c", "d"])
        ids = [f"req-{i}" for i in range(200)]
        before = {
            rid: pool.candidates(request_id=rid, side_effecting=True)[0].key
            for rid in ids
        }
        pool.update([e for name, e in endpoints.items() if name != "b"])
        for rid in ids:
            head = pool.candidates(request_id=rid, side_effecting=True)[0].key
            if before[rid] != "b":
                assert head == before[rid]

    def test_blank_request_id_falls_back_to_p2c(self):
        pool, _ = make_pool(["a", "b"])
        pool.candidates(request_id="", side_effecting=True)
        assert pool.snapshot()["p2c_decisions"] == 1
        assert pool.snapshot()["sticky_decisions"] == 0


class TestEvictionAndMembership:
    def test_evicted_member_moves_to_tail_but_stays_reachable(self):
        pool, _ = make_pool(["a", "b", "c"])
        head = pool.candidates(request_id="req-1", side_effecting=True)[0].key
        assert pool.evict(head)
        order = [c.key for c in pool.candidates(request_id="req-1", side_effecting=True)]
        assert order[-1] == head  # last resort, not gone
        assert len(order) == 3
        assert pool.restore(head)
        assert (
            pool.candidates(request_id="req-1", side_effecting=True)[0].key == head
        )
        snapshot = pool.snapshot()
        assert snapshot["evictions"] == 1 and snapshot["restores"] == 1

    def test_fully_evicted_pool_still_serves(self):
        pool, _ = make_pool(["a", "b"])
        for key in pool.member_keys():
            pool.evict(key)
        candidates = pool.candidates()
        assert len(candidates) == 2
        assert candidates[0].handle_request(b"x").startswith(b"ok:")

    def test_evict_and_restore_are_idempotent(self):
        pool, _ = make_pool(["a"])
        assert pool.evict("a") and not pool.evict("a")
        assert pool.restore("a") and not pool.restore("a")
        assert not pool.evict("ghost") and not pool.restore("ghost")
        snapshot = pool.snapshot()
        assert snapshot["evictions"] == 1 and snapshot["restores"] == 1

    def test_update_preserves_state_and_prunes_departures(self):
        pool, endpoints = make_pool(["a", "b", "c"])
        pool.evict("b")
        # Same membership re-announced: eviction state survives.
        pool.update(list(endpoints.values()))
        assert pool.snapshot()["members"]["b"]["evicted"]
        # "c" leaves the registry: it leaves the pool.
        pool.update([endpoints["a"], endpoints["b"]])
        assert sorted(pool.member_keys()) == ["a", "b"]

    def test_in_flight_accounting_and_failure_counts(self):
        pool, endpoints = make_pool(["a"])
        endpoints["a"].fail = True
        (candidate,) = pool.candidates()
        with pytest.raises(RelayUnavailableError):
            candidate.handle_request(b"x")
        member = pool.snapshot()["members"]["a"]
        assert member["in_flight"] == 0  # decremented on the error path
        assert member["failures"] == 1 and member["requests"] == 1


class TestBalancedDiscovery:
    def make_fleet(self, names, seed=7):
        inner = InMemoryRegistry()
        endpoints = {name: FakeEndpoint(name) for name in names}
        for endpoint in endpoints.values():
            inner.register("fleet-net", endpoint)
        return BalancedDiscovery(inner, rng=random.Random(seed)), endpoints, inner

    def test_lookup_keeps_the_discovery_contract(self):
        balanced, _, _ = self.make_fleet(["a", "b"])
        assert len(balanced.lookup("fleet-net")) == 2
        with pytest.raises(DiscoveryError):
            balanced.lookup("ghost")

    def test_membership_follows_the_inner_registry(self):
        balanced, endpoints, inner = self.make_fleet(["a", "b"])
        balanced.lookup("fleet-net")
        inner.unregister("fleet-net", endpoints["b"])
        assert [c.key for c in balanced.lookup("fleet-net")] == ["a"]

    def test_concurrent_callers_rotate_across_the_pool(self):
        """Satellite coverage: pool rotation under concurrent callers —
        every replica takes a meaningful share of a 200-request storm."""
        balanced, endpoints, _ = self.make_fleet(["a", "b", "c", "d"])
        errors: list[Exception] = []

        def caller(worker: int) -> None:
            for i in range(25):
                try:
                    candidates = balanced.lookup_for(
                        "fleet-net", request_id=f"req-{worker}-{i}"
                    )
                    candidates[0].handle_request(b"payload")
                except Exception as exc:  # noqa: BLE001 - collected and asserted empty below
                    errors.append(exc)

        threads = [threading.Thread(target=caller, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        served = {name: e.served for name, e in endpoints.items()}
        assert sum(served.values()) == 200
        assert all(count >= 20 for count in served.values()), served
        snapshot = balanced.pools()[0]
        assert all(
            m["in_flight"] == 0 for m in snapshot["members"].values()
        )

    def test_counters_pass_through_from_inner(self):
        class CountingInner(InMemoryRegistry):
            def counters(self):
                return {"addresses_skipped": 3}

        balanced = BalancedDiscovery(CountingInner())
        assert balanced.counters() == {"addresses_skipped": 3}
        plain = BalancedDiscovery(InMemoryRegistry())
        assert plain.counters() == {}


class TestReadinessMonitor:
    def test_custom_check_drives_evict_then_restore(self):
        pool, _ = make_pool(["a", "b"])
        ready = {"a": True, "b": False}
        monitor = ReadinessMonitor(pool, check=lambda key, _ep: ready[key])
        assert monitor.poll_once() == {"a": True, "b": False}
        assert pool.snapshot()["members"]["b"]["evicted"]
        ready["b"] = True
        monitor.poll_once()
        assert not pool.snapshot()["members"]["b"]["evicted"]
        assert pool.snapshot()["restores"] == 1

    def test_members_without_signal_are_left_alone(self):
        pool, _ = make_pool(["a", "b"])
        monitor = ReadinessMonitor(
            pool, check=lambda key, _ep: False if key == "a" else None
        )
        assert monitor.poll_once() == {"a": False}
        members = pool.snapshot()["members"]
        assert members["a"]["evicted"] and not members["b"]["evicted"]
        # No probe url configured either: the HTTP path also stays silent.
        quiet = ReadinessMonitor(pool, probe_urls={})
        assert quiet.poll_once() == {}

    def test_crashing_check_means_not_ready_not_dead_monitor(self):
        pool, _ = make_pool(["a"])

        def bad_check(key, _ep):
            raise RuntimeError("probe exploded")

        monitor = ReadinessMonitor(pool, check=bad_check)
        assert monitor.poll_once() == {"a": False}
        assert pool.snapshot()["members"]["a"]["evicted"]

    def test_background_thread_polls_and_stops(self):
        pool, _ = make_pool(["a"])
        polls = threading.Semaphore(0)

        def check(key, _ep):
            polls.release()
            return True

        with ReadinessMonitor(pool, check=check, interval=0.02):
            assert polls.acquire(timeout=2.0)
            assert polls.acquire(timeout=2.0)  # it keeps polling

    def test_readyz_lifecycle_against_a_real_relay_server(self):
        """Satellite coverage: eviction→restore against a real
        ``RelayServer`` flipping ``/readyz`` — the monitor consumes the
        exact HTTP surface PR 8 shipped."""
        from repro.interop.relay import RelayService
        from repro.net.server import RelayServer
        from tests.interop.test_relay_concurrency import CountingDriver, NETWORK

        inner = InMemoryRegistry()
        service = RelayService(NETWORK, inner)
        service.register_driver(CountingDriver())
        with RelayServer(service, probe_port=0) as server:
            endpoint = server.endpoint(timeout=5.0)
            try:
                balanced = BalancedDiscovery(inner)
                inner.register("fleet-net", endpoint)
                balanced.lookup("fleet-net")
                pool = balanced.pool("fleet-net")
                monitor = ReadinessMonitor(
                    pool,
                    probe_urls={endpoint.address: server.probe.url},
                    timeout=2.0,
                )
                assert monitor.poll_once() == {endpoint.address: True}
                assert not pool.snapshot()["members"][endpoint.address]["evicted"]

                service.available = False  # drain: /readyz flips to 503
                assert monitor.poll_once() == {endpoint.address: False}
                assert pool.snapshot()["members"][endpoint.address]["evicted"]
                assert pool.snapshot()["evictions"] == 1

                service.available = True  # back: probe restores it
                assert monitor.poll_once() == {endpoint.address: True}
                assert not pool.snapshot()["members"][endpoint.address]["evicted"]
                assert pool.snapshot()["restores"] == 1
            finally:
                endpoint.close()
