"""Tests for simulation utilities: clocks, latency, metrics, SLOC."""

from __future__ import annotations

import pytest

from repro.sim import (
    LatencyModel,
    LatencyProfile,
    StepTimer,
    count_sloc,
    format_table,
    interop_sloc_of,
    measure_adaptation,
)
from repro.sim.sloc import interop_regions
from repro.utils.clock import SimulatedClock, SystemClock
from repro.utils.ids import deterministic_id, random_id


class TestClocks:
    def test_simulated_clock_advances_only_on_sleep(self):
        clock = SimulatedClock(start=10.0)
        assert clock.now() == 10.0
        clock.sleep(2.5)
        assert clock.now() == 12.5
        clock.advance(0.5)
        assert clock.now() == 13.0

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().sleep(-1)

    def test_system_clock_monotonic(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestIds:
    def test_random_ids_unique(self):
        assert random_id() != random_id()
        assert random_id("p-").startswith("p-")

    def test_deterministic_ids_stable(self):
        assert deterministic_id("a", b"b") == deterministic_id("a", b"b")
        assert deterministic_id("a", "b") != deterministic_id("ab")


class TestLatencyModel:
    def test_charges_advance_clock(self):
        clock = SimulatedClock()
        model = LatencyModel(clock, seed=1)
        charged = model.charge("wan_hop")
        assert clock.now() == pytest.approx(charged)
        assert charged > 0

    def test_deterministic_under_seed(self):
        a = LatencyModel(SimulatedClock(), seed=5)
        b = LatencyModel(SimulatedClock(), seed=5)
        assert [a.charge("lan_hop") for _ in range(5)] == [
            b.charge("lan_hop") for _ in range(5)
        ]

    def test_count_multiplies(self):
        clock = SimulatedClock()
        model = LatencyModel(clock, seed=2)
        model.charge("crypto_op", count=10)
        single = LatencyModel(SimulatedClock(), seed=2)
        assert clock.now() > single.charge("crypto_op")

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            LatencyModel(SimulatedClock()).charge("warp_drive")

    def test_profiles_ordered_by_distance(self):
        colocated = LatencyProfile.colocated()
        wan = LatencyProfile()
        intercontinental = LatencyProfile.intercontinental()
        assert colocated.wan_hop < wan.wan_hop < intercontinental.wan_hop


class TestMetrics:
    def test_step_timer_records(self):
        clock = SimulatedClock()
        timer = StepTimer(clock)
        with timer.step("one"):
            clock.advance(1.0)
        with timer.step("two"):
            clock.advance(3.0)
        assert timer.total() == pytest.approx(4.0)
        rows = timer.rows()
        assert rows[0][0] == "one"
        assert rows[-1][0] == "TOTAL"

    def test_format_table_aligns(self):
        text = format_table(
            [("a", "1"), ("long-name", "2")], headers=["col", "val"]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")


class TestSloc:
    def test_count_ignores_blanks_and_comments(self):
        source = "\n".join(["x = 1", "", "# comment", "   # indented comment", "y = 2"])
        assert count_sloc(source) == 2

    def test_regions_extracted(self):
        source = "\n".join(
            [
                "a = 1",
                "# [interop-begin]",
                "b = 2",
                "c = 3",
                "# [interop-end]",
                "d = 4",
            ]
        )
        regions = interop_regions(source)
        assert len(regions) == 1
        assert count_sloc(regions[0]) == 2

    def test_unterminated_region_rejected(self):
        with pytest.raises(ValueError):
            interop_regions("# [interop-begin]\nx = 1")

    def test_end_without_begin_rejected(self):
        with pytest.raises(ValueError):
            interop_regions("# [interop-end]")

    def test_measured_adaptation_matches_paper_shape(self):
        """The §5 claim: adaptation is tens of lines, one-time."""
        report = measure_adaptation()
        assert 0 < report.source_chaincode_sloc <= 60
        assert 0 < report.destination_chaincode_sloc <= 40
        assert 0 < report.destination_app_sloc <= 120
        # Destination app adaptation is the largest, as in the paper.
        assert report.destination_app_sloc > report.destination_chaincode_sloc

    def test_interop_sloc_of_chaincodes_positive(self):
        from repro.apps.stl.chaincode import TradeLensChaincode
        from repro.apps.swt.chaincode import WeTradeChaincode

        assert interop_sloc_of(TradeLensChaincode) > 0
        assert interop_sloc_of(WeTradeChaincode) > 0
