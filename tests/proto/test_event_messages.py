"""Round-trips for the event envelope family and the unknown-kind path."""

from __future__ import annotations

from repro.interop.discovery import InMemoryRegistry
from repro.interop.relay import RelayService
from repro.proto import (
    EventAck,
    EventNotificationMsg,
    EventSubscribeRequest,
    EventUnsubscribeRequest,
    AuthInfo,
    NetworkAddressMsg,
    RelayEnvelope,
    MSG_KIND_BATCH_REQUEST,
    MSG_KIND_BATCH_RESPONSE,
    MSG_KIND_ERROR,
    MSG_KIND_EVENT_ACK,
    MSG_KIND_EVENT_PUBLISH,
    MSG_KIND_EVENT_SUBSCRIBE,
    MSG_KIND_EVENT_UNSUBSCRIBE,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_QUERY_RESPONSE,
    MSG_KIND_TRANSACT_REQUEST,
    MSG_KIND_TRANSACT_RESPONSE,
    PROTOCOL_VERSION,
    SIDE_EFFECTING_KINDS,
    STATUS_OK,
)


def _auth() -> AuthInfo:
    return AuthInfo(
        requesting_network="swt",
        requesting_org="seller-bank-org",
        requestor="seller",
        certificate=b"\x01\x02",
        public_key=b"\x03" * 65,
    )


class TestEventMessages:
    def test_subscribe_roundtrip(self):
        request = EventSubscribeRequest(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network="stl", ledger="trade-logistics", contract="TradeLensCC"
            ),
            event_name="BillOfLadingIssued",
            auth=_auth(),
        )
        decoded = EventSubscribeRequest.decode(request.encode())
        assert decoded == request
        assert decoded.event_name == "BillOfLadingIssued"
        assert decoded.auth.requesting_org == "seller-bank-org"

    def test_subscribe_envelope_roundtrip(self):
        request = EventSubscribeRequest(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(network="stl", ledger="l", contract="cc"),
            event_name="*",
        )
        envelope = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_EVENT_SUBSCRIBE,
            request_id="req-sub-1",
            source_network="swt",
            destination_network="stl",
            payload=request.encode(),
        )
        decoded = RelayEnvelope.decode(envelope.encode())
        assert decoded.kind == MSG_KIND_EVENT_SUBSCRIBE
        assert EventSubscribeRequest.decode(decoded.payload) == request

    def test_publish_roundtrip(self):
        message = EventNotificationMsg(
            version=PROTOCOL_VERSION,
            subscription_id="sub-1",
            source_network="stl",
            chaincode="TradeLensCC",
            name="BillOfLadingIssued",
            payload=b"PO-1",
            block_number=9,
            tx_id="tx-abc",
        )
        envelope = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_EVENT_PUBLISH,
            request_id="req-pub-1",
            source_network="stl",
            destination_network="swt",
            payload=message.encode(),
        )
        decoded = RelayEnvelope.decode(envelope.encode())
        assert decoded.kind == MSG_KIND_EVENT_PUBLISH
        inner = EventNotificationMsg.decode(decoded.payload)
        assert inner == message
        assert inner.block_number == 9
        assert inner.payload == b"PO-1"

    def test_unsubscribe_roundtrip(self):
        request = EventUnsubscribeRequest(
            version=PROTOCOL_VERSION, subscription_id="sub-2", auth=_auth()
        )
        envelope = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_EVENT_UNSUBSCRIBE,
            request_id="req-unsub-1",
            source_network="swt",
            destination_network="stl",
            payload=request.encode(),
        )
        decoded = RelayEnvelope.decode(envelope.encode())
        assert decoded.kind == MSG_KIND_EVENT_UNSUBSCRIBE
        assert EventUnsubscribeRequest.decode(decoded.payload) == request

    def test_ack_roundtrip(self):
        ack = EventAck(
            version=PROTOCOL_VERSION,
            subscription_id="sub-3",
            status=STATUS_OK,
            error="",
        )
        assert EventAck.decode(ack.encode()) == ack

    def test_all_kinds_are_distinct(self):
        kinds = {
            MSG_KIND_QUERY_REQUEST,
            MSG_KIND_QUERY_RESPONSE,
            MSG_KIND_ERROR,
            MSG_KIND_BATCH_REQUEST,
            MSG_KIND_BATCH_RESPONSE,
            MSG_KIND_TRANSACT_REQUEST,
            MSG_KIND_TRANSACT_RESPONSE,
            MSG_KIND_EVENT_SUBSCRIBE,
            MSG_KIND_EVENT_PUBLISH,
            MSG_KIND_EVENT_UNSUBSCRIBE,
            MSG_KIND_EVENT_ACK,
        }
        assert len(kinds) == 11

    def test_side_effecting_kinds_cover_writes_not_reads(self):
        assert MSG_KIND_TRANSACT_REQUEST in SIDE_EFFECTING_KINDS
        assert MSG_KIND_EVENT_SUBSCRIBE in SIDE_EFFECTING_KINDS
        assert MSG_KIND_EVENT_PUBLISH in SIDE_EFFECTING_KINDS
        assert MSG_KIND_EVENT_UNSUBSCRIBE in SIDE_EFFECTING_KINDS
        assert MSG_KIND_QUERY_REQUEST not in SIDE_EFFECTING_KINDS
        assert MSG_KIND_BATCH_REQUEST not in SIDE_EFFECTING_KINDS


class TestUnknownKind:
    def test_unknown_msg_kind_answered_with_error_envelope(self):
        """A relay answers an unroutable kind with a correlatable,
        non-retryable error envelope rather than an exception."""
        relay = RelayService("stl", InMemoryRegistry())
        bogus = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=99,
            request_id="req-bogus",
            source_network="swt",
            destination_network="stl",
            payload=b"",
        )
        reply = RelayEnvelope.decode(relay.handle_request(bogus.encode()))
        assert reply.kind == MSG_KIND_ERROR
        assert reply.request_id == "req-bogus"
        assert reply.headers.get("retryable") == "false"
        assert b"unexpected message kind 99" in reply.payload
        assert relay.stats.requests_failed == 1
