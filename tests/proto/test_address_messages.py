"""Tests for cross-network addressing and interop protocol messages."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.proto import (
    Attestation,
    AuthInfo,
    CrossNetworkAddress,
    NetworkAddressMsg,
    NetworkConfigMsg,
    NetworkQuery,
    OrganizationConfigMsg,
    PeerConfigMsg,
    ProofMetadata,
    QueryResponse,
    RelayEnvelope,
    VerificationPolicyMsg,
    parse_address,
    MSG_KIND_QUERY_REQUEST,
    PROTOCOL_VERSION,
    STATUS_OK,
)

segment = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-_."),
    min_size=1,
    max_size=16,
)


class TestAddress:
    def test_parse_roundtrip(self):
        address = parse_address("stl/main/TradeLensCC/GetBillOfLading")
        assert address == CrossNetworkAddress(
            "stl", "main", "TradeLensCC", "GetBillOfLading"
        )
        assert str(address) == "stl/main/TradeLensCC/GetBillOfLading"

    @pytest.mark.parametrize(
        "bad",
        ["", "a/b/c", "a/b/c/d/e", "a//c/d", "/b/c/d", "a/b/c/"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            parse_address(bad)

    def test_segments_cannot_contain_separator(self):
        with pytest.raises(AddressError):
            CrossNetworkAddress("a/b", "c", "d", "e")

    @given(n=segment, l=segment, c=segment, f=segment)
    def test_roundtrip_property(self, n, l, c, f):
        address = CrossNetworkAddress(n, l, c, f)
        assert parse_address(str(address)) == address


class TestInteropMessages:
    def _query(self) -> NetworkQuery:
        return NetworkQuery(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network="stl", ledger="main", contract="cc", function="fn"
            ),
            args=["arg1", "arg2"],
            nonce="nonce-1",
            auth=AuthInfo(
                requesting_network="swt",
                requesting_org="seller-org",
                requestor="seller",
                certificate=b"\x01\x02",
                public_key=b"\x03" * 65,
            ),
            policy=VerificationPolicyMsg(expression="AND(org:a, org:b)"),
            confidential=True,
        )

    def test_query_roundtrip(self):
        query = self._query()
        assert NetworkQuery.decode(query.encode()) == query

    def test_response_roundtrip(self):
        response = QueryResponse(
            version=PROTOCOL_VERSION,
            nonce="nonce-1",
            status=STATUS_OK,
            result_cipher=b"\x99" * 40,
            attestations=[
                Attestation(
                    metadata_cipher=b"\x01",
                    signature=b"\x02",
                    certificate=b"\x03",
                    peer_id="p.o",
                    org="o",
                )
            ],
        )
        assert QueryResponse.decode(response.encode()) == response

    def test_envelope_roundtrip_with_headers(self):
        envelope = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_QUERY_REQUEST,
            request_id="req-1",
            source_network="swt",
            destination_network="stl",
            payload=self._query().encode(),
            headers={"retryable": "false", "trace": "t-1"},
        )
        decoded = RelayEnvelope.decode(envelope.encode())
        assert decoded == envelope
        assert NetworkQuery.decode(decoded.payload) == self._query()

    def test_proof_metadata_roundtrip(self):
        metadata = ProofMetadata(
            address=NetworkAddressMsg(network="stl", ledger="l", contract="c", function="f"),
            args=["a"],
            nonce="n",
            result_hash=b"\x00" * 32,
            peer_id="peer0.org",
            org="org",
            network="stl",
            timestamp=12.5,
            result=b"{\"hash\":\"xx\"}",
        )
        assert ProofMetadata.decode(metadata.encode()) == metadata

    def test_network_config_roundtrip(self):
        config = NetworkConfigMsg(
            network_id="stl",
            platform="fabric",
            organizations=[
                OrganizationConfigMsg(
                    org_id="seller-org",
                    msp_id="seller-orgMSP",
                    root_certificate=b"\xaa" * 10,
                    peers=[
                        PeerConfigMsg(
                            peer_id="peer0.seller-org",
                            org="seller-org",
                            endpoint="sim://stl/peer0",
                            certificate=b"\xbb" * 10,
                        )
                    ],
                )
            ],
            ledgers=["main"],
        )
        assert NetworkConfigMsg.decode(config.encode()) == config

    def test_query_without_optionals_roundtrips(self):
        query = NetworkQuery(version=1, nonce="n")
        assert NetworkQuery.decode(query.encode()) == query


class TestBatchMessages:
    """The MSG_KIND_BATCH_REQUEST/MSG_KIND_BATCH_RESPONSE envelope pair."""

    def _query(self, nonce: str) -> NetworkQuery:
        return NetworkQuery(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network="stl", ledger="main", contract="cc", function="fn"
            ),
            args=["a", "b"],
            nonce=nonce,
            policy=VerificationPolicyMsg(expression="org:seller-org"),
            confidential=True,
        )

    def test_batch_request_roundtrip(self):
        from repro.proto import BatchQueryRequest

        batch = BatchQueryRequest(
            version=PROTOCOL_VERSION,
            queries=[self._query("n-1"), self._query("n-2")],
        )
        decoded = BatchQueryRequest.decode(batch.encode())
        assert decoded == batch
        assert [q.nonce for q in decoded.queries] == ["n-1", "n-2"]

    def test_batch_response_roundtrip_preserves_order(self):
        from repro.proto import BatchQueryResponse

        batch = BatchQueryResponse(
            version=PROTOCOL_VERSION,
            responses=[
                QueryResponse(version=1, nonce="n-1", status=STATUS_OK),
                QueryResponse(version=1, nonce="n-2", status=2, error="boom"),
            ],
        )
        decoded = BatchQueryResponse.decode(batch.encode())
        assert decoded == batch
        assert [r.nonce for r in decoded.responses] == ["n-1", "n-2"]

    def test_batch_kinds_are_distinct(self):
        from repro.proto import (
            MSG_KIND_BATCH_REQUEST,
            MSG_KIND_BATCH_RESPONSE,
            MSG_KIND_ERROR,
            MSG_KIND_QUERY_RESPONSE,
        )

        kinds = {
            MSG_KIND_QUERY_REQUEST,
            MSG_KIND_QUERY_RESPONSE,
            MSG_KIND_ERROR,
            MSG_KIND_BATCH_REQUEST,
            MSG_KIND_BATCH_RESPONSE,
        }
        assert len(kinds) == 5

    def test_batch_envelope_roundtrip(self):
        from repro.proto import BatchQueryRequest, MSG_KIND_BATCH_REQUEST

        payload = BatchQueryRequest(
            version=PROTOCOL_VERSION, queries=[self._query("n-1")]
        ).encode()
        envelope = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_BATCH_REQUEST,
            request_id="req-1",
            source_network="swt",
            destination_network="stl",
            payload=payload,
        )
        decoded = RelayEnvelope.decode(envelope.encode())
        assert decoded.kind == MSG_KIND_BATCH_REQUEST
        assert BatchQueryRequest.decode(decoded.payload).queries[0].nonce == "n-1"
