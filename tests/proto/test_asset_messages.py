"""Wire round-trips for the asset envelope family and its routing edges."""

from __future__ import annotations

import pytest

from repro.interop.discovery import InMemoryRegistry
from repro.interop.relay import RelayService
from repro.proto.messages import (
    ASSET_COMMAND_KINDS,
    MSG_KIND_ASSET_ACK,
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_ASSET_STATUS,
    MSG_KIND_ASSET_UNLOCK,
    MSG_KIND_ERROR,
    PROTOCOL_VERSION,
    SIDE_EFFECTING_KINDS,
    STATUS_OK,
    AssetAckMsg,
    AssetCommandMsg,
    AuthInfo,
    NetworkAddressMsg,
    RelayEnvelope,
)


def sample_command() -> AssetCommandMsg:
    return AssetCommandMsg(
        version=PROTOCOL_VERSION,
        address=NetworkAddressMsg(
            network="fabnet", ledger="trade", contract="assetscc", function=""
        ),
        asset_id="GOLD-1",
        recipient="bob@quornet",
        hashlock=b"\x11" * 32,
        timeout=1234.5,
        preimage=b"\x22" * 32,
        auth=AuthInfo(
            requesting_network="quornet",
            requesting_org="op-org-1",
            requestor="bob",
            certificate=b"cert-bytes",
            public_key=b"key-bytes",
        ),
        nonce="asset-nonce-1",
    )


class TestAssetCommandRoundTrip:
    @pytest.mark.parametrize(
        "kind",
        sorted(ASSET_COMMAND_KINDS),
        ids=["lock", "claim", "unlock", "status"],
    )
    def test_command_envelope_round_trip(self, kind):
        command = sample_command()
        envelope = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=kind,
            request_id="req-1",
            source_network="quornet",
            destination_network="fabnet",
            payload=command.encode(),
        )
        decoded_envelope = RelayEnvelope.decode(envelope.encode())
        assert decoded_envelope.kind == kind
        decoded = AssetCommandMsg.decode(decoded_envelope.payload)
        assert decoded.asset_id == "GOLD-1"
        assert decoded.recipient == "bob@quornet"
        assert decoded.hashlock == b"\x11" * 32
        assert decoded.timeout == 1234.5
        assert decoded.preimage == b"\x22" * 32
        assert decoded.auth.requestor == "bob"
        assert decoded.address.network == "fabnet"
        assert decoded.nonce == "asset-nonce-1"

    def test_ack_round_trip(self):
        ack = AssetAckMsg(
            version=PROTOCOL_VERSION,
            nonce="asset-nonce-1",
            status=STATUS_OK,
            asset_id="GOLD-1",
            state="claimed",
            owner="alice@fabnet",
            recipient="bob@quornet",
            hashlock=b"\x11" * 32,
            timeout=1234.5,
            preimage=b"\x22" * 32,
            tx_id="tx-9",
            block_number=7,
        )
        decoded = AssetAckMsg.decode(ack.encode())
        assert decoded.state == "claimed"
        assert decoded.preimage == b"\x22" * 32
        assert decoded.tx_id == "tx-9"
        assert decoded.block_number == 7
        assert decoded.timeout == 1234.5


class TestKindTaxonomy:
    def test_mutating_asset_kinds_are_side_effecting(self):
        assert MSG_KIND_ASSET_LOCK in SIDE_EFFECTING_KINDS
        assert MSG_KIND_ASSET_CLAIM in SIDE_EFFECTING_KINDS
        assert MSG_KIND_ASSET_UNLOCK in SIDE_EFFECTING_KINDS

    def test_status_is_read_only(self):
        assert MSG_KIND_ASSET_STATUS not in SIDE_EFFECTING_KINDS
        assert MSG_KIND_ASSET_ACK not in SIDE_EFFECTING_KINDS

    def test_kind_values_are_distinct(self):
        kinds = {
            MSG_KIND_ASSET_LOCK,
            MSG_KIND_ASSET_CLAIM,
            MSG_KIND_ASSET_UNLOCK,
            MSG_KIND_ASSET_STATUS,
            MSG_KIND_ASSET_ACK,
        }
        assert len(kinds) == 5
        assert all(kind >= 12 for kind in kinds)


class TestUnknownAndMalformedKinds:
    def test_unknown_kind_answered_with_error_envelope(self):
        relay = RelayService("srcnet", InMemoryRegistry())
        request = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=99,
            request_id="req-unknown",
            source_network="elsewhere",
            destination_network="srcnet",
            payload=b"whatever",
        )
        reply = RelayEnvelope.decode(relay.handle_request(request.encode()))
        assert reply.kind == MSG_KIND_ERROR
        assert reply.request_id == "req-unknown"
        assert "unexpected message kind 99" in reply.payload.decode()

    def test_asset_kind_without_asset_driver_is_error_envelope(self):
        relay = RelayService("srcnet", InMemoryRegistry())
        request = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_ASSET_LOCK,
            request_id="req-asset",
            source_network="elsewhere",
            destination_network="srcnet",
            payload=sample_command().encode(),
        )
        reply = RelayEnvelope.decode(relay.handle_request(request.encode()))
        assert reply.kind == MSG_KIND_ERROR
        assert "no asset-capable driver" in reply.payload.decode()

    def test_undecodable_asset_payload_is_error_envelope(self):
        relay = RelayService("srcnet", InMemoryRegistry())
        request = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_ASSET_CLAIM,
            request_id="req-bad",
            source_network="elsewhere",
            destination_network="srcnet",
            payload=b"\xff\xff\xff\xff",
        )
        reply = RelayEnvelope.decode(relay.handle_request(request.encode()))
        assert reply.kind == MSG_KIND_ERROR
        assert "undecodable asset command" in reply.payload.decode()
