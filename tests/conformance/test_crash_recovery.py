"""Crash-restart recovery across the driver matrix (PR 4's plan, extended).

Every platform target runs the same script: move the source relay onto a
durable :class:`~repro.store.SqliteStore`, execute a side-effecting
envelope, kill the relay (object discarded, store closed), restart on
the re-opened state directory, and replay the captured bytes.

- Platforms that serve the verb (fabric, corda) must answer the replay
  from the durable record — one ledger commit, ``duplicates_suppressed``
  bumped, byte-identical reply.
- Platforms that fail closed (quorum and the public chain have no
  transaction driver) must *stay* failed closed: the recorded capability
  error is the durable answer after restart too.
- Restarting with NO store (the pre-durability default) keeps the old
  semantics: nothing survives, the replay re-routes.
"""

from __future__ import annotations

import pytest

from repro.assets.htlc import STATE_LOCKED, make_hashlock
from repro.interop.relay import NS_IDEMPOTENCY
from repro.interop.transactions import RemoteTransactionClient
from repro.proto.messages import (
    ERROR_KIND_CAPABILITY,
    ERROR_KIND_HEADER,
    MSG_KIND_ASSET_ACK,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_ERROR,
    MSG_KIND_TRANSACT_REQUEST,
    MSG_KIND_TRANSACT_RESPONSE,
    PROTOCOL_VERSION,
    STATUS_OK,
    AssetAckMsg,
    RelayEnvelope,
)
from repro.store import SqliteStore
from repro.testing import restart_relay

PLATFORMS = ["fabric", "quorum", "corda", "pubchain"]


def transact_envelope(target, tag: str, request_id: str) -> bytes:
    """A captured-on-the-wire transact envelope, as an adversary holds it."""
    tx_client = RemoteTransactionClient(target.client)
    prepared = tx_client.prepare_transaction(
        target.transact_address or f"{target.network_id}/ledger/contract/Put",
        target.transact_args(tag) if target.transact_args else [tag],
        policy=target.policy,
    )
    return RelayEnvelope(
        version=PROTOCOL_VERSION,
        kind=MSG_KIND_TRANSACT_REQUEST,
        request_id=request_id,
        source_network=target.client.network_id,
        destination_network=target.network_id,
        payload=prepared.query.encode(),
    ).encode()


def crash_restart_durable(target, tmp_path, recover=True):
    """Close the relay's durable store and restart on the same directory."""
    target.relay.store.close()
    reopened = SqliteStore(tmp_path / "relay-state", fsync=False)
    return restart_relay(target, store=reopened, recover=recover)


@pytest.fixture()
def durable_target(conformance_target, tmp_path):
    """The platform target with its source relay moved onto a SqliteStore;
    hands the (volatile-state) original back afterwards."""
    store = SqliteStore(tmp_path / "relay-state", fsync=False)
    restart_relay(conformance_target, store=store)
    yield conformance_target
    conformance_target.relay.store.close()
    restart_relay(conformance_target)  # back to the MemoryStore default


@pytest.mark.parametrize("conformance_target", PLATFORMS, indirect=True)
class TestDurableReplayMatrix:
    def test_replay_after_crash_restart_is_answered_from_disk(
        self, durable_target, tmp_path
    ):
        target = durable_target
        platform = target.platform
        tag = f"CRASH-{platform.upper()}-1"
        raw = transact_envelope(target, tag, f"req-crash-{platform}-1")

        first = target.relay.handle_request(raw)
        first_kind = RelayEnvelope.decode(first).kind
        if target.transact_address is not None:
            assert first_kind == MSG_KIND_TRANSACT_RESPONSE
            assert target.commit_count(tag) == 1
        else:
            # Quorum fails closed on transact; the refusal is the answer.
            assert first_kind == MSG_KIND_ERROR

        restarted = crash_restart_durable(target, tmp_path)
        second = restarted.handle_request(raw)

        assert second == first  # the durable record, byte for byte
        assert restarted.stats.duplicates_suppressed == 1
        if target.transact_address is not None:
            assert target.commit_count(tag) == 1  # exactly one commit, ever

    def test_restart_empty_keeps_pre_durability_semantics(
        self, durable_target, tmp_path
    ):
        """``restart_relay(target)`` without a store is the old crash
        model: the record dies with the process and the replay re-routes
        (the ledger's own duplicate refusal stays the visible answer)."""
        target = durable_target
        platform = target.platform
        tag = f"CRASH-{platform.upper()}-2"
        raw = transact_envelope(target, tag, f"req-crash-{platform}-2")
        first = target.relay.handle_request(raw)
        target.relay.store.close()

        restarted = restart_relay(target)  # empty MemoryStore restart
        second = restarted.handle_request(raw)

        assert restarted.stats.duplicates_suppressed == 0
        if target.transact_address is not None:
            # Re-routed for real: the chaincode/vault refuses the double
            # commit, visibly — and the ledger still shows one commit.
            assert second != first
            assert target.commit_count(tag) == 1
        else:
            assert RelayEnvelope.decode(second).kind == MSG_KIND_ERROR
        # Hand the fixture's teardown a durable relay again.
        restart_relay(
            target, store=SqliteStore(tmp_path / "relay-state2", fsync=False)
        )

    def test_asset_lock_replay_after_crash_restart(
        self, durable_target, tmp_path
    ):
        """The HTLC leg of the same contract: a lock executed right
        before the crash answers its replay from the durable record
        (one escrow, the original OK ack) — and a platform without the
        asset capability would keep refusing after the restart (all four
        current platforms serve assets, so the refusal branch is the
        suite's contract for future columns)."""
        target = durable_target
        platform = target.platform
        request_id = f"req-crash-{platform}-lock"
        if target.supports_assets:
            asset_id = target.issue_asset(
                f"CRASH-{platform.upper()}-L", target.party(target.client)
            )
            command = target.asset_command(
                target.client,
                asset_id,
                recipient=target.party(target.counter_client),
                hashlock=make_hashlock(b"crash-restart-secret"),
                timeout=target.clock.now() + 600.0,
            )
        else:
            command = target.asset_command(target.client, "ASSET-NONE")
        raw = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_ASSET_LOCK,
            request_id=request_id,
            source_network=target.client.network_id,
            destination_network=target.network_id,
            payload=command.encode(),
        ).encode()

        first = target.relay.handle_request(raw)
        first_envelope = RelayEnvelope.decode(first)
        if target.supports_assets:
            assert first_envelope.kind == MSG_KIND_ASSET_ACK
            ack = AssetAckMsg.decode(first_envelope.payload)
            assert ack.status == STATUS_OK
            assert target.read_lock(asset_id)["state"] == STATE_LOCKED
        else:
            # Fail-closed before the crash: a capability error, not an ack.
            assert first_envelope.kind == MSG_KIND_ERROR

        restarted = crash_restart_durable(target, tmp_path)
        second = restarted.handle_request(raw)

        assert second == first
        assert restarted.stats.duplicates_suppressed == 1
        if target.supports_assets:
            # The duplicate saw the original OK, not an "already locked"
            # refusal — proof the escrow happened exactly once.
            assert target.read_lock(asset_id)["state"] == STATE_LOCKED

    def test_durable_record_is_bounded_on_disk_too(
        self, durable_target, tmp_path
    ):
        """The record stays bounded whatever fills it: served transact
        answers on fabric/corda, durable fail-closed capability refusals
        on quorum/pubchain (no skips — a platform without the verb must
        still bound what it records about refusing it)."""
        target = durable_target
        relay = target.relay
        original_capacity = relay.idempotency_capacity
        relay.idempotency_capacity = 4
        try:
            platform = target.platform
            replies = [
                relay.handle_request(
                    transact_envelope(
                        target,
                        f"CRASH-{platform.upper()}-B{index}",
                        f"req-crash-{platform}-b{index}",
                    )
                )
                for index in range(6)
            ]
            if target.transact_address is None:
                # Every filler was a typed capability refusal, not a skip.
                for raw in replies:
                    envelope = RelayEnvelope.decode(raw)
                    assert envelope.kind == MSG_KIND_ERROR
                    assert (
                        envelope.headers.get(ERROR_KIND_HEADER)
                        == ERROR_KIND_CAPABILITY
                    )
            assert len(relay._idempotency) <= 4
            assert len(relay.store.scan(NS_IDEMPOTENCY)) <= 4
        finally:
            relay.idempotency_capacity = original_capacity


@pytest.mark.parametrize("conformance_target", ["fabric", "corda"], indirect=True)
class TestSubscriptionRecovery:
    def test_subscription_survives_source_relay_restart(
        self, durable_target, tmp_path
    ):
        """The §2 event primitive across a crash: a durably-recorded
        subscription is re-tapped by ``recover()`` and notifications for
        post-restart commits still reach the subscriber's stream."""
        target = durable_target
        from repro.api.gateway import InteropGateway

        gateway = InteropGateway.from_client(target.client)
        stream = gateway.subscribe(
            target.event_address,
            target.event_name,
            verifier=target.event_verifier(),
        )
        assert target.relay.stats.subscriptions_served == 1

        restarted = crash_restart_durable(target, tmp_path)
        restored_tag = f"CRASH-{target.platform.upper()}-EV"
        target.trigger_event(restored_tag)

        assert stream.pending_count == 1
        event = stream.take()
        assert event.notification.payload == restored_tag.encode("utf-8")
        assert restarted.stats.events_published == 1
        stream.close()

    def test_restart_without_recover_leaves_taps_closed(
        self, durable_target, tmp_path
    ):
        """``recover=False`` models an operator who restarted the relay
        but has not (yet) re-opened taps: the durable record is intact,
        no notifications flow, and a later ``recover()`` resumes them."""
        target = durable_target
        from repro.api.gateway import InteropGateway

        gateway = InteropGateway.from_client(target.client)
        stream = gateway.subscribe(
            target.event_address,
            target.event_name,
            verifier=target.event_verifier(),
        )
        restarted = crash_restart_durable(target, tmp_path, recover=False)
        target.trigger_event(f"CRASH-{target.platform.upper()}-EV2")
        assert stream.pending_count == 0  # tap not re-opened yet

        assert len(restarted.recover()) == 1
        target.trigger_event(f"CRASH-{target.platform.upper()}-EV3")
        assert stream.pending_count == 1
        stream.close()
