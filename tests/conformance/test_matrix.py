"""The cross-driver conformance matrix: platform × fault plan × seed.

Every cell drives the full gateway verb surface (query, batch, transact,
subscribe, assets) against one platform's driver while a seeded
:class:`~repro.testing.ChaosEndpoint` injects one fault family into the
relay path, and asserts the §4–§5 protocol invariants. A violation
raises :class:`~repro.testing.ConformanceError`, whose message leads
with the failing seed — rerun with ``CONFORMANCE_SEEDS=<seed>`` to
replay the exact adversarial schedule.
"""

from __future__ import annotations

import os

import pytest

from repro.testing import (
    ALL_FAULT_KINDS,
    ALL_VERBS,
    OUTCOME_FAIL_CLOSED,
    OUTCOME_SERVED,
    DriverConformanceSuite,
    default_fault_plans,
)

SEEDS = [
    int(part)
    for part in os.environ.get("CONFORMANCE_SEEDS", "7").split(",")
    if part.strip()
]
PLATFORMS = ("fabric", "quorum", "corda", "pubchain")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("plan_index", range(len(ALL_FAULT_KINDS)), ids=ALL_FAULT_KINDS)
@pytest.mark.parametrize("conformance_target", PLATFORMS, indirect=True)
def test_matrix_cell(conformance_target, plan_index, seed):
    """One (platform, fault plan) cell, all verbs, one seed."""
    suite = DriverConformanceSuite(conformance_target, seed=seed)
    plan = suite.plans[plan_index]
    outcomes = suite.run_plan(plan)
    assert len(outcomes) == len(ALL_VERBS)
    # Verbs the platform supports must not fail closed; verbs it does not
    # must (the suite itself enforces the finer-grained invariants and
    # raises ConformanceError with the seed on violation).
    for outcome in outcomes:
        if outcome.verb == "transact":
            supported = conformance_target.supports_transactions
        elif outcome.verb == "subscribe":
            supported = conformance_target.supports_events
        elif outcome.verb == "assets":
            supported = conformance_target.supports_assets
        else:
            supported = True
        if supported:
            assert outcome.outcome != OUTCOME_FAIL_CLOSED, (
                f"seed={seed}: supported verb {outcome.verb} failed closed"
            )
        else:
            assert outcome.outcome == OUTCOME_FAIL_CLOSED, (
                f"seed={seed}: unsupported verb {outcome.verb} did not fail "
                f"closed (got {outcome.outcome})"
            )


@pytest.mark.parametrize("conformance_target", PLATFORMS, indirect=True)
def test_clean_baseline_serves_every_supported_verb(conformance_target):
    """With no faults injected, every supported verb must be served.

    Uses an empty fault plan (the chaos endpoint forwards everything), so
    this doubles as the capability-parity check: Fabric and Corda serve
    all five verbs; Quorum and the public chain serve query/batch/assets
    and fail closed on transact/subscribe. Nothing skips — every cell is
    either served or a typed ``UnsupportedCapabilityError`` refusal.
    """
    from repro.testing import FaultPlan

    seed = SEEDS[0]
    suite = DriverConformanceSuite(
        conformance_target, seed=seed, plans=[FaultPlan(seed, [], name="none")]
    )
    report = suite.run()
    supported = 2  # query + batch
    supported += 1 if conformance_target.supports_transactions else 0
    supported += 1 if conformance_target.supports_events else 0
    supported += 1 if conformance_target.supports_assets else 0
    assert report.count(OUTCOME_SERVED) == supported, report.summary()
    assert report.count(OUTCOME_FAIL_CLOSED) == len(ALL_VERBS) - supported


def test_default_plans_cover_at_least_six_distinct_families():
    plans = default_fault_plans(SEEDS[0])
    assert len({plan.name for plan in plans}) >= 6
