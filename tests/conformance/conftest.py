"""Conformance targets: one per platform (Fabric, Quorum, Corda, pubchain).

Each target is a self-contained deployment — a source network fronted by
its relay, plus a bare destination organization whose clients reach it
through a private discovery registry — wired exactly as the paper's §3.3
initialization prescribes (mutually recorded configurations, exposure
rules for every verb the platform supports).

Capability matrix the targets realize (every cell either conforms or
fails closed with a typed ``UnsupportedCapabilityError`` — no skips):

============  =====  =====  ===========  ===========  ======
platform      query  batch  transact     subscribe    assets
============  =====  =====  ===========  ===========  ======
fabric        yes    yes    yes          yes          yes
quorum        yes    yes    fail-closed  fail-closed  yes
corda         yes    yes    yes          yes          yes
pubchain      yes    yes    fail-closed  fail-closed  yes
============  =====  =====  ===========  ===========  ======

The pubchain target's served verbs are additionally gated by its
:class:`~repro.pubchain.FinalityPolicy`: the default build pre-bakes
``auto_confirm`` deep enough that the happy path settles instantly, and
``build_pubchain_target(auto_confirm=0)`` hands finality tests a chain
whose confirmations only accrue under explicit ``mine()`` calls (the
chain object rides on ``target.substrate``).

Seeds come from ``CONFORMANCE_SEEDS`` (comma-separated integers; default
a single fixed seed so the tier-1 run stays fast — CI's conformance job
widens it to three).
"""

from __future__ import annotations

import json
import os
from types import SimpleNamespace

import pytest

from repro.api.streams import EventVerifier
from repro.assets.contracts import (
    FabricAssetChaincode,
    QuorumAssetContract,
    issue_corda_asset,
)
from repro.assets.htlc import STATE_AVAILABLE
from repro.corda import CordaNetwork, LinearState
from repro.fabric import NetworkBuilder
from repro.fabric.chaincode import Chaincode, require_args
from repro.fabric.identity import Organization
from repro.interop.bootstrap import (
    create_fabric_relay,
    enable_fabric_interop,
)
from repro.interop.client import InteropClient
from repro.interop.contracts.ecc import ECC_NAME
from repro.interop.contracts.ports import InteropPort
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.corda_driver import CordaDriver
from repro.interop.drivers.fabric_driver import INTEROP_TRANSIENT_KEY
from repro.interop.drivers.quorum_driver import QuorumDriver
from repro.interop.events import enable_relay_events
from repro.interop.relay import RelayService
from repro.interop.transactions import enable_remote_transactions
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg
from repro.pubchain import (
    VERB_ASSETS,
    VERB_QUERY,
    FinalityPolicy,
    PubChainDriver,
    SimulatedPublicChain,
)
from repro.quorum import DocumentRegistryContract, QuorumNetwork
from repro.quorum.contracts import CallContext
from repro.testing import ConformanceTarget
from repro.utils.clock import SimulatedClock


def conformance_seeds() -> list[int]:
    raw = os.environ.get("CONFORMANCE_SEEDS", "7")
    return [int(part) for part in raw.split(",") if part.strip()]


# ---------------------------------------------------------------------------
# Destination side (platform-neutral): a bare org + relay, as in §3.3 the
# requesting network only needs an identity configuration the source can
# record and validate certificates against.
# ---------------------------------------------------------------------------


def make_destination(network_id: str = "destnet") -> SimpleNamespace:
    org = Organization("dest-org", network=network_id)
    app = org.enroll("app", role="client")
    counter = org.enroll("counter", role="client")
    registry = InMemoryRegistry()
    relay = RelayService(network_id, registry)
    registry.register(network_id, relay)
    config = NetworkConfigMsg(
        network_id=network_id,
        platform="fabric",
        organizations=[
            OrganizationConfigMsg(
                org_id="dest-org",
                msp_id="dest-orgMSP",
                root_certificate=org.msp.root_certificate.to_bytes(),
            )
        ],
    )
    return SimpleNamespace(
        network_id=network_id,
        org=org,
        registry=registry,
        relay=relay,
        config=config,
        client=InteropClient(app, relay, network_id),
        counter_client=InteropClient(counter, relay, network_id),
    )


# ---------------------------------------------------------------------------
# Fabric target
# ---------------------------------------------------------------------------


class ConformanceChaincode(Chaincode):
    """Minimal record store: one transact verb, one query, one event.

    ``Put(key, value)`` commits a record (refusing duplicates, so a
    double-executed transaction is *visible*) and emits the ``Stored``
    event; ``Get(key)`` reads it back. The dispatch-wide interop block is
    the same ~35 SLOC adaptation as the paper's §4.3 chaincode change.
    """

    name = "confcc"

    def invoke(self, stub):
        function = stub.function
        if function == "init":
            return b"ok"
        handler = {"Put": self._put, "Get": self._get}.get(function)
        if handler is None:
            from repro.errors import ChaincodeError

            raise ChaincodeError(f"{self.name} has no function {function!r}")
        interop_raw = stub.get_transient(INTEROP_TRANSIENT_KEY)
        if interop_raw is not None:
            interop_ctx = json.loads(interop_raw)
            stub.invoke_chaincode(
                ECC_NAME,
                "CheckAccess",
                [
                    interop_ctx["requesting_network"],
                    interop_ctx["requesting_org"],
                    self.name,
                    function,
                ],
            )
            result = handler(stub)
            return stub.invoke_chaincode(
                ECC_NAME,
                "SealResponse",
                [
                    result.hex(),
                    interop_ctx["client_pubkey"],
                    "true" if interop_ctx["confidential"] else "false",
                ],
            )
        return handler(stub)

    def _put(self, stub) -> bytes:
        key, value = require_args(stub, 2)
        from repro.errors import ChaincodeError

        if stub.get_state("record/" + key) is not None:
            raise ChaincodeError(f"record {key!r} already exists")
        record = json.dumps(
            {"key": key, "value": value, "committed_at": stub.timestamp},
            sort_keys=True,
        ).encode("utf-8")
        stub.put_state("record/" + key, record)
        stub.set_event("Stored", key.encode("utf-8"))
        return record

    def _get(self, stub) -> bytes:
        (key,) = require_args(stub, 1)
        raw = stub.get_state("record/" + key)
        if raw is None:
            from repro.errors import ChaincodeError

            raise ChaincodeError(f"no record {key!r}")
        return raw


FABRIC_POLICY = "AND(org:conf-org-a, org:conf-org-b)"


def build_fabric_target() -> ConformanceTarget:
    clock = SimulatedClock(5_000.0)
    destination = make_destination()
    fabric = (
        NetworkBuilder("fabnetc", channel="trade", clock=clock)
        .add_org("conf-org-a")
        .add_org("conf-org-b")
        .add_peer("peer0", "conf-org-a")
        .add_peer("peer0", "conf-org-b")
        .add_client("admin", "conf-org-a")
        .build()
    )
    admin = fabric.org("conf-org-a").member("admin")
    enable_fabric_interop(fabric, admin)
    endorsement = "AND('conf-org-a.peer', 'conf-org-b.peer')"
    fabric.deploy_chaincode(ConformanceChaincode(), endorsement, initializer=admin)
    fabric.deploy_chaincode(FabricAssetChaincode(), endorsement, initializer=admin)

    # §3.3 initialization: record the requesting network's configuration
    # so certificate chains from destnet validate on this ledger.
    fabric.gateway.submit(
        admin,
        "cmdac",
        "RecordNetworkConfig",
        [destination.network_id, destination.config.encode().hex()],
    )
    # Exposure rules: one per remotely-used verb object (a governance
    # decision per §5 — "only requires the addition of a policy rule").
    for rule_object in (
        ("confcc", "Get"),
        ("confcc", "Put"),
        ("confcc", "event:Stored"),
        ("assetscc", "LockAsset"),
        ("assetscc", "ClaimAsset"),
        ("assetscc", "UnlockAsset"),
        ("assetscc", "GetLock"),
    ):
        fabric.gateway.submit(
            admin,
            "ecc",
            "AddAccessRule",
            [destination.network_id, "dest-org", rule_object[0], rule_object[1]],
        )

    relay = create_fabric_relay(fabric, destination.registry)
    invoker = fabric.org("conf-org-a").enroll("interop-invoker", role="client")
    enable_remote_transactions(fabric, relay, invoker, discovery=destination.registry)
    enable_relay_events(fabric, relay, admin)
    asset_invoker = fabric.org("conf-org-a").enroll("asset-invoker", role="client")
    relay.driver_for("fabnetc").enable_assets(asset_invoker)

    def commit_count(tag: str) -> int:
        count = 0
        for block in fabric.peers[0].ledger.blocks():
            for tx in block.transactions:
                if (
                    tx.chaincode == "confcc"
                    and tx.function == "Put"
                    and tx.args
                    and tx.args[0] == tag
                ):
                    count += 1
        return count

    def trigger_event(tag: str) -> bytes:
        fabric.gateway.submit(admin, "confcc", "Put", [tag, "event-payload"])
        return tag.encode("utf-8")

    def issue_asset(tag: str, owner_party: str) -> str:
        asset_id = f"ASSET-{tag}"
        fabric.gateway.submit(
            admin, "assetscc", "Issue", [asset_id, owner_party, "{}"]
        )
        return asset_id

    def read_lock(asset_id: str) -> dict:
        raw = fabric.gateway.evaluate(admin, "assetscc", "GetLock", [asset_id])
        return json.loads(raw)

    seed_key = "SEED"
    fabric.gateway.submit(admin, "confcc", "Put", [seed_key, "genesis"])

    return ConformanceTarget(
        platform="fabric",
        network_id="fabnetc",
        client=destination.client,
        registry=destination.registry,
        relay=relay,
        policy=FABRIC_POLICY,
        query_address="fabnetc/trade/confcc/Get",
        query_args=[seed_key],
        expected_query=lambda data: json.loads(data)["value"] == "genesis",
        clock=clock,
        transact_address="fabnetc/trade/confcc/Put",
        transact_args=lambda tag: [tag, f"value-of-{tag}"],
        commit_count=commit_count,
        event_address="fabnetc/trade/confcc",
        event_name="Stored",
        trigger_event=trigger_event,
        event_verifier=lambda: EventVerifier(
            address="fabnetc/trade/confcc/Get",
            args=lambda notification: [notification.payload.decode("utf-8")],
            policy=FABRIC_POLICY,
        ),
        asset_contract_address="fabnetc/trade/assetscc",
        issue_asset=issue_asset,
        read_lock=read_lock,
        counter_client=destination.counter_client,
    )


# ---------------------------------------------------------------------------
# Quorum target
# ---------------------------------------------------------------------------

QUORUM_POLICY = "AND(org:op-org-1, org:op-org-2)"


def build_quorum_target() -> ConformanceTarget:
    clock = SimulatedClock(5_000.0)
    destination = make_destination()
    quorum = QuorumNetwork("quornetc", clock=clock)
    quorum.deploy_contract(DocumentRegistryContract())
    quorum.deploy_contract(QuorumAssetContract())
    quorum.add_peer("peer1", "op-org-1")
    quorum.add_peer("peer2", "op-org-2")
    admin = quorum.enroll_client("admin", "op-org-1")
    invoker = quorum.enroll_client("asset-invoker", "op-org-1")
    quorum.submit_transaction(
        admin, "document-registry", "RegisterDocument", ["SEED", '{"value": "genesis"}']
    )

    port = InteropPort("quornetc")
    port.record_network_config(destination.config)
    for contract, function in (
        ("document-registry", "GetDocument"),
        ("asset-vault", "LockAsset"),
        ("asset-vault", "ClaimAsset"),
        ("asset-vault", "UnlockAsset"),
        ("asset-vault", "GetLock"),
    ):
        port.add_access_rule(destination.network_id, "dest-org", contract, function)

    relay = RelayService("quornetc", destination.registry, clock=clock)
    driver = QuorumDriver(quorum, port)
    driver.enable_assets(invoker)
    relay.register_driver(driver)
    destination.registry.register("quornetc", relay)

    def issue_asset(tag: str, owner_party: str) -> str:
        asset_id = f"ASSET-{tag}"
        quorum.submit_transaction(
            invoker, "asset-vault", "Issue", [asset_id, owner_party, "{}"]
        )
        return asset_id

    def read_lock(asset_id: str) -> dict:
        ctx = CallContext(
            sender=invoker.id, sender_org=invoker.org, timestamp=clock.now()
        )
        raw = quorum.peers[0].view("asset-vault", "GetLock", [asset_id], ctx)
        return json.loads(raw)

    return ConformanceTarget(
        platform="quorum",
        network_id="quornetc",
        client=destination.client,
        registry=destination.registry,
        relay=relay,
        policy=QUORUM_POLICY,
        query_address="quornetc/state/document-registry/GetDocument",
        query_args=["SEED"],
        expected_query=lambda data: json.loads(data)["value"] == "genesis",
        clock=clock,
        asset_contract_address="quornetc/state/asset-vault",
        issue_asset=issue_asset,
        read_lock=read_lock,
        counter_client=destination.counter_client,
    )


# ---------------------------------------------------------------------------
# Corda target
# ---------------------------------------------------------------------------

CORDA_POLICY = "AND(org:nodeA, org:nodeB)"


def build_corda_target() -> ConformanceTarget:
    clock = SimulatedClock(5_000.0)
    destination = make_destination()
    network = CordaNetwork("cordanetc", clock=clock)
    node_a = network.add_node("nodeA")
    network.add_node("nodeB")
    node_a.propose(
        [],
        [
            LinearState(
                linear_id="SEED",
                kind="conformance",
                data={"value": "genesis"},
                participants=("nodeA", "nodeB"),
            )
        ],
        "Record",
    )

    port = InteropPort("cordanetc")
    port.record_network_config(destination.config)
    for function in ("GetState", "RecordState", "event:Record"):
        port.add_access_rule(destination.network_id, "dest-org", "vault", function)
    for function in ("LockAsset", "ClaimAsset", "UnlockAsset", "GetLock"):
        port.add_access_rule(
            destination.network_id, "dest-org", "asset-vault", function
        )

    relay = RelayService("cordanetc", destination.registry, clock=clock)
    driver = CordaDriver(network, port)
    driver.enable_transactions("nodeA")
    driver.enable_events()
    driver.enable_assets("nodeA")
    relay.register_driver(driver)
    destination.registry.register("cordanetc", relay)

    def issue_asset(tag: str, owner_party: str) -> str:
        asset_id = f"ASSET-{tag}"
        issue_corda_asset(network, node_a, asset_id, owner_party)
        return asset_id

    def read_lock(asset_id: str) -> dict:
        _ref, state = node_a.lookup(asset_id)
        lock = state.data.get("lock")
        if lock is None:
            # Synthesize the *available* record exactly as the port's
            # GetLock view does for an unlocked asset.
            asset = state.data["asset"]
            lock = {
                "asset_id": asset_id,
                "owner": asset["owner"],
                "recipient": "",
                "hashlock": "",
                "timeout": 0.0,
                "state": STATE_AVAILABLE,
                "preimage": "",
                "created_at": 0.0,
            }
        return lock

    def commit_count(tag: str) -> int:
        return sum(
            1
            for transaction in network.transactions.values()
            for output in transaction.outputs
            if output.linear_id == tag
        )

    def trigger_event(tag: str) -> bytes:
        node_a.propose(
            [],
            [
                LinearState(
                    linear_id=tag,
                    kind="conformance",
                    data={"via": "event"},
                    participants=("nodeA", "nodeB"),
                )
            ],
            "Record",
        )
        return tag.encode("utf-8")

    return ConformanceTarget(
        platform="corda",
        network_id="cordanetc",
        client=destination.client,
        registry=destination.registry,
        relay=relay,
        policy=CORDA_POLICY,
        query_address="cordanetc/vault/vault/GetState",
        query_args=["SEED"],
        expected_query=lambda data: json.loads(data)["data"]["value"] == "genesis",
        clock=clock,
        transact_address="cordanetc/vault/vault/RecordState",
        transact_args=lambda tag: [tag, "conformance", json.dumps({"tag": tag})],
        commit_count=commit_count,
        event_address="cordanetc/vault/vault",
        event_name="Record",
        trigger_event=trigger_event,
        event_verifier=lambda: EventVerifier(
            address="cordanetc/vault/vault/GetState",
            args=lambda notification: [notification.payload.decode("utf-8")],
            policy=CORDA_POLICY,
        ),
        asset_contract_address="cordanetc/vault/asset-vault",
        issue_asset=issue_asset,
        read_lock=read_lock,
        counter_client=destination.counter_client,
    )


# ---------------------------------------------------------------------------
# Public-chain target
# ---------------------------------------------------------------------------

PUBCHAIN_POLICY = "AND(org:pub-org-1, org:pub-org-2)"


def build_pubchain_target(
    auto_confirm: int = 2,
    finality: FinalityPolicy | None = None,
    fork_rate: float = 0.0,
    seed: int = 11,
) -> ConformanceTarget:
    """The fourth driver column: probabilistic finality behind the relay.

    The default build mines ``auto_confirm`` empty confirmation blocks
    after every transaction, deep enough for the default policy (K=2 for
    queries, K=3 for asset verbs) that the conformance scenarios settle
    instantly. Finality tests pass ``auto_confirm=0`` and drive
    ``target.substrate.mine()`` / ``force_reorg()`` by hand.
    """
    clock = SimulatedClock(5_000.0)
    destination = make_destination()
    chain = SimulatedPublicChain(
        "pubnetc",
        clock=clock,
        seed=seed,
        fork_rate=fork_rate,
        auto_confirm=auto_confirm,
    )
    chain.add_observer("obs1", "pub-org-1")
    chain.add_observer("obs2", "pub-org-2")
    admin = chain.enroll_client("admin", "pub-org-1")
    invoker = chain.enroll_client("asset-invoker", "pub-org-1")
    chain.deploy_contract(DocumentRegistryContract())
    chain.deploy_contract(QuorumAssetContract())
    finality = finality or FinalityPolicy(
        confirmations=2, per_verb={VERB_ASSETS: 3}
    )
    chain.submit_transaction(
        admin, "document-registry", "RegisterDocument", ["SEED", '{"value": "genesis"}']
    )
    # Settle the genesis record regardless of auto_confirm so the clean
    # baseline query is final from the first block.
    chain.mine(max(finality.required(VERB_QUERY), finality.required(VERB_ASSETS)))

    port = InteropPort("pubnetc")
    port.record_network_config(destination.config)
    for contract, function in (
        ("document-registry", "GetDocument"),
        ("asset-vault", "LockAsset"),
        ("asset-vault", "ClaimAsset"),
        ("asset-vault", "UnlockAsset"),
        ("asset-vault", "GetLock"),
    ):
        port.add_access_rule(destination.network_id, "dest-org", contract, function)

    relay = RelayService("pubnetc", destination.registry, clock=clock)
    driver = PubChainDriver(chain, port, finality)
    driver.enable_assets(invoker)
    relay.register_driver(driver)
    destination.registry.register("pubnetc", relay)

    def issue_asset(tag: str, owner_party: str) -> str:
        asset_id = f"ASSET-{tag}"
        chain.submit_transaction(
            invoker, "asset-vault", "Issue", [asset_id, owner_party, "{}"]
        )
        return asset_id

    def read_lock(asset_id: str) -> dict:
        raw, _read_keys = chain.view(invoker, "asset-vault", "GetLock", [asset_id])
        return json.loads(raw)

    return ConformanceTarget(
        platform="pubchain",
        network_id="pubnetc",
        client=destination.client,
        registry=destination.registry,
        relay=relay,
        policy=PUBCHAIN_POLICY,
        query_address="pubnetc/chain/document-registry/GetDocument",
        query_args=["SEED"],
        expected_query=lambda data: json.loads(data)["value"] == "genesis",
        clock=clock,
        asset_contract_address="pubnetc/chain/asset-vault",
        issue_asset=issue_asset,
        read_lock=read_lock,
        counter_client=destination.counter_client,
        substrate=chain,
    )


_BUILDERS = {
    "fabric": build_fabric_target,
    "quorum": build_quorum_target,
    "corda": build_corda_target,
    "pubchain": build_pubchain_target,
}


@pytest.fixture(scope="module")
def fabric_target():
    return build_fabric_target()


@pytest.fixture(scope="module")
def quorum_target():
    return build_quorum_target()


@pytest.fixture(scope="module")
def corda_target():
    return build_corda_target()


@pytest.fixture(scope="module")
def pubchain_target():
    return build_pubchain_target()


@pytest.fixture(scope="module")
def conformance_target(request):
    """Indirect platform fixture: parameterize with the platform name."""
    return _BUILDERS[request.param]()
