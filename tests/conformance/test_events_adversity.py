"""Event streams under an adversarial delivery path.

Notifications are *hints*, not data (§2 primitive iii as built on the
paper's trust argument): a malicious relay corrupting a publish
envelope's content must see its forgery die in the notify-then-verify
upgrade, and a censored notification must be *reported* (counted as
dropped at the source) rather than silently lost.
"""

from __future__ import annotations

import pytest

from repro.api import EventVerifier, InteropGateway
from repro.interop.events import enable_relay_events
from repro.proto.messages import MSG_KIND_EVENT_PUBLISH
from repro.testing import (
    FAULT_DROP,
    FAULT_TAMPER_PAYLOAD,
    FaultPlan,
    FaultSpec,
    chaos_topology,
)

POLICY = "AND(org:seller-org, org:carrier-org)"
TL_CHAINCODE_ADDR = "stl/trade-logistics/TradeLensCC"


@pytest.fixture()
def event_gateway(trade_scenario):
    """Trade scenario with relay-side events enabled on STL."""
    scenario = trade_scenario
    stl_admin = scenario.stl.org("seller-org").member("admin")
    enable_relay_events(scenario.stl, scenario.stl_relay, stl_admin)
    scenario.stl.gateway.submit(
        stl_admin,
        "ecc",
        "AddAccessRule",
        ["swt", "seller-bank-org", "TradeLensCC", "event:BillOfLadingIssued"],
    )
    gateway = InteropGateway.from_client(scenario.swt_seller_client.interop_client)
    return scenario, gateway


def bl_verifier() -> EventVerifier:
    return EventVerifier(
        address=f"{TL_CHAINCODE_ADDR}/GetBillOfLading",
        args=lambda notification: [notification.payload.decode()],
        policy=POLICY,
    )


def issue_bl(scenario, po_ref: str) -> None:
    scenario.stl_seller_app.create_shipment(po_ref, "adversity goods")
    scenario.carrier_app.accept_shipment(po_ref)
    scenario.carrier_app.record_handover(po_ref)
    scenario.carrier_app.issue_bill_of_lading(po_ref, vessel="MV Chaos")


class TestTamperedNotification:
    def test_tampered_publish_lands_in_rejected(self, event_gateway):
        """A relay flipping a byte of the notification content keeps the
        framing valid — the forgery reaches the subscriber, fails its
        proof-carrying upgrade, and never reaches the iterator."""
        scenario, gateway = event_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        plan = FaultPlan(
            808,
            [
                FaultSpec(
                    kind=FAULT_TAMPER_PAYLOAD,
                    direction="request",
                    only_kinds=frozenset({MSG_KIND_EVENT_PUBLISH}),
                )
            ],
            name="tamper-notification",
        )
        # The publish leg runs source->subscriber: wrap the subscriber
        # network's relay path.
        with chaos_topology(
            scenario.discovery, ["swt"], plan, redundant=False
        ) as wrappers:
            issue_bl(scenario, "PO-ADV-TAMPER")
            assert wrappers["swt"].injected[FAULT_TAMPER_PAYLOAD] == 1
        assert stream.pending_count == 1
        assert stream.take() is None  # nothing verifiable to yield
        assert len(stream.rejected) == 1
        rejected = stream.rejected[0]
        assert rejected.notification.payload != b"PO-ADV-TAMPER"
        assert "verif" in rejected.reason  # failed verification, recorded why
        stream.close()

    def test_clean_notification_still_verifies(self, event_gateway):
        scenario, gateway = event_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        issue_bl(scenario, "PO-ADV-CLEAN")
        event = stream.take()
        assert event is not None
        assert event.notification.payload == b"PO-ADV-CLEAN"
        stream.close()


class TestVerificationOutage:
    def test_transport_outage_defers_instead_of_rejecting(self, event_gateway):
        """A genuine notification must not be *rejected* just because the
        verification path is briefly down: it stays pending and verifies
        once the path recovers."""
        scenario, gateway = event_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        issue_bl(scenario, "PO-ADV-DEFER")
        assert stream.pending_count == 1
        # Source network unreachable while we try to verify.
        plan = FaultPlan.single(FAULT_DROP, 117)
        with chaos_topology(
            scenario.discovery, ["stl"], plan, redundant=False
        ):
            assert stream.take() is None
        assert stream.deferrals == 1
        assert stream.pending_count == 1  # still pending, not rejected
        assert stream.rejected == []
        # Path recovered: the same notification now verifies.
        event = stream.take()
        assert event is not None
        assert event.notification.payload == b"PO-ADV-DEFER"
        stream.close()


class TestDroppedNotification:
    def test_dropped_publish_is_reported_not_silent(self, event_gateway):
        """A censored notification is counted as dropped at the source —
        at-most-once delivery with an observable loss signal, never a
        silent one."""
        scenario, gateway = event_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        dropped_before = scenario.stl_relay.stats.events_dropped
        plan = FaultPlan(
            909,
            [
                FaultSpec(
                    kind=FAULT_DROP,
                    only_kinds=frozenset({MSG_KIND_EVENT_PUBLISH}),
                    max_injections=1,
                )
            ],
            name="drop-notification",
        )
        with chaos_topology(
            scenario.discovery, ["swt"], plan, redundant=False
        ) as wrappers:
            issue_bl(scenario, "PO-ADV-DROP")
            assert wrappers["swt"].injected[FAULT_DROP] == 1
        assert stream.pending_count == 0  # the hint is gone...
        assert (
            scenario.stl_relay.stats.events_dropped - dropped_before == 1
        )  # ...and the loss is reported, not silent
        # The subscription itself survives: the next event flows.
        issue_bl(scenario, "PO-ADV-AFTER-DROP")
        assert stream.pending_count == 1
        event = stream.take()
        assert event is not None and event.notification.payload == b"PO-ADV-AFTER-DROP"
        stream.close()

    def test_dropped_publish_recovers_via_redundant_path(self, event_gateway):
        """With a redundant route to the subscriber's relay, the source
        fails over and the notification is delivered exactly once."""
        scenario, gateway = event_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        plan = FaultPlan(
            910,
            [
                FaultSpec(
                    kind=FAULT_DROP,
                    only_kinds=frozenset({MSG_KIND_EVENT_PUBLISH}),
                )
            ],
            name="drop-with-failover",
        )
        with chaos_topology(scenario.discovery, ["swt"], plan) as wrappers:
            issue_bl(scenario, "PO-ADV-FAILOVER")
            assert wrappers["swt"].injected[FAULT_DROP] >= 1
        assert stream.pending_count == 1  # exactly once, via the clean path
        event = stream.take()
        assert event is not None
        assert event.notification.payload == b"PO-ADV-FAILOVER"
        stream.close()
