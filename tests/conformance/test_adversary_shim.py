"""The adversary wrappers moved to repro.testing; the old path still works."""

from __future__ import annotations

import importlib
import random
import sys
import warnings


def test_old_import_path_warns_and_aliases():
    sys.modules.pop("repro.interop.adversary", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = importlib.import_module("repro.interop.adversary")
    assert any(
        issubclass(warning.category, DeprecationWarning) for warning in caught
    )
    import repro.testing.adversary as canonical

    # Same objects, not copies — wrappers constructed through either path
    # are interchangeable.
    assert legacy.TamperingRelay is canonical.TamperingRelay
    assert legacy.DroppingRelay is canonical.DroppingRelay
    assert legacy.EavesdroppingRelay is canonical.EavesdroppingRelay
    assert legacy.flood_relay is canonical.flood_relay
    assert legacy._flip_bytes is canonical.flip_bytes


def test_tampering_relay_is_seed_reproducible():
    """The seeded RNG threads through the attack: same seed, same bytes."""
    from repro.proto.messages import (
        MSG_KIND_QUERY_RESPONSE,
        PROTOCOL_VERSION,
        QueryResponse,
        RelayEnvelope,
    )
    from repro.testing import TamperingRelay

    class StubEndpoint:
        def handle_request(self, data: bytes) -> bytes:
            response = QueryResponse(
                version=PROTOCOL_VERSION,
                nonce="n",
                status=0,
                result_plain=b"attack-me-" * 4,
            )
            return RelayEnvelope(
                version=PROTOCOL_VERSION,
                kind=MSG_KIND_QUERY_RESPONSE,
                request_id="r",
                source_network="s",
                payload=response.encode(),
            ).encode()

    outputs = [
        TamperingRelay(StubEndpoint(), seed=77).handle_request(b"\x00")
        for _ in range(2)
    ]
    assert outputs[0] == outputs[1]
    assert (
        TamperingRelay(StubEndpoint(), seed=78).handle_request(b"\x00")
        != outputs[0]
    )


def test_flip_bytes_deterministic():
    from repro.testing import flip_bytes

    first = flip_bytes(b"hello world", random.Random(3))
    second = flip_bytes(b"hello world", random.Random(3))
    assert first == second != b"hello world"
