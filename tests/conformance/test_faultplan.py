"""Determinism and mechanics of the fault-injection layer.

The whole value of the harness is that a failing adversarial run is
reproducible from one integer seed — so determinism itself is under
test, alongside each fault's wire-level behavior against a stub
endpoint.
"""

from __future__ import annotations

import pytest

from repro.errors import RelayUnavailableError
from repro.proto.messages import (
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_QUERY_RESPONSE,
    PROTOCOL_VERSION,
    RelayEnvelope,
)
from repro.testing import (
    ALL_FAULT_KINDS,
    FAULT_DROP,
    FAULT_DUPLICATE,
    FAULT_PARTITION,
    FAULT_REORDER,
    FAULT_TAMPER_PAYLOAD,
    ChaosEndpoint,
    FaultPlan,
    FaultSpec,
)


class EchoEndpoint:
    """Replies to every request with a response envelope echoing its id."""

    def __init__(self) -> None:
        self.served = 0

    def handle_request(self, data: bytes) -> bytes:
        self.served += 1
        request = RelayEnvelope.decode(data)
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_QUERY_RESPONSE,
            request_id=request.request_id,
            source_network="echo",
            payload=b"payload-" + request.request_id.encode(),
        ).encode()


def request_bytes(request_id: str) -> bytes:
    return RelayEnvelope(
        version=PROTOCOL_VERSION,
        kind=MSG_KIND_QUERY_REQUEST,
        request_id=request_id,
        source_network="test",
        destination_network="echo",
        payload=b"q",
    ).encode()


def drive(endpoint: ChaosEndpoint, count: int) -> list[str]:
    """Push ``count`` requests through; record outcomes as strings."""
    outcomes = []
    for index in range(count):
        try:
            reply = endpoint.handle_request(request_bytes(f"req-{index}"))
            outcomes.append(f"ok:{RelayEnvelope.decode(reply).request_id}")
        except RelayUnavailableError:
            outcomes.append("unavailable")
    return outcomes


class TestDeterminism:
    def test_same_seed_same_injection_log(self):
        plan = FaultPlan(
            42,
            [FaultSpec(kind=FAULT_DROP, rate=0.4), FaultSpec(kind=FAULT_TAMPER_PAYLOAD, rate=0.5)],
        )
        runs = []
        for _ in range(2):
            chaos = ChaosEndpoint(EchoEndpoint(), plan.fork())
            drive(chaos, 40)
            runs.append([(r.index, r.fault) for r in chaos.log])
        assert runs[0] == runs[1]
        assert runs[0]  # something actually fired

    def test_different_seeds_differ(self):
        logs = []
        for seed in (1, 2):
            chaos = ChaosEndpoint(
                EchoEndpoint(), FaultPlan.single(FAULT_DROP, seed, rate=0.5)
            )
            drive(chaos, 60)
            logs.append([r.index for r in chaos.log])
        assert logs[0] != logs[1]

    def test_tamper_byte_positions_reproducible(self):
        replies = []
        for _ in range(2):
            chaos = ChaosEndpoint(
                EchoEndpoint(), FaultPlan.single(FAULT_TAMPER_PAYLOAD, 99)
            )
            replies.append(chaos.handle_request(request_bytes("req-0")))
        assert replies[0] == replies[1]

    def test_seed_quoted_in_failure_surface(self):
        plan = FaultPlan.single(FAULT_DROP, 1234)
        chaos = ChaosEndpoint(EchoEndpoint(), plan)
        with pytest.raises(RelayUnavailableError, match="seed=1234"):
            chaos.handle_request(request_bytes("req-0"))


class TestFaultMechanics:
    def test_drop_censors_without_forwarding(self):
        inner = EchoEndpoint()
        chaos = ChaosEndpoint(inner, FaultPlan.single(FAULT_DROP, 1))
        assert drive(chaos, 3) == ["unavailable"] * 3
        assert inner.served == 0

    def test_partition_window_then_heals(self):
        inner = EchoEndpoint()
        chaos = ChaosEndpoint(
            inner,
            FaultPlan.single(FAULT_PARTITION, 1, duration=3, max_injections=1),
        )
        outcomes = drive(chaos, 5)
        assert outcomes[:3] == ["unavailable"] * 3
        assert outcomes[3:] == ["ok:req-3", "ok:req-4"]
        assert chaos.injected[FAULT_PARTITION] == 3

    def test_duplicate_delivers_twice(self):
        inner = EchoEndpoint()
        chaos = ChaosEndpoint(inner, FaultPlan.single(FAULT_DUPLICATE, 1, max_injections=1))
        drive(chaos, 2)
        assert inner.served == 3  # first request twice, second once

    def test_reorder_miscorrelates_reply(self):
        inner = EchoEndpoint()
        chaos = ChaosEndpoint(inner, FaultPlan.single(FAULT_REORDER, 1, first=1))
        outcomes = drive(chaos, 2)
        # Request 1 executed, but its reply claims to answer request 0.
        assert outcomes == ["ok:req-0", "ok:req-0"]
        assert inner.served == 2

    def test_window_and_kind_filters(self):
        inner = EchoEndpoint()
        chaos = ChaosEndpoint(
            inner,
            FaultPlan(
                5,
                [
                    FaultSpec(
                        kind=FAULT_DROP,
                        first=2,
                        last=3,
                        only_kinds=frozenset({MSG_KIND_QUERY_REQUEST}),
                    )
                ],
            ),
        )
        outcomes = drive(chaos, 5)
        assert outcomes == ["ok:req-0", "ok:req-1", "unavailable", "unavailable", "ok:req-4"]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor-strike")
        with pytest.raises(ValueError):
            FaultSpec(kind=FAULT_DROP, rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind=FAULT_DROP, duration=0)
        with pytest.raises(ValueError):
            FaultSpec(kind=FAULT_TAMPER_PAYLOAD, direction="sideways")

    def test_all_kinds_constructible(self):
        for kind in ALL_FAULT_KINDS:
            ChaosEndpoint(EchoEndpoint(), FaultPlan.single(kind, 7)).handle_request
