"""Probabilistic finality in the conformance matrix (pubchain column).

The §4 proof scheme assumes the attested record is *final*; a public
chain only offers probabilistic finality, so the fourth driver gates
proof generation on its :class:`~repro.pubchain.FinalityPolicy`. These
tests pin the two acceptance properties end to end through the relay:

1. A lock (or any record) at confirmation depth < K is **pending, not
   verified** — the proof-carrying query raises the typed
   :class:`~repro.errors.FinalityPendingError` and only turns into an
   attested success once the chain buries the write K deep.
2. A seeded reorg that orphans a lock is **detected before claim** — the
   readback raises :class:`~repro.errors.ReorgDetectedError` and the
   claim itself is refused, so value never moves on vanished state.

Targets are built with ``auto_confirm=0``: confirmations accrue only
under explicit ``mine()`` calls, making depth a test-controlled input.
The chain object rides on ``target.substrate``.
"""

from __future__ import annotations

import json

import pytest

from conftest import build_pubchain_target
from repro.assets.htlc import STATE_AVAILABLE, STATE_LOCKED, make_hashlock
from repro.errors import FinalityPendingError, ReorgDetectedError
from repro.proto.messages import (
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_ASSET_LOCK,
    STATUS_OK,
)

SECRET = b"finality-conformance-secret"


@pytest.fixture()
def manual_target():
    """A pubchain target whose confirmations only accrue via ``mine()``
    (default policy: K=2 for queries, K=3 for asset verbs)."""
    return build_pubchain_target(auto_confirm=0)


def lock_via_relay(target, asset_id: str):
    return target.client.relay.remote_asset(
        MSG_KIND_ASSET_LOCK,
        target.asset_command(
            target.client,
            asset_id,
            recipient=target.party(target.counter_client),
            hashlock=make_hashlock(SECRET),
            timeout=target.clock.now() + 600.0,
        ),
    )


def verify_lock(target, asset_id: str):
    """The counterparty's proof-carrying GetLock readback."""
    return target.counter_client.remote_query(
        f"{target.asset_contract_address}/GetLock",
        [asset_id],
        policy=target.policy,
    )


class TestPendingFinality:
    def test_lock_below_depth_is_pending_not_verified(self, manual_target):
        target = manual_target
        chain = target.substrate
        asset_id = target.issue_asset("FIN-PEND", target.party(target.client))
        chain.mine(3)  # settle the issue; only the lock's depth is at stake

        lock_via_relay(target, asset_id)  # mined at the tip: depth 1 of 3
        for confirmations in (1, 2):
            with pytest.raises(FinalityPendingError, match="pending"):
                verify_lock(target, asset_id)
            assert chain.confirmation_depth(
                "asset-vault", {f"lock/{asset_id}"}
            ) == confirmations
            chain.mine(1)

        # Depth 3 == K: the very same readback now verifies, with proof.
        result = verify_lock(target, asset_id)
        record = json.loads(result.data)
        assert record["state"] == STATE_LOCKED
        assert len(result.proof) == 2  # AND(pub-org-1, pub-org-2) attested

    def test_pending_lock_is_not_claimable(self, manual_target):
        """The side-effecting path honors the same gate: a claim riding a
        depth-1 lock is refused, and the escrow is untouched."""
        target = manual_target
        chain = target.substrate
        asset_id = target.issue_asset("FIN-CLAIM", target.party(target.client))
        chain.mine(3)
        lock_via_relay(target, asset_id)

        ack = target.client.relay.remote_asset(
            MSG_KIND_ASSET_CLAIM,
            target.asset_command(target.counter_client, asset_id, preimage=SECRET),
        )
        assert ack.status != STATUS_OK  # refused, not executed
        assert "pending" in ack.error
        record = target.read_lock(asset_id)
        assert record["state"] == STATE_LOCKED
        assert record["preimage"] == ""  # the secret never hit the chain

    def test_fresh_query_record_is_pending_too(self, manual_target):
        """The gate is not asset-specific: a depth-1 document answers
        pending under the query-verb K as well."""
        target = manual_target
        chain = target.substrate
        chain.submit_transaction(
            chain.enroll_client("writer", "pub-org-1"),
            "document-registry",
            "RegisterDocument",
            ["FRESH", '{"value": "new"}'],
        )
        with pytest.raises(FinalityPendingError):
            target.client.remote_query(
                target.query_address, ["FRESH"], policy=target.policy
            )
        chain.mine(1)  # depth 2 == K for queries
        result = target.client.remote_query(
            target.query_address, ["FRESH"], policy=target.policy
        )
        assert json.loads(result.data)["value"] == "new"


class TestReorgDetection:
    def test_reorg_orphaning_a_lock_is_detected_before_claim(
        self, manual_target
    ):
        target = manual_target
        chain = target.substrate
        asset_id = target.issue_asset("FIN-REORG", target.party(target.client))
        chain.mine(3)

        ack = lock_via_relay(target, asset_id)
        orphaned = chain.force_reorg(1)  # the lock block loses fork choice
        assert ack.tx_id in orphaned

        # Readback: typed reorg detection, not a stale "locked" answer.
        with pytest.raises(ReorgDetectedError, match="reorg"):
            verify_lock(target, asset_id)
        # Claim: refused outright — value never moves on vanished state.
        ack = target.client.relay.remote_asset(
            MSG_KIND_ASSET_CLAIM,
            target.asset_command(target.counter_client, asset_id, preimage=SECRET),
        )
        assert ack.status != STATUS_OK
        assert "reorg" in ack.error
        # Canonical truth: the replayed branch carries no lock at all.
        assert target.read_lock(asset_id)["state"] == STATE_AVAILABLE

    def test_canonical_rewrite_clears_detection(self, manual_target):
        """Detection is monotonic, not sticky: re-locking on the canonical
        branch and burying it K deep re-opens verification."""
        target = manual_target
        chain = target.substrate
        asset_id = target.issue_asset("FIN-RELOCK", target.party(target.client))
        chain.mine(3)
        lock_via_relay(target, asset_id)
        chain.force_reorg(1)

        lock_via_relay(target, asset_id)  # the owner re-escrows
        chain.mine(2)  # bury it to depth 3 == K
        result = verify_lock(target, asset_id)
        assert json.loads(result.data)["state"] == STATE_LOCKED
