"""The envelope protocol over real sockets: e2e + conformance.

Acceptance for the transport seam: a query, a batch, a transact, and an
asset lock/claim round-trip all succeed between two ``RelayService``\\ s
whose only connection is ``RelayServer``/``TcpRelayEndpoint`` sockets —
no in-process endpoint sharing — with proof verification intact; and the
:class:`DriverConformanceSuite` holds its invariants when a seeded
:class:`ChaosEndpoint` injects faults *client-side* into the socket path
(the chaos wrapper tampers/drops the frames the TCP endpoint carries,
exactly where a malicious network segment would).
"""

from __future__ import annotations

import json
import os
import socket as socket_module

import pytest

from repro.assets.htlc import STATE_CLAIMED, STATE_LOCKED, make_hashlock
from repro.errors import ReproError
from repro.net import RelayServer, TcpRelayEndpoint, encode_frame
from repro.proto.messages import (
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_TRANSACT_REQUEST,
    STATUS_OK,
)
from repro.testing import ChaosEndpoint, DriverConformanceSuite, FaultPlan

SEED = int(os.environ.get("CONFORMANCE_SEEDS", "7").split(",")[0])


@pytest.fixture(scope="module")
def socket_target(fabric_target):
    """The fabric conformance deployment, re-wired onto sockets only.

    Both relays go behind a :class:`RelayServer`; every registry entry
    becomes a :class:`TcpRelayEndpoint`, so the ONLY path between the two
    ``RelayService`` instances is framed envelopes on TCP connections.
    """
    target = fabric_target
    registry = target.registry
    source_server = RelayServer(target.relay, max_workers=4).start()
    destination_relay = target.client.relay
    destination_server = RelayServer(destination_relay, max_workers=4).start()

    original = {}
    for network_id, server in (
        (target.network_id, source_server),
        (target.destination_network_id, destination_server),
    ):
        endpoints = registry.lookup(network_id)
        original[network_id] = endpoints
        for endpoint in endpoints:
            registry.unregister(network_id, endpoint)
        registry.register(network_id, server.endpoint(timeout=10.0))
    try:
        yield target, source_server, destination_server
    finally:
        for network_id, endpoints in original.items():
            for endpoint in list(registry.lookup(network_id)):
                registry.unregister(network_id, endpoint)
            for endpoint in endpoints:
                registry.register(network_id, endpoint)
        source_server.stop()
        destination_server.stop()


class TestSocketOnlyTopology:
    def test_no_in_process_endpoint_sharing(self, socket_target):
        target, _, _ = socket_target
        for network_id in (target.network_id, target.destination_network_id):
            for endpoint in target.registry.lookup(network_id):
                assert isinstance(endpoint, TcpRelayEndpoint), (
                    f"{network_id} still reachable in-process: {endpoint!r}"
                )

    def test_query_over_sockets_with_proof(self, socket_target):
        target, source_server, _ = socket_target
        served_before = source_server.stats.frames_served
        result = target.client.remote_query(
            target.query_address, target.query_args, policy=target.policy
        )
        assert target.expected_query(result.data)
        assert len(result.proof.attestations) >= 2  # AND(org-a, org-b)
        assert source_server.stats.frames_served > served_before

    def test_batch_over_sockets(self, socket_target):
        target, _, _ = socket_target
        batches_before = target.relay.stats.batches_served
        results = target.client.remote_query_batch(
            [(target.query_address, list(target.query_args))] * 4,
            policy=target.policy,
        )
        assert len(results) == 4
        assert all(target.expected_query(result.data) for result in results)
        assert target.relay.stats.batches_served == batches_before + 1

    def test_transact_over_sockets_commits_once(self, socket_target):
        target, _, _ = socket_target
        from repro.interop.transactions import RemoteTransactionClient

        tag = "SOCKET-TX-1"
        tx_client = RemoteTransactionClient(target.client)
        outcome = tx_client.remote_transact(
            target.transact_address,
            target.transact_args(tag),
            policy=target.policy,
        )
        assert outcome.tx_id
        assert target.commit_count(tag) == 1

    def test_asset_lock_claim_round_trip_over_sockets(self, socket_target):
        target, _, _ = socket_target
        tag = "SOCKET-HTLC-1"
        owner = target.party(target.client)
        counter = target.party(target.counter_client)
        asset_id = target.issue_asset(tag, owner)
        preimage = b"socket-preimage-1"
        hashlock = make_hashlock(preimage)
        deadline = target.clock.now() + 600.0

        lock_ack = target.client.relay.remote_asset(
            MSG_KIND_ASSET_LOCK,
            target.asset_command(
                target.client,
                asset_id,
                recipient=counter,
                hashlock=hashlock,
                timeout=deadline,
            ),
        )
        assert lock_ack.status == STATUS_OK
        assert target.read_lock(asset_id)["state"] == STATE_LOCKED

        # The counterparty verifies the escrow with a PROOF-CARRYING
        # query over the same sockets before claiming.
        fetched = target.counter_client.remote_query(
            f"{target.asset_contract_address}/GetLock",
            [asset_id],
            policy=target.policy,
        )
        assert json.loads(fetched.data)["hashlock"] == hashlock.hex()

        claim_ack = target.counter_client.relay.remote_asset(
            MSG_KIND_ASSET_CLAIM,
            target.asset_command(target.counter_client, asset_id, preimage=preimage),
        )
        assert claim_ack.status == STATUS_OK
        final = target.read_lock(asset_id)
        assert final["state"] == STATE_CLAIMED
        assert final["preimage"] == preimage.hex()


class TestTamperedFramesAreTyped:
    def test_client_side_frame_tamper_is_typed_never_wrong_data(
        self, socket_target
    ):
        """A tamper-everything chaos wrapper sits on the socket endpoint
        with NO redundant path: the query must fail with a typed protocol
        error — wrong data may never verify."""
        target, _, _ = socket_target
        registry = target.registry
        (tcp_endpoint,) = registry.lookup(target.network_id)
        plan = FaultPlan.single("tamper-proof", seed=SEED)
        chaos = ChaosEndpoint(tcp_endpoint, plan)
        registry.unregister(target.network_id, tcp_endpoint)
        registry.register(target.network_id, chaos)
        try:
            with pytest.raises(ReproError):
                target.client.remote_query(
                    target.query_address, target.query_args, policy=target.policy
                )
            assert chaos.injected.get("tamper-proof", 0) >= 1
        finally:
            registry.unregister(target.network_id, chaos)
            registry.register(target.network_id, tcp_endpoint)

    def test_garbage_bytes_on_the_wire_do_not_poison_the_server(
        self, socket_target
    ):
        target, source_server, _ = socket_target
        raw = socket_module.create_connection(
            (source_server.host, source_server.port), timeout=3.0
        )
        raw.sendall(b"\xff" * 64)  # unframeable: server must hang up
        raw.settimeout(3.0)
        assert raw.recv(1024) == b""
        raw.close()
        # A tampered-but-framed garbage envelope is *answered* (error
        # envelope), not served:
        raw = socket_module.create_connection(
            (source_server.host, source_server.port), timeout=3.0
        )
        raw.sendall(encode_frame(b"\x00garbage-envelope"))
        raw.settimeout(3.0)
        assert raw.recv(4096) != b""  # some framed reply came back
        raw.close()
        # ... and the relay still serves verified queries afterwards.
        result = target.client.remote_query(
            target.query_address, target.query_args, policy=target.policy
        )
        assert target.expected_query(result.data)


@pytest.mark.parametrize("plan_kind", ["duplicate", "tamper-payload"])
def test_conformance_plan_over_real_sockets(socket_target, plan_kind):
    """One transport plan and one integrity plan, full verb surface, with
    the chaos endpoint injecting into the client side of the socket."""
    target, _, _ = socket_target
    spec_kwargs = {}
    if plan_kind == "tamper-payload":
        spec_kwargs = {
            "only_kinds": frozenset(
                {MSG_KIND_QUERY_REQUEST, MSG_KIND_TRANSACT_REQUEST}
            )
        }
    plan = FaultPlan.single(plan_kind, SEED, **spec_kwargs)
    report = DriverConformanceSuite(target, seed=SEED, plans=[plan]).run()
    assert len(report.outcomes) == 5  # every gateway verb ran
    assert report.count("served") >= 1
