"""Corda capability parity (and the honest fail-closed surfaces).

The matrix only works if "works on N networks" means every verb was
really exercised on every network — so the Corda driver's transact,
subscribe, and asset capabilities get direct end-to-end coverage here,
plus the typed fail-closed behavior on the unsupported verbs of Quorum
and the public chain, and on any driver whose asset capability was never
enabled.
"""

from __future__ import annotations

import json

import pytest

from repro.api.gateway import InteropGateway
from repro.api.streams import EventVerifier
from repro.errors import (
    AccessDeniedError,
    ProofError,
    UnsupportedCapabilityError,
)
from repro.interop.transactions import RemoteTransactionClient
from repro.proto.messages import MSG_KIND_ASSET_LOCK, MSG_KIND_ASSET_STATUS

CORDA_POLICY = "AND(org:nodeA, org:nodeB)"


class TestCordaTransactions:
    def test_transact_attests_finalized_outcome(self, corda_target):
        target = corda_target
        tx_client = RemoteTransactionClient(target.client)
        result = tx_client.remote_transact(
            target.transact_address,
            target.transact_args("CORDA-TX-1"),
            policy=target.policy,
        )
        assert result.attesting_orgs == ["nodeA", "nodeB"]
        assert result.tx_id.startswith("corda-tx-")
        assert json.loads(result.result)["linear_id"] == "CORDA-TX-1"
        # The state is really in both vaults (finality, not a claim).
        driver = target.relay.driver_for(target.network_id)
        for node_name in ("nodeA", "nodeB"):
            node = driver._network.node(node_name)
            _, state = node.lookup("CORDA-TX-1")
            assert state.kind == "conformance"
        assert target.commit_count("CORDA-TX-1") == 1

    def test_notary_can_attest_transactions(self, corda_target):
        """§5: Corda verification policies may include the notary."""
        target = corda_target
        tx_client = RemoteTransactionClient(target.client)
        result = tx_client.remote_transact(
            target.transact_address,
            target.transact_args("CORDA-TX-NOTARY"),
            policy="AND(org:nodeA, org:notary-org)",
        )
        assert result.attesting_orgs == ["nodeA", "notary-org"]

    def test_unexposed_flow_denied(self, corda_target):
        target = corda_target
        driver = target.relay.driver_for(target.network_id)
        driver.register_flow(
            "vault", "SecretFlow", lambda network, node, args: (b"", None)
        )
        with pytest.raises(AccessDeniedError):
            RemoteTransactionClient(target.client).remote_transact(
                f"{target.network_id}/vault/vault/SecretFlow",
                [],
                policy=target.policy,
            )

    def test_unknown_flow_is_typed_error(self, corda_target):
        from repro.errors import RelayError

        target = corda_target
        with pytest.raises(RelayError, match="serves no flow"):
            RemoteTransactionClient(target.client).remote_transact(
                f"{target.network_id}/vault/vault/NoSuchFlow",
                [],
                policy=target.policy,
            )


class TestCordaEvents:
    def test_subscription_delivers_and_verifies(self, corda_target):
        target = corda_target
        gateway = InteropGateway.from_client(target.client)
        stream = gateway.subscribe(
            target.event_address, target.event_name, verifier=target.event_verifier()
        )
        try:
            payload = target.trigger_event("CORDA-EV-1")
            assert stream.pending_count == 1
            event = stream.take()
            assert event is not None
            assert event.notification.payload == payload
            assert event.notification.tx_id.startswith("corda-tx-")
            # Trusted data comes from the follow-up proof-carrying query.
            assert len(event.verification.proof) == 2
            assert json.loads(event.data)["data"]["via"] == "event"
        finally:
            stream.close()

    def test_closed_tap_stops_delivery_and_detaches(self, corda_target):
        target = corda_target
        network = target.relay.driver_for(target.network_id)._network
        observers_before = len(network._observers)
        gateway = InteropGateway.from_client(target.client)
        stream = gateway.subscribe(
            target.event_address, target.event_name, verifier=target.event_verifier()
        )
        assert len(network._observers) == observers_before + 1
        stream.close()
        target.trigger_event("CORDA-EV-CLOSED")
        assert stream.pending_count == 0
        # Subscription churn leaves no dead observer behind.
        assert len(network._observers) == observers_before

    def test_unexposed_event_denied(self, corda_target):
        target = corda_target
        gateway = InteropGateway.from_client(target.client)
        with pytest.raises(AccessDeniedError):
            gateway.subscribe(target.event_address, "UnexposedCommand")


class TestFailClosedSurfaces:
    @pytest.fixture(scope="class")
    def bare_corda_relay(self, corda_target):
        """A Corda network whose driver never ran ``enable_assets``,
        reachable from the destination through the same registry — the
        matrix's closed cells are a per-deployment choice, not an
        accident of test wiring."""
        from repro.corda import CordaNetwork
        from repro.interop.contracts.ports import InteropPort
        from repro.interop.drivers.corda_driver import CordaDriver
        from repro.interop.relay import RelayService
        from repro.utils.clock import SimulatedClock

        network = CordaNetwork("barenetc", clock=SimulatedClock(5_000.0))
        network.add_node("nodeA")
        relay = RelayService("barenetc", corda_target.registry)
        driver = CordaDriver(network, InteropPort("barenetc"))
        relay.register_driver(driver)
        corda_target.registry.register("barenetc", relay)
        return driver

    def _bare_command(self, corda_target, kind_args=None):
        from repro.proto.messages import (
            PROTOCOL_VERSION,
            AssetCommandMsg,
            AuthInfo,
            NetworkAddressMsg,
        )

        identity = corda_target.client.identity
        return AssetCommandMsg(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network="barenetc",
                ledger="vault",
                contract="asset-vault",
                function="",
            ),
            asset_id="GHOST-ASSET",
            auth=AuthInfo(
                requesting_network=corda_target.client.network_id,
                requesting_org=identity.org,
                requestor=identity.name,
                certificate=identity.certificate.to_bytes(),
                public_key=identity.keypair.public.to_bytes(),
            ),
            nonce="conf-asset-bare",
            **(kind_args or {}),
        )

    def test_assets_fail_closed_without_enablement_via_relay(
        self, corda_target, bare_corda_relay
    ):
        with pytest.raises(UnsupportedCapabilityError):
            corda_target.client.relay.remote_asset(
                MSG_KIND_ASSET_LOCK,
                self._bare_command(
                    corda_target,
                    {
                        "recipient": "nobody@nowhere",
                        "hashlock": b"\x00" * 32,
                        "timeout": 1e12,
                    },
                ),
            )

    def test_assets_fail_closed_without_enablement_even_for_reads(
        self, corda_target, bare_corda_relay
    ):
        with pytest.raises(UnsupportedCapabilityError):
            corda_target.client.relay.remote_asset(
                MSG_KIND_ASSET_STATUS, self._bare_command(corda_target)
            )

    def test_driver_without_enablement_fails_closed_locally(
        self, corda_target, bare_corda_relay
    ):
        assert not bare_corda_relay.supports_assets
        with pytest.raises(UnsupportedCapabilityError):
            bare_corda_relay.lock_asset(self._bare_command(corda_target))

    def test_corda_assets_now_conform_via_relay(self, corda_target):
        """The cell that used to fail closed: a lock through the relay
        lands as notary-backed escrow in the vault."""
        from repro.assets.htlc import STATE_LOCKED, make_hashlock
        from repro.proto.messages import STATUS_OK

        target = corda_target
        asset_id = target.issue_asset("CAP-PARITY", target.party(target.client))
        ack = target.client.relay.remote_asset(
            MSG_KIND_ASSET_LOCK,
            target.asset_command(
                target.client,
                asset_id,
                recipient=target.party(target.counter_client),
                hashlock=make_hashlock(b"capability-parity"),
                timeout=target.clock.now() + 600.0,
            ),
        )
        assert ack.status == STATUS_OK
        assert target.read_lock(asset_id)["state"] == STATE_LOCKED

    def test_quorum_transact_fails_closed(self, quorum_target):
        target = quorum_target
        with pytest.raises(UnsupportedCapabilityError):
            RemoteTransactionClient(target.client).remote_transact(
                f"{target.network_id}/state/document-registry/RegisterDocument",
                ["DOC-X", "{}"],
                policy=target.policy,
            )

    def test_quorum_subscribe_fails_closed(self, quorum_target):
        target = quorum_target
        gateway = InteropGateway.from_client(target.client)
        with pytest.raises(UnsupportedCapabilityError):
            gateway.subscribe(
                f"{target.network_id}/state/document-registry", "DocumentRegistered"
            )

    def test_pubchain_transact_fails_closed(self, pubchain_target):
        """A public chain gives no foreign relay a commit pipeline."""
        target = pubchain_target
        with pytest.raises(UnsupportedCapabilityError):
            RemoteTransactionClient(target.client).remote_transact(
                f"{target.network_id}/chain/document-registry/RegisterDocument",
                ["DOC-X", "{}"],
                policy=target.policy,
            )

    def test_pubchain_subscribe_fails_closed(self, pubchain_target):
        target = pubchain_target
        gateway = InteropGateway.from_client(target.client)
        with pytest.raises(UnsupportedCapabilityError):
            gateway.subscribe(
                f"{target.network_id}/chain/document-registry", "DocumentRegistered"
            )


class TestCordaTransactIntegrity:
    def test_tampered_transact_proof_detected(self, corda_target):
        """The §5 integrity claim holds for the new verb: a malicious
        relay corrupting a transact reply's attestations is caught by the
        client's proof verification."""
        from repro.testing import FaultPlan, FAULT_TAMPER_PROOF, chaos_topology

        target = corda_target
        plan = FaultPlan.single(FAULT_TAMPER_PROOF, 4242)
        with chaos_topology(
            target.registry,
            [target.network_id],
            plan,
            clock=target.clock,
            redundant=False,
        ):
            with pytest.raises(ProofError):
                RemoteTransactionClient(target.client).remote_transact(
                    target.transact_address,
                    target.transact_args("CORDA-TX-TAMPERED"),
                    policy=target.policy,
                )
