"""Regression: duplicated side-effecting envelopes must not double-execute.

The §4–§5 adversary can replay any message it saw, and the failover loop
legitimately re-sends an envelope whose reply was lost. The relay serve
path keys exactly-once execution on the envelope ``request_id``: a
replayed transact/asset command is answered with the recorded reply, and
the ledger shows exactly one commit.
"""

from __future__ import annotations

import pytest

from repro.interop.transactions import RemoteTransactionClient
from repro.proto.messages import (
    MSG_KIND_ASSET_ACK,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_TRANSACT_REQUEST,
    MSG_KIND_TRANSACT_RESPONSE,
    PROTOCOL_VERSION,
    STATUS_OK,
    AssetAckMsg,
    QueryResponse,
    RelayEnvelope,
)


def transact_envelope(target, tag: str, request_id: str) -> bytes:
    """A captured-on-the-wire transact envelope, as an adversary holds it."""
    tx_client = RemoteTransactionClient(target.client)
    prepared = tx_client.prepare_transaction(
        target.transact_address, target.transact_args(tag), policy=target.policy
    )
    return RelayEnvelope(
        version=PROTOCOL_VERSION,
        kind=MSG_KIND_TRANSACT_REQUEST,
        request_id=request_id,
        source_network=target.client.network_id,
        destination_network=target.network_id,
        payload=prepared.query.encode(),
    ).encode()


class TestTransactReplay:
    def test_replayed_transact_envelope_commits_exactly_once(self, fabric_target):
        """THE regression: byte-identical replay of a captured transact
        envelope is served from the idempotency record, not re-committed."""
        target = fabric_target
        tag = "IDEMP-TX-1"
        raw = transact_envelope(target, tag, "req-idemp-1")
        suppressed_before = target.relay.stats.duplicates_suppressed

        first = target.relay.handle_request(raw)
        second = target.relay.handle_request(raw)  # adversarial replay

        assert RelayEnvelope.decode(first).kind == MSG_KIND_TRANSACT_RESPONSE
        assert second == first  # the recorded reply, byte for byte
        assert target.commit_count(tag) == 1
        assert (
            target.relay.stats.duplicates_suppressed - suppressed_before == 1
        )
        # And the recorded reply is a real committed outcome, not an error.
        response = QueryResponse.decode(RelayEnvelope.decode(first).payload)
        assert response.status == STATUS_OK

    def test_distinct_request_ids_commit_independently(self, fabric_target):
        """Idempotency keys on the request id, not the payload: two client
        retries with fresh ids are two intentional transactions."""
        target = fabric_target
        first = target.relay.handle_request(
            transact_envelope(target, "IDEMP-TX-2A", "req-idemp-2a")
        )
        second = target.relay.handle_request(
            transact_envelope(target, "IDEMP-TX-2B", "req-idemp-2b")
        )
        assert first != second
        assert target.commit_count("IDEMP-TX-2A") == 1
        assert target.commit_count("IDEMP-TX-2B") == 1


class TestAssetReplay:
    def test_replayed_lock_escrows_exactly_once(self, fabric_target):
        target = fabric_target
        from repro.assets.htlc import STATE_LOCKED, make_hashlock

        asset_id = target.issue_asset("IDEMP-A1", target.party(target.client))
        hashlock = make_hashlock(b"secret-idemp")
        command = target.asset_command(
            target.client,
            asset_id,
            recipient=target.party(target.counter_client),
            hashlock=hashlock,
            timeout=target.clock.now() + 600.0,
        )
        raw = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_ASSET_LOCK,
            request_id="req-idemp-lock-1",
            source_network=target.client.network_id,
            destination_network=target.network_id,
            payload=command.encode(),
        ).encode()

        first = target.relay.handle_request(raw)
        second = target.relay.handle_request(raw)

        assert second == first
        first_envelope = RelayEnvelope.decode(first)
        assert first_envelope.kind == MSG_KIND_ASSET_ACK
        ack = AssetAckMsg.decode(first_envelope.payload)
        # Without the idempotency record the replay would answer
        # "already locked" — the duplicate must see the original OK.
        assert ack.status == STATUS_OK
        assert target.read_lock(asset_id)["state"] == STATE_LOCKED


class TestCacheBounds:
    def test_idempotency_record_is_bounded(self, fabric_target):
        target = fabric_target
        original_capacity = target.relay.idempotency_capacity
        try:
            target.relay.idempotency_capacity = 4
            raws = [
                transact_envelope(target, f"IDEMP-EV-{index}", f"req-idemp-ev-{index}")
                for index in range(6)
            ]
            for raw in raws:
                target.relay.handle_request(raw)
            assert len(target.relay._idempotency) <= 4
            # The oldest record was evicted: its replay re-routes (and the
            # chaincode's duplicate refusal answers it — visible, not silent).
            suppressed_before = target.relay.stats.duplicates_suppressed
            target.relay.handle_request(raws[0])
            assert target.relay.stats.duplicates_suppressed == suppressed_before
        finally:
            target.relay.idempotency_capacity = original_capacity
