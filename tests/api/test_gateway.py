"""Tests for the unified ``repro.api`` gateway: façade, builder, pipeline."""

from __future__ import annotations

import json

import pytest

from repro.api import InteropGateway, QuerySpec
from repro.errors import RelayError
from repro.interop.bootstrap import create_interop_gateway

BL_ADDRESS = "stl/trade-logistics/TradeLensCC/GetBillOfLading"
POLICY = "AND(org:seller-org, org:carrier-org)"


@pytest.fixture()
def gateway(shipped_scenario):
    scenario, po_ref = shipped_scenario
    return (
        InteropGateway.from_client(scenario.swt_seller_client.interop_client),
        scenario,
        po_ref,
    )


class TestBuilder:
    def test_fluent_spec(self, shipped_scenario):
        scenario, _ = shipped_scenario
        gateway = InteropGateway.from_client(scenario.swt_seller_client.interop_client)
        spec = (
            gateway.query(BL_ADDRESS)
            .with_args("PO-1", "extra")
            .with_policy(POLICY)
            .plain()
            .verify_locally(False)
            .build()
        )
        assert spec == QuerySpec(
            address=BL_ADDRESS,
            args=["PO-1", "extra"],
            policy=POLICY,
            confidential=False,
            verify_locally=False,
        )

    def test_defaults_are_confidential_and_verified(self, gateway):
        gw, _, _ = gateway
        spec = gw.query(BL_ADDRESS).build()
        assert spec.confidential and spec.verify_locally and spec.policy is None

    def test_execute_runs_immediately(self, gateway):
        gw, _, po_ref = gateway
        result = gw.query(BL_ADDRESS).with_args(po_ref).with_policy(POLICY).execute()
        assert json.loads(result.data)["bl_id"] == f"BL-{po_ref}"

    def test_unbound_builder_cannot_submit(self, gateway):
        gw, _, _ = gateway
        from repro.api.builder import QueryBuilder

        builder = QueryBuilder(gw.client, BL_ADDRESS)
        with pytest.raises(RuntimeError, match="not bound"):
            builder.submit()


class TestPipeline:
    def test_submit_is_lazy_and_result_flushes(self, gateway):
        gw, scenario, po_ref = gateway
        sent_before = scenario.swt_relay.stats.queries_sent
        handle = gw.query(BL_ADDRESS).with_args(po_ref).submit()
        assert not handle.done()
        assert scenario.swt_relay.stats.queries_sent == sent_before
        assert json.loads(handle.result().data)["po_ref"] == po_ref
        assert handle.done()

    def test_same_target_queries_share_one_batch(self, gateway):
        gw, scenario, po_ref = gateway
        batches_before = scenario.stl_relay.stats.batches_served
        first = gw.query(BL_ADDRESS).with_args(po_ref).submit()
        second = gw.query(BL_ADDRESS).with_args(po_ref).plain().submit()
        results = [first.result(), second.result()]
        assert scenario.stl_relay.stats.batches_served == batches_before + 1
        assert all(json.loads(r.data)["po_ref"] == po_ref for r in results)
        # confidentiality is still per member
        assert results[0].response.result_cipher and not results[0].response.result_plain
        assert results[1].response.result_plain and not results[1].response.result_cipher

    def test_fresh_nonce_per_batch_member(self, gateway):
        gw, _, po_ref = gateway
        first = gw.query(BL_ADDRESS).with_args(po_ref).submit()
        second = gw.query(BL_ADDRESS).with_args(po_ref).submit()
        assert first.result().nonce != second.result().nonce

    def test_partial_failure_does_not_poison_batch(self, gateway):
        """One bad member fails on its own handle; the rest succeed."""
        gw, _, po_ref = gateway
        good = gw.query(BL_ADDRESS).with_args(po_ref).submit()
        bad = gw.query(BL_ADDRESS).with_args("PO-NO-SUCH").submit()
        also_good = gw.query(BL_ADDRESS).with_args(po_ref).submit()
        assert isinstance(bad.exception(), RelayError)
        assert "no bill of lading" in str(bad.exception())
        assert json.loads(good.result().data)["po_ref"] == po_ref
        assert json.loads(also_good.result().data)["po_ref"] == po_ref
        with pytest.raises(RelayError):
            bad.result()

    def test_explicit_queryset_results(self, gateway):
        gw, _, po_ref = gateway
        queryset = gw.batch()
        queryset.query(BL_ADDRESS).with_args(po_ref).submit()
        queryset.query(BL_ADDRESS).with_args(po_ref).submit()
        results = queryset.results()
        assert len(results) == 2
        assert len(queryset) == 0

    def test_build_then_submit_binds_one_ambient_set(self, gateway):
        """Builders created before any submit() must share one batch."""
        gw, scenario, po_ref = gateway
        batches_before = scenario.swt_relay.stats.batches_sent
        first_builder = gw.query(BL_ADDRESS).with_args(po_ref)
        second_builder = gw.query(BL_ADDRESS).with_args(po_ref)
        first = first_builder.submit()
        second = second_builder.submit()
        resolved = gw.dispatch()
        assert set(resolved) == {first, second}
        assert first.done() and second.done()
        assert scenario.swt_relay.stats.batches_sent == batches_before + 1

    def test_dispatch_flushes_ambient_set(self, gateway):
        gw, _, po_ref = gateway
        handle = gw.query(BL_ADDRESS).with_args(po_ref).submit()
        resolved = gw.dispatch()
        assert handle in resolved and handle.done()
        assert gw.dispatch() == []

    def test_policy_lookup_amortized_across_members(self, gateway):
        """Members without an explicit policy trigger one CMDAC lookup."""
        gw, scenario, po_ref = gateway
        calls = []
        original = gw.client.lookup_policy
        gw.client.lookup_policy = lambda network: (  # type: ignore[method-assign]
            calls.append(network) or original(network)
        )
        first = gw.query(BL_ADDRESS).with_args(po_ref).submit()
        second = gw.query(BL_ADDRESS).with_args(po_ref).submit()
        first.result(), second.result()
        assert calls == ["stl"]


class TestFacade:
    def test_constructor_requires_client_or_parts(self):
        with pytest.raises(TypeError, match="needs either"):
            InteropGateway()

    def test_constructor_from_parts(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        seller = scenario.swt.org("seller-bank-org").member("seller")
        gateway = InteropGateway(
            seller, scenario.swt_relay, "swt", ledger_gateway=scenario.swt.gateway
        )
        result = gateway.remote_query(BL_ADDRESS, [po_ref], policy=POLICY)
        assert json.loads(result.data)["po_ref"] == po_ref

    def test_bootstrap_helper(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        seller = scenario.swt.org("seller-bank-org").member("seller")
        gateway = create_interop_gateway(
            seller, scenario.swt_relay, "swt", ledger_gateway=scenario.swt.gateway
        )
        assert gateway.network_id == "swt"
        assert gateway.relay is scenario.swt_relay

    def test_remote_query_batch_passthrough(self, gateway):
        gw, _, po_ref = gateway
        results = gw.remote_query_batch(
            [(BL_ADDRESS, [po_ref]), (BL_ADDRESS, [po_ref])], policy=POLICY
        )
        assert [json.loads(r.data)["po_ref"] for r in results] == [po_ref, po_ref]

    def test_legacy_client_shim_unchanged(self, gateway):
        """The wrapped legacy client answers exactly as before."""
        gw, _, po_ref = gateway
        legacy = gw.client.remote_query(BL_ADDRESS, [po_ref], policy=POLICY)
        assert json.loads(legacy.data)["bl_id"] == f"BL-{po_ref}"
