"""Tests for the composable relay middleware chain and stock interceptors."""

from __future__ import annotations

import pytest

from repro.api.middleware import (
    Interceptor,
    MetricsInterceptor,
    RateLimitInterceptor,
    RequestLoggingInterceptor,
    ResponseCacheInterceptor,
)
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import RateLimiter, RelayService
from repro.proto.messages import (
    MSG_KIND_ERROR,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_QUERY_RESPONSE,
    STATUS_OK,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
    RelayEnvelope,
    VerificationPolicyMsg,
)
from repro.utils.clock import SimulatedClock


class EchoDriver(NetworkDriver):
    """A crypto-free driver so middleware tests stay fast."""

    platform = "echo"

    def __init__(self, network_id: str = "stl") -> None:
        super().__init__(network_id)
        self.executed = 0

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        self.executed += 1
        return QueryResponse(
            version=1,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=b"echo:" + ",".join(query.args).encode(),
        )


def make_request(network="stl", nonce="n-1", args=("a",)) -> bytes:
    query = NetworkQuery(
        version=1,
        address=NetworkAddressMsg(
            network=network, ledger="ledger", contract="cc", function="fn"
        ),
        args=list(args),
        nonce=nonce,
        policy=VerificationPolicyMsg(expression="org:x"),
    )
    return RelayEnvelope(
        version=1,
        kind=MSG_KIND_QUERY_REQUEST,
        request_id=f"req-{nonce}",
        source_network="swt",
        destination_network=network,
        payload=query.encode(),
    ).encode()


def make_relay(*interceptors) -> tuple[RelayService, EchoDriver]:
    relay = RelayService("stl", InMemoryRegistry())
    driver = EchoDriver()
    relay.register_driver(driver)
    if interceptors:
        relay.use(*interceptors)
    return relay, driver


class TestChain:
    def test_interceptors_run_in_registration_order(self):
        calls: list[str] = []

        def outer(ctx, call_next):
            calls.append("outer:before")
            reply = call_next(ctx)
            calls.append("outer:after")
            return reply

        def inner(ctx, call_next):
            calls.append("inner:before")
            reply = call_next(ctx)
            calls.append("inner:after")
            return reply

        relay, _ = make_relay(outer, inner)
        relay.handle_request(make_request())
        assert calls == ["outer:before", "inner:before", "inner:after", "outer:after"]

    def test_use_returns_self_for_chaining(self):
        relay, _ = make_relay()
        assert relay.use(lambda ctx, call_next: call_next(ctx)) is relay
        assert len(relay.interceptors) == 1

    def test_interceptor_can_short_circuit(self):
        relay, driver = make_relay(
            lambda ctx, call_next: ctx.error_reply("nope", retryable=False)
        )
        reply = RelayEnvelope.decode(relay.handle_request(make_request()))
        assert reply.kind == MSG_KIND_ERROR
        assert driver.executed == 0
        assert reply.request_id == "req-n-1"

    def test_context_peeks_envelope_best_effort(self):
        seen: dict = {}

        def probe(ctx, call_next):
            seen["request_id"] = ctx.request_id
            seen["kind"] = ctx.kind
            return call_next(ctx)

        relay, _ = make_relay(probe)
        relay.handle_request(make_request())
        assert seen == {"request_id": "req-n-1", "kind": MSG_KIND_QUERY_REQUEST}
        relay.handle_request(b"\xff\xfe")  # undecodable: context degrades to ''
        assert seen == {"request_id": "", "kind": 0}


class TestRateLimitInterceptor:
    def test_shed_reply_carries_request_id(self):
        """A rate-limited rejection must correlate to the shed request."""
        clock = SimulatedClock()
        relay, _ = make_relay(RateLimitInterceptor(RateLimiter(1, 10.0, clock=clock)))
        assert RelayEnvelope.decode(relay.handle_request(make_request())).kind == (
            MSG_KIND_QUERY_RESPONSE
        )
        reply = RelayEnvelope.decode(relay.handle_request(make_request(nonce="n-2")))
        assert reply.kind == MSG_KIND_ERROR
        assert reply.request_id == "req-n-2"
        assert reply.headers.get("retryable") == "true"
        assert relay.stats.requests_rejected == 1

    def test_legacy_constructor_shim_installs_interceptor(self):
        clock = SimulatedClock()
        relay = RelayService(
            "stl",
            InMemoryRegistry(),
            rate_limiter=RateLimiter(1, 10.0, clock=clock),
        )
        relay.register_driver(EchoDriver())
        assert len(relay.interceptors) == 1
        assert isinstance(relay.interceptors[0], RateLimitInterceptor)
        relay.handle_request(make_request())
        reply = RelayEnvelope.decode(relay.handle_request(make_request(nonce="n-9")))
        assert reply.kind == MSG_KIND_ERROR and reply.request_id == "req-n-9"


class TestMetricsInterceptor:
    def test_counts_and_latency(self):
        clock = SimulatedClock()
        metrics = MetricsInterceptor(clock=clock)
        relay, _ = make_relay(metrics)
        request = make_request()
        relay.handle_request(request)
        relay.handle_request(b"garbage")
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == 2
        assert snapshot["errors_total"] == 1
        assert snapshot["by_kind"] == {MSG_KIND_QUERY_REQUEST: 1, 0: 1}
        assert snapshot["bytes_in"] > len(request) and snapshot["bytes_out"] > 0

    def test_latency_accumulates_with_slow_inner_stage(self):
        clock = SimulatedClock()
        metrics = MetricsInterceptor(clock=clock)

        def slow(ctx, call_next):
            clock.advance(0.25)
            return call_next(ctx)

        relay, _ = make_relay(metrics, slow)
        relay.handle_request(make_request())
        snapshot = metrics.snapshot()
        assert snapshot["seconds_total"] == pytest.approx(0.25)
        assert snapshot["seconds_max"] == pytest.approx(0.25)


class TestRequestLoggingInterceptor:
    def test_records_outcomes(self):
        logging_interceptor = RequestLoggingInterceptor(clock=SimulatedClock())
        relay, _ = make_relay(logging_interceptor)
        relay.handle_request(make_request())
        relay.handle_request(b"broken")
        outcomes = [record["outcome"] for record in logging_interceptor.records]
        assert outcomes == ["ok", "error"]
        first = logging_interceptor.records[0]
        assert first["relay_id"] == "relay-stl"
        assert first["request_id"] == "req-n-1"
        assert first["kind"] == MSG_KIND_QUERY_REQUEST

    def test_bounded_record_buffer(self):
        logging_interceptor = RequestLoggingInterceptor(max_records=2)
        relay, _ = make_relay(logging_interceptor)
        for nonce in ("n-1", "n-2", "n-3"):
            relay.handle_request(make_request(nonce=nonce))
        assert [r["request_id"] for r in logging_interceptor.records] == [
            "req-n-2",
            "req-n-3",
        ]


class TestResponseCacheInterceptor:
    def test_identical_raw_request_served_from_cache(self):
        clock = SimulatedClock()
        cache = ResponseCacheInterceptor(ttl_seconds=5.0, clock=clock)
        relay, driver = make_relay(cache)
        request = make_request()
        first = relay.handle_request(request)
        second = relay.handle_request(request)
        assert first == second
        assert driver.executed == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_ttl_expiry_re_executes(self):
        clock = SimulatedClock()
        cache = ResponseCacheInterceptor(ttl_seconds=1.0, clock=clock)
        relay, driver = make_relay(cache)
        request = make_request()
        relay.handle_request(request)
        clock.advance(2.0)
        relay.handle_request(request)
        assert driver.executed == 2
        assert (cache.hits, cache.misses) == (0, 2)

    def test_error_replies_are_not_cached(self):
        cache = ResponseCacheInterceptor(ttl_seconds=5.0, clock=SimulatedClock())
        relay, _ = make_relay(cache)
        relay.handle_request(b"broken")
        relay.handle_request(b"broken")
        assert len(cache) == 0
        assert cache.misses == 2

    def test_repeated_transact_envelope_bypasses_cache_and_dedups(self):
        """Regression (two layers): a transaction envelope must never be
        cached — a cached reply would claim a commit that never
        re-happened — while a byte-identical *replay* of the same
        envelope is absorbed by the relay's request-id idempotency layer:
        answered with the recorded reply, executed exactly once."""
        from repro.proto.messages import (
            INVOCATION_TRANSACTION,
            MSG_KIND_TRANSACT_REQUEST,
            MSG_KIND_TRANSACT_RESPONSE,
        )

        class EchoTransactionDriver(EchoDriver):
            supports_transactions = True

            def execute_transaction(self, query):
                return self.execute_query(query)

        cache = ResponseCacheInterceptor(ttl_seconds=60.0, clock=SimulatedClock())
        relay = RelayService("stl", InMemoryRegistry())
        driver = EchoTransactionDriver()
        relay.register_driver(driver)
        relay.use(cache)
        query = NetworkQuery(
            version=1,
            address=NetworkAddressMsg(
                network="stl", ledger="ledger", contract="cc", function="fn"
            ),
            nonce="txn-1",
            policy=VerificationPolicyMsg(expression="org:x"),
            invocation=INVOCATION_TRANSACTION,
        )

        def envelope_bytes(request_id: str) -> bytes:
            return RelayEnvelope(
                version=1,
                kind=MSG_KIND_TRANSACT_REQUEST,
                request_id=request_id,
                source_network="swt",
                destination_network="stl",
                payload=query.encode(),
            ).encode()

        request = envelope_bytes("req-txn-1")
        first = relay.handle_request(request)
        second = relay.handle_request(request)  # identical raw bytes
        assert RelayEnvelope.decode(first).kind == MSG_KIND_TRANSACT_RESPONSE
        assert second == first  # the recorded reply, not a re-commit
        assert driver.executed == 1  # exactly-once execution
        assert relay.stats.duplicates_suppressed == 1
        # A *fresh* transaction (new request id) is a new commit — neither
        # the cache nor the idempotency layer may absorb it.
        relay.handle_request(envelope_bytes("req-txn-2"))
        assert driver.executed == 2
        # And the cache never stored or served any of it.
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.bypassed == 3

    def test_side_effecting_header_bypasses_cache(self):
        """A batch envelope carrying transaction members is marked by the
        sender and must bypass the cache even though its kind is BATCH."""
        from repro.proto.messages import SIDE_EFFECTING_HEADER

        cache = ResponseCacheInterceptor(ttl_seconds=60.0, clock=SimulatedClock())
        relay, driver = make_relay(cache)
        query = NetworkQuery(
            version=1,
            address=NetworkAddressMsg(
                network="stl", ledger="ledger", contract="cc", function="fn"
            ),
            nonce="n-h",
            policy=VerificationPolicyMsg(expression="org:x"),
        )
        request = RelayEnvelope(
            version=1,
            kind=MSG_KIND_QUERY_REQUEST,
            request_id="req-h",
            source_network="swt",
            destination_network="stl",
            payload=query.encode(),
            headers={SIDE_EFFECTING_HEADER: "true"},
        ).encode()
        relay.handle_request(request)
        relay.handle_request(request)
        assert driver.executed == 2
        assert cache.bypassed == 2 and len(cache) == 0

    def test_legacy_tx_pseudo_network_bypasses_cache(self):
        """The pre-gateway transaction wire shape — a QUERY_REQUEST envelope
        addressed to '<net>#tx' — commits on the source and must never be
        served from cache either."""
        cache = ResponseCacheInterceptor(ttl_seconds=60.0, clock=SimulatedClock())
        relay = RelayService("stl", InMemoryRegistry())
        driver = EchoDriver(network_id="stl#tx")
        relay.register_driver(driver)
        relay.use(cache)
        request = make_request(network="stl#tx", nonce="txn-legacy")
        relay.handle_request(request)
        relay.handle_request(request)
        assert driver.executed == 2
        assert cache.bypassed == 2 and len(cache) == 0

    def test_event_kinds_bypass_cache(self):
        from repro.proto.messages import (
            MSG_KIND_EVENT_SUBSCRIBE,
            PROTOCOL_VERSION,
            EventSubscribeRequest,
        )

        cache = ResponseCacheInterceptor(ttl_seconds=60.0, clock=SimulatedClock())
        relay, _ = make_relay(cache)
        request = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_EVENT_SUBSCRIBE,
            request_id="req-sub",
            source_network="swt",
            destination_network="stl",
            payload=EventSubscribeRequest(version=PROTOCOL_VERSION).encode(),
        ).encode()
        relay.handle_request(request)
        relay.handle_request(request)
        assert cache.bypassed == 2 and len(cache) == 0


class TestMetricsKindBreakdown:
    def test_snapshot_breaks_down_by_kind(self):
        clock = SimulatedClock()
        metrics = MetricsInterceptor(clock=clock)

        def slow(ctx, call_next):
            clock.advance(0.5)
            return call_next(ctx)

        relay, _ = make_relay(metrics, slow)
        relay.handle_request(make_request(nonce="n-1"))
        relay.handle_request(make_request(nonce="n-2"))
        relay.handle_request(b"garbage")
        snapshot = metrics.snapshot()
        kinds = snapshot["kinds"]
        assert kinds["query"]["requests"] == 2
        assert kinds["query"]["errors"] == 0
        assert kinds["query"]["seconds_mean"] == pytest.approx(0.5)
        assert kinds["query"]["seconds_max"] == pytest.approx(0.5)
        assert kinds["undecodable"]["requests"] == 1
        assert kinds["undecodable"]["errors"] == 1
        # The historical flat counter keeps its shape.
        assert snapshot["by_kind"] == {MSG_KIND_QUERY_REQUEST: 2, 0: 1}

    def test_snapshot_reports_latency_percentiles_per_kind(self):
        clock = SimulatedClock()
        metrics = MetricsInterceptor(clock=clock)
        delays = iter([0.010] * 50 + [0.020] * 45 + [1.0] * 5)

        def variable(ctx, call_next):
            clock.advance(next(delays))
            return call_next(ctx)

        relay, _ = make_relay(metrics, variable)
        for index in range(100):
            relay.handle_request(make_request(nonce=f"n-{index}"))
        query = metrics.snapshot()["kinds"]["query"]
        assert query["seconds_p50"] == pytest.approx(0.020)
        assert query["seconds_p95"] == pytest.approx(1.0)
        assert query["seconds_max"] == pytest.approx(1.0)
        assert query["seconds_p50"] <= query["seconds_p95"] <= query["seconds_max"]

    def test_sample_window_bounds_memory(self):
        clock = SimulatedClock()
        metrics = MetricsInterceptor(clock=clock, sample_window=16)
        relay, _ = make_relay(metrics)
        for index in range(64):
            relay.handle_request(make_request(nonce=f"n-{index}"))
        assert len(metrics.kind_samples[MSG_KIND_QUERY_REQUEST]) == 16

    def test_eviction_respects_max_entries(self):
        cache = ResponseCacheInterceptor(
            ttl_seconds=60.0, max_entries=2, clock=SimulatedClock()
        )
        relay, driver = make_relay(cache)
        requests = [make_request(nonce=f"n-{i}") for i in range(3)]
        for request in requests:
            relay.handle_request(request)
        assert len(cache) == 2
        relay.handle_request(requests[0])  # evicted: must re-execute
        assert driver.executed == 4

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ResponseCacheInterceptor(ttl_seconds=0)
        with pytest.raises(ValueError):
            ResponseCacheInterceptor(max_entries=0)


class TestInterceptorBase:
    def test_subclass_hook(self):
        class Tagging(Interceptor):
            def handle(self, ctx, call_next):
                ctx.metadata["tag"] = "seen"
                return call_next(ctx)

        seen: dict = {}

        def probe(ctx, call_next):
            seen.update(ctx.metadata)
            return call_next(ctx)

        relay, _ = make_relay(Tagging(), probe)
        relay.handle_request(make_request())
        assert seen == {"tag": "seen"}
