"""End-to-end tests for the multiplexed GatewaySession surface.

Covers the full §2 triad behind one session: proof-verified transactions
(singleton and pipelined), relay-envelope event subscriptions with the
notify-then-verify stream, and the trust property that a tampered
notification never reaches the application iterator.
"""

from __future__ import annotations

import json

import pytest

from repro.api import EventVerifier, InteropGateway
from repro.errors import AccessDeniedError, ProofError, RelayError
from repro.interop.events import enable_relay_events
from repro.interop.transactions import enable_remote_transactions
from repro.proto.messages import (
    MSG_KIND_EVENT_ACK,
    MSG_KIND_EVENT_PUBLISH,
    PROTOCOL_VERSION,
    STATUS_OK,
    EventAck,
    EventNotificationMsg,
    RelayEnvelope,
)

POLICY = "AND(org:seller-org, org:carrier-org)"
TL_CHAINCODE_ADDR = "stl/trade-logistics/TradeLensCC"
CREATE_ADDR = f"{TL_CHAINCODE_ADDR}/CreateShipment"
GET_BL_ADDR = f"{TL_CHAINCODE_ADDR}/GetBillOfLading"


@pytest.fixture()
def full_gateway(trade_scenario):
    """Trade scenario with transactions + relay-side events enabled on STL."""
    scenario = trade_scenario
    stl_admin = scenario.stl.org("seller-org").member("admin")
    invoker = scenario.stl.org("seller-org").enroll("interop-invoker", role="client")
    enable_remote_transactions(
        scenario.stl, scenario.stl_relay, invoker, discovery=scenario.discovery
    )
    enable_relay_events(scenario.stl, scenario.stl_relay, stl_admin)
    for rule_object in ("CreateShipment", "event:BillOfLadingIssued"):
        scenario.stl.gateway.submit(
            stl_admin,
            "ecc",
            "AddAccessRule",
            ["swt", "seller-bank-org", "TradeLensCC", rule_object],
        )
    gateway = InteropGateway.from_client(scenario.swt_seller_client.interop_client)
    return scenario, gateway


def bl_verifier() -> EventVerifier:
    """Upgrade a BillOfLadingIssued notification via a proof-backed query."""
    return EventVerifier(
        address=GET_BL_ADDR,
        args=lambda notification: [notification.payload.decode()],
        policy=POLICY,
    )


def issue_bl(scenario, po_ref: str) -> None:
    scenario.carrier_app.accept_shipment(po_ref)
    scenario.carrier_app.record_handover(po_ref)
    scenario.carrier_app.issue_bill_of_lading(po_ref, vessel="MV Session")


class TestGatewayTransact:
    def test_transact_roundtrip_attests_committed_outcome(self, full_gateway):
        scenario, gateway = full_gateway
        result = (
            gateway.transact(CREATE_ADDR)
            .with_args("PO-SESS-1", "session goods")
            .with_policy(POLICY)
            .execute()
        )
        # The attestation covers the committed tx id and block: the tx is
        # really in that block on the source ledger.
        assert result.attesting_orgs == ["carrier-org", "seller-org"]
        block = scenario.stl.peers[0].ledger.block(result.block_number)
        assert any(tx.tx_id == result.tx_id for tx in block.transactions)
        assert json.loads(result.result)["po_ref"] == "PO-SESS-1"
        # And it travelled as a TRANSACT envelope, not a query.
        assert scenario.swt_relay.stats.transactions_sent == 1
        assert scenario.stl_relay.stats.transactions_served == 1

    def test_pipelined_transactions_share_one_batch_envelope(self, full_gateway):
        scenario, gateway = full_gateway
        handles = [
            gateway.transact(CREATE_ADDR)
            .with_args(f"PO-SESS-B{i}", "goods")
            .with_policy(POLICY)
            .submit()
            for i in range(3)
        ]
        results = [handle.result() for handle in handles]
        assert len({result.tx_id for result in results}) == 3
        assert scenario.swt_relay.stats.batches_sent == 1
        assert scenario.stl_relay.stats.transactions_served == 3
        # Sequential commit ordering within the envelope.
        blocks = [result.block_number for result in results]
        assert blocks == sorted(blocks)

    def test_transaction_partial_failure_isolated_to_its_handle(self, full_gateway):
        scenario, gateway = full_gateway
        ok = (
            gateway.transact(CREATE_ADDR)
            .with_args("PO-SESS-DUP", "goods")
            .with_policy(POLICY)
            .execute()
        )
        assert ok.tx_id
        batch = gateway.transaction_batch()
        dup = batch.transact(CREATE_ADDR).with_args("PO-SESS-DUP", "goods").with_policy(POLICY).submit()
        fresh = batch.transact(CREATE_ADDR).with_args("PO-SESS-OK", "goods").with_policy(POLICY).submit()
        batch.flush()
        assert isinstance(dup.exception(), RelayError)
        assert "already exists" in str(dup.exception())
        assert fresh.result().tx_id

    def test_unexposed_function_denied(self, full_gateway):
        _, gateway = full_gateway
        with pytest.raises(AccessDeniedError):
            gateway.transact(f"{TL_CHAINCODE_ADDR}/AcceptShipment").with_args(
                "PO-SESS-1"
            ).with_policy(POLICY).execute()

    def test_transaction_uses_cmdac_policy_when_unpinned(self, full_gateway):
        """policy=None resolves the locally-recorded verification policy,
        exactly as for queries (shared per-session cache)."""
        scenario, gateway = full_gateway
        result = (
            gateway.transact(CREATE_ADDR).with_args("PO-SESS-CMDAC", "goods").execute()
        )
        assert result.attesting_orgs == ["carrier-org", "seller-org"]


class TestGatewaySubscribe:
    def test_subscriber_receives_event_via_relay_envelopes(self, full_gateway):
        scenario, gateway = full_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        assert stream.subscription_id.startswith("sub-")
        scenario.stl_seller_app.create_shipment("PO-SESS-EV1", "goods")
        issue_bl(scenario, "PO-SESS-EV1")
        # Delivery crossed the relay boundary as envelopes, not in-process.
        assert scenario.stl_relay.stats.events_published == 1
        assert scenario.swt_relay.stats.events_delivered == 1
        assert stream.pending_count == 1
        event = stream.take()
        assert event is not None
        assert event.notification.payload == b"PO-SESS-EV1"
        assert event.notification.source_network == "stl"

    def test_stream_auto_verifies_with_proof_carrying_query(self, full_gateway):
        scenario, gateway = full_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        scenario.stl_seller_app.create_shipment("PO-SESS-EV2", "goods")
        issue_bl(scenario, "PO-SESS-EV2")
        event = stream.take()
        # The trusted data comes from the follow-up query: full attestation
        # proof, satisfying the verification policy.
        assert len(event.verification.proof) == 2
        document = json.loads(event.data)
        assert document["po_ref"] == "PO-SESS-EV2"
        assert document["bl_id"] == "BL-PO-SESS-EV2"

    def test_tampered_notification_is_rejected(self, full_gateway):
        """A malicious source relay pushing a forged notification cannot get
        it past the verified stream: the follow-up proof-carrying query
        exposes it, and the iterator never yields it."""
        scenario, gateway = full_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        forged = EventNotificationMsg(
            version=PROTOCOL_VERSION,
            subscription_id=stream.subscription_id,
            source_network="stl",
            chaincode="TradeLensCC",
            name="BillOfLadingIssued",
            payload=b"PO-FORGED",  # no such document on STL
            block_number=999,
            tx_id="tx-forged",
        )
        envelope = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_EVENT_PUBLISH,
            request_id="req-forged",
            source_network="stl",
            destination_network="swt",
            payload=forged.encode(),
        )
        reply = RelayEnvelope.decode(
            scenario.swt_relay.handle_request(envelope.encode())
        )
        assert reply.kind == MSG_KIND_EVENT_ACK
        assert EventAck.decode(reply.payload).status == STATUS_OK
        assert stream.pending_count == 1
        assert stream.take() is None  # never reaches the application
        assert len(stream.rejected) == 1
        assert stream.rejected[0].notification.payload == b"PO-FORGED"
        assert "verification failed" in stream.rejected[0].reason
        assert list(stream) == []

    def test_undecodable_forged_payload_rejected_not_raised(self, full_gateway):
        """A verifier that chokes on a forged payload (here: bytes that are
        not valid UTF-8) must reject the notification, not crash the
        consumer's iterator."""
        scenario, gateway = full_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        forged = EventNotificationMsg(
            version=PROTOCOL_VERSION,
            subscription_id=stream.subscription_id,
            source_network="stl",
            chaincode="TradeLensCC",
            name="BillOfLadingIssued",
            payload=b"\xff\xfe",  # verifier.args -> payload.decode() raises
            block_number=1,
            tx_id="tx-forged-2",
        )
        envelope = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_EVENT_PUBLISH,
            request_id="req-forged-2",
            source_network="stl",
            destination_network="swt",
            payload=forged.encode(),
        )
        scenario.swt_relay.handle_request(envelope.encode())
        assert list(stream) == []
        assert len(stream.rejected) == 1
        assert "verification failed" in stream.rejected[0].reason

    def test_iterating_without_verifier_refuses(self, full_gateway):
        scenario, gateway = full_gateway
        stream = gateway.subscribe(TL_CHAINCODE_ADDR, "BillOfLadingIssued")
        scenario.stl_seller_app.create_shipment("PO-SESS-EV3", "goods")
        issue_bl(scenario, "PO-SESS-EV3")
        assert stream.pending_count == 1
        assert stream.raw_pending[0].payload == b"PO-SESS-EV3"
        with pytest.raises(Exception, match="no EventVerifier"):
            stream.take()

    def test_unexposed_event_subscription_denied(self, full_gateway):
        _, gateway = full_gateway
        with pytest.raises(AccessDeniedError, match="event"):
            gateway.subscribe(TL_CHAINCODE_ADDR, "ShipmentCreated")

    def test_close_stops_delivery_and_prunes_source(self, full_gateway):
        scenario, gateway = full_gateway
        stream = gateway.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        scenario.stl_seller_app.create_shipment("PO-SESS-EV4", "goods")
        issue_bl(scenario, "PO-SESS-EV4")
        assert stream.pending_count == 1
        stream.close()
        scenario.stl_seller_app.create_shipment("PO-SESS-EV5", "goods")
        issue_bl(scenario, "PO-SESS-EV5")
        assert stream.pending_count == 1  # no further delivery
        assert scenario.stl_relay.stats.events_published == 1

    def test_session_close_tears_down_all_streams(self, full_gateway):
        scenario, gateway = full_gateway
        with gateway.session() as session:
            first = session.subscribe(
                TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
            )
            second = session.subscribe(
                TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
            )
            assert len(session.streams) == 2
        assert first.closed and second.closed
        scenario.stl_seller_app.create_shipment("PO-SESS-EV6", "goods")
        issue_bl(scenario, "PO-SESS-EV6")
        assert first.pending_count == 0 and second.pending_count == 0


class TestSessionMultiplexing:
    def test_all_three_primitives_over_one_session(self, full_gateway):
        """The §2 triad — query, transact, subscribe — through one session
        sharing auth, relay chain, and policy cache."""
        scenario, gateway = full_gateway
        session = gateway.default_session
        stream = session.subscribe(
            TL_CHAINCODE_ADDR, "BillOfLadingIssued", verifier=bl_verifier()
        )
        # transact (CMDAC policy via the shared cache)
        created = session.transact(CREATE_ADDR).with_args(
            "PO-SESS-MUX", "goods"
        ).execute()
        issue_bl(scenario, "PO-SESS-MUX")
        # query the document the transaction created
        fetched = session.query(GET_BL_ADDR).with_args("PO-SESS-MUX").execute()
        assert json.loads(fetched.data)["po_ref"] == "PO-SESS-MUX"
        # subscribe saw the commit, and verification upgrades it
        event = stream.take()
        assert event.notification.payload == b"PO-SESS-MUX"
        assert json.loads(event.data)["bl_id"] == "BL-PO-SESS-MUX"
        assert created.tx_id != event.notification.tx_id  # create vs issue

    def test_mixed_ambient_dispatch(self, full_gateway):
        scenario, gateway = full_gateway
        query_handle = gateway.query(GET_BL_ADDR).with_args("PO-NONE").submit()
        tx_handle = (
            gateway.transact(CREATE_ADDR)
            .with_args("PO-SESS-DISPATCH", "goods")
            .with_policy(POLICY)
            .submit()
        )
        resolved = gateway.dispatch()
        assert set(resolved) == {query_handle, tx_handle}
        assert all(handle.done() for handle in resolved)
        assert isinstance(query_handle.exception(), RelayError)  # no such B/L
        assert tx_handle.result().tx_id
        assert gateway.dispatch() == []
