"""AsyncGateway: the async-native entry point over the session machinery.

The async surface must be a *view* of the sync protocol, not a second
implementation: every awaited call goes through the same prepared-query /
finalize halves, so these tests assert full proof verification on the
results and protocol-typed failures on the error paths — including with
the relay living on a real socket, the deployment the async shape exists
for.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import AsyncGateway, InteropGateway
from repro.errors import ProofError, RelayError, ReproError
from repro.interop.transactions import enable_remote_transactions
from repro.net import RelayServer

BL_ADDRESS = "stl/trade-logistics/TradeLensCC/GetBillOfLading"
CREATE_ADDR = "stl/trade-logistics/TradeLensCC/CreateShipment"
POLICY = "AND(org:seller-org, org:carrier-org)"


def run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


@pytest.fixture()
def async_gateway(shipped_scenario):
    scenario, po_ref = shipped_scenario
    gateway = InteropGateway.from_client(scenario.swt_seller_client.interop_client)
    return AsyncGateway(gateway), scenario, po_ref


class TestAQuery:
    def test_single_query_verifies_proof(self, async_gateway):
        agw, _, po_ref = async_gateway

        result = run(agw.aquery(BL_ADDRESS, [po_ref], policy=POLICY))
        assert b"BL-" in result.data
        assert len(result.proof.attestations) >= 2

    def test_concurrent_queries_overlap_on_one_loop(self, async_gateway):
        agw, _, po_ref = async_gateway

        async def scenario():
            return await asyncio.gather(
                *[agw.aquery(BL_ADDRESS, [po_ref], policy=POLICY) for _ in range(4)]
            )

        results = run(scenario())
        assert len(results) == 4
        assert all(b"BL-" in result.data for result in results)

    def test_failure_stays_typed(self, async_gateway):
        agw, _, po_ref = async_gateway
        with pytest.raises(RelayError):
            run(agw.aquery("stl/trade-logistics/NoSuchCC/Get", [po_ref],
                           policy=POLICY))

    def test_tampered_reply_raises_proof_error(self, async_gateway):
        agw, scenario, po_ref = async_gateway
        from repro.testing import ChaosEndpoint, FaultPlan

        registry = scenario.discovery
        (endpoint,) = registry.lookup("stl")
        chaos = ChaosEndpoint(endpoint, FaultPlan.single("tamper-proof", seed=11))
        registry.unregister("stl", endpoint)
        registry.register("stl", chaos)
        try:
            with pytest.raises(ReproError) as excinfo:
                run(agw.aquery(BL_ADDRESS, [po_ref], policy=POLICY))
            assert isinstance(excinfo.value, (ProofError, ReproError))
        finally:
            registry.unregister("stl", chaos)
            registry.register("stl", endpoint)


class TestAGather:
    def test_batch_travels_as_one_envelope(self, async_gateway):
        agw, scenario, po_ref = async_gateway
        batches_before = scenario.stl_relay.stats.batches_served

        results = run(agw.agather([(BL_ADDRESS, [po_ref])] * 5, policy=POLICY))
        assert len(results) == 5
        assert all(b"BL-" in result.data for result in results)
        assert scenario.stl_relay.stats.batches_served == batches_before + 1


class TestATransact:
    def test_transact_attests_commit(self, shipped_scenario):
        scenario, _ = shipped_scenario
        invoker = scenario.stl.org("seller-org").enroll(
            "interop-invoker", role="client"
        )
        enable_remote_transactions(
            scenario.stl, scenario.stl_relay, invoker, discovery=scenario.discovery
        )
        stl_admin = scenario.stl.org("seller-org").member("admin")
        scenario.stl.gateway.submit(
            stl_admin,
            "ecc",
            "AddAccessRule",
            ["swt", "seller-bank-org", "TradeLensCC", "CreateShipment"],
        )
        agw = AsyncGateway(
            InteropGateway.from_client(scenario.swt_seller_client.interop_client)
        )
        outcome = run(
            agw.atransact(CREATE_ADDR, ["PO-ASYNC-1", "async goods"], policy=POLICY)
        )
        assert outcome.tx_id
        block = scenario.stl.peers[0].ledger.block(outcome.block_number)
        assert any(tx.tx_id == outcome.tx_id for tx in block.transactions)


class TestOverSockets:
    def test_async_queries_over_a_real_relay_server(self, async_gateway):
        """The shape the async surface exists for: an asyncio app talking
        to a relay that lives on a socket."""
        agw, scenario, po_ref = async_gateway
        registry = scenario.discovery
        original = registry.lookup("stl")
        with RelayServer(scenario.stl_relay, max_workers=4) as server:
            for endpoint in original:
                registry.unregister("stl", endpoint)
            registry.register("stl", server.endpoint(timeout=10.0))
            try:
                async def scenario_coro():
                    single = await agw.aquery(BL_ADDRESS, [po_ref], policy=POLICY)
                    batch = await agw.agather(
                        [(BL_ADDRESS, [po_ref])] * 3, policy=POLICY
                    )
                    return single, batch

                single, batch = run(scenario_coro())
                assert b"BL-" in single.data
                assert len(batch) == 3
                assert server.stats.frames_served >= 2
            finally:
                for endpoint in list(registry.lookup("stl")):
                    registry.unregister("stl", endpoint)
                for endpoint in original:
                    registry.register("stl", endpoint)
