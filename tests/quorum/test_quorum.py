"""Tests for the Quorum-like substrate."""

from __future__ import annotations

import pytest

from repro.errors import EVMError, LedgerError, MembershipError
from repro.quorum import DocumentRegistryContract, QuorumNetwork
from repro.quorum.contracts import CallContext


@pytest.fixture()
def network():
    net = QuorumNetwork("quorum-test")
    net.deploy_contract(DocumentRegistryContract())
    net.add_peer("peer1", "org-a")
    net.add_peer("peer2", "org-b")
    net.add_peer("peer3", "org-a")
    return net


@pytest.fixture()
def admin(network):
    return network.enroll_client("admin", "org-a")


class TestTransactionsAndBlocks:
    def test_register_and_get(self, network, admin):
        network.submit_transaction(
            admin, "document-registry", "RegisterDocument", ["D1", '{"x": 1}']
        )
        peer = network.peers[0]
        result = network.view(peer, admin, "document-registry", "GetDocument", ["D1"])
        assert result == b'{"x": 1}'

    def test_state_replicated_to_all_peers(self, network, admin):
        network.submit_transaction(
            admin, "document-registry", "RegisterDocument", ["D1", "{}"]
        )
        snapshots = [
            peer.storage_snapshot("document-registry") for peer in network.peers
        ]
        assert all(snapshot == snapshots[0] for snapshot in snapshots)
        assert all(peer.block_height == 1 for peer in network.peers)

    def test_proposer_rotates(self, network, admin):
        for index in range(3):
            network.submit_transaction(
                admin, "document-registry", "RegisterDocument", [f"D{index}", "{}"]
            )
        proposers = [block.proposer for block in network.blocks]
        assert len(set(proposers)) == 3

    def test_hash_chain_links(self, network, admin):
        for index in range(3):
            network.submit_transaction(
                admin, "document-registry", "RegisterDocument", [f"D{index}", "{}"]
            )
        for previous, current in zip(network.blocks, network.blocks[1:]):
            assert current.previous_hash == previous.hash()

    def test_duplicate_registration_rejected(self, network, admin):
        network.submit_transaction(
            admin, "document-registry", "RegisterDocument", ["D1", "{}"]
        )
        with pytest.raises(EVMError, match="already registered"):
            network.submit_transaction(
                admin, "document-registry", "RegisterDocument", ["D1", "{}"]
            )

    def test_unknown_contract(self, network, admin):
        with pytest.raises(EVMError, match="no contract"):
            network.submit_transaction(admin, "ghost", "Do", [])

    def test_block_replay_rejected_by_peer(self, network, admin):
        network.submit_transaction(
            admin, "document-registry", "RegisterDocument", ["D1", "{}"]
        )
        with pytest.raises(LedgerError, match="does not extend"):
            network.peers[0].apply_block(network.blocks[0])


class TestViews:
    def test_view_does_not_mutate(self, network, admin):
        peer = network.peers[0]
        with pytest.raises(EVMError):
            network.view(peer, admin, "document-registry", "GetDocument", ["missing"])
        assert peer.storage_snapshot("document-registry") == {}

    def test_list_documents(self, network, admin):
        for doc in ("B", "A"):
            network.submit_transaction(
                admin, "document-registry", "RegisterDocument", [doc, "{}"]
            )
        result = network.view(
            network.peers[0], admin, "document-registry", "ListDocuments", []
        )
        assert result == b"A,B"

    def test_view_args_validated(self, network, admin):
        with pytest.raises(EVMError, match="expects"):
            network.view(
                network.peers[0], admin, "document-registry", "GetDocument", ["a", "b"]
            )

    def test_contract_context_passed(self):
        contract = DocumentRegistryContract()
        storage: dict[str, bytes] = {}
        ctx = CallContext(sender="alice.org", sender_org="org", timestamp=5.0)
        contract.execute("RegisterDocument", ["D", "{}"], storage, ctx)
        assert b"alice.org" in storage["meta/D"]


class TestMembership:
    def test_client_enrollment_requires_org(self, network):
        with pytest.raises(MembershipError):
            network.enroll_client("c", "no-such-org")

    def test_peer_lookup(self, network):
        assert network.peer("peer1").identity.name == "peer1"
        assert network.peer("peer2.org-b").org == "org-b"
        with pytest.raises(MembershipError):
            network.peer("ghost")

    def test_export_config_groups_by_org(self, network):
        config = network.export_config()
        assert config.platform == "quorum"
        orgs = {org.org_id: org for org in config.organizations}
        assert set(orgs) == {"org-a", "org-b"}
        assert len(orgs["org-a"].peers) == 2
        assert len(orgs["org-b"].peers) == 1
