"""Tests for varint and zig-zag encodings."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError
from repro.wire.varint import (
    decode_varint,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (300, b"\xac\x02"),  # protobuf documentation example
            (2**64 - 1, b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert encode_varint(value) == expected
        decoded, offset = decode_varint(expected)
        assert decoded == value
        assert offset == len(expected)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(2**64)

    def test_truncated_rejected(self):
        with pytest.raises(DecodeError):
            decode_varint(b"\x80")

    def test_overlong_rejected(self):
        with pytest.raises(DecodeError):
            decode_varint(b"\x80" * 11)

    def test_decode_at_offset(self):
        data = b"\xff" + encode_varint(300)
        value, offset = decode_varint(data, 1)
        assert value == 300
        assert offset == len(data)

    @given(value=st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        decoded, offset = decode_varint(encode_varint(value))
        assert decoded == value


class TestZigZag:
    @pytest.mark.parametrize(
        "signed,unsigned",
        [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (2147483647, 4294967294)],
    )
    def test_known_mappings(self, signed, unsigned):
        assert zigzag_encode(signed) == unsigned
        assert zigzag_decode(unsigned) == signed

    def test_extremes(self):
        lo, hi = -(1 << 63), (1 << 63) - 1
        assert zigzag_decode(zigzag_encode(lo)) == lo
        assert zigzag_decode(zigzag_encode(hi)) == hi

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            zigzag_encode(1 << 63)

    @given(value=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_property(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value
