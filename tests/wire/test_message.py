"""Tests for the declarative message-schema system."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError, EncodeError
from repro.wire import (
    BoolField,
    BytesField,
    DoubleField,
    MapField,
    Message,
    MessageField,
    RepeatedBytesField,
    RepeatedMessageField,
    RepeatedStringField,
    SintField,
    StringField,
    UintField,
)


class Inner(Message):
    tag = StringField(1)
    count = UintField(2)


class Everything(Message):
    uint_val = UintField(1)
    sint_val = SintField(2)
    bool_val = BoolField(3)
    double_val = DoubleField(4)
    string_val = StringField(5)
    bytes_val = BytesField(6)
    inner = MessageField(7, Inner)
    strings = RepeatedStringField(8)
    blobs = RepeatedBytesField(9)
    inners = RepeatedMessageField(10, Inner)
    labels = MapField(11)


def full_message() -> Everything:
    return Everything(
        uint_val=42,
        sint_val=-7,
        bool_val=True,
        double_val=3.25,
        string_val="héllo",
        bytes_val=b"\x00\x01\x02",
        inner=Inner(tag="in", count=1),
        strings=["a", "b"],
        blobs=[b"x", b"yz"],
        inners=[Inner(tag="r0", count=0), Inner(tag="r1", count=9)],
        labels={"k1": "v1", "k2": "v2"},
    )


class TestRoundtrip:
    def test_full_roundtrip(self):
        message = full_message()
        assert Everything.decode(message.encode()) == message

    def test_empty_message_encodes_empty(self):
        assert Everything().encode() == b""

    def test_defaults_skipped_on_wire(self):
        only_one = Everything(uint_val=5)
        data = only_one.encode()
        assert len(data) == 2  # tag byte + value byte
        assert Everything.decode(data) == only_one

    def test_deterministic_encoding(self):
        assert full_message().encode() == full_message().encode()

    def test_map_encoding_order_independent(self):
        a = Everything(labels={"x": "1", "y": "2"})
        b = Everything(labels={"y": "2", "x": "1"})
        assert a.encode() == b.encode()

    def test_negative_sint(self):
        message = Everything(sint_val=-(10**12))
        assert Everything.decode(message.encode()).sint_val == -(10**12)

    def test_double_precision(self):
        message = Everything(double_val=1.0 / 3.0)
        assert Everything.decode(message.encode()).double_val == 1.0 / 3.0

    def test_nested_none_by_default(self):
        assert Everything().inner is None

    def test_repr_mentions_set_fields_only(self):
        text = repr(Everything(uint_val=9))
        assert "uint_val=9" in text
        assert "sint_val" not in text

    def test_to_dict(self):
        data = full_message().to_dict()
        assert data["bytes_val"] == "000102"
        assert data["inner"]["tag"] == "in"
        assert data["labels"] == {"k1": "v1", "k2": "v2"}


class TestValidation:
    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="no field"):
            Everything(nope=1)

    def test_uint_rejects_negative(self):
        with pytest.raises(EncodeError):
            Everything(uint_val=-1)

    def test_uint_rejects_bool(self):
        with pytest.raises(EncodeError):
            Everything(uint_val=True)

    def test_string_rejects_bytes(self):
        with pytest.raises(EncodeError):
            Everything(string_val=b"bytes")

    def test_bytes_rejects_str(self):
        with pytest.raises(EncodeError):
            Everything(bytes_val="str")

    def test_nested_type_checked(self):
        with pytest.raises(EncodeError):
            Everything(inner="not a message")

    def test_repeated_item_type_checked(self):
        with pytest.raises(EncodeError):
            Everything(strings=[1, 2])

    def test_map_type_checked(self):
        with pytest.raises(EncodeError):
            Everything(labels={"k": 1})

    def test_duplicate_field_numbers_rejected(self):
        with pytest.raises(TypeError, match="duplicate field number"):

            class Broken(Message):
                a = UintField(1)
                b = StringField(1)


class TestForwardCompatibility:
    def test_unknown_fields_preserved(self):
        class V2(Message):
            known = UintField(1)
            extra = StringField(15)

        class V1(Message):
            known = UintField(1)

        original = V2(known=3, extra="future data")
        relayed = V1.decode(original.encode())
        assert relayed.known == 3
        # The old reader re-emits bytes the new reader can still parse fully.
        reparsed = V2.decode(relayed.encode())
        assert reparsed == original

    def test_decode_errors_on_truncation(self):
        data = full_message().encode()
        with pytest.raises(DecodeError):
            Everything.decode(data[:-1])

    def test_decode_rejects_field_number_zero(self):
        with pytest.raises(DecodeError):
            Everything.decode(b"\x00\x01")

    def test_decode_rejects_bad_wire_type(self):
        # field 1 with wire type 5 (unsupported)
        with pytest.raises(DecodeError):
            Everything.decode(bytes([(1 << 3) | 5]))

    def test_wrong_wire_type_for_known_field(self):
        # field 1 (uint) sent as length-delimited
        payload = bytes([(1 << 3) | 2, 1, 0])
        with pytest.raises(DecodeError):
            Everything.decode(payload)

    def test_invalid_utf8_rejected(self):
        payload = bytes([(5 << 3) | 2, 2, 0xFF, 0xFE])
        with pytest.raises(DecodeError):
            Everything.decode(payload)


simple_messages = st.builds(
    Everything,
    uint_val=st.integers(0, 2**64 - 1),
    sint_val=st.integers(-(2**63), 2**63 - 1),
    bool_val=st.booleans(),
    string_val=st.text(max_size=64),
    bytes_val=st.binary(max_size=64),
    strings=st.lists(st.text(max_size=16), max_size=8),
    blobs=st.lists(st.binary(max_size=16), max_size=8),
    labels=st.dictionaries(st.text(max_size=8), st.text(max_size=8), max_size=6),
)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(message=simple_messages)
    def test_roundtrip_property(self, message):
        assert Everything.decode(message.encode()) == message

    @settings(max_examples=50, deadline=None)
    @given(message=simple_messages)
    def test_double_encode_stable(self, message):
        once = message.encode()
        assert Everything.decode(once).encode() == once
