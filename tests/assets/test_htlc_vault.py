"""Unit tests for the platform-neutral HTLC vault semantics."""

from __future__ import annotations

import json

import pytest

from repro.assets.htlc import (
    STATE_AVAILABLE,
    STATE_CLAIMED,
    STATE_LOCKED,
    STATE_REFUNDED,
    HtlcVault,
    make_hashlock,
    new_preimage,
)
from repro.errors import AssetError


class DictStorage:
    def __init__(self) -> None:
        self.data: dict[str, bytes] = {}

    def get(self, key):
        return self.data.get(key)

    def put(self, key, value):
        self.data[key] = value


@pytest.fixture()
def vault():
    vault = HtlcVault(DictStorage())
    vault.issue("GOLD-1", "alice", "{}")
    return vault


PREIMAGE = new_preimage()
HASHLOCK = make_hashlock(PREIMAGE).hex()


def lock_record(vault, asset_id="GOLD-1") -> dict:
    return json.loads(vault.get_lock(asset_id))


class TestIssueAndViews:
    def test_issue_and_get_asset(self, vault):
        assert json.loads(vault.get_asset("GOLD-1"))["owner"] == "alice"

    def test_double_issue_rejected(self, vault):
        with pytest.raises(AssetError, match="already issued"):
            vault.issue("GOLD-1", "mallory", "{}")

    def test_unissued_asset_errors(self, vault):
        with pytest.raises(AssetError, match="no asset"):
            vault.get_lock("GHOST")

    def test_lock_record_available_before_any_lock(self, vault):
        assert lock_record(vault)["state"] == STATE_AVAILABLE


class TestLock:
    def test_lock_writes_record(self, vault):
        vault.lock("GOLD-1", "alice", "bob", HASHLOCK, timeout=200.0, now=100.0)
        record = lock_record(vault)
        assert record["state"] == STATE_LOCKED
        assert record["recipient"] == "bob"
        assert record["hashlock"] == HASHLOCK
        assert record["timeout"] == 200.0

    def test_only_owner_may_lock(self, vault):
        with pytest.raises(AssetError, match="owned by"):
            vault.lock("GOLD-1", "mallory", "bob", HASHLOCK, 200.0, 100.0)

    def test_double_lock_rejected(self, vault):
        vault.lock("GOLD-1", "alice", "bob", HASHLOCK, 200.0, 100.0)
        with pytest.raises(AssetError, match="already locked"):
            vault.lock("GOLD-1", "alice", "carol", HASHLOCK, 300.0, 100.0)

    def test_past_timeout_rejected(self, vault):
        with pytest.raises(AssetError, match="not in the future"):
            vault.lock("GOLD-1", "alice", "bob", HASHLOCK, 100.0, 100.0)

    def test_malformed_hashlock_rejected(self, vault):
        with pytest.raises(AssetError, match="32-byte"):
            vault.lock("GOLD-1", "alice", "bob", "abcd", 200.0, 100.0)


class TestClaim:
    @pytest.fixture()
    def locked(self, vault):
        vault.lock("GOLD-1", "alice", "bob", HASHLOCK, timeout=200.0, now=100.0)
        return vault

    def test_claim_transfers_ownership_and_reveals_preimage(self, locked):
        locked.claim("GOLD-1", "bob", PREIMAGE.hex(), now=150.0)
        assert json.loads(locked.get_asset("GOLD-1"))["owner"] == "bob"
        record = lock_record(locked)
        assert record["state"] == STATE_CLAIMED
        assert record["preimage"] == PREIMAGE.hex()

    def test_wrong_preimage_rejected(self, locked):
        with pytest.raises(AssetError, match="does not hash"):
            locked.claim("GOLD-1", "bob", new_preimage().hex(), now=150.0)

    def test_only_recipient_may_claim(self, locked):
        with pytest.raises(AssetError, match="locked for"):
            locked.claim("GOLD-1", "mallory", PREIMAGE.hex(), now=150.0)

    def test_claim_at_or_after_timeout_rejected(self, locked):
        with pytest.raises(AssetError, match="claim window"):
            locked.claim("GOLD-1", "bob", PREIMAGE.hex(), now=200.0)

    def test_claimed_asset_lockable_by_new_owner(self, locked):
        locked.claim("GOLD-1", "bob", PREIMAGE.hex(), now=150.0)
        locked.lock("GOLD-1", "bob", "carol", HASHLOCK, 400.0, 210.0)
        assert lock_record(locked)["state"] == STATE_LOCKED


class TestRefund:
    @pytest.fixture()
    def locked(self, vault):
        vault.lock("GOLD-1", "alice", "bob", HASHLOCK, timeout=200.0, now=100.0)
        return vault

    def test_refund_after_timeout(self, locked):
        locked.refund("GOLD-1", "alice", now=200.0)
        assert lock_record(locked)["state"] == STATE_REFUNDED
        assert json.loads(locked.get_asset("GOLD-1"))["owner"] == "alice"

    def test_refund_before_timeout_rejected(self, locked):
        with pytest.raises(AssetError, match="refundable only from"):
            locked.refund("GOLD-1", "alice", now=199.9)

    def test_only_locker_may_refund(self, locked):
        with pytest.raises(AssetError, match="placed by"):
            locked.refund("GOLD-1", "bob", now=250.0)

    def test_refunded_lock_not_claimable(self, locked):
        locked.refund("GOLD-1", "alice", now=200.0)
        with pytest.raises(AssetError, match="not locked"):
            locked.claim("GOLD-1", "bob", PREIMAGE.hex(), now=250.0)


class TestClaimRefundMutualExclusion:
    """The atomicity core: at no ledger time are both paths open."""

    @pytest.mark.parametrize("now", [100.0, 150.0, 199.999, 200.0, 201.0, 1e9])
    def test_exactly_one_path_open_at_any_time(self, vault, now):
        vault.lock("GOLD-1", "alice", "bob", HASHLOCK, timeout=200.0, now=100.0)
        # A successful first verb settles the lock, so the second verb must
        # fail either way — exactly one of the two may ever go through.
        claimable = True
        refundable = True
        try:
            vault.claim("GOLD-1", "bob", PREIMAGE.hex(), now=now)
        except AssetError:
            claimable = False
        try:
            vault.refund("GOLD-1", "alice", now=now)
        except AssetError:
            refundable = False
        assert claimable != refundable, (
            f"at now={now} claimable={claimable} refundable={refundable}: "
            f"claim and refund windows must partition time"
        )
