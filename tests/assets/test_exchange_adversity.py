"""Asset exchange under an adversarial relay (§4–§5 extended to value).

Two attack families against the HTLC choreography:

- a malicious relay tampering the *counter-lock proof*: the initiator
  must abort before revealing the preimage, and both escrows unwind —
  the trust argument ("only attestation proofs are believed") is what
  keeps a lying relay from inducing a one-sided transfer;
- a relay losing the *claim ack* (crash after execution, or dropping the
  request outright): the coordinator recovers from ledger truth without
  ever double-claiming.
"""

from __future__ import annotations

import pytest

from repro.assets import AssetExchangeCoordinator, AssetSpec
from repro.assets.coordinator import ExchangeState
from repro.errors import ReproError
from repro.proto.messages import (
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_QUERY_REQUEST,
)
from repro.testing import (
    FAULT_CRASH_RESTART,
    FAULT_DROP,
    FAULT_TAMPER_PROOF,
    FaultPlan,
    FaultSpec,
    chaos_topology,
)

# Mirrors the exchange_scenario fixture wiring (tests/assets/conftest.py).
OFFER_ADDRESS = "fabnet/trade/assetscc"
ASK_ADDRESS = "quornet/state/asset-vault"
OFFER_POLICY = "AND(org:traders-org, org:audit-org)"
ASK_POLICY = "AND(org:op-org-1, org:op-org-2)"


def make_coordinator(scenario) -> AssetExchangeCoordinator:
    return AssetExchangeCoordinator(
        initiator=scenario.alice_client,
        responder=scenario.bob_client,
        offer=AssetSpec.parse(OFFER_ADDRESS, "GOLD-1"),
        ask=AssetSpec.parse(ASK_ADDRESS, "OIL-9"),
        offer_policy=OFFER_POLICY,
        ask_policy=ASK_POLICY,
    )


def quorum_claims(scenario) -> int:
    return sum(
        1
        for block in scenario.quorum.blocks
        for tx in block.transactions
        if tx.function == "ClaimAsset"
    )


class TestTamperedCounterLockProof:
    def test_initiator_aborts_before_claim_and_both_vaults_refund(self, exchange_scenario):
        """A relay forging the counter-lock confirmation cannot make the
        initiator reveal: verification fails, nothing is ever claimed,
        and after the timelocks both assets return to their owners."""
        scenario = exchange_scenario
        coordinator = make_coordinator(scenario)
        plan = FaultPlan(
            31337,
            [
                FaultSpec(
                    kind=FAULT_TAMPER_PROOF,
                    only_kinds=frozenset({MSG_KIND_QUERY_REQUEST}),
                )
            ],
            name="tamper-counter-lock-proof",
        )
        with chaos_topology(
            scenario.registry,
            ["quornet"],
            plan,
            clock=scenario.clock,
            redundant=False,
        ) as wrappers:
            coordinator.lock_offer()
            coordinator.verify_offer()  # offer proof comes from fabnet: clean
            coordinator.lock_counter()
            with pytest.raises(ReproError):
                coordinator.verify_counter()  # tampered proof must not pass
            assert wrappers["quornet"].injected[FAULT_TAMPER_PROOF] >= 1
            assert coordinator.state is ExchangeState.FAILED
            # The preimage never left the initiator: nothing is claimable.
            assert coordinator.result.preimage is None
            assert coordinator.result.counter_claim is None
            assert coordinator.result.offer_claim is None

            # Both escrows unwind once their timelocks expire.
            scenario.clock.advance(601.0)
            refunds = coordinator.refund()
        assert len(refunds) == 2
        assert coordinator.state is ExchangeState.REFUNDED
        assert scenario.gold_owner() == "alice@fabnet"
        assert scenario.oil_owner() == "bob@quornet"
        assert quorum_claims(scenario) == 0


class TestLostClaimAck:
    def test_crash_after_claim_recovers_without_double_claim(self, exchange_scenario):
        """The relay executes the claim but crashes before replying: the
        coordinator reads the lock back, sees its own preimage revealed,
        and completes — exactly one claim on the ledger."""
        scenario = exchange_scenario
        coordinator = make_coordinator(scenario)
        plan = FaultPlan(
            2024,
            [
                FaultSpec(
                    kind=FAULT_CRASH_RESTART,
                    only_kinds=frozenset({MSG_KIND_ASSET_CLAIM}),
                    max_injections=1,
                )
            ],
            name="crash-on-claim",
        )
        with chaos_topology(
            scenario.registry,
            ["quornet"],
            plan,
            clock=scenario.clock,
            redundant=False,
        ) as wrappers:
            result = coordinator.run()
            assert wrappers["quornet"].injected[FAULT_CRASH_RESTART] == 1
        assert result.completed
        assert result.counter_claim is not None
        assert scenario.gold_owner() == "bob@quornet"
        assert scenario.oil_owner() == "alice@fabnet"
        assert quorum_claims(scenario) == 1  # recovered, never re-claimed

    def test_dropped_claim_request_is_reissued_exactly_once(self, exchange_scenario):
        """The claim request itself is censored: the readback shows the
        escrow still locked, so re-issuing is safe — and happens once."""
        scenario = exchange_scenario
        coordinator = make_coordinator(scenario)
        plan = FaultPlan(
            555,
            [
                FaultSpec(
                    kind=FAULT_DROP,
                    only_kinds=frozenset({MSG_KIND_ASSET_CLAIM}),
                    max_injections=1,
                )
            ],
            name="drop-claim-request",
        )
        with chaos_topology(
            scenario.registry,
            ["quornet"],
            plan,
            clock=scenario.clock,
            redundant=False,
        ) as wrappers:
            result = coordinator.run()
            assert wrappers["quornet"].injected[FAULT_DROP] == 1
        assert result.completed
        assert scenario.gold_owner() == "bob@quornet"
        assert scenario.oil_owner() == "alice@fabnet"
        assert quorum_claims(scenario) == 1
