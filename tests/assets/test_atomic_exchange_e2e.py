"""End-to-end atomic exchange: Fabric↔Quorum through two relays.

The acceptance pair for the HTLC subsystem:

- the happy path completes with both legs claimed using the revealed
  preimage, ownership swapped on both ledgers;
- the timelock path proves safety: when the counterparty never claims,
  the initiator (and responder) refund after their timeouts and neither
  ledger double-spends.
"""

from __future__ import annotations

import pytest

from repro.api import InteropGateway
from repro.assets import ExchangeState
from repro.errors import AccessDeniedError, AssetError
from repro.proto.messages import (
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_ASSET_UNLOCK,
    PROTOCOL_VERSION,
    STATUS_ACCESS_DENIED,
    STATUS_OK,
    AssetCommandMsg,
    NetworkAddressMsg,
)

OFFER_ADDRESS = "fabnet/trade/assetscc"
ASK_ADDRESS = "quornet/state/asset-vault"
OFFER_POLICY = "AND(org:traders-org, org:audit-org)"
ASK_POLICY = "AND(org:op-org-1, org:op-org-2)"


def build_exchange(scenario, offer_timeout=600.0, counter_timeout=300.0, metrics=None):
    gateway = InteropGateway.from_client(scenario.alice_client)
    builder = (
        gateway.exchange()
        .offer(OFFER_ADDRESS, "GOLD-1")
        .ask(ASK_ADDRESS, "OIL-9")
        .with_counterparty(scenario.bob_client)
        .with_timeouts(offer=offer_timeout, counter=counter_timeout)
        .with_policies(offer=OFFER_POLICY, ask=ASK_POLICY)
    )
    if metrics is not None:
        builder.with_metrics(metrics)
    return builder.build()


class TestHappyPath:
    def test_full_exchange_swaps_ownership_atomically(self, exchange_scenario):
        scenario = exchange_scenario
        assert scenario.gold_owner() == "alice@fabnet"
        assert scenario.oil_owner() == "bob@quornet"

        exchange = build_exchange(scenario)
        result = exchange.run()

        assert result.completed
        assert result.state is ExchangeState.COMPLETED
        # Ownership swapped on both heterogeneous ledgers.
        assert scenario.gold_owner() == "bob@quornet"
        assert scenario.oil_owner() == "alice@fabnet"
        # Both claims carry the same revealed preimage (on-ledger public).
        assert result.counter_claim.preimage == result.preimage
        assert result.offer_claim.preimage == result.preimage
        # Commands really crossed the relay envelope protocol on both sides.
        assert scenario.fabric_relay.stats.asset_commands_served == 2  # lock+claim
        assert scenario.quorum_relay.stats.asset_commands_served == 3  # lock+claim+status
        assert scenario.fabric_relay.stats.asset_commands_sent >= 2
        assert scenario.quorum_relay.stats.asset_commands_sent >= 3
        # Both side-effecting commits are attested with real tx coordinates.
        assert result.offer_lock.tx_id and result.offer_claim.tx_id
        assert result.counter_lock.tx_id and result.counter_claim.tx_id

    def test_lock_confirmations_are_proof_verified(self, exchange_scenario):
        """The responder's and initiator's lock checks ride the query
        proof plane: each side's relay serves a GetLock query under the
        verification policy before any irreversible step."""
        scenario = exchange_scenario
        fabric_queries_before = scenario.fabric_relay.stats.requests_served
        quorum_queries_before = scenario.quorum_relay.stats.requests_served
        exchange = build_exchange(scenario)
        exchange.lock_offer()
        record = exchange.verify_offer()
        assert record["recipient"] == "bob@quornet"
        assert scenario.fabric_relay.stats.requests_served > fabric_queries_before + 1
        exchange.lock_counter()
        record = exchange.verify_counter()
        assert record["hashlock"] == exchange.hashlock.hex()
        assert scenario.quorum_relay.stats.requests_served > quorum_queries_before + 1


class TestTimelockPath:
    def test_counterparty_never_claims_initiator_refunds(self, exchange_scenario):
        """Alice locks, Bob counter-locks, Alice walks away: after the
        timelocks expire both parties refund and no ledger double-spends."""
        scenario = exchange_scenario
        exchange = build_exchange(scenario, offer_timeout=600.0, counter_timeout=300.0)
        exchange.lock_offer()
        exchange.verify_offer()
        exchange.lock_counter()
        # Neither claim happened. Too early to refund: claim windows open.
        with pytest.raises(AssetError, match="refused"):
            exchange.refund()
        assert exchange.state is ExchangeState.COUNTER_LOCKED

        scenario.clock.advance(601.0)  # past both timelocks
        acks = exchange.refund()
        assert exchange.state is ExchangeState.REFUNDED
        assert len(acks) == 2
        assert all(ack.status == STATUS_OK for ack in acks)

        # Nobody lost an asset; nothing was spent twice.
        assert scenario.gold_owner() == "alice@fabnet"
        assert scenario.oil_owner() == "bob@quornet"

        # Refunded locks are dead: the preimage (even the right one!) can
        # no longer claim either leg — no double spend is possible.
        for client, spec in (
            (scenario.bob_client, exchange.offer),
            (scenario.alice_client, exchange.ask),
        ):
            ack = client.relay.remote_asset(
                MSG_KIND_ASSET_CLAIM,
                exchange._command(client, spec, preimage=exchange.preimage),
            )
            assert ack.status != STATUS_OK
            assert "not locked" in ack.error

    def test_refund_only_after_timeout_never_alongside_claim(self, exchange_scenario):
        """The initiator cannot be cheated by a racing refund: while the
        counter claim window is open, the responder's refund is refused
        on-ledger; once Alice claims, the refund stays impossible."""
        scenario = exchange_scenario
        exchange = build_exchange(scenario)
        exchange.lock_offer()
        exchange.verify_offer()
        exchange.lock_counter()
        exchange.verify_counter()
        exchange.claim_counter()  # preimage revealed, OIL-9 now Alice's
        assert scenario.oil_owner() == "alice@fabnet"
        scenario.clock.advance(10_000.0)
        # The claimed counter-lock can never be refunded back.
        ack = scenario.bob_client.relay.remote_asset(
            MSG_KIND_ASSET_UNLOCK,
            exchange._command(scenario.bob_client, exchange.ask),
        )
        assert ack.status != STATUS_OK
        assert scenario.oil_owner() == "alice@fabnet"


class TestGovernance:
    def test_foreign_claim_without_rule_is_access_denied(self, exchange_scenario):
        """Dropping the ECC rule turns Bob's cross-network claim into a
        governance denial, not a transport failure."""
        scenario = exchange_scenario
        exchange = build_exchange(scenario)
        exchange.lock_offer()
        scenario.fabric.gateway.submit(
            scenario.fabric_admin,
            "ecc",
            "RemoveAccessRule",
            ["quornet", "op-org-1", "assetscc", "ClaimAsset"],
        )
        ack = scenario.bob_client.relay.remote_asset(
            MSG_KIND_ASSET_CLAIM,
            exchange._command(
                scenario.bob_client, exchange.offer, preimage=exchange.preimage
            ),
        )
        assert ack.status == STATUS_ACCESS_DENIED
        assert "exposure control" in ack.error

    def test_impersonated_requestor_rejected(self, exchange_scenario):
        """The certificate must vouch for the claimed requestor: a member
        of an accepted org presenting their OWN certificate under someone
        else's name cannot act as that party."""
        scenario = exchange_scenario
        exchange = build_exchange(scenario)
        exchange.lock_offer()  # GOLD-1 escrowed for bob@quornet
        mallory = scenario.quorum.enroll_client("mallory", "op-org-1")
        from repro.interop import InteropClient

        mallory_client = InteropClient(mallory, scenario.quorum_relay, "quornet")
        command = exchange._command(
            mallory_client, exchange.offer, preimage=exchange.preimage
        )
        command.auth.requestor = "bob"  # impersonate the rightful recipient
        ack = mallory_client.relay.remote_asset(MSG_KIND_ASSET_CLAIM, command)
        assert ack.status == STATUS_ACCESS_DENIED
        assert "common name" in ack.error
        assert scenario.gold_owner() == "alice@fabnet"

    def test_metrics_count_refused_asset_commands_as_errors(self, exchange_scenario):
        """A non-OK asset ack is an error to the metrics plane even though
        it travels as MSG_KIND_ASSET_ACK, not an error envelope."""
        from repro.api import MetricsInterceptor

        scenario = exchange_scenario
        metrics = MetricsInterceptor()
        scenario.fabric_relay.use(metrics)
        exchange = build_exchange(scenario)
        exchange.lock_offer()
        # Wrong preimage: the on-ledger claim is refused.
        ack = scenario.bob_client.relay.remote_asset(
            MSG_KIND_ASSET_CLAIM,
            exchange._command(
                scenario.bob_client, exchange.offer, preimage=b"\x00" * 32
            ),
        )
        assert ack.status != STATUS_OK
        detail = metrics.snapshot()["kinds"]["asset_claim"]
        assert detail["requests"] == 1
        assert detail["errors"] == 1

    def test_onledger_creator_binding_blocks_direct_impersonation(
        self, exchange_scenario
    ):
        """Bypassing the relay and port entirely, a local member still
        cannot act as another party: the vault binds every mutating verb
        to the transaction creator (the party itself, or an on-ledger
        authorized relay invoker)."""
        scenario = exchange_scenario
        from repro.errors import EndorsementError, ReproError

        mallory = scenario.fabric.org("traders-org").enroll(
            "mallory-local", role="client"
        )
        with pytest.raises(EndorsementError, match="may not act as"):
            scenario.fabric.gateway.submit(
                mallory,
                "assetscc",
                "LockAsset",
                ["GOLD-1", "alice@fabnet", "mallory-local@fabnet", "11" * 32, "1e9"],
            )
        assert scenario.gold_owner() == "alice@fabnet"
        quorum_mallory = scenario.quorum.enroll_client("quorum-mallory", "op-org-2")
        with pytest.raises(ReproError, match="may not act as"):
            scenario.quorum.submit_transaction(
                quorum_mallory,
                "asset-vault",
                "LockAsset",
                ["OIL-9", "bob@quornet", "quorum-mallory@quornet", "11" * 32, "1e9"],
            )
        assert scenario.oil_owner() == "bob@quornet"

    def test_local_member_may_self_submit(self, exchange_scenario):
        """The binding still allows a local member to escrow its OWN asset
        directly on-chain, without going through a relay."""
        scenario = exchange_scenario
        alice = scenario.fabric.org("traders-org").member("alice")
        result = scenario.fabric.gateway.submit(
            alice,
            "assetscc",
            "LockAsset",
            ["GOLD-1", "alice@fabnet", "bob@quornet", "22" * 32, "1e9"],
        )
        assert result.committed

    def test_spoofed_local_network_claim_rejected(self, exchange_scenario):
        """A foreign party claiming to be local (to skip the ECC) fails
        certificate validation against the local MSP roots."""
        scenario = exchange_scenario
        exchange = build_exchange(scenario)
        exchange.lock_offer()
        command = AssetCommandMsg(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network="fabnet", ledger="trade", contract="assetscc", function=""
            ),
            asset_id="GOLD-1",
            preimage=exchange.preimage,
            auth=exchange._auth(scenario.bob_client),
            nonce="spoof-1",
        )
        command.auth.requesting_network = "fabnet"  # lie about provenance
        ack = scenario.bob_client.relay.remote_asset(MSG_KIND_ASSET_CLAIM, command)
        assert ack.status == STATUS_ACCESS_DENIED
        assert scenario.gold_owner() == "alice@fabnet"

    def test_asset_command_to_non_asset_network_fails_cleanly(self, exchange_scenario):
        scenario = exchange_scenario
        from repro.errors import RelayError

        command = AssetCommandMsg(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network="quornet", ledger="state", contract="asset-vault", function=""
            ),
            asset_id="OIL-9",
            nonce="n-1",
        )
        # Strip the quorum driver's asset capability: the relay must answer
        # with a non-retryable error envelope, not crash or hang.
        scenario.quorum_relay._drivers["quornet"].supports_assets = False
        with pytest.raises(RelayError, match="no asset-capable driver"):
            scenario.alice_client.relay.remote_asset(MSG_KIND_ASSET_LOCK, command)


class TestExchangeMetrics:
    def test_completed_exchange_reports_through_shared_metrics(
        self, exchange_scenario
    ):
        """The two-party coordinator feeds the same ExchangeMetrics the
        cycles use, end to end through ``repro.ops``: one registry scrape
        shows the completed swap's transitions and its lock→claim latency."""
        from repro.assets.metrics import ExchangeMetrics
        from repro.ops.exporters import register_assets
        from repro.ops.metrics import MetricsRegistry
        from repro.testing import parse_exposition

        scenario = exchange_scenario
        metrics = ExchangeMetrics()
        registry = MetricsRegistry()
        register_assets(registry, metrics)

        exchange = build_exchange(scenario, metrics=metrics)
        result = exchange.run()
        assert result.completed

        snapshot = metrics.snapshot()
        assert snapshot["started"] == {"exchange": 1}
        assert snapshot["active"] == {"exchange": 0}
        assert snapshot["transitions"]["exchange:completed"] == 1
        [latency] = snapshot["latencies"]["exchange"]
        assert latency >= 0.0

        families = parse_exposition(registry.render())
        [active] = families["repro_assets_active"].samples
        assert active.label_dict() == {"kind": "exchange"}
        assert active.value == 0
        histogram = families["repro_assets_lock_to_claim_seconds"]
        [count] = [s for s in histogram.samples if s.name.endswith("_count")]
        assert count.value == 1

    def test_refunded_exchange_counts_both_legs(self, exchange_scenario):
        from repro.assets.metrics import ExchangeMetrics

        scenario = exchange_scenario
        metrics = ExchangeMetrics()
        exchange = build_exchange(scenario, metrics=metrics)
        exchange.lock_offer()
        exchange.verify_offer()
        exchange.lock_counter()
        scenario.clock.advance(601.0)
        exchange.refund()

        snapshot = metrics.snapshot()
        assert snapshot["refund_legs"] == {"exchange": 2}
        assert snapshot["transitions"]["exchange:refunded"] == 1
        assert metrics.active("exchange") == 0
