"""The exchange state machine: ordering, abort, and invalid transitions."""

from __future__ import annotations

import pytest

from repro.api import InteropGateway
from repro.assets import AssetSpec, ExchangeState
from repro.errors import AssetError, ExchangeStateError, ProtocolError

OFFER_ADDRESS = "fabnet/trade/assetscc"
ASK_ADDRESS = "quornet/state/asset-vault"
OFFER_POLICY = "AND(org:traders-org, org:audit-org)"
ASK_POLICY = "AND(org:op-org-1, org:op-org-2)"


def build_exchange(scenario, **kwargs):
    gateway = InteropGateway.from_client(scenario.alice_client)
    builder = (
        gateway.exchange()
        .offer(OFFER_ADDRESS, "GOLD-1")
        .ask(ASK_ADDRESS, "OIL-9")
        .with_counterparty(scenario.bob_client)
        .with_policies(offer=OFFER_POLICY, ask=ASK_POLICY)
    )
    if kwargs:
        builder = builder.with_timeouts(**kwargs)
    return builder.build()


class TestBuilderValidation:
    def test_missing_legs_rejected(self, exchange_scenario):
        gateway = InteropGateway.from_client(exchange_scenario.alice_client)
        with pytest.raises(RuntimeError, match="offer"):
            gateway.exchange().build()

    def test_missing_counterparty_rejected(self, exchange_scenario):
        gateway = InteropGateway.from_client(exchange_scenario.alice_client)
        with pytest.raises(RuntimeError, match="counterparty"):
            gateway.exchange().offer(OFFER_ADDRESS, "GOLD-1").ask(
                ASK_ADDRESS, "OIL-9"
            ).build()

    def test_counter_timeout_must_be_shorter(self, exchange_scenario):
        with pytest.raises(ProtocolError, match="shorter"):
            build_exchange(exchange_scenario, offer=300.0, counter=300.0)

    def test_offer_timeout_must_cover_verification_margin(self, exchange_scenario):
        """Rejected at build time — verify_offer() would demand
        counter_timeout + margin of remaining lifetime, so this config
        could only ever escrow the offer and then fail."""
        with pytest.raises(ProtocolError, match="verification margin"):
            build_exchange(exchange_scenario, offer=400.0, counter=300.0)

    def test_offer_must_live_on_initiator_network(self, exchange_scenario):
        gateway = InteropGateway.from_client(exchange_scenario.alice_client)
        with pytest.raises(ProtocolError, match="initiator"):
            (
                gateway.exchange()
                .offer(ASK_ADDRESS, "OIL-9")  # wrong side
                .ask(OFFER_ADDRESS, "GOLD-1")
                .with_counterparty(exchange_scenario.bob_client)
                .build()
            )

    def test_malformed_asset_address_rejected(self):
        with pytest.raises(ProtocolError, match="network/ledger/contract"):
            AssetSpec.parse("fabnet/trade", "GOLD-1")


class TestStepOrdering:
    def test_steps_must_run_in_order(self, exchange_scenario):
        exchange = build_exchange(exchange_scenario)
        with pytest.raises(ExchangeStateError):
            exchange.verify_offer()
        with pytest.raises(ExchangeStateError):
            exchange.lock_counter()
        with pytest.raises(ExchangeStateError):
            exchange.claim_counter()
        with pytest.raises(ExchangeStateError):
            exchange.claim_offer()
        assert exchange.state is ExchangeState.CREATED

    def test_no_double_lock(self, exchange_scenario):
        exchange = build_exchange(exchange_scenario)
        exchange.lock_offer()
        with pytest.raises(ExchangeStateError):
            exchange.lock_offer()
        assert exchange.state is ExchangeState.OFFER_LOCKED

    def test_completed_exchange_is_terminal(self, exchange_scenario):
        exchange = build_exchange(exchange_scenario)
        result = exchange.run()
        assert result.state is ExchangeState.COMPLETED
        for step in (
            exchange.lock_offer,
            exchange.claim_offer,
            exchange.abort,
            exchange.refund,
        ):
            with pytest.raises(ExchangeStateError):
                step()


class TestAbortPath:
    def test_abort_before_reveal_then_refund(self, exchange_scenario):
        """Counterparty abort: Bob walks away after counter-locking; the
        exchange is called off and both escrows unwind after the
        timelocks. At no point is any asset claimable AND refundable."""
        scenario = exchange_scenario
        exchange = build_exchange(scenario)
        exchange.lock_offer()
        exchange.verify_offer()
        exchange.lock_counter()
        exchange.abort()
        assert exchange.state is ExchangeState.ABORTED

        # After abort, no protocol step may run — the preimage stays secret.
        with pytest.raises(ExchangeStateError):
            exchange.claim_counter()
        with pytest.raises(ExchangeStateError):
            exchange.verify_counter()

        # Claim windows still open -> refunds are refused on-ledger and
        # the state machine stays ABORTED (retryable).
        with pytest.raises(AssetError, match="refused"):
            exchange.refund()
        assert exchange.state is ExchangeState.ABORTED

        scenario.clock.advance(601.0)
        exchange.refund()
        assert exchange.state is ExchangeState.REFUNDED
        assert scenario.gold_owner() == "alice@fabnet"
        assert scenario.oil_owner() == "bob@quornet"

    def test_abort_after_reveal_impossible(self, exchange_scenario):
        exchange = build_exchange(exchange_scenario)
        exchange.lock_offer()
        exchange.verify_offer()
        exchange.lock_counter()
        exchange.verify_counter()
        exchange.claim_counter()  # preimage now public
        with pytest.raises(ExchangeStateError):
            exchange.abort()

    def test_refund_with_nothing_locked_rejected(self, exchange_scenario):
        exchange = build_exchange(exchange_scenario)
        exchange.abort()
        with pytest.raises(ExchangeStateError, match="nothing to refund"):
            exchange.refund()


class TestVerificationGuards:
    def test_unacceptable_offer_lock_fails_exchange(self, exchange_scenario):
        """A lock whose remaining lifetime is too short for the responder
        to act safely is rejected by the proof-verified check."""
        scenario = exchange_scenario
        # Defaults: offer 600s, counter 300s, margin 150s -> the responder
        # requires >= 450s of remaining lifetime before counter-locking.
        exchange = build_exchange(scenario)
        exchange.lock_offer()
        scenario.clock.advance(200.0)  # not expired, but margin gone
        with pytest.raises(AssetError, match="expires in"):
            exchange.verify_offer()
        assert exchange.state is ExchangeState.FAILED

    def test_failed_exchange_still_refunds_standing_escrow(self, exchange_scenario):
        """A verification failure after lock_offer must not strand the
        escrowed asset: FAILED can still unwind via refund() once the
        timelock expires."""
        scenario = exchange_scenario
        exchange = build_exchange(scenario)
        exchange.lock_offer()
        scenario.clock.advance(200.0)  # burn the responder's safety margin
        with pytest.raises(AssetError):
            exchange.verify_offer()
        assert exchange.state is ExchangeState.FAILED
        with pytest.raises(AssetError, match="refused"):
            exchange.refund()  # claim window still open
        assert exchange.state is ExchangeState.FAILED
        scenario.clock.advance(500.0)  # past the offer timelock
        exchange.refund()
        assert exchange.state is ExchangeState.REFUNDED
        assert scenario.gold_owner() == "alice@fabnet"

    def test_wrong_recipient_detected_by_verification(self, exchange_scenario):
        """If the on-ledger offer lock names someone else, the responder's
        proof-carrying verification refuses to counter-lock."""
        scenario = exchange_scenario
        exchange = build_exchange(scenario)
        # Simulate a mismatched escrow: lock GOLD-1 for carol, not bob.
        from repro.proto.messages import MSG_KIND_ASSET_LOCK

        command = exchange._command(
            scenario.alice_client,
            exchange.offer,
            recipient="carol@elsewhere",
            hashlock=exchange.hashlock,
            timeout=scenario.clock.now() + 600.0,
        )
        ack = scenario.alice_client.relay.remote_asset(MSG_KIND_ASSET_LOCK, command)
        assert ack.status == 0  # STATUS_OK
        exchange.result.offer_lock = ack
        exchange.state = ExchangeState.OFFER_LOCKED
        exchange.result.state = ExchangeState.OFFER_LOCKED
        with pytest.raises(AssetError, match="locked for"):
            exchange.verify_offer()
        assert exchange.state is ExchangeState.FAILED
