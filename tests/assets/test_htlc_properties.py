"""Property sweep of the HTLC timelock boundaries (hypothesis).

The vault's example-based tests pin individual boundary cases; this
module sweeps the rules the whole asset subsystem leans on:

- the claim and refund windows *partition* time around the timeout —
  at every instant exactly one of the two paths is open, including the
  boundary instant itself (claim strictly before, refund at-or-after);
- settled locks are settled forever: after a claim no refund succeeds at
  any time, and vice versa (no double spend under any schedule);
- the per-hop decremented windows of an N-party cycle keep the backward
  claim cascade safe even when each leg's ledger clock is adversarially
  skewed, as long as the hop gap exceeds twice the skew bound — and the
  margin is tight: a gap *inside* the skew bound admits a losing schedule.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assets.htlc import (
    STATE_CLAIMED,
    STATE_LOCKED,
    STATE_REFUNDED,
    HtlcVault,
    make_hashlock,
)
from repro.errors import AssetError

PREIMAGE = b"property-sweep-preimage"
HASHLOCK_HEX = make_hashlock(PREIMAGE).hex()


class MemoryStorage:
    def __init__(self) -> None:
        self._data: dict[str, bytes] = {}

    def get(self, key: str):
        return self._data.get(key)

    def put(self, key: str, value: bytes) -> None:
        self._data[key] = value


def locked_vault(timeout: float, created_at: float = 0.0) -> HtlcVault:
    vault = HtlcVault(MemoryStorage())
    vault.issue("A-1", "alice", "")
    vault.lock("A-1", "alice", "bob", HASHLOCK_HEX, timeout, created_at)
    return vault


def lock_state(vault: HtlcVault) -> str:
    import json

    return json.loads(vault.get_lock("A-1"))["state"]


#: Ledger times as integers scaled to quarter-seconds: hypothesis then
#: probes exact boundary equality (t == timeout) without float noise.
TICK = 0.25
times = st.integers(min_value=1, max_value=4_000)


class TestWindowPartition:
    @given(timeout_ticks=times, now_ticks=times)
    @settings(max_examples=80, deadline=None)
    def test_exactly_one_path_open_at_every_instant(
        self, timeout_ticks, now_ticks
    ):
        timeout, now = timeout_ticks * TICK, now_ticks * TICK
        claim_ok = refund_ok = False
        vault = locked_vault(timeout)
        try:
            vault.claim("A-1", "bob", PREIMAGE.hex(), now)
            claim_ok = True
        except AssetError:
            pass
        vault = locked_vault(timeout)
        try:
            vault.refund("A-1", "alice", now)
            refund_ok = True
        except AssetError:
            pass
        # The partition: strictly-before claims, at-or-after refunds.
        assert claim_ok == (now < timeout)
        assert refund_ok == (now >= timeout)
        assert claim_ok != refund_ok

    @given(timeout_ticks=times)
    @settings(max_examples=30, deadline=None)
    def test_boundary_instant_belongs_to_refund(self, timeout_ticks):
        timeout = timeout_ticks * TICK
        vault = locked_vault(timeout)
        with pytest.raises(AssetError, match="only a refund"):
            vault.claim("A-1", "bob", PREIMAGE.hex(), timeout)
        vault.refund("A-1", "alice", timeout)
        assert lock_state(vault) == STATE_REFUNDED


class TestSettledForever:
    @given(timeout_ticks=times, claim_delta=times, later=times)
    @settings(max_examples=60, deadline=None)
    def test_claimed_lock_never_refunds(self, timeout_ticks, claim_delta, later):
        timeout = timeout_ticks * TICK
        claim_at = max(0.0, timeout - claim_delta * TICK)
        vault = locked_vault(timeout)
        vault.claim("A-1", "bob", PREIMAGE.hex(), claim_at)
        with pytest.raises(AssetError, match="not locked"):
            vault.refund("A-1", "alice", timeout + later * TICK)
        assert lock_state(vault) == STATE_CLAIMED

    @given(timeout_ticks=times, later=times)
    @settings(max_examples=60, deadline=None)
    def test_refunded_lock_never_claims(self, timeout_ticks, later):
        timeout = timeout_ticks * TICK
        vault = locked_vault(timeout)
        vault.refund("A-1", "alice", timeout)
        with pytest.raises(AssetError, match="not locked"):
            # Even the *correct* preimage, even back inside the window.
            vault.claim("A-1", "bob", PREIMAGE.hex(), timeout - TICK)
        assert lock_state(vault) == STATE_REFUNDED

    @given(timeout_ticks=times, now_ticks=times, junk=st.binary(min_size=1, max_size=48))
    @settings(max_examples=60, deadline=None)
    def test_wrong_preimage_never_claims(self, timeout_ticks, now_ticks, junk):
        if junk == PREIMAGE:
            return
        timeout, now = timeout_ticks * TICK, now_ticks * TICK
        vault = locked_vault(timeout)
        with pytest.raises(AssetError):
            vault.claim("A-1", "bob", junk.hex(), now)
        assert lock_state(vault) == STATE_LOCKED


def cycle_vaults(n: int, deadline0: float, hop_gap: float, now: float):
    """One vault per leg, locked with the per-hop decremented deadlines
    the :class:`~repro.assets.cycles.CycleCoordinator` computes:
    ``deadline_i = deadline_0 - i * hop_gap``."""
    vaults = []
    for index in range(n):
        vault = HtlcVault(MemoryStorage())
        vault.issue("A-1", f"party-{index}", "")
        vault.lock(
            "A-1",
            f"party-{index}",
            f"party-{(index + 1) % n}",
            HASHLOCK_HEX,
            deadline0 - index * hop_gap,
            now,
        )
        vaults.append(vault)
    return vaults


class TestDecrementedWindowsUnderSkew:
    @given(
        n=st.integers(min_value=2, max_value=6),
        skew_bound_ticks=st.integers(min_value=0, max_value=40),
        margin_ticks=st.integers(min_value=1, max_value=40),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_gap_beyond_twice_the_skew_keeps_cascade_safe(
        self, n, skew_bound_ticks, margin_ticks, data
    ):
        """The cycle safety margin: each leg's ledger clock may be off by
        up to ``skew``; if the hop gap exceeds ``2 * skew``, then party N-1
        claiming strictly inside its own (skewed) window guarantees every
        upstream leg's window is still open when the preimage cascades —
        the structural reason a stalled or adversarial clock cannot strand
        an inner leg after its downstream neighbour was claimed."""
        skew = skew_bound_ticks * TICK
        hop_gap = 2 * skew + margin_ticks * TICK
        deadline0 = 10_000.0
        skews = [
            data.draw(
                st.integers(min_value=-skew_bound_ticks, max_value=skew_bound_ticks),
                label=f"skew-{index}",
            )
            * TICK
            for index in range(n)
        ]
        vaults = cycle_vaults(n, deadline0, hop_gap, now=0.0)

        # The last leg claims strictly inside its own ledger's window.
        last_deadline = deadline0 - (n - 1) * hop_gap
        true_time = data.draw(
            st.floats(
                min_value=0.0,
                max_value=last_deadline - skews[n - 1] - TICK,
            ),
            label="claim-time",
        )
        for index in range(n - 1, -1, -1):
            ledger_now = true_time + skews[index]
            vaults[index].claim(
                "A-1", f"party-{(index + 1) % n}", PREIMAGE.hex(), ledger_now
            )
            assert lock_state(vaults[index]) == STATE_CLAIMED

    @given(skew_bound_ticks=st.integers(min_value=2, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_gap_inside_the_skew_bound_admits_a_losing_schedule(
        self, skew_bound_ticks
    ):
        """The margin is tight, not paranoia: with ``hop_gap < 2 * skew``
        an adversarial skew assignment lets the downstream leg be claimed
        while the upstream ledger already refuses the cascading claim —
        exactly the stranding the coordinator's window rule prevents."""
        skew = skew_bound_ticks * TICK
        hop_gap = skew  # < 2 * skew
        deadline0 = 10_000.0
        vaults = cycle_vaults(2, deadline0, hop_gap, now=0.0)
        leg1_deadline = deadline0 - hop_gap
        # Leg 1's clock runs slow (-skew): at true time just before its
        # deadline *appears* open; leg 0's runs fast (+skew).
        true_time = leg1_deadline + skew - TICK
        vaults[1].claim("A-1", "party-0", PREIMAGE.hex(), true_time - skew)
        with pytest.raises(AssetError, match="only a refund"):
            vaults[0].claim("A-1", "party-1", PREIMAGE.hex(), true_time + skew)
        # The stranded leg still has its refund path — funds are not lost,
        # atomicity is (which is why the coordinator enforces the gap).
        vaults[0].refund("A-1", "party-0", true_time + skew)
