"""Shared fixture: a ready Fabric↔Quorum asset-exchange deployment.

Two heterogeneous networks, each fronted by its own relay with an
asset-capable driver, mutually configured (CMDAC records / InteropPort),
with one asset issued on each side:

- ``fabnet`` (Fabric): ``GOLD-1`` owned by ``alice@fabnet``
- ``quornet`` (Quorum): ``OIL-9`` owned by ``bob@quornet``

Both networks share one :class:`SimulatedClock` so tests can advance
ledger time past HTLC timeouts deterministically.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.assets import FabricAssetChaincode, QuorumAssetContract
from repro.assets.contracts import issue_corda_asset
from repro.corda import CordaNetwork
from repro.fabric import NetworkBuilder
from repro.interop import InMemoryRegistry, InteropClient, RelayService
from repro.interop.bootstrap import (
    create_fabric_relay,
    enable_fabric_interop,
    record_foreign_network,
)
from repro.interop.contracts.ports import InteropPort
from repro.interop.drivers.corda_driver import CordaDriver
from repro.interop.drivers.quorum_driver import QuorumDriver
from repro.quorum import QuorumNetwork
from repro.utils.clock import SimulatedClock

OFFER_ADDRESS = "fabnet/trade/assetscc"
ASK_ADDRESS = "quornet/state/asset-vault"
CORDA_ADDRESS = "cordanet/vault/asset-vault"
OFFER_POLICY = "AND(org:traders-org, org:audit-org)"
ASK_POLICY = "AND(org:op-org-1, org:op-org-2)"
CORDA_POLICY = "AND(org:carol, org:dana)"


@pytest.fixture()
def exchange_scenario():
    clock = SimulatedClock(1_000.0)

    # -- Fabric network (initiator side) -----------------------------------
    fabric = (
        NetworkBuilder("fabnet", channel="trade", clock=clock)
        .add_org("traders-org")
        .add_org("audit-org")
        .add_peer("peer0", "traders-org")
        .add_peer("peer0", "audit-org")
        .add_client("admin", "traders-org")
        .add_client("alice", "traders-org")
        .build()
    )
    fabric_admin = fabric.org("traders-org").member("admin")
    alice = fabric.org("traders-org").member("alice")
    enable_fabric_interop(fabric, fabric_admin)
    fabric.deploy_chaincode(
        FabricAssetChaincode(),
        "AND('traders-org.peer', 'audit-org.peer')",
        initializer=fabric_admin,
    )
    fabric.gateway.submit(
        fabric_admin, "assetscc", "Issue", ["GOLD-1", "alice@fabnet", "{}"]
    )

    # -- Quorum network (responder side) -----------------------------------
    quorum = QuorumNetwork("quornet", clock=clock)
    quorum.deploy_contract(QuorumAssetContract())
    quorum.add_peer("peer1", "op-org-1")
    quorum.add_peer("peer2", "op-org-2")
    bob = quorum.enroll_client("bob", "op-org-1")
    quorum_invoker = quorum.enroll_client("asset-invoker", "op-org-1")
    quorum.submit_transaction(
        quorum_invoker, "asset-vault", "Issue", ["OIL-9", "bob@quornet", "{}"]
    )
    quorum_port = InteropPort("quornet")
    quorum_port.record_network_config(fabric.export_config())
    for function in ("LockAsset", "ClaimAsset", "UnlockAsset", "GetLock"):
        quorum_port.add_access_rule("fabnet", "traders-org", "asset-vault", function)

    # -- relays + discovery ------------------------------------------------
    registry = InMemoryRegistry()
    fabric_relay = create_fabric_relay(fabric, registry)
    fabric_invoker = fabric.org("traders-org").enroll("asset-invoker", role="client")
    fabric_relay.driver_for("fabnet").enable_assets(fabric_invoker)

    quorum_relay = RelayService("quornet", registry, clock=clock)
    quorum_driver = QuorumDriver(quorum, quorum_port)
    quorum_driver.enable_assets(quorum_invoker)
    quorum_relay.register_driver(quorum_driver)
    registry.register("quornet", quorum_relay)

    # -- mutual governance -------------------------------------------------
    for function in ("ClaimAsset", "UnlockAsset", "GetLock"):
        fabric.gateway.submit(
            fabric_admin,
            "ecc",
            "AddAccessRule",
            ["quornet", "op-org-1", "assetscc", function],
        )
    record_foreign_network(
        fabric, fabric_admin, quorum, verification_policy=ASK_POLICY
    )

    def gold_owner() -> str:
        raw = fabric.gateway.evaluate(fabric_admin, "assetscc", "GetAsset", ["GOLD-1"])
        return json.loads(raw)["owner"]

    def oil_owner() -> str:
        raw = quorum.peers[0].storage_snapshot("asset-vault")["asset/OIL-9"]
        return json.loads(raw.decode())["owner"]

    return SimpleNamespace(
        clock=clock,
        fabric=fabric,
        fabric_admin=fabric_admin,
        fabric_relay=fabric_relay,
        quorum=quorum,
        quorum_port=quorum_port,
        quorum_relay=quorum_relay,
        registry=registry,
        alice_client=InteropClient(alice, fabric_relay, "fabnet", gateway=fabric.gateway),
        bob_client=InteropClient(bob, quorum_relay, "quornet"),
        gold_owner=gold_owner,
        oil_owner=oil_owner,
    )


@pytest.fixture()
def cycle_scenario():
    """A ready three-network ring: Fabric → Quorum → Corda → Fabric.

    One asset per network — ``GOLD-1`` (alice@fabnet), ``OIL-9``
    (bob@quornet), ``ART-7`` (carol@cordanet) — with every downstream
    party granted ``GetLock``/``ClaimAsset`` on its upstream vault, as a
    cyclic swap requires. All three networks share one clock.
    """
    clock = SimulatedClock(1_000.0)

    # -- Fabric network (party 0) ------------------------------------------
    fabric = (
        NetworkBuilder("fabnet", channel="trade", clock=clock)
        .add_org("traders-org")
        .add_org("audit-org")
        .add_peer("peer0", "traders-org")
        .add_peer("peer0", "audit-org")
        .add_client("admin", "traders-org")
        .add_client("alice", "traders-org")
        .build()
    )
    fabric_admin = fabric.org("traders-org").member("admin")
    alice = fabric.org("traders-org").member("alice")
    enable_fabric_interop(fabric, fabric_admin)
    fabric.deploy_chaincode(
        FabricAssetChaincode(),
        "AND('traders-org.peer', 'audit-org.peer')",
        initializer=fabric_admin,
    )
    fabric.gateway.submit(
        fabric_admin, "assetscc", "Issue", ["GOLD-1", "alice@fabnet", "{}"]
    )

    # -- Quorum network (party 1) ------------------------------------------
    quorum = QuorumNetwork("quornet", clock=clock)
    quorum.deploy_contract(QuorumAssetContract())
    quorum.add_peer("peer1", "op-org-1")
    quorum.add_peer("peer2", "op-org-2")
    bob = quorum.enroll_client("bob", "op-org-1")
    quorum_invoker = quorum.enroll_client("asset-invoker", "op-org-1")
    quorum.submit_transaction(
        quorum_invoker, "asset-vault", "Issue", ["OIL-9", "bob@quornet", "{}"]
    )

    # -- Corda network (party 2) -------------------------------------------
    corda = CordaNetwork("cordanet", clock=clock)
    carol_node = corda.add_node("carol")
    corda.add_node("dana")

    # -- relays + discovery ------------------------------------------------
    registry = InMemoryRegistry()
    fabric_relay = create_fabric_relay(fabric, registry)
    fabric_invoker = fabric.org("traders-org").enroll("asset-invoker", role="client")
    fabric_relay.driver_for("fabnet").enable_assets(fabric_invoker)

    quorum_port = InteropPort("quornet")
    quorum_relay = RelayService("quornet", registry, clock=clock)
    quorum_driver = QuorumDriver(quorum, quorum_port)
    quorum_driver.enable_assets(quorum_invoker)
    quorum_relay.register_driver(quorum_driver)
    registry.register("quornet", quorum_relay)

    corda_port = InteropPort("cordanet")
    corda_relay = RelayService("cordanet", registry, clock=clock)
    corda_driver = CordaDriver(corda, corda_port)
    corda_driver.enable_assets("carol")
    corda_relay.register_driver(corda_driver)
    registry.register("cordanet", corda_relay)
    issue_corda_asset(corda, carol_node, "ART-7", "carol@cordanet")

    # -- ring governance: each vault admits its downstream neighbour -------
    # fabnet (leg 0) is verified/claimed by bob@quornet.
    for function in ("ClaimAsset", "GetLock"):
        fabric.gateway.submit(
            fabric_admin,
            "ecc",
            "AddAccessRule",
            ["quornet", "op-org-1", "assetscc", function],
        )
    record_foreign_network(fabric, fabric_admin, quorum, verification_policy=ASK_POLICY)
    record_foreign_network(fabric, fabric_admin, corda, verification_policy=CORDA_POLICY)
    # quornet (leg 1) is verified/claimed by carol@cordanet.
    quorum_port.record_network_config(corda.export_config())
    for function in ("ClaimAsset", "GetLock"):
        quorum_port.add_access_rule("cordanet", "carol", "asset-vault", function)
    # cordanet (leg 2) is verified/claimed by alice@fabnet.
    corda_port.record_network_config(fabric.export_config())
    for function in ("ClaimAsset", "GetLock"):
        corda_port.add_access_rule("fabnet", "traders-org", "asset-vault", function)

    def gold_owner() -> str:
        raw = fabric.gateway.evaluate(fabric_admin, "assetscc", "GetAsset", ["GOLD-1"])
        return json.loads(raw)["owner"]

    def oil_owner() -> str:
        raw = quorum.peers[0].storage_snapshot("asset-vault")["asset/OIL-9"]
        return json.loads(raw.decode())["owner"]

    def art_owner() -> str:
        _, state = carol_node.lookup("ART-7")
        return state.data["asset"]["owner"]

    return SimpleNamespace(
        clock=clock,
        fabric=fabric,
        fabric_admin=fabric_admin,
        fabric_relay=fabric_relay,
        quorum=quorum,
        quorum_port=quorum_port,
        quorum_relay=quorum_relay,
        corda=corda,
        corda_port=corda_port,
        corda_relay=corda_relay,
        carol_node=carol_node,
        registry=registry,
        alice_client=InteropClient(alice, fabric_relay, "fabnet", gateway=fabric.gateway),
        bob_client=InteropClient(bob, quorum_relay, "quornet"),
        carol_client=InteropClient(carol_node.identity, corda_relay, "cordanet"),
        gold_owner=gold_owner,
        oil_owner=oil_owner,
        art_owner=art_owner,
    )
