"""N-party cyclic swaps end to end: Fabric → Quorum → Corda → Fabric.

The tentpole acceptance scenarios: a three-party ring completes
atomically off one preimage; any stall, tamper, or abort refunds every
locked leg; and a killed coordinator resumes from its journal without
double-locking or double-claiming — the recovery answer always comes
from proof-carrying ledger readbacks, never from a relay's word.
"""

from __future__ import annotations

import json

import pytest

from repro.assets import AssetSpec
from repro.assets.cycles import NS_CYCLES, CycleCoordinator, CycleState
from repro.assets.metrics import ExchangeMetrics
from repro.errors import AssetError, ExchangeStateError, ReproError
from repro.proto.messages import MSG_KIND_QUERY_REQUEST
from repro.store import MemoryStore
from repro.testing import FAULT_TAMPER_PROOF, FaultPlan, FaultSpec, chaos_topology

# Mirrors the cycle_scenario fixture wiring (tests/assets/conftest.py).
OFFER_ADDRESS = "fabnet/trade/assetscc"
ASK_ADDRESS = "quornet/state/asset-vault"
CORDA_ADDRESS = "cordanet/vault/asset-vault"
OFFER_POLICY = "AND(org:traders-org, org:audit-org)"
ASK_POLICY = "AND(org:op-org-1, org:op-org-2)"
CORDA_POLICY = "AND(org:carol, org:dana)"

CYCLE_TIMEOUT = 900.0
HOP_GAP = 150.0


def make_cycle(scenario, store=None, metrics=None, cycle_id=None) -> CycleCoordinator:
    return CycleCoordinator(
        parties=[scenario.alice_client, scenario.bob_client, scenario.carol_client],
        specs=[
            AssetSpec.parse(OFFER_ADDRESS, "GOLD-1"),
            AssetSpec.parse(ASK_ADDRESS, "OIL-9"),
            AssetSpec.parse(CORDA_ADDRESS, "ART-7"),
        ],
        cycle_timeout=CYCLE_TIMEOUT,
        hop_gap=HOP_GAP,
        policies=[OFFER_POLICY, ASK_POLICY, CORDA_POLICY],
        store=store,
        metrics=metrics,
        cycle_id=cycle_id,
    )


def resume_cycle(scenario, store, cycle_id) -> CycleCoordinator:
    return CycleCoordinator.resume(
        [scenario.alice_client, scenario.bob_client, scenario.carol_client],
        store,
        cycle_id,
        policies=[OFFER_POLICY, ASK_POLICY, CORDA_POLICY],
    )


def quorum_commands(scenario, function: str) -> int:
    return sum(
        1
        for block in scenario.quorum.blocks
        for tx in block.transactions
        if tx.function == function
    )


def corda_commands(scenario, command: str) -> int:
    return sum(
        1
        for tx in scenario.corda.transactions.values()
        if tx.command == command
    )


def owners(scenario) -> tuple[str, str, str]:
    return (scenario.gold_owner(), scenario.oil_owner(), scenario.art_owner())


class TestThreePartyCycle:
    def test_cycle_completes_atomically_with_one_preimage(self, cycle_scenario):
        """Each asset moves exactly one hop around the ring, all three
        claims spending the single preimage party 0 revealed."""
        scenario = cycle_scenario
        cycle = make_cycle(scenario)
        result = cycle.run()
        assert result.completed
        assert cycle.state is CycleState.COMPLETED
        assert owners(scenario) == (
            "bob@quornet",  # GOLD-1: alice -> bob
            "carol@cordanet",  # OIL-9: bob -> carol
            "alice@fabnet",  # ART-7: carol -> alice
        )
        # One secret armed the whole ring: every claim ack carries it.
        assert result.preimage == cycle.preimage
        for ack in result.claims:
            assert ack is not None and ack.preimage == cycle.preimage
        assert quorum_commands(scenario, "ClaimAsset") == 1
        assert corda_commands(scenario, "AssetClaim") == 1

    def test_hop_deadlines_partition_time(self, cycle_scenario):
        """Timelocks strictly decrease along the ring by exactly the hop
        gap, so every claimant's upstream window outlives its own."""
        cycle = make_cycle(cycle_scenario)
        cycle.run()
        deadlines = cycle.deadlines
        assert all(deadline is not None for deadline in deadlines)
        for leg in range(1, cycle.size):
            assert deadlines[leg] == pytest.approx(deadlines[leg - 1] - HOP_GAP)

    def test_misconfigured_ring_is_rejected_before_any_escrow(self, cycle_scenario):
        scenario = cycle_scenario
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            CycleCoordinator(
                parties=[scenario.alice_client, scenario.bob_client],
                specs=[AssetSpec.parse(OFFER_ADDRESS, "GOLD-1")],
            )
        with pytest.raises(ProtocolError):
            CycleCoordinator(
                parties=[scenario.alice_client, scenario.bob_client],
                specs=[
                    AssetSpec.parse(OFFER_ADDRESS, "GOLD-1"),
                    AssetSpec.parse(ASK_ADDRESS, "OIL-9"),
                ],
                cycle_timeout=100.0,
                hop_gap=150.0,  # second leg's window would be negative
            )
        assert owners(scenario) == ("alice@fabnet", "bob@quornet", "carol@cordanet")


class TestCycleUnwind:
    def test_abort_before_reveal_refunds_every_leg(self, cycle_scenario):
        """All three legs escrowed, then the ring is called off: nothing
        was claimable (the secret never left party 0) and every vault
        refunds once its window closes."""
        scenario = cycle_scenario
        cycle = make_cycle(scenario)
        while cycle.state in (CycleState.CREATED, CycleState.LOCKING):
            cycle.lock_next()
        assert cycle.state is CycleState.LOCKED
        cycle.abort()
        # Refund before any window closed is refused on-ledger, leg by leg.
        with pytest.raises(AssetError):
            cycle.refund()
        assert cycle.state is CycleState.ABORTED
        scenario.clock.advance(CYCLE_TIMEOUT + 1.0)
        refunds = cycle.refund()
        assert len(refunds) == 3
        assert cycle.state is CycleState.REFUNDED
        assert owners(scenario) == ("alice@fabnet", "bob@quornet", "carol@cordanet")
        assert quorum_commands(scenario, "ClaimAsset") == 0
        assert corda_commands(scenario, "AssetClaim") == 0

    def test_stalled_party_times_out_and_locked_legs_refund(self, cycle_scenario):
        """Party 2 never locks: the ring cannot close, and after the
        windows expire the two standing escrows unwind."""
        scenario = cycle_scenario
        cycle = make_cycle(scenario)
        cycle.lock_next()  # leg 0: alice
        cycle.lock_next()  # leg 1: bob
        assert cycle.state is CycleState.LOCKING
        scenario.clock.advance(CYCLE_TIMEOUT + 1.0)
        refunds = cycle.refund()
        assert len(refunds) == 2
        assert cycle.state is CycleState.REFUNDED
        assert owners(scenario) == ("alice@fabnet", "bob@quornet", "carol@cordanet")

    def test_tampered_mid_ring_proof_fails_cycle_before_reveal(self, cycle_scenario):
        """A relay forging leg 1's lock confirmation cannot make carol
        escrow: verification fails closed, the preimage never leaves
        party 0, and both standing legs refund."""
        scenario = cycle_scenario
        cycle = make_cycle(scenario)
        plan = FaultPlan(
            31337,
            [
                FaultSpec(
                    kind=FAULT_TAMPER_PROOF,
                    only_kinds=frozenset({MSG_KIND_QUERY_REQUEST}),
                )
            ],
            name="tamper-cycle-leg1-proof",
        )
        with chaos_topology(
            scenario.registry,
            ["quornet"],
            plan,
            clock=scenario.clock,
            redundant=False,
        ) as wrappers:
            cycle.lock_next()  # leg 0 (verifies nothing)
            cycle.lock_next()  # leg 1 (verifies leg 0 on fabnet: clean)
            with pytest.raises(ReproError):
                cycle.lock_next()  # leg 2 verifies leg 1 via tampered path
            assert wrappers["quornet"].injected[FAULT_TAMPER_PROOF] >= 1
            assert cycle.state is CycleState.FAILED
            assert cycle.result.preimage is None
            scenario.clock.advance(CYCLE_TIMEOUT + 1.0)
            refunds = cycle.refund()
        assert len(refunds) == 2
        assert cycle.state is CycleState.REFUNDED
        assert owners(scenario) == ("alice@fabnet", "bob@quornet", "carol@cordanet")
        assert corda_commands(scenario, "AssetLock") == 0


class TestCycleCrashRecovery:
    def _doctor_journal(self, store, cycle_id, **overrides) -> None:
        """Rewind the journal to simulate a crash after a command landed
        but before its ack was journaled."""
        record = json.loads(store.get(NS_CYCLES, cycle_id).decode("utf-8"))
        record.update(overrides)
        store.put(NS_CYCLES, cycle_id, json.dumps(record).encode("utf-8"))

    def test_recover_fast_forwards_unjournaled_lock_without_relocking(
        self, cycle_scenario
    ):
        """Crash between bob's lock landing and its journal write: the
        resumed coordinator reads the escrow (proof-carrying), sees its
        own terms, and continues — exactly one lock on the ledger."""
        scenario = cycle_scenario
        store = MemoryStore()
        cycle = make_cycle(scenario, store=store)
        cycle.lock_next()  # leg 0
        cycle.lock_next()  # leg 1 landed on quornet...
        # ...but the journal never heard: rewind its flag.
        locked = list(cycle._locked)
        locked[1] = False
        self._doctor_journal(
            store, cycle.cycle_id, locked=locked, state=CycleState.LOCKING.value
        )
        resumed = resume_cycle(scenario, store, cycle.cycle_id)
        assert resumed.state is CycleState.LOCKING
        assert resumed.recover() is CycleState.LOCKING
        assert resumed._locked[1] is True
        result = resumed.run()
        assert result.completed
        assert quorum_commands(scenario, "LockAsset") == 1  # never re-locked
        assert owners(scenario) == ("bob@quornet", "carol@cordanet", "alice@fabnet")

    def test_recover_detects_published_preimage_and_completes(self, cycle_scenario):
        """Crash right after party 0's claim revealed the preimage: the
        resumed coordinator must move *past* the reveal (the secret is
        public!) and finish the backward walk — one claim per vault."""
        scenario = cycle_scenario
        store = MemoryStore()
        cycle = make_cycle(scenario, store=store)
        while cycle.state in (CycleState.CREATED, CycleState.LOCKING):
            cycle.lock_next()
        cycle.claim_next()  # leg 2 claimed: preimage is now on cordanet
        claimed = [False] * cycle.size
        self._doctor_journal(
            store,
            cycle.cycle_id,
            claimed=claimed,
            state=CycleState.LOCKED.value,
            preimage_revealed=False,
        )
        resumed = resume_cycle(scenario, store, cycle.cycle_id)
        assert resumed.recover() is CycleState.CLAIMING
        assert resumed.result.preimage == cycle.preimage
        result = resumed.run()
        assert result.completed
        assert corda_commands(scenario, "AssetClaim") == 1
        assert quorum_commands(scenario, "ClaimAsset") == 1
        assert owners(scenario) == ("bob@quornet", "carol@cordanet", "alice@fabnet")

    def test_resume_requires_a_journal(self, cycle_scenario):
        with pytest.raises(ExchangeStateError):
            resume_cycle(cycle_scenario, MemoryStore(), "cycle-unknown")


class TestCycleBuilderApi:
    def test_gateway_exchange_cycle_drives_the_full_ring(self, cycle_scenario):
        """The application surface: one fluent chain assembles and runs
        the same three-party ring."""
        from repro.api import InteropGateway

        scenario = cycle_scenario
        gateway = InteropGateway(client=scenario.alice_client)
        result = (
            gateway.exchange_cycle()
            .leg(OFFER_ADDRESS, "GOLD-1", policy=OFFER_POLICY)
            .leg(ASK_ADDRESS, "OIL-9", party=scenario.bob_client, policy=ASK_POLICY)
            .leg(
                CORDA_ADDRESS,
                "ART-7",
                party=scenario.carol_client,
                policy=CORDA_POLICY,
            )
            .with_window(timeout=CYCLE_TIMEOUT, hop_gap=HOP_GAP)
            .run()
        )
        assert result.completed
        assert owners(scenario) == ("bob@quornet", "carol@cordanet", "alice@fabnet")

    def test_builder_rejects_short_rings_and_unnamed_parties(self, cycle_scenario):
        from repro.api import InteropGateway

        gateway = InteropGateway(client=cycle_scenario.alice_client)
        with pytest.raises(RuntimeError):
            gateway.exchange_cycle().leg(OFFER_ADDRESS, "GOLD-1").build()
        with pytest.raises(RuntimeError):
            (
                gateway.exchange_cycle()
                .leg(OFFER_ADDRESS, "GOLD-1")
                .leg(ASK_ADDRESS, "OIL-9")  # no party named
            )


class TestCycleMetrics:
    def test_completed_cycle_reports_latency_and_transitions(self, cycle_scenario):
        metrics = ExchangeMetrics()
        cycle = make_cycle(cycle_scenario, metrics=metrics)
        cycle.run()
        snapshot = metrics.snapshot()
        assert snapshot["started"] == {"cycle": 1}
        assert snapshot["active"] == {"cycle": 0}
        assert snapshot["transitions"]["cycle:completed"] == 1
        assert snapshot["transitions"]["cycle:locked"] == 1
        [latency] = snapshot["latencies"]["cycle"]
        assert latency >= 0.0

    def test_refunded_cycle_counts_refund_legs(self, cycle_scenario):
        scenario = cycle_scenario
        metrics = ExchangeMetrics()
        cycle = make_cycle(scenario, metrics=metrics)
        cycle.lock_next()
        cycle.abort()
        scenario.clock.advance(CYCLE_TIMEOUT + 1.0)
        cycle.refund()
        snapshot = metrics.snapshot()
        assert snapshot["aborts"] == {"cycle": 1}
        assert snapshot["refund_legs"] == {"cycle": 1}
        assert metrics.active("cycle") == 0
