"""Tests for the ECC and CMDAC system contracts (as deployed chaincode)."""

from __future__ import annotations

import json

import pytest

from repro.apps import build_trade_scenario
from repro.apps.stl.chaincode import STL_CHAINCODE_NAME
from repro.errors import EndorsementError
from repro.interop.contracts import CMDAC_NAME, ECC_NAME


@pytest.fixture()
def scenario(trade_scenario):
    return trade_scenario


def stl_admin(scenario):
    return scenario.stl.org("seller-org").member("admin")


def swt_admin(scenario):
    return scenario.swt.org("buyer-bank-org").member("admin")


class TestECC:
    def test_rule_recorded_by_bootstrap(self, scenario):
        raw = scenario.stl.gateway.evaluate(
            stl_admin(scenario), ECC_NAME, "ListAccessRules", []
        )
        rules = json.loads(raw)
        assert ["swt", "seller-bank-org", STL_CHAINCODE_NAME, "GetBillOfLading"] in rules

    def test_add_and_remove_rule(self, scenario):
        admin = stl_admin(scenario)
        scenario.stl.gateway.submit(
            admin, ECC_NAME, "AddAccessRule", ["swt", "*", "SomeCC", "*"]
        )
        rules = json.loads(
            scenario.stl.gateway.evaluate(admin, ECC_NAME, "ListAccessRules", [])
        )
        assert ["swt", "*", "SomeCC", "*"] in rules
        scenario.stl.gateway.submit(
            admin, ECC_NAME, "RemoveAccessRule", ["swt", "*", "SomeCC", "*"]
        )
        rules = json.loads(
            scenario.stl.gateway.evaluate(admin, ECC_NAME, "ListAccessRules", [])
        )
        assert ["swt", "*", "SomeCC", "*"] not in rules

    def test_remove_missing_rule_fails(self, scenario):
        with pytest.raises(EndorsementError, match="no access rule"):
            scenario.stl.gateway.submit(
                stl_admin(scenario), ECC_NAME, "RemoveAccessRule", ["a", "b", "c", "d"]
            )

    def test_wildcard_network_rejected(self, scenario):
        with pytest.raises(EndorsementError, match="specific network"):
            scenario.stl.gateway.submit(
                stl_admin(scenario), ECC_NAME, "AddAccessRule", ["*", "o", "cc", "fn"]
            )

    def test_wildcard_chaincode_rejected(self, scenario):
        with pytest.raises(EndorsementError, match="specific chaincode"):
            scenario.stl.gateway.submit(
                stl_admin(scenario), ECC_NAME, "AddAccessRule", ["swt", "o", "*", "fn"]
            )

    def test_unknown_function(self, scenario):
        with pytest.raises(EndorsementError, match="no function"):
            scenario.stl.gateway.evaluate(stl_admin(scenario), ECC_NAME, "Bogus", [])

    def test_seal_response_plain(self, scenario):
        envelope = scenario.stl.gateway.evaluate(
            stl_admin(scenario),
            ECC_NAME,
            "SealResponse",
            [b"data".hex(), "", "false"],
        )
        parsed = json.loads(envelope)
        assert bytes.fromhex(parsed["plain"]) == b"data"

    def test_seal_response_invalid_pubkey(self, scenario):
        with pytest.raises(EndorsementError, match="public key"):
            scenario.stl.gateway.evaluate(
                stl_admin(scenario),
                ECC_NAME,
                "SealResponse",
                [b"data".hex(), "zz", "true"],
            )


class TestCMDAC:
    def test_configs_recorded_by_linking(self, scenario):
        raw = scenario.swt.gateway.evaluate(
            swt_admin(scenario), CMDAC_NAME, "GetNetworkConfig", ["stl"]
        )
        from repro.proto.messages import NetworkConfigMsg

        config = NetworkConfigMsg.decode(bytes.fromhex(raw.decode("ascii")))
        assert config.network_id == "stl"
        assert {org.org_id for org in config.organizations} == {
            "seller-org",
            "carrier-org",
        }

    def test_list_networks(self, scenario):
        raw = scenario.swt.gateway.evaluate(
            swt_admin(scenario), CMDAC_NAME, "ListNetworks", []
        )
        assert json.loads(raw) == ["stl"]

    def test_verification_policy_recorded(self, scenario):
        raw = scenario.swt.gateway.evaluate(
            swt_admin(scenario), CMDAC_NAME, "GetVerificationPolicy", ["stl"]
        )
        assert raw.decode() == "AND(org:seller-org, org:carrier-org)"

    def test_missing_config_errors(self, scenario):
        with pytest.raises(EndorsementError, match="no configuration"):
            scenario.swt.gateway.evaluate(
                swt_admin(scenario), CMDAC_NAME, "GetNetworkConfig", ["atlantis"]
            )

    def test_missing_policy_errors(self, scenario):
        with pytest.raises(EndorsementError, match="no verification policy"):
            scenario.swt.gateway.evaluate(
                swt_admin(scenario), CMDAC_NAME, "GetVerificationPolicy", ["atlantis"]
            )

    def test_malformed_policy_rejected_at_write(self, scenario):
        with pytest.raises(EndorsementError):
            scenario.swt.gateway.submit(
                swt_admin(scenario),
                CMDAC_NAME,
                "SetVerificationPolicy",
                ["stl", "NOT A POLICY ("],
            )

    def test_config_network_id_mismatch_rejected(self, scenario):
        config_hex = scenario.stl.export_config().encode().hex()
        with pytest.raises(EndorsementError, match="not"):
            scenario.swt.gateway.submit(
                swt_admin(scenario),
                CMDAC_NAME,
                "RecordNetworkConfig",
                ["wrong-name", config_hex],
            )

    def test_undecodable_config_rejected(self, scenario):
        with pytest.raises(EndorsementError):
            scenario.swt.gateway.submit(
                swt_admin(scenario),
                CMDAC_NAME,
                "RecordNetworkConfig",
                ["x", "zzzz"],
            )

    def test_validate_foreign_certificate_paths(self, scenario):
        admin = stl_admin(scenario)
        seller_client = scenario.swt.org("seller-bank-org").member("seller")
        ok = scenario.stl.gateway.evaluate(
            admin,
            CMDAC_NAME,
            "ValidateForeignCertificate",
            ["swt", seller_client.certificate.to_bytes().hex()],
        )
        assert ok == b"OK"
        # A certificate from an org not in the recorded config fails.
        stranger = scenario.stl.org("seller-org").member("admin")
        with pytest.raises(EndorsementError, match="not part"):
            scenario.stl.gateway.evaluate(
                admin,
                CMDAC_NAME,
                "ValidateForeignCertificate",
                ["swt", stranger.certificate.to_bytes().hex()],
            )

    def test_validate_proof_full_path_via_use_case(self, shipped_scenario):
        """ValidateProof accepts a genuine proof and consumes the nonce."""
        scenario, po_ref = shipped_scenario
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        lc = scenario.swt_seller_client.upload_dispatch_docs(po_ref, fetched)
        assert lc["status"] == "DOCS_UPLOADED"
        # The nonce is now consumed on the SWT ledger.
        peer = scenario.swt.peers[0]
        nonce_key = f"cmdac\x00nonce/stl/{fetched.nonce}"
        assert peer.state.get(nonce_key) is not None

    def test_validate_proof_rejects_bad_args_json(self, scenario):
        with pytest.raises(EndorsementError):
            scenario.swt.gateway.evaluate(
                swt_admin(scenario),
                CMDAC_NAME,
                "ValidateProof",
                ["stl", "stl/l/c/f", "not-json", "n", "00", "[]"],
            )

    def test_validate_proof_rejects_address_network_mismatch(self, scenario):
        with pytest.raises(EndorsementError, match="does not belong"):
            scenario.swt.gateway.evaluate(
                swt_admin(scenario),
                CMDAC_NAME,
                "ValidateProof",
                ["stl", "other/l/c/f", "[]", "n", "00", "[]"],
            )
