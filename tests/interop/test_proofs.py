"""Tests for seal envelopes, attestations, and proof-bundle validation."""

from __future__ import annotations

import pytest

from repro.crypto.hashing import sha256
from repro.errors import ProofError
from repro.fabric.identity import Organization
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import (
    AttestationProofScheme,
    ProofBundle,
    SignedAttestation,
    decrypt_attestation,
    envelope_plaintext_hash,
    seal_result,
    unseal_result,
)
from repro.proto.address import CrossNetworkAddress

ADDRESS = CrossNetworkAddress("stl", "main", "TradeLensCC", "GetBillOfLading")
ARGS = ["PO-1"]
NONCE = "nonce-42"
DATA = b'{"bl_id": "BL-PO-1"}'


@pytest.fixture(scope="module")
def world():
    """Two source orgs with one peer each, plus a requesting client."""
    seller = Organization("seller-org", network="stl")
    carrier = Organization("carrier-org", network="stl")
    client_org = Organization("client-org", network="swt")
    return {
        "seller_peer": seller.enroll("peer0", role="peer"),
        "carrier_peer": carrier.enroll("peer0", role="peer"),
        "client": client_org.enroll("app", role="client"),
        "org_roots": {
            "seller-org": seller.msp.root_certificate,
            "carrier-org": carrier.msp.root_certificate,
        },
        "seller_org": seller,
        "carrier_org": carrier,
    }


def make_bundle(world, confidential=True, data=DATA, nonce=NONCE, args=ARGS):
    scheme = AttestationProofScheme()
    client_key = world["client"].keypair.public if confidential else None
    attestations = []
    for peer in (world["seller_peer"], world["carrier_peer"]):
        envelope = seal_result(data, client_key, confidential)
        wire = scheme.generate_attestation(
            peer_identity=peer,
            network="stl",
            address=ADDRESS,
            args=args,
            nonce=nonce,
            result_envelope=envelope,
            client_key=client_key,
            confidential=confidential,
            timestamp=1.0,
        )
        attestations.append(
            decrypt_attestation(
                wire, world["client"].keypair.private if confidential else None
            )
        )
    return ProofBundle(attestations=tuple(attestations))


def validate(world, bundle, **overrides):
    scheme = AttestationProofScheme()
    kwargs = dict(
        expected_network="stl",
        expected_address=ADDRESS,
        expected_args=ARGS,
        expected_nonce=NONCE,
        expected_data_hash=sha256(DATA).hex(),
        policy=parse_verification_policy("AND(org:seller-org, org:carrier-org)"),
        org_roots=world["org_roots"],
    )
    kwargs.update(overrides)
    return scheme.validate_bundle(bundle, **kwargs)


class TestSealEnvelopes:
    def test_confidential_roundtrip(self, world):
        client = world["client"]
        envelope = seal_result(DATA, client.keypair.public, True)
        assert unseal_result(envelope, client.keypair.private) == DATA
        assert envelope_plaintext_hash(envelope) == sha256(DATA).hex()
        assert DATA not in envelope

    def test_plain_roundtrip(self):
        envelope = seal_result(DATA, None, False)
        assert unseal_result(envelope) == DATA

    def test_confidential_requires_key(self):
        with pytest.raises(ProofError):
            seal_result(DATA, None, True)

    def test_unseal_confidential_requires_private_key(self, world):
        envelope = seal_result(DATA, world["client"].keypair.public, True)
        with pytest.raises(ProofError, match="private key"):
            unseal_result(envelope)

    def test_hash_mismatch_detected(self):
        envelope = seal_result(DATA, None, False)
        tampered = envelope.replace(DATA.hex().encode(), DATA.hex().encode()[::-1])
        with pytest.raises(ProofError):
            unseal_result(tampered)

    def test_malformed_envelope(self):
        with pytest.raises(ProofError):
            unseal_result(b"garbage")
        with pytest.raises(ProofError):
            unseal_result(b'{"no_hash": 1}')


class TestBundleSerialization:
    def test_json_roundtrip(self, world):
        bundle = make_bundle(world)
        restored = ProofBundle.from_json(bundle.to_json())
        assert restored == bundle
        assert len(restored) == 2

    def test_bad_json_rejected(self):
        with pytest.raises(ProofError):
            ProofBundle.from_json("not json")
        with pytest.raises(ProofError):
            ProofBundle.from_json('{"not": "a list"}')
        with pytest.raises(ProofError):
            ProofBundle.from_json('[{"metadata": "zz"}]')


class TestValidation:
    def test_valid_bundle_accepted(self, world):
        attesters = validate(world, make_bundle(world))
        assert {org for org, _ in attesters} == {"seller-org", "carrier-org"}

    def test_plain_mode_bundle_accepted(self, world):
        attesters = validate(world, make_bundle(world, confidential=False))
        assert len(attesters) == 2

    def test_empty_bundle_rejected(self, world):
        with pytest.raises(ProofError, match="empty"):
            validate(world, ProofBundle(attestations=()))

    def test_policy_unsatisfied_rejected(self, world):
        bundle = make_bundle(world)
        one_org_only = ProofBundle(attestations=bundle.attestations[:1])
        with pytest.raises(ProofError, match="policy"):
            validate(world, one_org_only)

    def test_wrong_nonce_rejected(self, world):
        with pytest.raises(ProofError, match="nonce"):
            validate(world, make_bundle(world), expected_nonce="other-nonce")

    def test_wrong_args_rejected(self, world):
        with pytest.raises(ProofError, match="argument"):
            validate(world, make_bundle(world), expected_args=["PO-2"])

    def test_wrong_address_rejected(self, world):
        other = CrossNetworkAddress("stl", "main", "TradeLensCC", "GetShipment")
        with pytest.raises(ProofError, match="address"):
            validate(world, make_bundle(world), expected_address=other)

    def test_wrong_network_rejected(self, world):
        with pytest.raises(ProofError, match="network"):
            validate(world, make_bundle(world), expected_network="mars")

    def test_data_hash_mismatch_rejected(self, world):
        with pytest.raises(ProofError, match="data hash"):
            validate(
                world,
                make_bundle(world),
                expected_data_hash=sha256(b"forged B/L").hex(),
            )

    def test_unknown_org_rejected(self, world):
        rogue = Organization("rogue-org", network="stl")
        rogue_peer = rogue.enroll("peer0", role="peer")
        scheme = AttestationProofScheme()
        envelope = seal_result(DATA, None, False)
        wire = scheme.generate_attestation(
            peer_identity=rogue_peer,
            network="stl",
            address=ADDRESS,
            args=ARGS,
            nonce=NONCE,
            result_envelope=envelope,
            client_key=None,
            confidential=False,
            timestamp=1.0,
        )
        bundle = ProofBundle(attestations=(decrypt_attestation(wire, None),))
        with pytest.raises(ProofError, match="not in the recorded configuration"):
            validate(
                world, bundle, policy=parse_verification_policy("org:rogue-org")
            )

    def test_non_peer_signer_rejected(self, world):
        admin = world["seller_org"].enroll("sneaky-admin", role="admin")
        scheme = AttestationProofScheme()
        envelope = seal_result(DATA, None, False)
        wire = scheme.generate_attestation(
            peer_identity=admin,
            network="stl",
            address=ADDRESS,
            args=ARGS,
            nonce=NONCE,
            result_envelope=envelope,
            client_key=None,
            confidential=False,
            timestamp=1.0,
        )
        bundle = ProofBundle(attestations=(decrypt_attestation(wire, None),))
        with pytest.raises(ProofError, match="not a peer"):
            validate(world, bundle, policy=parse_verification_policy("org:seller-org"))

    def test_tampered_signature_rejected(self, world):
        bundle = make_bundle(world)
        victim = bundle.attestations[0]
        forged = SignedAttestation(
            metadata_bytes=victim.metadata_bytes,
            signature=bytes(64),
            certificate=victim.certificate,
        )
        tampered = ProofBundle(attestations=(forged, bundle.attestations[1]))
        with pytest.raises(ProofError):
            validate(world, tampered)

    def test_tampered_metadata_rejected(self, world):
        bundle = make_bundle(world)
        victim = bundle.attestations[0]
        mutated = bytearray(victim.metadata_bytes)
        mutated[-1] ^= 0x01
        forged = SignedAttestation(
            metadata_bytes=bytes(mutated),
            signature=victim.signature,
            certificate=victim.certificate,
        )
        tampered = ProofBundle(attestations=(forged, bundle.attestations[1]))
        with pytest.raises(ProofError):
            validate(world, tampered)

    def test_cross_org_certificate_swap_rejected(self, world):
        """Metadata claims seller-org but the certificate is carrier-org."""
        bundle = make_bundle(world)
        seller_att, carrier_att = bundle.attestations
        swapped = SignedAttestation(
            metadata_bytes=seller_att.metadata_bytes,
            signature=seller_att.signature,
            certificate=carrier_att.certificate,
        )
        tampered = ProofBundle(attestations=(swapped, carrier_att))
        with pytest.raises(ProofError):
            validate(world, tampered)

    def test_attestation_without_metadata_rejected(self, world):
        from repro.proto.messages import Attestation

        with pytest.raises(ProofError, match="no metadata"):
            decrypt_attestation(Attestation(signature=b"s"), None)

    def test_encrypted_metadata_needs_key(self, world):
        scheme = AttestationProofScheme()
        client_key = world["client"].keypair.public
        envelope = seal_result(DATA, client_key, True)
        wire = scheme.generate_attestation(
            peer_identity=world["seller_peer"],
            network="stl",
            address=ADDRESS,
            args=ARGS,
            nonce=NONCE,
            result_envelope=envelope,
            client_key=client_key,
            confidential=True,
            timestamp=1.0,
        )
        with pytest.raises(ProofError, match="private key"):
            decrypt_attestation(wire, None)
