"""Tests for the verification-policy algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolicyError
from repro.interop.policy import (
    OrgAttestation,
    PeerAttestation,
    ThresholdPolicy,
    all_orgs_policy,
    parse_verification_policy,
    policy_all_of,
    policy_any_of,
)


class TestLeaves:
    def test_org_leaf(self):
        policy = OrgAttestation("seller-org")
        assert policy.satisfied_by([("seller-org", "peer0.seller-org")])
        assert not policy.satisfied_by([("carrier-org", "peer0.carrier-org")])
        assert policy.expression() == "org:seller-org"

    def test_peer_leaf(self):
        policy = PeerAttestation("peer0.carrier-org")
        assert policy.satisfied_by([("carrier-org", "peer0.carrier-org")])
        assert not policy.satisfied_by([("carrier-org", "peer1.carrier-org")])
        assert policy.mentioned_orgs() == {"carrier-org"}


class TestCombinators:
    def test_and_of_two_orgs(self):
        """The paper's §4.3 policy shape."""
        policy = parse_verification_policy("AND(org:seller-org, org:carrier-org)")
        assert policy.satisfied_by(
            [("seller-org", "p0.seller-org"), ("carrier-org", "p0.carrier-org")]
        )
        assert not policy.satisfied_by([("seller-org", "p0.seller-org")])

    def test_or(self):
        policy = parse_verification_policy("OR(org:a, org:b)")
        assert policy.satisfied_by([("b", "p.b")])
        assert not policy.satisfied_by([("c", "p.c")])

    def test_outof(self):
        policy = parse_verification_policy("OutOf(2, org:a, org:b, org:c)")
        assert policy.satisfied_by([("a", "p.a"), ("c", "p.c")])
        assert not policy.satisfied_by([("b", "p.b")])

    def test_nested(self):
        policy = parse_verification_policy("OR(AND(org:a, org:b), peer:special.c)")
        assert policy.satisfied_by([("c", "special.c")])
        assert policy.satisfied_by([("a", "p.a"), ("b", "p.b")])
        assert not policy.satisfied_by([("a", "p.a")])

    def test_threshold_bounds(self):
        with pytest.raises(PolicyError):
            ThresholdPolicy(0, (OrgAttestation("a"),))
        with pytest.raises(PolicyError):
            ThresholdPolicy(3, (OrgAttestation("a"), OrgAttestation("b")))

    def test_expression_roundtrip(self):
        source = "OutOf(2, org:a, AND(org:b, peer:p0.c), org:d)"
        policy = parse_verification_policy(source)
        assert parse_verification_policy(policy.expression()) == policy

    def test_equality_by_expression(self):
        assert parse_verification_policy("AND(org:a, org:b)") == policy_all_of(
            OrgAttestation("a"), OrgAttestation("b")
        )


class TestSelection:
    AVAILABLE = [
        ("seller-org", "peer0.seller-org"),
        ("carrier-org", "peer0.carrier-org"),
        ("carrier-org", "peer1.carrier-org"),
    ]

    def test_minimal_selection(self):
        policy = parse_verification_policy("AND(org:seller-org, org:carrier-org)")
        selection = policy.select_attesters(self.AVAILABLE)
        assert len(selection) == 2
        assert {org for org, _ in selection} == {"seller-org", "carrier-org"}

    def test_single_org_selects_one_peer(self):
        policy = parse_verification_policy("org:carrier-org")
        selection = policy.select_attesters(self.AVAILABLE)
        assert len(selection) == 1

    def test_unsatisfiable_returns_none(self):
        policy = parse_verification_policy("org:bank-org")
        assert policy.select_attesters(self.AVAILABLE) is None

    def test_specific_peer_selected(self):
        policy = parse_verification_policy("peer:peer1.carrier-org")
        assert policy.select_attesters(self.AVAILABLE) == [
            ("carrier-org", "peer1.carrier-org")
        ]

    def test_selection_satisfies_policy_property(self):
        for expression in (
            "OR(org:seller-org, org:carrier-org)",
            "OutOf(2, org:seller-org, org:carrier-org, peer:peer1.carrier-org)",
            "AND(org:carrier-org, peer:peer0.seller-org)",
        ):
            policy = parse_verification_policy(expression)
            selection = policy.select_attesters(self.AVAILABLE)
            assert selection is not None
            assert policy.satisfied_by(selection)


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "org:",
            "AND()",
            "AND(org:a",
            "AND(org:a org:b)",
            "NOT(org:a)",
            "OutOf(9, org:a)",
            "org:a extra",
            "peer:p; DROP TABLE",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(PolicyError):
            parse_verification_policy(bad)


class TestAllOrgsPolicy:
    def test_multiple_orgs(self):
        policy = all_orgs_policy(["b", "a"])
        assert policy.expression() == "AND(org:a, org:b)"

    def test_single_org(self):
        assert all_orgs_policy(["only"]).expression() == "org:only"

    def test_empty_rejected(self):
        with pytest.raises(PolicyError):
            all_orgs_policy([])

    @settings(max_examples=25, deadline=None)
    @given(
        orgs=st.lists(
            st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=5, unique=True
        )
    )
    def test_requires_every_org(self, orgs):
        policy = all_orgs_policy(orgs)
        full = [(org, f"p.{org}") for org in orgs]
        assert policy.satisfied_by(full)
        if len(full) > 1:
            assert not policy.satisfied_by(full[1:])
