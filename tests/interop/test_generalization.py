"""§5 generalization: the same relay protocol over Corda-like and
Quorum-like networks, with destination-side acceptance on Fabric."""

from __future__ import annotations

import json

import pytest

from repro.corda import CordaNetwork, LinearState
from repro.errors import AccessDeniedError
from repro.fabric.identity import Organization
from repro.interop.client import InteropClient
from repro.interop.contracts.ports import InteropPort
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.corda_driver import CordaDriver
from repro.interop.drivers.quorum_driver import QuorumDriver
from repro.interop.relay import RelayService
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg
from repro.quorum import DocumentRegistryContract, QuorumNetwork


@pytest.fixture()
def destination():
    """A destination-side org + client + relay (network-agnostic)."""
    org = Organization("dest-org", network="destnet")
    client_identity = org.enroll("app", role="client")
    registry = InMemoryRegistry()
    relay = RelayService("destnet", registry)
    config = NetworkConfigMsg(
        network_id="destnet",
        platform="fabric",
        organizations=[
            OrganizationConfigMsg(
                org_id="dest-org",
                msp_id="dest-orgMSP",
                root_certificate=org.msp.root_certificate.to_bytes(),
            )
        ],
    )
    client = InteropClient(client_identity, relay, "destnet")
    return {
        "org": org,
        "identity": client_identity,
        "registry": registry,
        "relay": relay,
        "config": config,
        "client": client,
    }


@pytest.fixture()
def corda_source(destination):
    network = CordaNetwork("cordanet")
    node_a = network.add_node("nodeA")
    network.add_node("nodeB")
    state = LinearState(
        linear_id="DOC-1",
        kind="trade-doc",
        data={"po_ref": "PO-C", "value": 7},
        participants=("nodeA", "nodeB"),
    )
    node_a.propose([], [state], "Record")
    port = InteropPort("cordanet")
    port.record_network_config(destination["config"])
    port.add_access_rule("destnet", "dest-org", "vault", "GetState")
    relay = RelayService("cordanet", destination["registry"])
    relay.register_driver(CordaDriver(network, port))
    destination["registry"].register("cordanet", relay)
    return network, port


@pytest.fixture()
def quorum_source(destination):
    network = QuorumNetwork("quorumnet")
    network.deploy_contract(DocumentRegistryContract())
    network.add_peer("peer1", "op-org-1")
    network.add_peer("peer2", "op-org-2")
    admin = network.enroll_client("admin", "op-org-1")
    network.submit_transaction(
        admin, "document-registry", "RegisterDocument", ["DOC-9", '{"po_ref": "PO-Q"}']
    )
    port = InteropPort("quorumnet")
    port.record_network_config(destination["config"])
    port.add_access_rule("destnet", "dest-org", "document-registry", "GetDocument")
    relay = RelayService("quorumnet", destination["registry"])
    relay.register_driver(QuorumDriver(network, port))
    destination["registry"].register("quorumnet", relay)
    return network, port


class TestCordaSource:
    def test_query_with_two_node_policy(self, destination, corda_source):
        result = destination["client"].remote_query(
            "cordanet/vault/vault/GetState",
            ["DOC-1"],
            policy="AND(org:nodeA, org:nodeB)",
        )
        assert json.loads(result.data)["data"]["po_ref"] == "PO-C"
        assert len(result.proof) == 2

    def test_notary_in_verification_policy(self, destination, corda_source):
        """§5: Corda policies can include notary signatures."""
        result = destination["client"].remote_query(
            "cordanet/vault/vault/GetState",
            ["DOC-1"],
            policy="AND(org:nodeA, org:notary-org)",
        )
        orgs = {a.metadata().org for a in result.proof.attestations}
        assert orgs == {"nodeA", "notary-org"}

    def test_exposure_control_enforced(self, destination, corda_source):
        network, port = corda_source
        port.remove_access_rule("destnet", "dest-org", "vault", "GetState")
        with pytest.raises(AccessDeniedError):
            destination["client"].remote_query(
                "cordanet/vault/vault/GetState", ["DOC-1"], policy="org:nodeA"
            )

    def test_unknown_state_is_error(self, destination, corda_source):
        from repro.errors import RelayError

        with pytest.raises(RelayError, match="no unconsumed state"):
            destination["client"].remote_query(
                "cordanet/vault/vault/GetState", ["DOC-GHOST"], policy="org:nodeA"
            )


class TestQuorumSource:
    def test_query_with_two_org_policy(self, destination, quorum_source):
        result = destination["client"].remote_query(
            "quorumnet/state/document-registry/GetDocument",
            ["DOC-9"],
            policy="AND(org:op-org-1, org:op-org-2)",
        )
        assert json.loads(result.data)["po_ref"] == "PO-Q"
        assert len(result.proof) == 2

    def test_access_denied_without_rule(self, destination, quorum_source):
        with pytest.raises(AccessDeniedError):
            destination["client"].remote_query(
                "quorumnet/state/document-registry/ListDocuments",
                [],
                policy="org:op-org-1",
            )

    def test_plain_mode(self, destination, quorum_source):
        result = destination["client"].remote_query(
            "quorumnet/state/document-registry/GetDocument",
            ["DOC-9"],
            policy="org:op-org-2",
            confidential=False,
        )
        assert json.loads(result.data)["po_ref"] == "PO-Q"


class TestFabricDestinationAcceptsForeignPlatformProofs:
    """The destination's CMDAC is source-platform-agnostic: record the
    Corda network's config on a Fabric ledger and ValidateProof passes."""

    def test_corda_proof_accepted_by_fabric_cmdac(self, trade_scenario, destination, corda_source):
        corda_network, _ = corda_source
        swt = trade_scenario.swt
        admin = swt.org("buyer-bank-org").member("admin")
        config_hex = corda_network.export_config().encode().hex()
        swt.gateway.submit(
            admin, "cmdac", "RecordNetworkConfig", ["cordanet", config_hex]
        )
        swt.gateway.submit(
            admin,
            "cmdac",
            "SetVerificationPolicy",
            ["cordanet", "AND(org:nodeA, org:nodeB)"],
        )
        # Destination-side client fetches from Corda...
        fetched = destination["client"].remote_query(
            "cordanet/vault/vault/GetState",
            ["DOC-1"],
            policy="AND(org:nodeA, org:nodeB)",
        )
        # ...and the Fabric CMDAC validates the proof end to end.
        from repro.crypto.hashing import sha256
        from repro.utils.encoding import canonical_json

        result = swt.gateway.submit(
            admin,
            "cmdac",
            "ValidateProof",
            [
                "cordanet",
                "cordanet/vault/vault/GetState",
                canonical_json(["DOC-1"]).decode("ascii"),
                fetched.nonce,
                sha256(fetched.data).hex(),
                fetched.proof_json,
            ],
        )
        assert result.committed
        assert result.result == b"OK"
