"""Tests for the extension features: cross-network transactions and events."""

from __future__ import annotations

import json

import pytest

from repro.errors import AccessDeniedError
from repro.interop.events import EventBridge, EventBridgeRegistry, RemoteEventNotification
from repro.interop.transactions import (
    RemoteTransactionClient,
    enable_remote_transactions,
)

POLICY = "AND(org:seller-org, org:carrier-org)"


@pytest.fixture()
def tx_scenario(trade_scenario):
    """Trade scenario with remote transactions enabled on STL."""
    scenario = trade_scenario
    invoker = scenario.stl.org("seller-org").enroll("interop-invoker", role="client")
    enable_remote_transactions(
        scenario.stl, scenario.stl_relay, invoker, discovery=scenario.discovery
    )
    admin = scenario.stl.org("seller-org").member("admin")
    # Expose CreateShipment for remote invocation by SWT's seller org.
    scenario.stl.gateway.submit(
        admin,
        "ecc",
        "AddAccessRule",
        ["swt", "seller-bank-org", "TradeLensCC", "CreateShipment"],
    )
    tx_client = RemoteTransactionClient(
        scenario.swt_seller_client.interop_client, scenario.swt_relay
    )
    return scenario, tx_client


class TestRemoteTransactions:
    def test_remote_transaction_commits_on_source(self, tx_scenario):
        scenario, tx_client = tx_scenario
        result = tx_client.remote_transact(
            "stl/trade-logistics/TradeLensCC/CreateShipment",
            ["PO-REMOTE-1", "remotely created goods"],
            policy=POLICY,
        )
        assert result.tx_id.startswith("tx-")
        assert result.attesting_orgs == ["carrier-org", "seller-org"]
        shipment = json.loads(result.result)
        assert shipment["po_ref"] == "PO-REMOTE-1"
        # The update is really on the source ledger.
        local = scenario.stl_seller_app.get_shipment("PO-REMOTE-1")
        assert local["status"] == "CREATED"

    def test_attestations_cover_commit_metadata(self, tx_scenario):
        scenario, tx_client = tx_scenario
        result = tx_client.remote_transact(
            "stl/trade-logistics/TradeLensCC/CreateShipment",
            ["PO-REMOTE-2", "goods"],
            policy=POLICY,
        )
        assert result.block_number >= 0
        block = scenario.stl.peers[0].ledger.block(result.block_number)
        assert any(tx.tx_id == result.tx_id for tx in block.transactions)

    def test_unexposed_function_denied(self, tx_scenario):
        scenario, tx_client = tx_scenario
        with pytest.raises(AccessDeniedError):
            tx_client.remote_transact(
                "stl/trade-logistics/TradeLensCC/AcceptShipment",
                ["PO-REMOTE-1"],
                policy=POLICY,
            )

    def test_failed_source_transaction_reported(self, tx_scenario):
        scenario, tx_client = tx_scenario
        from repro.errors import RelayError

        tx_client.remote_transact(
            "stl/trade-logistics/TradeLensCC/CreateShipment",
            ["PO-DUP", "goods"],
            policy=POLICY,
        )
        with pytest.raises(RelayError, match="already exists"):
            tx_client.remote_transact(
                "stl/trade-logistics/TradeLensCC/CreateShipment",
                ["PO-DUP", "goods"],
                policy=POLICY,
            )

    def test_non_confidential_remote_transaction(self, tx_scenario):
        scenario, tx_client = tx_scenario
        result = tx_client.remote_transact(
            "stl/trade-logistics/TradeLensCC/CreateShipment",
            ["PO-REMOTE-3", "goods"],
            policy=POLICY,
            confidential=False,
        )
        assert json.loads(result.result)["po_ref"] == "PO-REMOTE-3"


@pytest.fixture()
def event_scenario(trade_scenario):
    scenario = trade_scenario
    admin = scenario.stl.org("seller-org").member("admin")
    scenario.stl.gateway.submit(
        admin,
        "ecc",
        "AddAccessRule",
        ["swt", "seller-bank-org", "TradeLensCC", "event:BillOfLadingIssued"],
    )
    bridge = EventBridge(scenario.stl, admin)
    registry = EventBridgeRegistry()
    registry.register("stl", bridge)
    return scenario, bridge, registry


def _ship(scenario, po_ref):
    scenario.stl_seller_app.create_shipment(po_ref, "goods")
    scenario.carrier_app.accept_shipment(po_ref)
    scenario.carrier_app.record_handover(po_ref)
    scenario.carrier_app.issue_bill_of_lading(po_ref, "MV Ev")


class TestRemoteEvents:
    def test_subscription_receives_events(self, event_scenario):
        scenario, bridge, _ = event_scenario
        received: list[RemoteEventNotification] = []
        subscription = bridge.subscribe(
            "swt",
            "seller-bank-org",
            "TradeLensCC",
            "BillOfLadingIssued",
            callback=received.append,
        )
        _ship(scenario, "PO-EV-1")
        assert len(received) == 1
        assert received[0].payload == b"PO-EV-1"
        assert received[0].source_network == "stl"
        assert subscription.notifications == received

    def test_unsubscribed_bridge_stops_delivering(self, event_scenario):
        scenario, bridge, _ = event_scenario
        subscription = bridge.subscribe(
            "swt", "seller-bank-org", "TradeLensCC", "BillOfLadingIssued"
        )
        _ship(scenario, "PO-EV-2")
        assert len(subscription.notifications) == 1
        bridge.unsubscribe(subscription)
        _ship(scenario, "PO-EV-3")
        assert len(subscription.notifications) == 1

    def test_subscription_requires_event_rule(self, event_scenario):
        scenario, bridge, _ = event_scenario
        with pytest.raises(AccessDeniedError, match="event"):
            bridge.subscribe("swt", "seller-bank-org", "TradeLensCC", "ShipmentCreated")
        with pytest.raises(AccessDeniedError):
            bridge.subscribe("swt", "buyer-bank-org", "TradeLensCC", "BillOfLadingIssued")

    def test_notification_roundtrips_wire_form(self, event_scenario):
        notification = RemoteEventNotification(
            source_network="stl",
            chaincode="TradeLensCC",
            name="BillOfLadingIssued",
            payload=b"PO-1",
            block_number=7,
            tx_id="tx-abc",
        )
        assert RemoteEventNotification.from_bytes(notification.to_bytes()) == notification

    def test_notify_then_verify_pattern(self, event_scenario):
        """The notification itself is untrusted; the follow-up query is
        proof-backed — the module's core trust argument."""
        scenario, bridge, _ = event_scenario
        subscription = bridge.subscribe(
            "swt", "seller-bank-org", "TradeLensCC", "BillOfLadingIssued"
        )
        _ship(scenario, "PO-EV-4")
        notification = subscription.notifications[-1]
        po_ref = notification.payload.decode()
        result = subscription.verify_with_query(
            scenario.swt_seller_client.interop_client,
            "stl/trade-logistics/TradeLensCC/GetBillOfLading",
            [po_ref],
            policy=POLICY,
        )
        assert json.loads(result.data)["po_ref"] == po_ref
        assert len(result.proof) == 2

    def test_bridge_registry_lookup(self, event_scenario):
        _, bridge, registry = event_scenario
        assert registry.lookup("stl") is bridge
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError):
            registry.lookup("atlantis")
