"""Tests for batched relay envelopes, partial failure, and failover paths."""

from __future__ import annotations

import pytest

from repro.errors import (
    DoSError,
    RelayError,
    RelayUnavailableError,
)
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import RateLimiter, RelayService
from repro.proto.messages import (
    MSG_KIND_BATCH_REQUEST,
    MSG_KIND_BATCH_RESPONSE,
    MSG_KIND_ERROR,
    STATUS_ERROR,
    STATUS_OK,
    BatchQueryRequest,
    BatchQueryResponse,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
    RelayEnvelope,
    VerificationPolicyMsg,
)
from repro.utils.clock import SimulatedClock


class EchoDriver(NetworkDriver):
    """Answers with the query args; raises when asked to (per nonce)."""

    platform = "echo"

    def __init__(self, network_id: str, fail_nonces: set[str] | None = None) -> None:
        super().__init__(network_id)
        self.fail_nonces = fail_nonces or set()
        self.executed: list[str] = []

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        self.executed.append(query.nonce)
        if query.nonce in self.fail_nonces:
            raise RuntimeError(f"simulated failure for {query.nonce}")
        return QueryResponse(
            version=1,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=b"echo:" + ",".join(query.args).encode(),
        )


def make_query(network="stl", nonce="n-1", args=("a",)) -> NetworkQuery:
    return NetworkQuery(
        version=1,
        address=NetworkAddressMsg(
            network=network, ledger="ledger", contract="cc", function="fn"
        ),
        args=list(args),
        nonce=nonce,
        policy=VerificationPolicyMsg(expression="org:x"),
    )


def make_source_relay(registry, network_id="stl", relay_id=None, **driver_kwargs):
    relay = RelayService(network_id, registry, relay_id=relay_id)
    driver = EchoDriver(network_id, **driver_kwargs)
    relay.register_driver(driver)
    registry.register(network_id, relay)
    return relay, driver


class TestBatchMessages:
    def test_round_trip(self):
        request = BatchQueryRequest(
            version=1, queries=[make_query(nonce="n-1"), make_query(nonce="n-2")]
        )
        decoded = BatchQueryRequest.decode(request.encode())
        assert decoded == request
        assert [q.nonce for q in decoded.queries] == ["n-1", "n-2"]

        response = BatchQueryResponse(
            version=1,
            responses=[QueryResponse(version=1, nonce="n-1", status=STATUS_OK)],
        )
        assert BatchQueryResponse.decode(response.encode()) == response


class TestBatchServing:
    def test_batch_round_trip_positional(self):
        registry = InMemoryRegistry()
        _, driver = make_source_relay(registry)
        dest = RelayService("swt", registry)
        queries = [make_query(nonce=f"n-{i}", args=(str(i),)) for i in range(4)]
        responses = dest.remote_query_batch(queries)
        assert [r.nonce for r in responses] == [q.nonce for q in queries]
        assert [r.result_plain for r in responses] == [
            b"echo:0",
            b"echo:1",
            b"echo:2",
            b"echo:3",
        ]
        assert sorted(driver.executed) == sorted(q.nonce for q in queries)
        assert dest.stats.batches_sent == 1
        assert dest.stats.queries_sent == 4

    def test_one_failing_member_does_not_poison_the_rest(self):
        registry = InMemoryRegistry()
        make_source_relay(registry, fail_nonces={"n-1"})
        dest = RelayService("swt", registry)
        responses = dest.remote_query_batch(
            [make_query(nonce="n-0"), make_query(nonce="n-1"), make_query(nonce="n-2")]
        )
        assert [r.status for r in responses] == [STATUS_OK, STATUS_ERROR, STATUS_OK]
        assert "simulated failure" in responses[1].error
        assert responses[1].nonce == "n-1"

    def test_multi_target_batch_splits_per_network(self):
        registry = InMemoryRegistry()
        stl_relay, _ = make_source_relay(registry, network_id="stl")
        corda_relay, _ = make_source_relay(registry, network_id="corda-net")
        dest = RelayService("swt", registry)
        responses = dest.remote_query_batch(
            [
                make_query(network="stl", nonce="n-0"),
                make_query(network="corda-net", nonce="n-1"),
                make_query(network="stl", nonce="n-2"),
            ]
        )
        assert [r.nonce for r in responses] == ["n-0", "n-1", "n-2"]
        assert dest.stats.batches_sent == 2
        assert stl_relay.stats.batches_served == 1
        assert corda_relay.stats.batches_served == 1
        assert stl_relay.stats.requests_served == 2
        assert corda_relay.stats.requests_served == 1

    def test_member_without_driver_gets_error_slot(self):
        """The serving relay answers unknown-network members per slot."""
        registry = InMemoryRegistry()
        relay, _ = make_source_relay(registry)
        batch = BatchQueryRequest(
            version=1,
            queries=[make_query(nonce="n-0"), make_query(network="ghost", nonce="n-1")],
        )
        envelope = RelayEnvelope(
            version=1,
            kind=MSG_KIND_BATCH_REQUEST,
            request_id="req-b",
            source_network="swt",
            payload=batch.encode(),
        )
        reply = RelayEnvelope.decode(relay.handle_request(envelope.encode()))
        assert reply.kind == MSG_KIND_BATCH_RESPONSE
        decoded = BatchQueryResponse.decode(reply.payload)
        assert [r.status for r in decoded.responses] == [STATUS_OK, STATUS_ERROR]
        assert "no driver" in decoded.responses[1].error
        # stat parity with the singleton path: unroutable member = failed
        assert relay.stats.requests_served == 1
        assert relay.stats.requests_failed == 1

    def test_undecodable_batch_is_envelope_error(self):
        registry = InMemoryRegistry()
        relay, _ = make_source_relay(registry)
        envelope = RelayEnvelope(
            version=1,
            kind=MSG_KIND_BATCH_REQUEST,
            request_id="req-bad",
            payload=b"\xff\xfe",
        )
        reply = RelayEnvelope.decode(relay.handle_request(envelope.encode()))
        assert reply.kind == MSG_KIND_ERROR
        assert reply.request_id == "req-bad"

    def test_empty_batch_returns_empty(self):
        dest = RelayService("swt", InMemoryRegistry())
        assert dest.remote_query_batch([]) == []

    def test_sequential_driver_batch(self):
        """batch_concurrency=1 forces the sequential execution path."""
        registry = InMemoryRegistry()
        _, driver = make_source_relay(registry)
        driver.batch_concurrency = 1
        dest = RelayService("swt", registry)
        responses = dest.remote_query_batch(
            [make_query(nonce=f"n-{i}") for i in range(3)]
        )
        assert [r.status for r in responses] == [STATUS_OK] * 3
        assert driver.executed == ["n-0", "n-1", "n-2"]


class TestFailover:
    def test_endpoint_raising_relay_unavailable_triggers_failover(self):
        """Regression: a dead endpoint's RelayUnavailableError must advance
        the failover loop, not abort the query."""

        class DeadEndpoint:
            def handle_request(self, data: bytes) -> bytes:
                raise RelayUnavailableError("endpoint is gone")

        registry = InMemoryRegistry()
        registry.register("stl", DeadEndpoint())
        make_source_relay(registry, relay_id="alive")
        dest = RelayService("swt", registry)
        response = dest.remote_query(make_query())
        assert response.status == STATUS_OK
        assert dest.stats.failovers == 1

    def test_dos_error_triggers_failover(self):
        class SheddingEndpoint:
            def handle_request(self, data: bytes) -> bytes:
                raise DoSError("overloaded")

        registry = InMemoryRegistry()
        registry.register("stl", SheddingEndpoint())
        make_source_relay(registry)
        dest = RelayService("swt", registry)
        assert dest.remote_query(make_query()).status == STATUS_OK

    def test_retryable_error_envelope_then_success(self):
        """A shed (retryable) reply advances to the next relay."""
        clock = SimulatedClock()
        registry = InMemoryRegistry()
        limited = RelayService(
            "stl", registry, rate_limiter=RateLimiter(1, 10.0, clock=clock)
        )
        limited.register_driver(EchoDriver("stl"))
        registry.register("stl", limited)
        limited.handle_request(b"warm-up")  # exhaust the budget
        make_source_relay(registry, relay_id="backup")
        dest = RelayService("swt", registry)
        assert dest.remote_query(make_query()).status == STATUS_OK
        assert dest.stats.failovers == 1

    def test_nonretryable_error_envelope_stops_failover(self):
        """A non-retryable rejection raises without trying later relays."""
        calls: list[str] = []

        class RejectingEndpoint:
            def handle_request(self, data: bytes) -> bytes:
                calls.append("rejecting")
                request = RelayEnvelope.decode(data)
                return RelayEnvelope(
                    version=1,
                    kind=MSG_KIND_ERROR,
                    request_id=request.request_id,
                    payload=b"malformed query: go away",
                    headers={"retryable": "false"},
                ).encode()

        class NeverReached:
            def handle_request(self, data: bytes) -> bytes:
                calls.append("never")
                raise AssertionError("failover must not reach this endpoint")

        registry = InMemoryRegistry()
        registry.register("stl", RejectingEndpoint())
        registry.register("stl", NeverReached())
        dest = RelayService("swt", registry)
        with pytest.raises(RelayError, match="go away"):
            dest.remote_query(make_query())
        assert calls == ["rejecting"]

    def test_mixed_retryable_then_nonretryable(self):
        """retryable -> continue; the following non-retryable raises."""

        def error_endpoint(message: str, retryable: bool):
            class Endpoint:
                def handle_request(self, data: bytes) -> bytes:
                    request = RelayEnvelope.decode(data)
                    return RelayEnvelope(
                        version=1,
                        kind=MSG_KIND_ERROR,
                        request_id=request.request_id,
                        payload=message.encode(),
                        headers={"retryable": "true" if retryable else "false"},
                    ).encode()

            return Endpoint()

        registry = InMemoryRegistry()
        registry.register("stl", error_endpoint("shed", retryable=True))
        registry.register("stl", error_endpoint("fatal", retryable=False))
        dest = RelayService("swt", registry)
        with pytest.raises(RelayError, match="fatal"):
            dest.remote_query(make_query())
        assert dest.stats.failovers == 1

    def test_batch_fails_over_like_singles(self):
        registry = InMemoryRegistry()
        dead, _ = make_source_relay(registry, relay_id="dead")
        dead.available = False
        make_source_relay(registry, relay_id="alive")
        dest = RelayService("swt", registry)
        responses = dest.remote_query_batch(
            [make_query(nonce="n-0"), make_query(nonce="n-1")]
        )
        assert [r.status for r in responses] == [STATUS_OK, STATUS_OK]
        assert dest.stats.failovers == 1

    def test_batch_rate_limited_shed_carries_request_id_and_fails_over(self):
        clock = SimulatedClock()
        registry = InMemoryRegistry()
        limited = RelayService(
            "stl", registry, rate_limiter=RateLimiter(1, 10.0, clock=clock)
        )
        limited.register_driver(EchoDriver("stl"))
        registry.register("stl", limited)
        limited.handle_request(b"warm-up")
        # direct probe: the shed reply for a decodable batch is correlated
        batch = BatchQueryRequest(version=1, queries=[make_query()])
        envelope = RelayEnvelope(
            version=1,
            kind=MSG_KIND_BATCH_REQUEST,
            request_id="req-shed",
            payload=batch.encode(),
        )
        reply = RelayEnvelope.decode(limited.handle_request(envelope.encode()))
        assert reply.kind == MSG_KIND_ERROR
        assert reply.request_id == "req-shed"
        assert reply.headers.get("retryable") == "true"

    def test_batch_length_mismatch_fails_over(self):
        """A relay answering with the wrong cardinality is skipped."""

        class TruncatingEndpoint:
            def handle_request(self, data: bytes) -> bytes:
                request = RelayEnvelope.decode(data)
                return RelayEnvelope(
                    version=1,
                    kind=MSG_KIND_BATCH_RESPONSE,
                    request_id=request.request_id,
                    payload=BatchQueryResponse(version=1, responses=[]).encode(),
                ).encode()

        registry = InMemoryRegistry()
        registry.register("stl", TruncatingEndpoint())
        make_source_relay(registry)
        dest = RelayService("swt", registry)
        responses = dest.remote_query_batch([make_query(nonce="n-0")])
        assert [r.status for r in responses] == [STATUS_OK]
        assert dest.stats.failovers == 1

    def test_all_relays_down_reports_batch_failures(self):
        registry = InMemoryRegistry()
        dead, _ = make_source_relay(registry, relay_id="dead")
        dead.available = False
        dest = RelayService("swt", registry)
        with pytest.raises(RelayUnavailableError, match="dead"):
            dest.remote_query_batch([make_query()])
