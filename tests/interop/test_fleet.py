"""Fleet semantics: N relay replicas behind one network identity.

These tests stand up several real :class:`RelayService` replicas for one
network — each with its *own* idempotency record, as separate processes
would have — behind a :class:`BalancedDiscovery`, and assert the
protocol invariants the fleet layer must preserve:

- duplicate side-effecting envelopes stay *sticky* to one replica, so
  exactly-once execution holds fleet-wide even though the record is
  per-replica;
- read traffic spreads while every reply stays correct;
- a replica dying mid-storm is absorbed by eviction + failover with zero
  caller-visible errors.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.interop.discovery import InMemoryRegistry
from repro.interop.relay import RelayService
from repro.net.balancer import BalancedDiscovery
from repro.proto.messages import (
    MSG_KIND_TRANSACT_RESPONSE,
    PROTOCOL_VERSION,
    NetworkAddressMsg,
    NetworkQuery,
    RelayEnvelope,
)
from tests.interop.test_relay_concurrency import (
    NETWORK,
    CountingDriver,
    transact_envelope,
)


def make_fleet(replica_count: int, seed: int = 7):
    """``replica_count`` independent relays fronting ``NETWORK``, plus a
    destination relay that discovers them through a balanced pool."""
    inner = InMemoryRegistry()
    replicas: list[RelayService] = []
    drivers: list[CountingDriver] = []
    for index in range(replica_count):
        replica = RelayService(NETWORK, inner, relay_id=f"replica-{index}")
        driver = CountingDriver()
        replica.register_driver(driver)
        inner.register(NETWORK, replica)
        replicas.append(replica)
        drivers.append(driver)
    balanced = BalancedDiscovery(inner, rng=random.Random(seed))
    dest = RelayService("client-net", balanced)
    return dest, balanced, inner, replicas, drivers


def make_query(nonce: str) -> NetworkQuery:
    return NetworkQuery(
        version=PROTOCOL_VERSION,
        address=NetworkAddressMsg(
            network=NETWORK, ledger="l", contract="c", function="Get"
        ),
        args=["k"],
        nonce=nonce,
    )


class TestFleetStickiness:
    def test_duplicate_side_effecting_envelope_lands_on_one_replica(self):
        """The idempotency record is per-replica; consistent hashing on
        ``request_id`` is what keeps duplicates exactly-once fleet-wide."""
        _, balanced, _, replicas, drivers = make_fleet(4)
        envelope_bytes = transact_envelope("req-sticky-1", "nonce-1")
        replies = []
        for _ in range(6):  # six copies, six fresh lookups
            candidates = balanced.lookup_for(
                NETWORK, request_id="req-sticky-1", side_effecting=True
            )
            replies.append(candidates[0].handle_request(envelope_bytes))
        # Executed exactly once across the WHOLE fleet ...
        commits = Counter()
        for driver in drivers:
            commits.update(driver.commit_executions)
        assert commits == {"nonce-1": 1}
        # ... every duplicate suppressed on the same replica ...
        suppressed = [r.stats.duplicates_suppressed for r in replicas]
        assert sorted(suppressed) == [0, 0, 0, 5]
        # ... and every copy answered with the identical recorded reply.
        assert len(set(replies)) == 1
        reply = RelayEnvelope.decode(replies[0])
        assert reply.kind == MSG_KIND_TRANSACT_RESPONSE

    def test_distinct_request_ids_spread_across_replicas(self):
        _, balanced, _, _, drivers = make_fleet(4)
        for i in range(120):
            rid = f"req-{i}"
            candidates = balanced.lookup_for(
                NETWORK, request_id=rid, side_effecting=True
            )
            candidates[0].handle_request(transact_envelope(rid, f"nonce-{i}"))
        per_replica = [sum(d.commit_executions.values()) for d in drivers]
        assert sum(per_replica) == 120
        assert all(count > 0 for count in per_replica), per_replica

    def test_relay_exchange_routes_transact_sticky_and_query_spread(self):
        """``RelayService._exchange`` feeds request context through the
        optional ``lookup_for`` — side-effecting verbs flagged, reads
        not."""
        calls: list[tuple[str, bool]] = []

        class SpyDiscovery(BalancedDiscovery):
            def lookup_for(self, network_id, request_id="", side_effecting=False):
                calls.append((request_id, side_effecting))
                return super().lookup_for(
                    network_id, request_id=request_id, side_effecting=side_effecting
                )

        inner = InMemoryRegistry()
        replica = RelayService(NETWORK, inner)
        replica.register_driver(CountingDriver())
        inner.register(NETWORK, replica)
        dest = RelayService("client-net", SpyDiscovery(inner))

        dest.remote_query(make_query("n-read"))
        dest.remote_transact(make_query("n-write"))
        assert len(calls) == 2
        read_call, write_call = calls
        assert read_call[1] is False
        assert write_call[1] is True
        assert read_call[0].startswith("req-") and write_call[0].startswith("req-")


class TestFleetAvailability:
    def test_replica_death_mid_storm_is_invisible_to_callers(self):
        """Kill one of four replicas while a concurrent query storm is in
        flight: eviction narrows rotation, failover absorbs the race,
        and not one caller sees an error."""
        dest, balanced, _, replicas, drivers = make_fleet(4)
        pool = balanced.pool(NETWORK)
        errors: list[Exception] = []
        barrier = threading.Barrier(8)
        victim = replicas[0]

        def caller(worker: int) -> None:
            barrier.wait(timeout=5.0)
            for i in range(20):
                if worker == 0 and i == 5:
                    # Mid-storm: the victim starts refusing everything
                    # (a crashing process), and—as the readiness monitor
                    # would—the pool evicts it a beat later.
                    victim.available = False
                    pool.evict("replica-0")
                try:
                    response = dest.remote_query(make_query(f"n-{worker}-{i}"))
                    assert response.nonce == f"n-{worker}-{i}"
                except Exception as exc:  # noqa: BLE001 - collected and asserted empty below
                    errors.append(exc)

        with ThreadPoolExecutor(max_workers=8) as executor:
            list(executor.map(caller, range(8)))

        assert errors == [], errors
        served = sum(sum(d.query_executions.values()) for d in drivers)
        assert served == 8 * 20
        # Survivors took the traffic the victim dropped.
        survivor_share = sum(
            sum(d.query_executions.values()) for d in drivers[1:]
        )
        assert survivor_share > 0

    def test_evicted_replica_rejoins_rotation_after_restore(self):
        dest, balanced, _, replicas, drivers = make_fleet(2)
        pool = balanced.pool(NETWORK)
        pool.evict("replica-0")
        replicas[0].available = False
        for i in range(10):
            dest.remote_query(make_query(f"down-{i}"))
        assert sum(drivers[0].query_executions.values()) == 0

        replicas[0].available = True
        pool.restore("replica-0")
        for i in range(40):
            dest.remote_query(make_query(f"up-{i}"))
        assert sum(drivers[0].query_executions.values()) > 0

    def test_all_replicas_evicted_degrades_to_failover_not_outage(self):
        dest, balanced, _, _, drivers = make_fleet(2)
        balanced.lookup(NETWORK)  # populate the pool
        pool = balanced.pool(NETWORK)
        for key in pool.member_keys():
            pool.evict(key)
        response = dest.remote_query(make_query("n-last-resort"))
        assert response.nonce == "n-last-resort"
        assert sum(sum(d.query_executions.values()) for d in drivers) == 1
