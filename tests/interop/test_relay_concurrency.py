"""Hammer tests: the relay's invariants under genuinely concurrent serving.

A socket relay (:class:`repro.net.RelayServer`) runs
:meth:`RelayService.handle_request` on many worker threads at once, which
exposes every latent race the sequential relay never hit: two duplicates
of one side-effecting envelope both missing the idempotency record, the
lazy interceptor-chain build racing itself, counters dropping updates,
two subscribes claiming one id. These tests fire real thread storms at
one relay instance and assert the §4-§5 invariants hold *exactly*, not
just usually: exactly-once execution, every request accounted for, one
tap per subscription id.
"""

from __future__ import annotations

import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

from repro.api.middleware import MetricsInterceptor, ResponseCacheInterceptor
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import RelayService
from repro.proto.messages import (
    MSG_KIND_ASSET_ACK,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_EVENT_ACK,
    MSG_KIND_EVENT_SUBSCRIBE,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_QUERY_RESPONSE,
    MSG_KIND_TRANSACT_REQUEST,
    MSG_KIND_TRANSACT_RESPONSE,
    PROTOCOL_VERSION,
    STATUS_OK,
    AssetAckMsg,
    AssetCommandMsg,
    EventAck,
    EventSubscribeRequest,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
    RelayEnvelope,
)

NETWORK = "hammer-net"


class CountingDriver(NetworkDriver):
    """Thread-safe scorekeeper: counts executions per query nonce/asset."""

    platform = "hammer"
    supports_transactions = True
    supports_events = True
    supports_assets = True

    def __init__(self) -> None:
        super().__init__(NETWORK)
        self._lock = threading.Lock()
        self.query_executions: Counter[str] = Counter()
        self.commit_executions: Counter[str] = Counter()
        self.lock_executions: Counter[str] = Counter()
        self.taps_opened = 0

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        with self._lock:
            self.query_executions[query.nonce] += 1
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=b"data:" + query.nonce.encode(),
        )

    def execute_transaction(self, query: NetworkQuery) -> QueryResponse:
        with self._lock:
            self.commit_executions[query.nonce] += 1
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=b"committed:" + query.nonce.encode(),
        )

    def lock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        with self._lock:
            self.lock_executions[command.asset_id] += 1
        return AssetAckMsg(
            version=PROTOCOL_VERSION,
            nonce=command.nonce,
            status=STATUS_OK,
            asset_id=command.asset_id,
            state="locked",
        )

    def open_event_tap(self, request, listener):
        with self._lock:
            self.taps_opened += 1
        return object()


def make_relay() -> tuple[RelayService, CountingDriver]:
    registry = InMemoryRegistry()
    relay = RelayService(NETWORK, registry)
    driver = CountingDriver()
    relay.register_driver(driver)
    registry.register(NETWORK, relay)
    return relay, driver


def envelope(kind: int, request_id: str, payload: bytes) -> bytes:
    return RelayEnvelope(
        version=PROTOCOL_VERSION,
        kind=kind,
        request_id=request_id,
        source_network="elsewhere",
        destination_network=NETWORK,
        payload=payload,
    ).encode()


def transact_envelope(request_id: str, nonce: str) -> bytes:
    query = NetworkQuery(
        version=PROTOCOL_VERSION,
        address=NetworkAddressMsg(
            network=NETWORK, ledger="l", contract="c", function="Commit"
        ),
        args=["v"],
        nonce=nonce,
    )
    return envelope(MSG_KIND_TRANSACT_REQUEST, request_id, query.encode())


def lock_envelope(request_id: str, asset_id: str) -> bytes:
    command = AssetCommandMsg(
        version=PROTOCOL_VERSION,
        address=NetworkAddressMsg(network=NETWORK, ledger="l", contract="vault"),
        asset_id=asset_id,
        recipient="them@elsewhere",
        hashlock=b"\x01" * 32,
        timeout=1e12,
        nonce="an-" + request_id,
    )
    return envelope(MSG_KIND_ASSET_LOCK, request_id, command.encode())


def query_envelope(request_id: str, nonce: str) -> bytes:
    query = NetworkQuery(
        version=PROTOCOL_VERSION,
        address=NetworkAddressMsg(
            network=NETWORK, ledger="l", contract="c", function="Get"
        ),
        args=["k"],
        nonce=nonce,
    )
    return envelope(MSG_KIND_QUERY_REQUEST, request_id, query.encode())


def _storm(relay: RelayService, requests: list[bytes], workers: int = 16) -> list[bytes]:
    """Serve all requests at once across a thread pool (with a start
    barrier so the first wave genuinely collides)."""
    barrier = threading.Barrier(min(workers, len(requests)) or 1)
    results: list[bytes | None] = [None] * len(requests)

    def serve(index: int) -> None:
        try:
            barrier.wait(timeout=0.5)
        except threading.BrokenBarrierError:
            pass  # a final partial wave just runs without colliding
        results[index] = relay.handle_request(requests[index])

    with ThreadPoolExecutor(max_workers=workers) as pool:
        list(pool.map(serve, range(len(requests))))
    assert all(reply is not None for reply in results)
    return results  # type: ignore[return-value]


class TestExactlyOnceUnderConcurrency:
    def test_duplicate_transactions_commit_once(self):
        relay, driver = make_relay()
        copies = 16
        requests = [transact_envelope("req-tx-1", "nonce-tx-1")] * copies
        replies = _storm(relay, requests, workers=copies)
        # Exactly-once on the ledger...
        assert driver.commit_executions["nonce-tx-1"] == 1
        # ... and every duplicate answered with the SAME recorded reply.
        assert len(set(replies)) == 1
        decoded = RelayEnvelope.decode(replies[0])
        assert decoded.kind == MSG_KIND_TRANSACT_RESPONSE
        assert relay.stats.duplicates_suppressed == copies - 1
        assert relay.stats.transactions_served == 1

    def test_mixed_duplicate_storm_each_commits_once(self):
        """N distinct side-effecting requests x M duplicates each, fired
        interleaved across one thread pool: each executes exactly once."""
        relay, driver = make_relay()
        distinct, copies = 8, 6
        requests: list[bytes] = []
        for i in range(distinct):
            requests += [transact_envelope(f"req-tx-{i}", f"nonce-{i}")] * copies
            requests += [lock_envelope(f"req-lk-{i}", f"ASSET-{i}")] * copies
        # Interleave duplicates so they hit different threads at once.
        requests = requests[::2] + requests[1::2]
        _storm(relay, requests, workers=16)
        for i in range(distinct):
            assert driver.commit_executions[f"nonce-{i}"] == 1, f"tx {i} re-committed"
            assert driver.lock_executions[f"ASSET-{i}"] == 1, f"lock {i} re-executed"
        total = len(requests)
        executed = distinct * 2
        assert relay.stats.duplicates_suppressed == total - executed
        # Every request is accounted for: served once + suppressed copies.
        assert relay.stats.requests_served == executed

    def test_failed_execution_is_not_replayed_as_success(self):
        """A duplicate arriving while the first copy is failing must not
        be answered from a half-recorded state; the error reply is what
        gets recorded and replayed."""
        relay, driver = make_relay()

        original = driver.execute_transaction
        calls = {"n": 0}
        lock = threading.Lock()

        def flaky(query):
            with lock:
                calls["n"] += 1
                first = calls["n"] == 1
            if first:
                raise RuntimeError("transient commit failure")
            return original(query)

        driver.execute_transaction = flaky  # type: ignore[method-assign]
        requests = [transact_envelope("req-flaky", "nonce-flaky")] * 8
        replies = _storm(relay, requests, workers=8)
        # The driver guard answers the failure as an error *response*
        # envelope, which the idempotency layer records: still at most
        # one execution attempt is recorded and replayed consistently.
        assert len(set(replies)) == 1
        assert calls["n"] == 1

    def test_concurrent_subscribes_open_one_tap(self):
        relay, driver = make_relay()
        request = EventSubscribeRequest(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(network=NETWORK, ledger="l", contract="c"),
            event_name="Stored",
            subscription_id="sub-contested",
        )
        requests = [
            envelope(MSG_KIND_EVENT_SUBSCRIBE, f"req-sub-{i}", request.encode())
            for i in range(12)
        ]
        replies = _storm(relay, requests, workers=12)
        acks = [EventAck.decode(RelayEnvelope.decode(r).payload) for r in replies]
        winners = [ack for ack in acks if ack.status == STATUS_OK]
        # Distinct request_ids bypass idempotency, so the subscription
        # table itself must arbitrate: exactly one tap, one winner.
        assert driver.taps_opened == 1
        assert len(winners) == 1
        assert winners[0].subscription_id == "sub-contested"

    def test_unsubscribe_racing_tap_open_leaks_no_tap(self):
        """An unsubscribe landing while open_event_tap is in flight pops a
        record that has no tap yet; the subscriber side must then close
        the tap it just opened instead of leaking a live feed."""
        relay, driver = make_relay()
        closed = []
        driver.close_event_tap = closed.append  # type: ignore[method-assign]
        original_open = driver.open_event_tap

        def racing_open(request, listener):
            tap = original_open(request, listener)
            # Deterministically interleave: the unsubscribe wins the race
            # while the tap open is still in flight.
            relay._drop_served_subscription("sub-raced")
            return tap

        driver.open_event_tap = racing_open  # type: ignore[method-assign]
        request = EventSubscribeRequest(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(network=NETWORK, ledger="l", contract="c"),
            event_name="Stored",
            subscription_id="sub-raced",
        )
        reply = relay.handle_request(
            envelope(MSG_KIND_EVENT_SUBSCRIBE, "req-raced", request.encode())
        )
        ack = EventAck.decode(RelayEnvelope.decode(reply).payload)
        assert ack.status != STATUS_OK  # subscriber learns it is not live
        assert len(closed) == 1  # the orphaned tap was closed, not leaked
        with relay._subscriptions_lock:
            assert "sub-raced" not in relay._served_subscriptions


class TestInterceptorsUnderConcurrency:
    def test_chain_build_races_and_counters_stay_consistent(self):
        relay, driver = make_relay()
        metrics = MetricsInterceptor()
        cache = ResponseCacheInterceptor(ttl_seconds=60.0, max_entries=64)
        relay.use(metrics, cache)  # chain built lazily on first request

        copies = 10
        cacheable = [query_envelope(f"req-q-{i}", f"nq-{i}") for i in range(6)]
        requests = (
            cacheable * copies
            + [transact_envelope("req-mx-tx", "nonce-mx")] * copies
        )
        requests = requests[::3] + requests[1::3] + requests[2::3]
        _storm(relay, requests, workers=16)

        # Side effects: the transaction committed exactly once; the
        # cache never absorbed it (idempotency did).
        assert driver.commit_executions["nonce-mx"] == 1
        assert cache.bypassed == copies
        # Queries executed at most once per distinct envelope *after* the
        # cache warmed; concurrent same-key misses may each execute, so
        # the bound is [1, copies] with hits+misses exactly accounting.
        for i in range(6):
            assert 1 <= driver.query_executions[f"nq-{i}"] <= copies
        assert cache.hits + cache.misses == 6 * copies
        # Metrics dropped nothing despite 16-way mutation.
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == len(requests)
        assert snapshot["kinds"]["query"]["requests"] == 6 * copies
        assert snapshot["kinds"]["transact"]["requests"] == copies
        assert snapshot["errors_total"] == 0

    def test_stats_bump_is_atomic(self):
        relay, _ = make_relay()
        workers = 16
        per_worker = 200

        def bump_many():
            for _ in range(per_worker):
                relay.stats.bump("requests_served")

        threads = [threading.Thread(target=bump_many) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert relay.stats.requests_served == workers * per_worker
