"""Unit tests for the platform interop ports and miscellaneous interop glue."""

from __future__ import annotations

import pytest

from repro.errors import AccessDeniedError, ConfigurationError, PolicyError
from repro.fabric.identity import Organization
from repro.interop.contracts.ports import InteropPort
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg


@pytest.fixture()
def foreign_org():
    return Organization("foreign-org", network="foreign-net")


@pytest.fixture()
def foreign_config(foreign_org):
    return NetworkConfigMsg(
        network_id="foreign-net",
        platform="fabric",
        organizations=[
            OrganizationConfigMsg(
                org_id="foreign-org",
                msp_id="foreign-orgMSP",
                root_certificate=foreign_org.msp.root_certificate.to_bytes(),
            )
        ],
    )


@pytest.fixture()
def port(foreign_config):
    port = InteropPort("local-net")
    port.record_network_config(foreign_config)
    return port


class TestPortConfiguration:
    def test_record_and_get(self, port, foreign_config):
        assert port.get_network_config("foreign-net") == foreign_config

    def test_missing_config(self, port):
        with pytest.raises(ConfigurationError):
            port.get_network_config("atlantis")

    def test_empty_network_id_rejected(self, port):
        with pytest.raises(ConfigurationError):
            port.record_network_config(NetworkConfigMsg())

    def test_verification_policy_roundtrip(self, port):
        port.set_verification_policy("foreign-net", "org:foreign-org")
        assert port.get_verification_policy("foreign-net") == "org:foreign-org"

    def test_malformed_policy_rejected(self, port):
        with pytest.raises(PolicyError):
            port.set_verification_policy("foreign-net", "NOT A POLICY (")

    def test_missing_policy(self, port):
        with pytest.raises(ConfigurationError):
            port.get_verification_policy("foreign-net")

    def test_validate_foreign_certificate(self, port, foreign_org):
        member = foreign_org.enroll("app", role="client")
        port.validate_foreign_certificate("foreign-net", member.certificate)
        stranger = Organization("stranger-org").enroll("x")
        with pytest.raises(ConfigurationError):
            port.validate_foreign_certificate("foreign-net", stranger.certificate)


class TestPortExposureControl:
    def test_rule_lifecycle(self, port):
        port.add_access_rule("foreign-net", "foreign-org", "cc", "fn")
        assert ("foreign-net", "foreign-org", "cc", "fn") in port.list_access_rules()
        port.remove_access_rule("foreign-net", "foreign-org", "cc", "fn")
        assert not port.list_access_rules()

    def test_check_access_happy_path(self, port, foreign_org):
        member = foreign_org.enroll("app2", role="client")
        port.add_access_rule("foreign-net", "foreign-org", "cc", "fn")
        port.check_access("foreign-net", "foreign-org", "cc", "fn", member.certificate)

    def test_check_access_wildcard_org(self, port, foreign_org):
        member = foreign_org.enroll("app3", role="client")
        port.add_access_rule("foreign-net", "*", "cc", "fn")
        port.check_access("foreign-net", "foreign-org", "cc", "fn", member.certificate)

    def test_check_access_wildcard_function(self, port, foreign_org):
        member = foreign_org.enroll("app4", role="client")
        port.add_access_rule("foreign-net", "foreign-org", "cc", "*")
        port.check_access("foreign-net", "foreign-org", "cc", "other", member.certificate)

    def test_no_rule_denied(self, port, foreign_org):
        member = foreign_org.enroll("app5", role="client")
        with pytest.raises(AccessDeniedError, match="no matching rule"):
            port.check_access("foreign-net", "foreign-org", "cc", "fn", member.certificate)

    def test_missing_creator_denied(self, port):
        with pytest.raises(AccessDeniedError, match="no creator"):
            port.check_access("foreign-net", "foreign-org", "cc", "fn", None)

    def test_org_mismatch_denied(self, port, foreign_org):
        member = foreign_org.enroll("app6", role="client")
        port.add_access_rule("foreign-net", "other-org", "cc", "fn")
        with pytest.raises(AccessDeniedError, match="belongs to org"):
            port.check_access("foreign-net", "other-org", "cc", "fn", member.certificate)

    def test_unknown_requesting_network_denied(self, port, foreign_org):
        member = foreign_org.enroll("app7", role="client")
        port.add_access_rule("ghost-net", "foreign-org", "cc", "fn")
        with pytest.raises(ConfigurationError):
            port.check_access("ghost-net", "foreign-org", "cc", "fn", member.certificate)


class TestPortSealing:
    def test_seal_plain_and_confidential(self, port, foreign_org):
        member = foreign_org.enroll("sealer", role="client")
        from repro.interop.proofs import unseal_result

        plain = port.seal(b"data", None, False)
        assert unseal_result(plain) == b"data"
        sealed = port.seal(b"data", member.keypair.public, True)
        assert unseal_result(sealed, member.keypair.private) == b"data"
        assert b"data".hex().encode() not in sealed


class TestEncodingUtils:
    def test_canonical_json_is_sorted_and_compact(self):
        from repro.utils.encoding import canonical_json, from_canonical_json

        data = {"b": 1, "a": [2, {"z": 3, "y": 4}]}
        encoded = canonical_json(data)
        assert encoded == b'{"a":[2,{"y":4,"z":3}],"b":1}'
        assert from_canonical_json(encoded) == data

    def test_canonical_json_rejects_unserializable(self):
        from repro.utils.encoding import canonical_json

        with pytest.raises(TypeError):
            canonical_json({"key": object()})

    def test_hex_roundtrip(self):
        from repro.utils.encoding import from_hex, to_hex

        assert from_hex(to_hex(b"\x00\xff")) == b"\x00\xff"

    def test_utf8(self):
        from repro.utils.encoding import utf8

        assert utf8("héllo") == "héllo".encode("utf-8")
