"""Security evaluation tests: the §5 CIA-triad attack matrix.

Each test injects one adversary from :mod:`repro.testing.adversary` and
asserts the protocol's claimed property: confidentiality (relay cannot
read or exfiltrate), integrity (tampering is detected), availability
(redundant relays / rate limiting mitigate DoS), plus replay protection
and the byzantine-peer boundary condition.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import build_trade_scenario
from repro.errors import EndorsementError, ProofError, RelayUnavailableError
from repro.testing import (
    DroppingRelay,
    EavesdroppingRelay,
    TamperingRelay,
    TAMPER_BOTH,
    TAMPER_PROOF,
    TAMPER_RESULT,
    corrupt_network_peer,
    flood_relay,
    restore_network_peer,
)
from repro.interop.discovery import InMemoryRegistry
from repro.interop.relay import RateLimiter, RelayService

POLICY = "AND(org:seller-org, org:carrier-org)"
BL_ADDRESS = "stl/trade-logistics/TradeLensCC/GetBillOfLading"


def interpose(scenario, wrapper_factory):
    """Wrap STL's relay endpoint with an adversarial endpoint."""
    registry: InMemoryRegistry = scenario.discovery
    original = registry.lookup("stl")[0]
    wrapper = wrapper_factory(original)
    registry.unregister("stl", original)
    registry.register("stl", wrapper)
    return wrapper


class TestIntegrity:
    @pytest.mark.parametrize("mode", [TAMPER_RESULT, TAMPER_PROOF, TAMPER_BOTH])
    def test_tampering_relay_detected(self, shipped_scenario, mode):
        scenario, po_ref = shipped_scenario
        relay = interpose(scenario, lambda inner: TamperingRelay(inner, mode=mode))
        with pytest.raises(ProofError):
            scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        assert relay.tampered_responses == 1

    def test_tampering_detected_even_without_confidentiality(self, shipped_scenario):
        """Integrity comes from signatures, not from encryption."""
        scenario, po_ref = shipped_scenario
        interpose(scenario, lambda inner: TamperingRelay(inner, mode=TAMPER_PROOF))
        with pytest.raises(ProofError):
            scenario.swt_seller_client.fetch_bill_of_lading(po_ref, confidential=False)

    def test_clean_relay_baseline_passes(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        assert json.loads(fetched.data)["po_ref"] == po_ref


class TestConfidentiality:
    def test_relay_cannot_read_confidential_result(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        eavesdropper = interpose(scenario, EavesdroppingRelay)
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        secret = fetched.data  # the plaintext B/L JSON
        assert not eavesdropper.plaintext_visible(secret)
        assert not eavesdropper.plaintext_visible(b'"bl_id"')

    def test_plaintext_visible_without_confidentiality(self, shipped_scenario):
        """The ablation: disabling encryption exposes data to the relay."""
        scenario, po_ref = shipped_scenario
        eavesdropper = interpose(scenario, EavesdroppingRelay)
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(
            po_ref, confidential=False
        )
        assert eavesdropper.plaintext_visible(fetched.data)

    def test_proof_not_exfiltratable_when_confidential(self, shipped_scenario):
        """§4.3: metadata encryption stops a relay from exfiltrating a
        verifiable proof to unauthorized parties."""
        scenario, po_ref = shipped_scenario
        eavesdropper = interpose(scenario, EavesdroppingRelay)
        scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        org_roots = {
            org_id: org.msp.root_certificate
            for org_id, org in scenario.stl.organizations.items()
        }
        assert not eavesdropper.exfiltrated_proof_validates(org_roots, POLICY)

    def test_proof_exfiltratable_without_confidentiality(self, shipped_scenario):
        """Ablation half: with encryption disabled, the captured proof IS
        verifiable by a third party — metadata encryption is load-bearing."""
        scenario, po_ref = shipped_scenario
        eavesdropper = interpose(scenario, EavesdroppingRelay)
        scenario.swt_seller_client.fetch_bill_of_lading(po_ref, confidential=False)
        org_roots = {
            org_id: org.msp.root_certificate
            for org_id, org in scenario.stl.organizations.items()
        }
        assert eavesdropper.exfiltrated_proof_validates(org_roots, POLICY)


class TestAvailability:
    def test_dropping_relay_alone_blocks_queries(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        interpose(scenario, DroppingRelay)
        with pytest.raises(RelayUnavailableError):
            scenario.swt_seller_client.fetch_bill_of_lading(po_ref)

    def test_redundant_relay_restores_availability(self):
        """§5: 'the effects of DoS attacks can be mitigated by adding
        redundant relays.'"""
        scenario = build_trade_scenario(stl_relay_count=2)
        po_ref = "PO-REDUNDANT"
        scenario.stl_seller_app.create_shipment(po_ref, "goods")
        scenario.carrier_app.accept_shipment(po_ref)
        scenario.carrier_app.record_handover(po_ref)
        scenario.carrier_app.issue_bill_of_lading(po_ref, "MV R")
        # Kill the first relay; the client must fail over to the second.
        scenario.stl_relays[0].available = False
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        assert json.loads(fetched.data)["po_ref"] == po_ref
        assert scenario.swt_relay.stats.failovers >= 1

    def test_rate_limiter_sheds_flood_but_relay_survives(self):
        from repro.utils.clock import SimulatedClock

        clock = SimulatedClock()
        scenario = build_trade_scenario(
            stl_rate_limit=RateLimiter(5, 60.0, clock=clock)
        )
        po_ref = "PO-FLOOD"
        scenario.stl_seller_app.create_shipment(po_ref, "goods")
        scenario.carrier_app.accept_shipment(po_ref)
        scenario.carrier_app.record_handover(po_ref)
        scenario.carrier_app.issue_bill_of_lading(po_ref, "MV F")
        # Build one legitimate request to replay as the flood payload.
        from repro.interop.drivers.fabric_driver import build_interop_context  # noqa: F401
        from repro.proto.messages import (
            MSG_KIND_QUERY_REQUEST,
            NetworkAddressMsg,
            NetworkQuery,
            RelayEnvelope,
            VerificationPolicyMsg,
        )

        query = NetworkQuery(
            version=1,
            address=NetworkAddressMsg(
                network="stl",
                ledger="trade-logistics",
                contract="TradeLensCC",
                function="GetBillOfLading",
            ),
            args=[po_ref],
            nonce="flood",
            policy=VerificationPolicyMsg(expression=POLICY),
        )
        request = RelayEnvelope(
            version=1,
            kind=MSG_KIND_QUERY_REQUEST,
            request_id="flood-req",
            source_network="swt",
            destination_network="stl",
            payload=query.encode(),
        ).encode()
        report = flood_relay(scenario.stl_relay, request, count=50)
        assert report.requests_sent == 50
        assert report.shed_by_rate_limit == 45
        assert report.served == 5
        # After the window passes, legitimate queries succeed again.
        clock.advance(61.0)
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        assert json.loads(fetched.data)["po_ref"] == po_ref


class TestReplay:
    def test_replayed_proof_rejected(self, shipped_scenario):
        """§4.3: nonces recorded on the destination ledger stop replays."""
        scenario, po_ref = shipped_scenario
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        lc = scenario.swt_seller_client.upload_dispatch_docs(po_ref, fetched)
        assert lc["status"] == "DOCS_UPLOADED"
        # Replay the very same (valid!) proof directly at the CMDAC: the
        # consumed nonce must reject it even though every signature checks.
        from repro.crypto.hashing import sha256
        from repro.utils.encoding import canonical_json

        with pytest.raises(EndorsementError, match="already"):
            scenario.swt.gateway.submit(
                scenario.swt.org("seller-bank-org").member("seller"),
                "cmdac",
                "ValidateProof",
                [
                    "stl",
                    BL_ADDRESS,
                    canonical_json([po_ref]).decode("ascii"),
                    fetched.nonce,
                    sha256(fetched.data).hex(),
                    fetched.proof_json,
                ],
            )

    def test_replay_across_lcs_rejected(self, trade_scenario):
        scenario = trade_scenario
        for ref in ("PO-R1", "PO-R2"):
            scenario.buyer_app.request_lc(ref, "b", "s", 10.0)
            scenario.buyer_bank_app.issue_lc(ref)
        scenario.stl_seller_app.create_shipment("PO-R1", "goods")
        scenario.carrier_app.accept_shipment("PO-R1")
        scenario.carrier_app.record_handover("PO-R1")
        scenario.carrier_app.issue_bill_of_lading("PO-R1", "MV R")
        fetched = scenario.swt_seller_client.fetch_bill_of_lading("PO-R1")
        scenario.swt_seller_client.upload_dispatch_docs("PO-R1", fetched)
        # Replaying PO-R1's proof for PO-R2 fails on two counts: nonce
        # consumed AND args mismatch. Either way it must not commit.
        with pytest.raises(EndorsementError):
            scenario.swt.gateway.submit(
                scenario.swt.org("seller-bank-org").member("seller"),
                "WeTradeCC",
                "UploadDispatchDocs",
                ["PO-R2", fetched.data.decode(), fetched.nonce, fetched.proof_json],
            )


class TestByzantinePeer:
    def test_single_byzantine_peer_defeated_by_two_org_policy(self, shipped_scenario):
        """With AND(seller, carrier), one forging peer cannot pass off a
        fake B/L: the honest org's attestation binds a different hash."""
        scenario, po_ref = shipped_scenario
        forged = json.dumps({"po_ref": po_ref, "bl_id": "BL-FAKE"}).encode()
        proxy = corrupt_network_peer(scenario.stl, "peer0.seller-org", forged)
        try:
            with pytest.raises(ProofError):
                scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
            assert proxy.forgeries == 1
        finally:
            restore_network_peer(scenario.stl, proxy)

    def test_byzantine_peer_succeeds_if_policy_trusts_only_it(self, shipped_scenario):
        """Boundary condition: a policy that only requires the byzantine
        org provides no protection — the trust model is exactly the policy."""
        scenario, po_ref = shipped_scenario
        forged = json.dumps({"po_ref": po_ref, "bl_id": "BL-FAKE"}).encode()
        proxy = corrupt_network_peer(scenario.stl, "peer0.seller-org", forged)
        try:
            fetched = scenario.swt_seller_client.interop_client.remote_query(
                BL_ADDRESS, [po_ref], policy="org:seller-org"
            )
            assert json.loads(fetched.data)["bl_id"] == "BL-FAKE"
        finally:
            restore_network_peer(scenario.stl, proxy)
