"""End-to-end tests of the cross-network query flow (message-flow §3.3)."""

from __future__ import annotations

import json

import pytest

from repro.errors import AccessDeniedError, EndorsementError, ProofError
from repro.interop.client import InteropClient
from repro.interop.contracts.ecc import ECC_NAME

BL_ADDRESS = "stl/trade-logistics/TradeLensCC/GetBillOfLading"
POLICY = "AND(org:seller-org, org:carrier-org)"


class TestHappyPath:
    def test_confidential_query(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        document = json.loads(fetched.data)
        assert document["bl_id"] == f"BL-{po_ref}"
        assert document["po_ref"] == po_ref
        assert len(fetched.proof) == 2
        orgs = {attestation.metadata().org for attestation in fetched.proof.attestations}
        assert orgs == {"seller-org", "carrier-org"}

    def test_plain_query(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(
            po_ref, confidential=False
        )
        assert json.loads(fetched.data)["po_ref"] == po_ref

    def test_policy_defaults_from_cmdac(self, shipped_scenario):
        """Without an explicit policy the client reads the recorded one."""
        scenario, po_ref = shipped_scenario
        client = scenario.swt_seller_client.interop_client
        result = client.remote_query(BL_ADDRESS, [po_ref])
        assert len(result.proof) == 2

    def test_fresh_nonce_per_query(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        first = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        second = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        assert first.nonce != second.nonce

    def test_full_upload_after_fetch(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        lc = scenario.swt_seller_client.fetch_and_upload(po_ref)
        assert lc["status"] == "DOCS_UPLOADED"

    def test_relay_stats_updated(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        served_before = scenario.stl_relay.stats.requests_served
        scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        assert scenario.stl_relay.stats.requests_served == served_before + 1

    def test_wider_policy_collects_more_attestations(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        client = scenario.swt_seller_client.interop_client
        narrow = client.remote_query(BL_ADDRESS, [po_ref], policy="org:carrier-org")
        wide = client.remote_query(BL_ADDRESS, [po_ref], policy=POLICY)
        assert len(narrow.proof) == 1
        assert len(wide.proof) == 2


class TestExposureControl:
    def test_unlisted_function_denied(self, shipped_scenario):
        """Only GetBillOfLading is exposed; GetShipment must be denied."""
        scenario, po_ref = shipped_scenario
        client = scenario.swt_seller_client.interop_client
        with pytest.raises(AccessDeniedError, match="no matching access rule"):
            client.remote_query(
                "stl/trade-logistics/TradeLensCC/GetShipment",
                [po_ref],
                policy=POLICY,
            )

    def test_unlisted_org_denied(self, shipped_scenario):
        """A buyer-bank member has no access rule for the B/L."""
        scenario, po_ref = shipped_scenario
        buyer = scenario.swt.org("buyer-bank-org").member("buyer")
        intruder = InteropClient(
            buyer, scenario.swt_relay, "swt", gateway=scenario.swt.gateway
        )
        with pytest.raises(AccessDeniedError):
            intruder.remote_query(BL_ADDRESS, [po_ref], policy=POLICY)

    def test_policy_rule_addition_unlocks_function(self, shipped_scenario):
        """'Permitting access to functions other than GetBillOfLading only
        requires the addition of a policy rule' (§5)."""
        scenario, po_ref = shipped_scenario
        admin = scenario.stl.org("seller-org").member("admin")
        scenario.stl.gateway.submit(
            admin,
            ECC_NAME,
            "AddAccessRule",
            ["swt", "seller-bank-org", "TradeLensCC", "GetShipment"],
        )
        client = scenario.swt_seller_client.interop_client
        result = client.remote_query(
            "stl/trade-logistics/TradeLensCC/GetShipment", [po_ref], policy=POLICY
        )
        assert json.loads(result.data)["status"] == "BL_ISSUED"

    def test_forged_org_claim_denied(self, shipped_scenario):
        """Claiming seller-bank-org with a buyer-bank certificate fails."""
        scenario, po_ref = shipped_scenario
        buyer = scenario.swt.org("buyer-bank-org").member("buyer")

        class LyingClient(InteropClient):
            pass

        lying = LyingClient(buyer, scenario.swt_relay, "swt")
        # Monkeypatch the org claim: build the query manually.
        from repro.proto.messages import (
            AuthInfo,
            NetworkAddressMsg,
            NetworkQuery,
            VerificationPolicyMsg,
        )

        query = NetworkQuery(
            version=1,
            address=NetworkAddressMsg(
                network="stl",
                ledger="trade-logistics",
                contract="TradeLensCC",
                function="GetBillOfLading",
            ),
            args=[po_ref],
            nonce="forged-nonce",
            auth=AuthInfo(
                requesting_network="swt",
                requesting_org="seller-bank-org",  # lie
                requestor="buyer",
                certificate=buyer.certificate.to_bytes(),
                public_key=buyer.keypair.public.to_bytes(),
            ),
            policy=VerificationPolicyMsg(expression=POLICY),
            confidential=True,
        )
        response = scenario.swt_relay.remote_query(query)
        from repro.proto.messages import STATUS_ACCESS_DENIED

        assert response.status == STATUS_ACCESS_DENIED
        assert "belongs to org" in response.error


class TestErrorPaths:
    def test_missing_document_is_error(self, trade_scenario):
        client = trade_scenario.swt_seller_client.interop_client
        from repro.errors import RelayError

        with pytest.raises(RelayError, match="no bill of lading"):
            client.remote_query(BL_ADDRESS, ["PO-GHOST"], policy=POLICY)

    def test_unsatisfiable_policy_is_error(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        client = scenario.swt_seller_client.interop_client
        from repro.errors import RelayError

        with pytest.raises(RelayError, match="cannot be satisfied"):
            client.remote_query(BL_ADDRESS, [po_ref], policy="org:mars-org")

    def test_wrong_ledger_is_error(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        client = scenario.swt_seller_client.interop_client
        from repro.errors import RelayError

        with pytest.raises(RelayError, match="no ledger"):
            client.remote_query(
                "stl/wrong-ledger/TradeLensCC/GetBillOfLading",
                [po_ref],
                policy=POLICY,
            )

    def test_forged_upload_rejected_without_query(self, shipped_scenario):
        """A seller cannot upload a self-made B/L without a proof —
        the exact fraud §4.2 motivates ('the seller ... has incentive to
        forge a B/L and claim payment')."""
        scenario, po_ref = shipped_scenario
        forged_bl = json.dumps({"po_ref": po_ref, "bl_id": "BL-FORGED"})
        with pytest.raises(EndorsementError):
            scenario.swt.gateway.submit(
                scenario.swt.org("seller-bank-org").member("seller"),
                "WeTradeCC",
                "UploadDispatchDocs",
                [po_ref, forged_bl, "fresh-nonce", "[]"],
            )

    def test_data_swap_after_fetch_rejected(self, shipped_scenario):
        """Fetching a real proof but uploading different data must fail."""
        scenario, po_ref = shipped_scenario
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        forged = json.dumps({"po_ref": po_ref, "bl_id": "BL-SWAPPED"})
        with pytest.raises(EndorsementError, match="data hash"):
            scenario.swt.gateway.submit(
                scenario.swt.org("seller-bank-org").member("seller"),
                "WeTradeCC",
                "UploadDispatchDocs",
                [po_ref, forged, fetched.nonce, fetched.proof_json],
            )
