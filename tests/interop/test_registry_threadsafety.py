"""Discovery registries under concurrent relays (satellite of the asset PR).

Concurrent exchange legs, batch fan-outs, and event pushes all hit the
shared registry from different threads; these tests hammer the mutate +
lookup paths and assert no lost updates, torn file writes, or exceptions.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import DiscoveryError
from repro.interop.discovery import AddressResolver, FileRegistry, InMemoryRegistry


class FakeRelay:
    def __init__(self, name: str) -> None:
        self.name = name

    def handle_request(self, data: bytes) -> bytes:
        return data


def run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestInMemoryRegistryThreadSafety:
    def test_concurrent_register_and_lookup(self):
        registry = InMemoryRegistry()
        registry.register("net", FakeRelay("seed"))
        errors: list[Exception] = []
        stop = threading.Event()

        def churn(index: int) -> None:
            relay = FakeRelay(f"relay-{index}")
            try:
                for _ in range(300):
                    registry.register("net", relay)
                    assert registry.lookup("net")
                    registry.unregister("net", relay)
            except Exception as exc:  # noqa: BLE001 - collected for assertion
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    endpoints = registry.lookup("net")
                    # The snapshot must always be internally consistent.
                    assert all(hasattr(e, "handle_request") for e in endpoints)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        run_threads([lambda i=i: churn(i) for i in range(8)])
        stop.set()
        reader_thread.join()
        assert errors == []
        # Every churner unregistered its relay: only the seed remains.
        assert [relay.name for relay in registry.lookup("net")] == ["seed"]

    def test_no_lost_registrations_across_threads(self):
        registry = InMemoryRegistry()

        def register_many(index: int) -> None:
            for position in range(100):
                registry.register("net", FakeRelay(f"{index}-{position}"))

        run_threads([lambda i=i: register_many(i) for i in range(8)])
        assert len(registry.lookup("net")) == 800


class TestFileRegistryThreadSafety:
    def test_concurrent_file_registration_loses_no_address(self, tmp_path):
        resolver = AddressResolver()
        registry = FileRegistry(tmp_path / "registry.json", resolver)

        def register_many(index: int) -> None:
            for position in range(25):
                address = f"relay://{index}-{position}"
                resolver.bind(address, FakeRelay(address))
                registry.register(f"net-{index}", address)

        run_threads([lambda i=i: register_many(i) for i in range(6)])
        table = json.loads((tmp_path / "registry.json").read_text())
        assert len(table) == 6
        for index in range(6):
            assert len(table[f"net-{index}"]) == 25
            assert len(registry.lookup(f"net-{index}")) == 25

    def test_lookup_unknown_network_still_raises(self, tmp_path):
        resolver = AddressResolver()
        registry = FileRegistry(tmp_path / "registry.json", resolver)
        registry.register("net", "relay://a")
        with pytest.raises(DiscoveryError):
            registry.lookup("ghost")
