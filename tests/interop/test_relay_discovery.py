"""Tests for relays, discovery services, rate limiting, and failover."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    DiscoveryError,
    RelayError,
    RelayUnavailableError,
)
from repro.interop.discovery import AddressResolver, FileRegistry, InMemoryRegistry
from repro.interop.relay import RateLimiter, RelayService
from repro.proto.messages import (
    MSG_KIND_ERROR,
    MSG_KIND_QUERY_REQUEST,
    NetworkAddressMsg,
    NetworkQuery,
    RelayEnvelope,
)
from repro.utils.clock import SimulatedClock


def make_query(network="stl", policy="org:seller-org") -> NetworkQuery:
    from repro.proto.messages import VerificationPolicyMsg

    return NetworkQuery(
        version=1,
        address=NetworkAddressMsg(
            network=network, ledger="trade-logistics", contract="cc", function="fn"
        ),
        nonce="n-1",
        policy=VerificationPolicyMsg(expression=policy),
    )


class TestInMemoryRegistry:
    def test_register_and_lookup(self):
        registry = InMemoryRegistry()
        sentinel = object()
        registry.register("stl", sentinel)  # type: ignore[arg-type]
        assert registry.lookup("stl") == [sentinel]

    def test_unknown_network(self):
        with pytest.raises(DiscoveryError):
            InMemoryRegistry().lookup("ghost")

    def test_multiple_relays_returned_in_order(self):
        registry = InMemoryRegistry()
        first, second = object(), object()
        registry.register("stl", first)  # type: ignore[arg-type]
        registry.register("stl", second)  # type: ignore[arg-type]
        assert registry.lookup("stl") == [first, second]

    def test_unregister(self):
        registry = InMemoryRegistry()
        relay = object()
        registry.register("stl", relay)  # type: ignore[arg-type]
        registry.unregister("stl", relay)  # type: ignore[arg-type]
        with pytest.raises(DiscoveryError):
            registry.lookup("stl")


class TestFileRegistry:
    def test_lookup_resolves_addresses(self, tmp_path):
        resolver = AddressResolver()
        sentinel = object()
        resolver.bind("relay://stl-1", sentinel)  # type: ignore[arg-type]
        path = tmp_path / "registry.json"
        path.write_text(json.dumps({"stl": ["relay://stl-1"]}))
        registry = FileRegistry(path, resolver)
        assert registry.lookup("stl") == [sentinel]

    def test_register_appends_to_file(self, tmp_path):
        resolver = AddressResolver()
        registry = FileRegistry(tmp_path / "registry.json", resolver)
        registry.register("stl", "relay://stl-1")
        registry.register("stl", "relay://stl-2")
        registry.register("stl", "relay://stl-1")  # idempotent
        table = json.loads((tmp_path / "registry.json").read_text())
        assert table == {"stl": ["relay://stl-1", "relay://stl-2"]}

    def test_missing_file(self, tmp_path):
        registry = FileRegistry(tmp_path / "missing.json", AddressResolver())
        with pytest.raises(DiscoveryError, match="does not exist"):
            registry.lookup("stl")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(DiscoveryError, match="not valid JSON"):
            FileRegistry(path, AddressResolver()).lookup("stl")

    def test_unresolvable_address(self, tmp_path):
        path = tmp_path / "registry.json"
        path.write_text(json.dumps({"stl": ["relay://nowhere"]}))
        with pytest.raises(DiscoveryError, match="does not resolve"):
            FileRegistry(path, AddressResolver()).lookup("stl")

    def test_register_survives_interrupted_write(self, tmp_path, monkeypatch):
        """A crash mid-write must never corrupt the registry file.

        Regression: ``register`` used to ``write_text`` the registry in
        place, so an interrupted write left torn JSON behind and every
        subsequent lookup (from any process) failed. The write now goes
        to a temp file + ``os.replace``, so the interrupted write hits
        only the temp file and the registry keeps its old valid table.
        """
        from pathlib import Path

        resolver = AddressResolver()
        sentinel = object()
        resolver.bind("relay://stl-1", sentinel)  # type: ignore[arg-type]
        path = tmp_path / "registry.json"
        path.write_text(json.dumps({"stl": ["relay://stl-1"]}))
        registry = FileRegistry(path, resolver)

        real_write_text = Path.write_text

        def torn_write(self, text, *args, **kwargs):
            # Simulate power loss / SIGKILL partway through the write:
            # half the payload lands, then the "process" dies.
            real_write_text(self, text[: len(text) // 2], *args, **kwargs)
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(Path, "write_text", torn_write)
        with pytest.raises(OSError, match="simulated crash"):
            registry.register("stl", "relay://stl-2")
        monkeypatch.undo()

        # The registry file is still the complete pre-crash table ...
        assert json.loads(path.read_text()) == {"stl": ["relay://stl-1"]}
        # ... lookups keep working, and no temp droppings remain.
        assert registry.lookup("stl") == [sentinel]
        assert list(tmp_path.iterdir()) == [path]

    def test_register_cleans_up_temp_file_on_success(self, tmp_path):
        registry = FileRegistry(tmp_path / "registry.json", AddressResolver())
        registry.register("stl", "relay://stl-1")
        assert [p.name for p in tmp_path.iterdir()] == ["registry.json"]

    def test_lookup_skips_unresolvable_address(self, tmp_path, caplog):
        """One bad entry must not take down a network with healthy relays.

        Regression: ``lookup`` used to resolve all-or-nothing, so a
        single stale/malformed address raised :class:`DiscoveryError`
        even though resolvable redundant relays existed — defeating the
        paper's §5 redundancy story.
        """
        import logging

        resolver = AddressResolver()
        first, second = object(), object()
        resolver.bind("relay://stl-1", first)  # type: ignore[arg-type]
        resolver.bind("relay://stl-3", second)  # type: ignore[arg-type]
        path = tmp_path / "registry.json"
        path.write_text(
            json.dumps({"stl": ["relay://stl-1", "relay://stl-gone", "relay://stl-3"]})
        )
        registry = FileRegistry(path, resolver)
        with caplog.at_level(logging.WARNING, logger="repro.discovery"):
            assert registry.lookup("stl") == [first, second]
        assert registry.counters()["addresses_skipped"] == 1
        assert any(
            "skipping unresolvable relay address" in record.message
            for record in caplog.records
        )

    def test_lookup_raises_only_when_no_address_resolves(self, tmp_path):
        path = tmp_path / "registry.json"
        path.write_text(json.dumps({"stl": ["relay://gone-1", "relay://gone-2"]}))
        registry = FileRegistry(path, AddressResolver())
        with pytest.raises(DiscoveryError, match="gone-1.*gone-2"):
            registry.lookup("stl")
        assert registry.counters()["addresses_skipped"] == 2

    def test_file_edits_visible_without_restart(self, tmp_path):
        resolver = AddressResolver()
        sentinel = object()
        resolver.bind("relay://late", sentinel)  # type: ignore[arg-type]
        path = tmp_path / "registry.json"
        path.write_text(json.dumps({}))
        registry = FileRegistry(path, resolver)
        with pytest.raises(DiscoveryError):
            registry.lookup("stl")
        path.write_text(json.dumps({"stl": ["relay://late"]}))
        assert registry.lookup("stl") == [sentinel]


class TestRateLimiter:
    def test_allows_within_budget(self):
        clock = SimulatedClock()
        limiter = RateLimiter(3, 1.0, clock=clock)
        assert all(limiter.allow() for _ in range(3))
        assert not limiter.allow()
        assert limiter.rejected == 1

    def test_window_slides(self):
        clock = SimulatedClock()
        limiter = RateLimiter(2, 1.0, clock=clock)
        assert limiter.allow() and limiter.allow()
        assert not limiter.allow()
        clock.advance(1.5)
        assert limiter.allow()

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            RateLimiter(0, 1.0)


class TestRelayErrorHandling:
    def test_garbage_request_gets_error_envelope(self):
        relay = RelayService("stl", InMemoryRegistry())
        reply = RelayEnvelope.decode(relay.handle_request(b"\xff\xfe"))
        assert reply.kind == MSG_KIND_ERROR
        assert b"undecodable envelope" in reply.payload

    def test_wrong_kind_rejected(self):
        relay = RelayService("stl", InMemoryRegistry())
        envelope = RelayEnvelope(version=1, kind=99, request_id="r", payload=b"")
        reply = RelayEnvelope.decode(relay.handle_request(envelope.encode()))
        assert reply.kind == MSG_KIND_ERROR

    def test_no_driver_is_nonretryable_error(self):
        registry = InMemoryRegistry()
        source_relay = RelayService("stl", registry)  # no driver registered
        registry.register("stl", source_relay)
        dest_relay = RelayService("swt", registry)
        with pytest.raises(RelayError, match="no driver"):
            dest_relay.remote_query(make_query())

    def test_query_without_address_rejected_locally(self):
        relay = RelayService("swt", InMemoryRegistry())
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            relay.remote_query(NetworkQuery(version=1))

    def test_unknown_network_discovery_error(self):
        relay = RelayService("swt", InMemoryRegistry())
        with pytest.raises(DiscoveryError):
            relay.remote_query(make_query(network="atlantis"))

    def test_down_relay_then_healthy_relay_failover(self, trade_scenario):
        """Redundant relays: a dead first relay must not break queries."""
        scenario = trade_scenario
        from repro.interop.bootstrap import create_fabric_relay

        registry = InMemoryRegistry()
        dead = create_fabric_relay(scenario.stl, registry, relay_id="dead")
        dead.available = False
        create_fabric_relay(scenario.stl, registry, relay_id="alive")
        dest = RelayService("swt", registry)
        client_identity = scenario.swt.org("seller-bank-org").member("seller")
        from repro.interop.client import InteropClient

        client = InteropClient(client_identity, dest, "swt")
        # (needs B/L present first)
        scenario.stl_seller_app.create_shipment("PO-F", "goods")
        scenario.carrier_app.accept_shipment("PO-F")
        scenario.carrier_app.record_handover("PO-F")
        scenario.carrier_app.issue_bill_of_lading("PO-F", "MV F")
        result = client.remote_query(
            "stl/trade-logistics/TradeLensCC/GetBillOfLading",
            ["PO-F"],
            policy="AND(org:seller-org, org:carrier-org)",
        )
        assert b"BL-PO-F" in result.data
        assert dest.stats.failovers == 1

    def test_all_relays_down(self):
        registry = InMemoryRegistry()
        relay = RelayService("stl", registry)
        relay.available = False
        registry.register("stl", relay)
        dest = RelayService("swt", registry)
        with pytest.raises(RelayUnavailableError):
            dest.remote_query(make_query())

    def test_rate_limited_relay_shed_is_retryable(self):
        clock = SimulatedClock()
        registry = InMemoryRegistry()
        limited = RelayService(
            "stl", registry, rate_limiter=RateLimiter(1, 10.0, clock=clock)
        )
        registry.register("stl", limited)
        # exhaust the budget
        limited.handle_request(b"anything")
        dest = RelayService("swt", registry)
        with pytest.raises(RelayUnavailableError, match="rate limit"):
            dest.remote_query(make_query())
        assert limited.stats.requests_rejected == 1

    def test_request_id_correlation_enforced(self):
        registry = InMemoryRegistry()

        class ConfusedRelay:
            def handle_request(self, data: bytes) -> bytes:
                envelope = RelayEnvelope.decode(data)
                from repro.proto.messages import (
                    MSG_KIND_QUERY_RESPONSE,
                    QueryResponse,
                )

                return RelayEnvelope(
                    version=1,
                    kind=MSG_KIND_QUERY_RESPONSE,
                    request_id="some-other-request",
                    payload=QueryResponse(version=1, nonce="n-1").encode(),
                ).encode()

        registry.register("stl", ConfusedRelay())
        dest = RelayService("swt", registry)
        with pytest.raises(RelayUnavailableError, match="correlates"):
            dest.remote_query(make_query())
