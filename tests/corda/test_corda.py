"""Tests for the Corda-like substrate."""

from __future__ import annotations

import pytest

from repro.corda import CordaNetwork, CordaTransaction, LinearState, StateRef
from repro.errors import LedgerError, MembershipError, NotaryError


@pytest.fixture()
def network():
    net = CordaNetwork("corda-test")
    net.add_node("alice")
    net.add_node("bob")
    net.add_node("carol")
    return net


def doc_state(linear_id: str, participants, version=1) -> LinearState:
    return LinearState(
        linear_id=linear_id,
        kind="doc",
        data={"version": version},
        participants=tuple(participants),
    )


class TestStatesAndVaults:
    def test_issue_state_lands_in_participant_vaults(self, network):
        alice = network.node("alice")
        tx = alice.propose([], [doc_state("D1", ["alice", "bob"])], "Issue")
        assert tx.notary_signature is not None
        assert network.node("bob").vault_states("doc")
        assert not network.node("carol").vault_states("doc")

    def test_update_consumes_previous_state(self, network):
        alice = network.node("alice")
        tx1 = alice.propose([], [doc_state("D1", ["alice", "bob"])], "Issue")
        ref = tx1.output_ref(0)
        alice.propose([ref], [doc_state("D1", ["alice", "bob"], version=2)], "Update")
        _, state = network.node("bob").lookup("D1")
        assert state.data["version"] == 2

    def test_lookup_missing_state(self, network):
        with pytest.raises(LedgerError, match="no unconsumed state"):
            network.node("alice").lookup("GHOST")

    def test_unknown_node(self, network):
        with pytest.raises(MembershipError):
            network.node("mallory")

    def test_duplicate_node_rejected(self, network):
        with pytest.raises(MembershipError):
            network.add_node("alice")


class TestSignaturesAndNotary:
    def test_all_participants_sign(self, network):
        alice = network.node("alice")
        tx = alice.propose([], [doc_state("D1", ["alice", "bob", "carol"])], "Issue")
        assert set(tx.signatures) == {"alice", "bob", "carol"}
        for name in tx.signatures:
            node = network.node(name)
            assert tx.verify_signature(name, node.identity.keypair.public)

    def test_notary_signature_verifies(self, network):
        alice = network.node("alice")
        tx = alice.propose([], [doc_state("D1", ["alice"])], "Issue")
        assert network.notary.verify_notarization(tx)

    def test_double_spend_rejected(self, network):
        alice = network.node("alice")
        tx1 = alice.propose([], [doc_state("D1", ["alice", "bob"])], "Issue")
        ref = tx1.output_ref(0)
        alice.propose([ref], [doc_state("D1", ["alice", "bob"], 2)], "Update")
        spend_again = CordaTransaction(
            inputs=[ref],
            outputs=[doc_state("D1", ["alice"], 3)],
            command="Update",
            proposer="alice",
            required_signers=["alice"],
        )
        spend_again.add_signature(
            "alice", alice.identity.sign(spend_again.signable_bytes()).to_bytes()
        )
        with pytest.raises(NotaryError, match="double spend"):
            network.notary.notarize(spend_again)

    def test_notary_requires_full_signatures(self, network):
        tx = CordaTransaction(
            inputs=[],
            outputs=[doc_state("D2", ["alice", "bob"])],
            command="Issue",
            proposer="alice",
            required_signers=["alice", "bob"],
        )
        with pytest.raises(LedgerError, match="missing signatures"):
            network.notary.notarize(tx)

    def test_contract_verifier_enforced(self, network):
        def only_v1(inputs, outputs, command):
            for output in outputs:
                if output.data.get("version") != 1:
                    raise LedgerError("contract: only version 1 may be issued")

        network.register_contract("Issue", only_v1)
        alice = network.node("alice")
        with pytest.raises(LedgerError, match="only version 1"):
            alice.propose([], [doc_state("D1", ["alice"], version=9)], "Issue")
        alice.propose([], [doc_state("D1", ["alice"], version=1)], "Issue")


class TestTransactions:
    def test_tx_id_depends_on_content(self, network):
        tx_a = CordaTransaction(
            inputs=[], outputs=[doc_state("A", ["alice"])], command="Issue",
            proposer="alice", required_signers=["alice"],
        )
        tx_b = CordaTransaction(
            inputs=[], outputs=[doc_state("B", ["alice"])], command="Issue",
            proposer="alice", required_signers=["alice"],
        )
        assert tx_a.tx_id != tx_b.tx_id

    def test_output_ref_bounds(self, network):
        tx = CordaTransaction(
            inputs=[], outputs=[doc_state("A", ["alice"])], command="Issue",
            proposer="alice", required_signers=["alice"],
        )
        assert tx.output_ref(0) == StateRef(tx.tx_id, 0)
        with pytest.raises(LedgerError):
            tx.output_ref(1)

    def test_resolve_inputs_unknown_tx(self, network):
        tx = CordaTransaction(
            inputs=[StateRef("ghost-tx", 0)],
            outputs=[],
            command="Consume",
            proposer="alice",
            required_signers=["alice"],
        )
        with pytest.raises(LedgerError, match="unknown input"):
            network.resolve_inputs(tx)


class TestConfigExport:
    def test_export_includes_all_nodes_and_notary(self, network):
        config = network.export_config()
        org_ids = {org.org_id for org in config.organizations}
        assert org_ids == {"alice", "bob", "carol", "notary-org"}
        assert config.platform == "corda"
        for org in config.organizations:
            assert org.root_certificate
            assert len(org.peers) == 1
