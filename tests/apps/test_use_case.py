"""Tests for the STL/SWT chaincodes and the full Figure 3 use case."""

from __future__ import annotations

import json

import pytest

from repro.apps import run_full_use_case
from repro.errors import EndorsementError


class TestStlLifecycle:
    def test_full_shipment_lifecycle(self, trade_scenario):
        scenario = trade_scenario
        shipment = scenario.stl_seller_app.create_shipment("PO-1", "widgets")
        assert shipment["status"] == "CREATED"
        assert scenario.carrier_app.accept_shipment("PO-1")["status"] == "ACCEPTED"
        assert scenario.carrier_app.record_handover("PO-1")["status"] == "IN_POSSESSION"
        bl = scenario.carrier_app.issue_bill_of_lading("PO-1", "MV X")
        assert bl["bl_id"] == "BL-PO-1"
        assert scenario.stl_seller_app.get_shipment("PO-1")["status"] == "BL_ISSUED"

    def test_only_seller_creates(self, trade_scenario):
        with pytest.raises(EndorsementError, match="seller-org"):
            trade_scenario.carrier_app._submit("CreateShipment", ["PO-X", "g"])

    def test_only_carrier_accepts(self, trade_scenario):
        trade_scenario.stl_seller_app.create_shipment("PO-1", "g")
        with pytest.raises(EndorsementError, match="carrier-org"):
            trade_scenario.stl_seller_app._submit("AcceptShipment", ["PO-1"])

    def test_duplicate_shipment_rejected(self, trade_scenario):
        trade_scenario.stl_seller_app.create_shipment("PO-1", "g")
        with pytest.raises(EndorsementError, match="already exists"):
            trade_scenario.stl_seller_app.create_shipment("PO-1", "g")

    def test_bl_requires_possession(self, trade_scenario):
        trade_scenario.stl_seller_app.create_shipment("PO-1", "g")
        trade_scenario.carrier_app.accept_shipment("PO-1")
        with pytest.raises(EndorsementError, match="possession"):
            trade_scenario.carrier_app.issue_bill_of_lading("PO-1", "MV X")

    def test_status_transitions_enforced(self, trade_scenario):
        trade_scenario.stl_seller_app.create_shipment("PO-1", "g")
        with pytest.raises(EndorsementError, match="cannot hand over"):
            trade_scenario.carrier_app.record_handover("PO-1")


class TestSwtLifecycle:
    def test_lc_request_and_issue(self, trade_scenario):
        lc = trade_scenario.buyer_app.request_lc("PO-1", "b", "s", 500.0)
        assert lc["status"] == "REQUESTED"
        lc = trade_scenario.buyer_bank_app.issue_lc("PO-1")
        assert lc["status"] == "ISSUED"
        assert lc["issuing_bank"] == "buyer-bank-org"

    def test_amount_validation(self, trade_scenario):
        with pytest.raises(EndorsementError, match="positive"):
            trade_scenario.buyer_app.request_lc("PO-1", "b", "s", -5.0)
        with pytest.raises(EndorsementError, match="not a number"):
            trade_scenario.buyer_app._submit("RequestLC", ["PO-2", "b", "s", "NaN-ish"])

    def test_only_buyer_bank_issues(self, trade_scenario):
        trade_scenario.buyer_app.request_lc("PO-1", "b", "s", 500.0)
        with pytest.raises(EndorsementError, match="buyer-bank-org"):
            trade_scenario.seller_bank_app._submit("IssueLC", ["PO-1"])

    def test_payment_requires_docs(self, trade_scenario):
        trade_scenario.buyer_app.request_lc("PO-1", "b", "s", 500.0)
        trade_scenario.buyer_bank_app.issue_lc("PO-1")
        with pytest.raises(EndorsementError, match="uploaded dispatch docs"):
            trade_scenario.seller_bank_app.request_payment("PO-1")

    def test_docs_upload_requires_issued_lc(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        scenario.swt_seller_client.upload_dispatch_docs(po_ref, fetched)
        # Second upload: L/C no longer in ISSUED state.
        fetched2 = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        with pytest.raises(EndorsementError, match="cannot upload"):
            scenario.swt_seller_client.upload_dispatch_docs(po_ref, fetched2)

    def test_bl_po_ref_must_match(self, shipped_scenario):
        scenario, po_ref = shipped_scenario
        fetched = scenario.swt_seller_client.fetch_bill_of_lading(po_ref)
        scenario.buyer_app.request_lc("PO-OTHER", "b", "s", 10.0)
        scenario.buyer_bank_app.issue_lc("PO-OTHER")
        with pytest.raises(EndorsementError, match="references"):
            scenario.swt.gateway.submit(
                scenario.swt.org("seller-bank-org").member("seller"),
                "WeTradeCC",
                "UploadDispatchDocs",
                ["PO-OTHER", fetched.data.decode(), fetched.nonce, fetched.proof_json],
            )


class TestFullUseCase:
    def test_ten_steps_complete(self, completed_use_case):
        scenario, result = completed_use_case
        assert result.final_lc["status"] == "PAID"
        assert len(result.steps) == 11
        assert result.bill_of_lading["bl_id"] == "BL-PO-MODULE-001"

    def test_dispatch_docs_stored_on_swt_ledger(self, completed_use_case):
        scenario, result = completed_use_case
        seller = scenario.swt.org("seller-bank-org").member("seller")
        raw = scenario.swt.gateway.evaluate(
            seller, "WeTradeCC", "GetDispatchDocs", [result.po_ref]
        )
        assert json.loads(raw)["bl_id"] == result.bill_of_lading["bl_id"]

    def test_ledgers_consistent_across_peers(self, completed_use_case):
        scenario, _ = completed_use_case
        for network in (scenario.stl, scenario.swt):
            snapshots = [peer.state.snapshot() for peer in network.peers]
            assert all(snapshot == snapshots[0] for snapshot in snapshots)
            assert all(peer.ledger.verify_chain() for peer in network.peers)

    def test_use_case_repeatable_with_new_po(self, completed_use_case):
        scenario, _ = completed_use_case
        result = run_full_use_case(scenario, po_ref="PO-MODULE-002")
        assert result.final_lc["status"] == "PAID"

    def test_non_confidential_variant(self, trade_scenario):
        result = run_full_use_case(
            trade_scenario, po_ref="PO-PLAIN", confidential=False
        )
        assert result.final_lc["status"] == "PAID"

    def test_chaincode_events_emitted(self, completed_use_case):
        scenario, result = completed_use_case
        names = [event.name for event in scenario.swt.event_hub.history]
        for expected in ("LCRequested", "LCIssued", "DispatchDocsUploaded", "PaymentMade"):
            assert expected in names

    def test_glossary_renders(self):
        from repro.apps.glossary import GLOSSARY, render_glossary

        text = render_glossary()
        for acronym, _ in GLOSSARY:
            assert acronym in text
