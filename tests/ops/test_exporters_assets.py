"""The ``repro_assets_*`` exporter: ExchangeMetrics → Prometheus families.

Pure snapshot-to-families coverage: a shared
:class:`~repro.assets.metrics.ExchangeMetrics` is fed by hand the way
the coordinators feed it, ``register_assets`` attaches the scrape-time
collector, and the rendered exposition is validated through the strict
parser. End-to-end feeding (a real exchange driving the same counters)
lives with the asset tests.
"""

from __future__ import annotations

import pytest

from repro.assets.metrics import KIND_CYCLE, KIND_EXCHANGE, ExchangeMetrics
from repro.ops.exporters import ASSET_LATENCY_BUCKETS, register_assets
from repro.ops.metrics import MetricsRegistry
from repro.testing import parse_exposition


@pytest.fixture()
def wired():
    metrics = ExchangeMetrics()
    registry = MetricsRegistry()
    register_assets(registry, metrics)
    return metrics, registry


def scrape(registry: MetricsRegistry):
    return parse_exposition(registry.render())


class TestAssetFamilies:
    def test_active_gauge_tracks_started_minus_settled(self, wired):
        metrics, registry = wired
        metrics.exchange_started(KIND_EXCHANGE)
        metrics.exchange_started(KIND_EXCHANGE)
        metrics.exchange_started(KIND_CYCLE)
        metrics.state_entered(KIND_EXCHANGE, "completed")

        families = scrape(registry)
        active = {
            sample.label_dict()["kind"]: sample.value
            for sample in families["repro_assets_active"].samples
        }
        assert families["repro_assets_active"].kind == "gauge"
        assert active == {"exchange": 1, "cycle": 1}
        started = {
            sample.label_dict()["kind"]: sample.value
            for sample in families["repro_assets_started_total"].samples
        }
        assert started == {"exchange": 2, "cycle": 1}

    def test_transitions_split_kind_and_state_labels(self, wired):
        metrics, registry = wired
        metrics.state_entered(KIND_CYCLE, "locking")
        metrics.state_entered(KIND_CYCLE, "locked")
        metrics.state_entered(KIND_CYCLE, "locked")

        family = scrape(registry)["repro_assets_transitions_total"]
        assert family.kind == "counter"
        by_labels = {
            (sample.label_dict()["kind"], sample.label_dict()["state"]): sample.value
            for sample in family.samples
        }
        assert by_labels == {("cycle", "locking"): 1, ("cycle", "locked"): 2}

    def test_refunds_and_aborts_export(self, wired):
        metrics, registry = wired
        metrics.abort_recorded(KIND_CYCLE)
        metrics.refund_recorded(KIND_CYCLE, legs=3)
        metrics.refund_recorded(KIND_EXCHANGE)

        families = scrape(registry)
        refunds = {
            sample.label_dict()["kind"]: sample.value
            for sample in families["repro_assets_refund_legs_total"].samples
        }
        assert refunds == {"cycle": 3, "exchange": 1}
        [abort] = families["repro_assets_aborts_total"].samples
        assert abort.label_dict() == {"kind": "cycle"}
        assert abort.value == 1

    def test_latency_histogram_buckets_and_sum(self, wired):
        metrics, registry = wired
        metrics.latency_recorded(KIND_CYCLE, 0.3)
        metrics.latency_recorded(KIND_CYCLE, 45.0)
        metrics.latency_recorded(KIND_CYCLE, 10_000.0)  # beyond the last bound

        family = scrape(registry)["repro_assets_lock_to_claim_seconds"]
        assert family.kind == "histogram"
        buckets = {
            sample.label_dict()["le"]: sample.value
            for sample in family.samples
            if sample.name.endswith("_bucket")
        }
        assert buckets["0.5"] == 1  # only the 0.3s cycle
        assert buckets["30"] == 1  # 45s is past the 30s bound
        assert buckets["60"] == 2
        assert buckets["600"] == 2  # the 10000s outlier only lands in +Inf
        assert buckets["+Inf"] == 3
        [count] = [s for s in family.samples if s.name.endswith("_count")]
        [total] = [s for s in family.samples if s.name.endswith("_sum")]
        assert count.value == 3
        assert total.value == pytest.approx(10_045.3)

    def test_empty_metrics_render_no_families(self, wired):
        """Nothing reported yet ⇒ the asset collector contributes no
        headers at all (a bare HELP/TYPE block fails strict readers)."""
        _, registry = wired
        assert "repro_assets" not in registry.render()

    def test_bucket_grid_covers_subsecond_to_ten_minutes(self):
        assert ASSET_LATENCY_BUCKETS[0] <= 0.1
        assert ASSET_LATENCY_BUCKETS[-1] >= 600.0

    def test_coexists_with_relay_families_in_one_registry(self, wired):
        """One registry serves both the relay exporter's families and the
        asset families — the deployment shape the ops plane documents."""
        metrics, registry = wired
        metrics.exchange_started(KIND_EXCHANGE)
        counter = registry.counter("repro_other_total", "unrelated instrument")
        counter.inc()
        families = scrape(registry)
        assert "repro_other_total" in families
        assert "repro_assets_started_total" in families
