"""Metrics instruments and registry: semantics, bounds, and rendering."""

from __future__ import annotations

import threading

import pytest

from repro.ops.metrics import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL_VALUE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_family,
    format_value,
    gauge_family,
)
from repro.testing import parse_exposition


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("repro_test_total", "t", ("kind",))
        counter.inc(kind="query")
        counter.inc(2.5, kind="query")
        counter.inc(kind="batch")
        assert counter.value(kind="query") == 3.5
        assert counter.value(kind="batch") == 1.0
        assert counter.value(kind="never") == 0.0

    def test_negative_increment_rejected(self):
        counter = Counter("repro_test_total", "t")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1.0)

    def test_wrong_label_set_rejected(self):
        counter = Counter("repro_test_total", "t", ("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(other="x")
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()

    def test_labelless_counter_renders_a_zero_sample(self):
        family = Counter("repro_zero_total", "t").family()
        assert family.samples == (((), 0.0),)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("0bad", "t")
        with pytest.raises(ValueError):
            Counter("repro_ok_total", "t", ("bad-label",))
        with pytest.raises(ValueError):
            Counter("repro_ok_total", "t", ("__reserved",))
        with pytest.raises(ValueError):
            Counter("repro_ok_total", "t", ("dup", "dup"))


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_test_gauge", "t")
        gauge.set(10.0)
        gauge.dec(3.0)
        gauge.inc(1.0)
        assert gauge.value() == 8.0


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        histogram = Histogram(
            "repro_test_seconds", "t", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        family = histogram.family()
        ((pairs, cumulative, total),) = family.samples
        assert pairs == ()
        assert cumulative == (1, 2, 3, 4)  # cumulative, +Inf last
        assert total == pytest.approx(5.555)

    def test_boundary_value_is_le_inclusive(self):
        histogram = Histogram("repro_test_seconds", "t", buckets=(0.1, 1.0))
        histogram.observe(0.1)  # le="0.1" must include exactly 0.1
        ((_, cumulative, _),) = histogram.family().samples
        assert cumulative == (1, 1, 1)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram("repro_x_seconds", "t", buckets=())
        with pytest.raises(ValueError):
            Histogram("repro_x_seconds", "t", buckets=(0.1, 0.1))
        # A trailing +Inf is tolerated (it is implicit).
        histogram = Histogram(
            "repro_x_seconds", "t", buckets=(0.1, float("inf"))
        )
        assert histogram.buckets == (0.1,)


class TestBoundedLabelSets:
    def test_overflow_folds_into_other(self):
        counter = Counter("repro_test_total", "t", ("request_id",), max_series=2)
        counter.inc(request_id="req-1")
        counter.inc(request_id="req-2")
        for i in range(50):
            counter.inc(request_id=f"req-flood-{i}")
        family = counter.family()
        assert len(family.samples) == 3  # 2 real + _other, never 52
        folded = dict(family.samples)[(("request_id", OVERFLOW_LABEL_VALUE),)]
        assert folded == 50.0

    def test_existing_series_keep_updating_after_overflow(self):
        counter = Counter("repro_test_total", "t", ("kind",), max_series=1)
        counter.inc(kind="query")
        counter.inc(kind="flood")
        counter.inc(kind="query")
        assert counter.value(kind="query") == 2.0


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_a_total", "t", ("kind",))
        second = registry.counter("repro_a_total", "t", ("kind",))
        assert first is second

    def test_conflicting_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "t", ("kind",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_a_total", "t", ("kind",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_a_total", "t", ("other",))

    def test_collector_families_merge_by_name(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda: [
                counter_family(
                    "repro_stats_total", "t", [((("relay_id", "r1"),), 1.0)]
                )
            ]
        )
        registry.register_collector(
            lambda: [
                counter_family(
                    "repro_stats_total", "t", [((("relay_id", "r2"),), 2.0)]
                )
            ]
        )
        (family,) = registry.collect()
        assert len(family.samples) == 2

    def test_kind_conflict_across_collectors_raises(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda: [counter_family("repro_x_total", "t", [((), 1.0)])]
        )
        registry.register_collector(
            lambda: [gauge_family("repro_x_total", "t", [((), 1.0)])]
        )
        with pytest.raises(ValueError, match="conflicting"):
            registry.collect()

    def test_render_parses_under_the_strict_grammar(self):
        registry = MetricsRegistry()
        requests = registry.counter("repro_requests_total", "served", ("kind",))
        requests.inc(kind="query")
        requests.inc(kind='odd"kind\nwith\\escapes')
        in_flight = registry.gauge("repro_in_flight", "now serving")
        in_flight.set(3)
        latency = registry.histogram(
            "repro_latency_seconds", "serve latency", ("kind",)
        )
        latency.observe(0.004, kind="query")
        latency.observe(0.2, kind="query")
        families = parse_exposition(registry.render())
        assert families["repro_requests_total"].kind == "counter"
        label_values = {
            sample.label_dict()["kind"]
            for sample in families["repro_requests_total"].samples
        }
        assert 'odd"kind\nwith\\escapes' in label_values  # escapes round-trip
        assert families["repro_in_flight"].samples[0].value == 3
        histogram = families["repro_latency_seconds"]
        assert histogram.kind == "histogram"
        buckets = [
            sample
            for sample in histogram.samples
            if sample.name.endswith("_bucket")
        ]
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1  # per-bound + +Inf

    def test_empty_labeled_families_are_not_rendered(self):
        registry = MetricsRegistry()
        registry.counter("repro_silent_total", "t", ("kind",))
        registry.counter("repro_live_total", "t").inc()
        families = parse_exposition(registry.render())
        assert "repro_silent_total" not in families
        assert "repro_live_total" in families

    def test_concurrent_updates_do_not_lose_counts(self):
        counter = Counter("repro_test_total", "t", ("kind",))
        threads = [
            threading.Thread(
                target=lambda: [counter.inc(kind="query") for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(kind="query") == 8000.0


class TestFormatting:
    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
