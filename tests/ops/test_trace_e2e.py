"""One trace id, end to end over real sockets.

Acceptance for the observability tentpole: a single trace id opened by
the client verb appears in the JSON log records of every layer serving
that request — client session (``repro.api``), both relay services
(``repro.relay``), the TCP frame server (``repro.net``), and the Fabric
driver (``repro.driver``) — with the only link between the two relays
being framed envelopes on a real TCP connection. Rejections correlate
too: error envelopes and rate-limit sheds carry the caller's trace id
back in their reply headers.
"""

from __future__ import annotations

import json

import pytest

from repro.fabric import NetworkBuilder
from repro.fabric.chaincode import Chaincode, require_args
from repro.fabric.identity import Organization
from repro.interop.bootstrap import create_fabric_relay, enable_fabric_interop
from repro.interop.client import InteropClient
from repro.interop.contracts.ecc import ECC_NAME
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.fabric_driver import INTEROP_TRANSIENT_KEY
from repro.interop.relay import RateLimiter, RelayService
from repro.net import RelayServer
from repro.ops.logging import capture_logs
from repro.ops.trace import (
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    activate,
    new_trace,
)
from repro.proto.messages import (
    MSG_KIND_ERROR,
    PROTOCOL_VERSION,
    NetworkConfigMsg,
    OrganizationConfigMsg,
    RelayEnvelope,
)

SOURCE = "tracenet"
DESTINATION = "tracedest"
POLICY = "AND(org:trace-org-a, org:trace-org-b)"

#: The logger of every layer one traced query must touch.
EXPECTED_LAYERS = {"repro.api", "repro.relay", "repro.net", "repro.driver"}


class TraceChaincode(Chaincode):
    """Get-only record store with the §4.3 interop adaptation."""

    name = "tracecc"

    def invoke(self, stub):
        if stub.function == "init":
            return b"ok"
        if stub.function == "Put":
            key, value = require_args(stub, 2)
            stub.put_state("record/" + key, value.encode("utf-8"))
            return b"ok"
        if stub.function != "Get":
            from repro.errors import ChaincodeError

            raise ChaincodeError(f"{self.name} has no function {stub.function!r}")
        (key,) = require_args(stub, 1)
        raw = stub.get_state("record/" + key)
        if raw is None:
            from repro.errors import ChaincodeError

            raise ChaincodeError(f"no record {key!r}")
        interop_raw = stub.get_transient(INTEROP_TRANSIENT_KEY)
        if interop_raw is None:
            return raw
        interop_ctx = json.loads(interop_raw)
        stub.invoke_chaincode(
            ECC_NAME,
            "CheckAccess",
            [
                interop_ctx["requesting_network"],
                interop_ctx["requesting_org"],
                self.name,
                "Get",
            ],
        )
        return stub.invoke_chaincode(
            ECC_NAME,
            "SealResponse",
            [
                raw.hex(),
                interop_ctx["client_pubkey"],
                "true" if interop_ctx["confidential"] else "false",
            ],
        )


@pytest.fixture(scope="module")
def traced_topology():
    """Fabric source + bare destination, joined ONLY by TCP frames."""
    destination_org = Organization("trace-dest-org", network=DESTINATION)
    app = destination_org.enroll("app", role="client")
    registry = InMemoryRegistry()
    destination_relay = RelayService(DESTINATION, registry)
    registry.register(DESTINATION, destination_relay)

    fabric = (
        NetworkBuilder(SOURCE, channel="trade")
        .add_org("trace-org-a")
        .add_org("trace-org-b")
        .add_peer("peer0", "trace-org-a")
        .add_peer("peer0", "trace-org-b")
        .add_client("admin", "trace-org-a")
        .build()
    )
    admin = fabric.org("trace-org-a").member("admin")
    enable_fabric_interop(fabric, admin)
    fabric.deploy_chaincode(
        TraceChaincode(),
        "AND('trace-org-a.peer', 'trace-org-b.peer')",
        initializer=admin,
    )
    config = NetworkConfigMsg(
        network_id=DESTINATION,
        platform="fabric",
        organizations=[
            OrganizationConfigMsg(
                org_id="trace-dest-org",
                msp_id="trace-dest-orgMSP",
                root_certificate=destination_org.msp.root_certificate.to_bytes(),
            )
        ],
    )
    fabric.gateway.submit(
        admin, "cmdac", "RecordNetworkConfig", [DESTINATION, config.encode().hex()]
    )
    fabric.gateway.submit(
        admin,
        "ecc",
        "AddAccessRule",
        [DESTINATION, "trace-dest-org", "tracecc", "Get"],
    )
    fabric.gateway.submit(admin, "tracecc", "Put", ["DOC-1", "trace-payload"])

    source_relay = create_fabric_relay(fabric, registry, register=False)
    server = RelayServer(source_relay, max_workers=4, probe_port=0).start()
    registry.register(SOURCE, server.endpoint(timeout=10.0))
    client = InteropClient(app, destination_relay, DESTINATION)
    try:
        yield client, source_relay, server
    finally:
        server.stop()


class TestTracePropagation:
    def test_one_trace_id_spans_every_layer(self, traced_topology):
        client, _, _ = traced_topology
        with capture_logs() as capture:
            context = new_trace()
            with activate(context):
                result = client.remote_query(
                    f"{SOURCE}/trade/tracecc/Get", ["DOC-1"], policy=POLICY
                )
        assert result.data == b"trace-payload"
        correlated = capture.with_trace(context.trace_id)
        layers = {record["logger"] for record in correlated}
        assert EXPECTED_LAYERS <= layers, (
            f"trace {context.trace_id} missing layers "
            f"{EXPECTED_LAYERS - layers}; saw {sorted(layers)} in "
            f"{len(correlated)} records"
        )
        # Both relay hops logged under the one trace: the destination
        # forwarding the envelope, the source serving it.
        relay_messages = {
            record["message"]
            for record in correlated
            if record["logger"] == "repro.relay"
        }
        assert "forwarding envelope" in relay_messages
        assert "serving inbound envelope" in relay_messages
        # The frame server attributes the frame to the same trace even
        # though it logs from the asyncio loop, outside the serve thread.
        net_records = [
            record for record in correlated if record["logger"] == "repro.net"
        ]
        assert net_records and all(
            record["trace_id"] == context.trace_id for record in net_records
        )

    def test_concurrent_queries_do_not_cross_pollute(self, traced_topology):
        client, _, _ = traced_topology
        import threading

        traces: dict[str, str] = {}
        lock = threading.Lock()

        def worker(index: int) -> None:
            with activate(new_trace()) as context:
                client.remote_query(
                    f"{SOURCE}/trade/tracecc/Get", ["DOC-1"], policy=POLICY
                )
                with lock:
                    traces[f"w{index}"] = context.trace_id

        with capture_logs() as capture:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(set(traces.values())) == 4
        for trace_id in traces.values():
            layers = capture.loggers(trace_id)
            assert EXPECTED_LAYERS <= layers, (
                f"trace {trace_id} leaked/merged: saw only {sorted(layers)}"
            )

    def test_error_reply_carries_the_callers_trace_id(self, traced_topology):
        _, _, server = traced_topology
        endpoint = server.endpoint(timeout=10.0)
        request = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=424242,  # no such kind: the relay must answer an error
            request_id="req-err-1",
            source_network=DESTINATION,
            destination_network=SOURCE,
            payload=b"",
            headers={TRACE_ID_HEADER: "trace-err-probe", SPAN_ID_HEADER: "span-1"},
        )
        reply = RelayEnvelope.decode(endpoint.handle_request(request.encode()))
        assert reply.kind == MSG_KIND_ERROR
        assert b"unexpected message kind" in reply.payload
        assert reply.headers[TRACE_ID_HEADER] == "trace-err-probe"
        assert reply.request_id == "req-err-1"
        endpoint.close()

    def test_rate_limit_shed_carries_the_callers_trace_id(self):
        registry = InMemoryRegistry()
        relay = RelayService(
            "shednet", registry, rate_limiter=RateLimiter(1, 3600.0)
        )
        with RelayServer(relay, max_workers=2) as server:
            endpoint = server.endpoint(timeout=10.0)

            def traced_request(tag: str) -> RelayEnvelope:
                request = RelayEnvelope(
                    version=PROTOCOL_VERSION,
                    kind=424242,
                    request_id=f"req-{tag}",
                    source_network=DESTINATION,
                    destination_network="shednet",
                    payload=b"",
                    headers={
                        TRACE_ID_HEADER: f"trace-{tag}",
                        SPAN_ID_HEADER: f"span-{tag}",
                    },
                )
                return RelayEnvelope.decode(
                    endpoint.handle_request(request.encode())
                )

            traced_request("warmup")  # consumes the single window slot
            shed = traced_request("shed")
            assert shed.kind == MSG_KIND_ERROR
            assert b"rate limit exceeded" in shed.payload
            assert shed.headers[TRACE_ID_HEADER] == "trace-shed"
            assert shed.headers["retryable"] == "true"
            endpoint.close()
