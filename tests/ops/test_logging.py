"""Structured JSON logging: record shape, trace stamping, capture."""

from __future__ import annotations

import io
import json
import logging

from repro.ops.logging import (
    JsonLogFormatter,
    TraceContextFilter,
    capture_logs,
    configure_json_logging,
)
from repro.ops.trace import activate, new_trace


def make_record(message: str = "hello", **extra) -> logging.LogRecord:
    record = logging.LogRecord(
        name="repro.test",
        level=logging.INFO,
        pathname=__file__,
        lineno=1,
        msg=message,
        args=(),
        exc_info=None,
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestFormatter:
    def test_core_fields(self):
        payload = json.loads(JsonLogFormatter().format(make_record()))
        assert payload["message"] == "hello"
        assert payload["logger"] == "repro.test"
        assert payload["level"] == "INFO"
        assert isinstance(payload["ts"], float)
        assert payload["trace_id"] == ""

    def test_extra_fields_are_emitted(self):
        record = make_record(relay_id="relay-1", bytes_in=42)
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["relay_id"] == "relay-1"
        assert payload["bytes_in"] == 42

    def test_unserializable_extras_degrade_to_repr(self):
        record = make_record(weird=object())
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["weird"].startswith("<object object")

    def test_exception_is_attached(self):
        try:
            raise ValueError("boom")
        except ValueError:
            import sys

            record = make_record()
            record.exc_info = sys.exc_info()
        payload = json.loads(JsonLogFormatter().format(record))
        assert "ValueError: boom" in payload["exc"]


class TestTraceStamping:
    def test_filter_stamps_the_active_trace(self):
        record = make_record()
        context = new_trace()
        with activate(context):
            TraceContextFilter().filter(record)
        assert record.trace_id == context.trace_id
        assert record.span_id == context.span_id

    def test_explicit_trace_id_wins(self):
        record = make_record(trace_id="trace-explicit")
        with activate(new_trace()):
            TraceContextFilter().filter(record)
        assert record.trace_id == "trace-explicit"

    def test_no_trace_stamps_empty(self):
        record = make_record()
        TraceContextFilter().filter(record)
        assert record.trace_id == ""
        assert record.span_id == ""


class TestConfigure:
    def test_emits_one_json_line_per_record(self):
        buffer = io.StringIO()
        handler = configure_json_logging(stream=buffer, level=logging.DEBUG)
        try:
            context = new_trace()
            with activate(context):
                logging.getLogger("repro.api").debug(
                    "remote query", extra={"address": "net/l/c/F"}
                )
            (line,) = buffer.getvalue().strip().splitlines()
            payload = json.loads(line)
            assert payload["message"] == "remote query"
            assert payload["address"] == "net/l/c/F"
            assert payload["trace_id"] == context.trace_id
        finally:
            logging.getLogger("repro").removeHandler(handler)
            logging.getLogger("repro").setLevel(logging.NOTSET)
            logging.getLogger("repro").propagate = True

    def test_reconfiguration_replaces_the_prior_handler(self):
        first_buffer = io.StringIO()
        second_buffer = io.StringIO()
        configure_json_logging(stream=first_buffer, level=logging.DEBUG)
        handler = configure_json_logging(stream=second_buffer, level=logging.DEBUG)
        try:
            logging.getLogger("repro.relay").debug("once")
            assert first_buffer.getvalue() == ""  # old handler was removed
            assert second_buffer.getvalue().count("\n") == 1
        finally:
            logging.getLogger("repro").removeHandler(handler)
            logging.getLogger("repro").setLevel(logging.NOTSET)
            logging.getLogger("repro").propagate = True


class TestCapture:
    def test_capture_collects_parsed_records(self):
        with capture_logs() as capture:
            context = new_trace()
            with activate(context):
                logging.getLogger("repro.relay").debug(
                    "serving", extra={"request_id": "req-1"}
                )
            logging.getLogger("repro.net").debug("frame received")
        by_trace = capture.with_trace(context.trace_id)
        assert len(by_trace) == 1
        assert by_trace[0]["request_id"] == "req-1"
        assert capture.loggers() == {"repro.relay", "repro.net"}
        assert capture.loggers(context.trace_id) == {"repro.relay"}

    def test_capture_restores_logger_state(self):
        logger = logging.getLogger("repro")
        level_before = logger.level
        handlers_before = list(logger.handlers)
        with capture_logs():
            pass
        assert logger.level == level_before
        assert logger.handlers == handlers_before
