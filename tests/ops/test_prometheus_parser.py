"""The strict exposition reader itself: accept the grammar, reject drift."""

from __future__ import annotations

import math

import pytest

from repro.testing import parse_exposition

GOOD = (
    "# HELP repro_requests_total Requests served.\n"
    "# TYPE repro_requests_total counter\n"
    'repro_requests_total{kind="query"} 7\n'
    'repro_requests_total{kind="batch"} 2\n'
    "# HELP repro_in_flight Requests in flight.\n"
    "# TYPE repro_in_flight gauge\n"
    "repro_in_flight 3\n"
    "# HELP repro_latency_seconds Serve latency.\n"
    "# TYPE repro_latency_seconds histogram\n"
    'repro_latency_seconds_bucket{kind="query",le="0.01"} 1\n'
    'repro_latency_seconds_bucket{kind="query",le="0.1"} 4\n'
    'repro_latency_seconds_bucket{kind="query",le="+Inf"} 5\n'
    'repro_latency_seconds_sum{kind="query"} 0.42\n'
    'repro_latency_seconds_count{kind="query"} 5\n'
)


class TestAccepts:
    def test_full_payload(self):
        families = parse_exposition(GOOD)
        assert set(families) == {
            "repro_requests_total",
            "repro_in_flight",
            "repro_latency_seconds",
        }
        counter = families["repro_requests_total"]
        assert counter.help == "Requests served."
        assert {s.label_dict()["kind"]: s.value for s in counter.samples} == {
            "query": 7.0,
            "batch": 2.0,
        }

    def test_label_escapes_round_trip(self):
        payload = (
            "# HELP repro_x_total t\n"
            "# TYPE repro_x_total counter\n"
            'repro_x_total{kind="a\\"b\\\\c\\nd"} 1\n'
        )
        (sample,) = parse_exposition(payload)["repro_x_total"].samples
        assert sample.label_dict()["kind"] == 'a"b\\c\nd'

    def test_special_values(self):
        payload = (
            "# HELP repro_g gauge\n"
            "# TYPE repro_g gauge\n"
            "repro_g +Inf\n"
        )
        (sample,) = parse_exposition(payload)["repro_g"].samples
        assert math.isinf(sample.value)


def _expect_rejection(payload: str, match: str):
    with pytest.raises(ValueError, match=match):
        parse_exposition(payload)


class TestRejects:
    def test_missing_final_newline(self):
        _expect_rejection(GOOD.rstrip("\n"), "end with a newline")

    def test_empty_payload(self):
        _expect_rejection("", "empty")

    def test_sample_without_header(self):
        _expect_rejection("repro_x_total 1\n", "line 1.*before any HELP/TYPE")

    def test_type_without_help(self):
        _expect_rejection(
            "# TYPE repro_x_total counter\nrepro_x_total 1\n",
            "line 1.*not immediately preceded",
        )

    def test_help_without_type(self):
        _expect_rejection("# HELP repro_x_total t\n", "has no TYPE")

    def test_help_type_name_mismatch(self):
        _expect_rejection(
            "# HELP repro_a_total t\n# TYPE repro_b_total counter\n",
            "not immediately preceded",
        )

    def test_duplicate_family(self):
        _expect_rejection(
            "# HELP repro_x_total t\n# TYPE repro_x_total counter\n"
            "repro_x_total 1\n"
            "# HELP repro_x_total t\n# TYPE repro_x_total counter\n"
            "repro_x_total 2\n",
            "declared twice",
        )

    def test_unknown_kind(self):
        _expect_rejection(
            "# HELP repro_x_total t\n# TYPE repro_x_total countr\n",
            "unknown metric kind",
        )

    def test_foreign_sample_inside_family_block(self):
        _expect_rejection(
            "# HELP repro_x_total t\n# TYPE repro_x_total counter\n"
            "repro_y_total 1\n",
            "does not belong to family",
        )

    def test_duplicate_series(self):
        _expect_rejection(
            "# HELP repro_x_total t\n# TYPE repro_x_total counter\n"
            'repro_x_total{k="a"} 1\nrepro_x_total{k="a"} 2\n',
            "duplicate series",
        )

    def test_unquoted_label_value(self):
        _expect_rejection(
            "# HELP repro_x_total t\n# TYPE repro_x_total counter\n"
            "repro_x_total{k=a} 1\n",
            "not quoted",
        )

    def test_bad_label_escape(self):
        _expect_rejection(
            "# HELP repro_x_total t\n# TYPE repro_x_total counter\n"
            'repro_x_total{k="a\\t"} 1\n',
            "unknown label escape",
        )

    def test_duplicate_label_name(self):
        _expect_rejection(
            "# HELP repro_x_total t\n# TYPE repro_x_total counter\n"
            'repro_x_total{k="a",k="b"} 1\n',
            "duplicate label name",
        )

    def test_blank_line_rejected(self):
        _expect_rejection(
            "# HELP repro_x_total t\n# TYPE repro_x_total counter\n\n"
            "repro_x_total 1\n",
            "blank line",
        )

    def test_unparseable_value(self):
        _expect_rejection(
            "# HELP repro_x_total t\n# TYPE repro_x_total counter\n"
            "repro_x_total banana\n",
            "unparseable sample value",
        )


HISTOGRAM_HEAD = (
    "# HELP repro_h_seconds t\n# TYPE repro_h_seconds histogram\n"
)


class TestHistogramGrammar:
    def test_missing_inf_bucket(self):
        _expect_rejection(
            HISTOGRAM_HEAD
            + 'repro_h_seconds_bucket{le="0.1"} 1\n'
            + "repro_h_seconds_sum 0.1\n"
            + "repro_h_seconds_count 1\n",
            "no '\\+Inf' bucket",
        )

    def test_non_cumulative_buckets(self):
        _expect_rejection(
            HISTOGRAM_HEAD
            + 'repro_h_seconds_bucket{le="0.1"} 5\n'
            + 'repro_h_seconds_bucket{le="+Inf"} 3\n'
            + "repro_h_seconds_sum 0.1\n"
            + "repro_h_seconds_count 3\n",
            "not cumulative",
        )

    def test_out_of_order_bounds(self):
        _expect_rejection(
            HISTOGRAM_HEAD
            + 'repro_h_seconds_bucket{le="1.0"} 1\n'
            + 'repro_h_seconds_bucket{le="0.1"} 1\n'
            + 'repro_h_seconds_bucket{le="+Inf"} 1\n'
            + "repro_h_seconds_sum 0.1\n"
            + "repro_h_seconds_count 1\n",
            "ascending",
        )

    def test_inf_bucket_must_equal_count(self):
        _expect_rejection(
            HISTOGRAM_HEAD
            + 'repro_h_seconds_bucket{le="+Inf"} 4\n'
            + "repro_h_seconds_sum 0.1\n"
            + "repro_h_seconds_count 5\n",
            "does not equal _count",
        )

    def test_missing_sum_or_count(self):
        _expect_rejection(
            HISTOGRAM_HEAD
            + 'repro_h_seconds_bucket{le="+Inf"} 1\n'
            + "repro_h_seconds_count 1\n",
            "has no _sum",
        )
        _expect_rejection(
            HISTOGRAM_HEAD
            + 'repro_h_seconds_bucket{le="+Inf"} 1\n'
            + "repro_h_seconds_sum 0.5\n",
            "has no _count",
        )

    def test_bucket_without_le_label(self):
        _expect_rejection(
            HISTOGRAM_HEAD
            + "repro_h_seconds_bucket 1\n"
            + "repro_h_seconds_sum 0.5\n"
            + "repro_h_seconds_count 1\n",
            "missing its 'le' label",
        )

    def test_histogram_with_no_buckets(self):
        _expect_rejection(
            HISTOGRAM_HEAD
            + "repro_h_seconds_sum 0.5\n"
            + "repro_h_seconds_count 1\n",
            "no _bucket samples",
        )
