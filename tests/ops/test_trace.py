"""Trace-context unit behavior: propagation, hops, and hygiene."""

from __future__ import annotations

import threading

from repro.ops.trace import (
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    TraceContext,
    activate,
    current_trace,
    ensure_trace,
    from_headers,
    inject,
    new_trace,
    reply_headers,
)


class TestContextShape:
    def test_new_trace_has_distinct_ids(self):
        context = new_trace()
        assert context.trace_id.startswith("trace-")
        assert context.span_id.startswith("span-")
        assert context.trace_id != context.span_id
        assert context.parent_span_id == ""

    def test_child_keeps_trace_id_and_links_parent(self):
        root = new_trace()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_span_id == root.span_id

    def test_headers_round_trip(self):
        root = new_trace()
        rebuilt = from_headers(root.headers())
        assert rebuilt is not None
        assert rebuilt.trace_id == root.trace_id
        assert rebuilt.span_id == root.span_id

    def test_from_headers_without_trace_is_none(self):
        assert from_headers({}) is None
        assert from_headers({"retryable": "true"}) is None

    def test_from_headers_synthesizes_missing_span(self):
        rebuilt = from_headers({TRACE_ID_HEADER: "trace-x"})
        assert rebuilt is not None
        assert rebuilt.trace_id == "trace-x"
        assert rebuilt.span_id  # fresh, never empty


class TestActivation:
    def test_activate_sets_and_resets(self):
        assert current_trace() is None
        context = new_trace()
        with activate(context):
            assert current_trace() is context
        assert current_trace() is None

    def test_activate_resets_on_exception(self):
        try:
            with activate(new_trace()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_trace() is None

    def test_ensure_trace_opens_root_once(self):
        with ensure_trace() as outer:
            with ensure_trace() as inner:
                assert inner is outer  # nested verbs share one trace
        assert current_trace() is None

    def test_ensure_trace_reuses_activated_context(self):
        context = new_trace()
        with activate(context):
            with ensure_trace() as seen:
                assert seen is context

    def test_threads_do_not_share_the_active_trace(self):
        seen: list = []
        with activate(new_trace()):
            thread = threading.Thread(target=lambda: seen.append(current_trace()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestWireStamps:
    def test_inject_stamps_a_child_span(self):
        context = new_trace()
        with activate(context):
            headers = inject({"existing": "1"})
        assert headers["existing"] == "1"
        assert headers[TRACE_ID_HEADER] == context.trace_id
        assert headers[SPAN_ID_HEADER] != context.span_id  # fresh hop

    def test_inject_without_trace_passes_through(self):
        headers = inject({"k": "v"})
        assert headers == {"k": "v"}
        assert inject(None) == {}

    def test_inject_copies_instead_of_mutating(self):
        original = {"k": "v"}
        with activate(new_trace()):
            stamped = inject(original)
        assert TRACE_ID_HEADER not in original
        assert TRACE_ID_HEADER in stamped

    def test_reply_headers_echo_the_serving_context(self):
        context = new_trace()
        with activate(context):
            headers = reply_headers()
        assert headers == context.headers()
        assert reply_headers() == {}  # no active trace -> no stamp
