"""The probe port on a live RelayServer: /metrics, /healthz, /readyz."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.api.middleware import MetricsInterceptor
from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import RelayService
from repro.net import RelayServer
from repro.ops.metrics import EXPOSITION_CONTENT_TYPE
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
)
from repro.testing import parse_exposition

SOURCE = "probe-src"
DESTINATION = "probe-dst"


class ProbeDriver(NetworkDriver):
    platform = "probe"

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            result_plain=b"doc:" + query.nonce.encode(),
        )


def get(url: str, timeout: float = 5.0):
    """GET, returning (status, content_type, body) even for error codes."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read(),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type", ""), error.read()


@pytest.fixture()
def probed_topology():
    registry = InMemoryRegistry()
    source_relay = RelayService(SOURCE, registry, relay_id="relay-probe-src")
    source_relay.register_driver(ProbeDriver(SOURCE))
    source_relay.use(MetricsInterceptor())
    destination_relay = RelayService(DESTINATION, registry)
    registry.register(DESTINATION, destination_relay)
    with RelayServer(source_relay, max_workers=2, probe_port=0) as server:
        registry.register(SOURCE, server.endpoint(timeout=10.0))
        yield registry, source_relay, destination_relay, server


def drive_query(destination_relay, tag: str) -> None:
    query = NetworkQuery(
        version=PROTOCOL_VERSION,
        address=NetworkAddressMsg(
            network=SOURCE, ledger="ledger", contract="docs", function="Get"
        ),
        args=["K-1"],
        nonce=tag,
    )
    response = destination_relay.remote_query(query)
    assert response.status == STATUS_OK


class TestProbeEndpoints:
    def test_healthz_is_alive(self, probed_topology):
        *_, server = probed_topology
        status, content_type, body = get(f"{server.probe.url}/healthz")
        assert status == 200
        assert content_type.startswith("application/json")
        assert json.loads(body) == {"status": "alive"}

    def test_readyz_reflects_relay_state(self, probed_topology):
        _, source_relay, _, server = probed_topology
        status, _, body = get(f"{server.probe.url}/readyz")
        assert status == 200
        payload = json.loads(body)
        assert payload["ready"] is True
        names = {check["name"] for check in payload["checks"]}
        assert names == {
            "relay_available",
            "drivers_attached",
            "store_open",
            "executor_accepting",
        }
        # Flip the relay to draining: readiness must go 503, liveness stays.
        source_relay.available = False
        status, _, body = get(f"{server.probe.url}/readyz")
        assert status == 503
        assert json.loads(body)["ready"] is False
        assert get(f"{server.probe.url}/healthz")[0] == 200
        source_relay.available = True
        assert get(f"{server.probe.url}/readyz")[0] == 200

    def test_metrics_expose_relay_traffic(self, probed_topology):
        _, source_relay, destination_relay, server = probed_topology
        for sequence in range(3):
            drive_query(destination_relay, f"probe-{sequence}")
        status, content_type, body = get(f"{server.probe.url}/metrics")
        assert status == 200
        assert content_type == EXPOSITION_CONTENT_TYPE
        families = parse_exposition(body.decode("utf-8"))
        # Interceptor instruments: per-kind counters + latency histogram.
        requests = families["repro_relay_requests_total"]
        (sample,) = requests.samples
        assert sample.label_dict() == {
            "relay_id": "relay-probe-src",
            "kind": "query",
        }
        assert sample.value == 3.0
        latency = families["repro_relay_request_seconds"]
        assert latency.kind == "histogram"
        counts = [
            s.value
            for s in latency.samples
            if s.name.endswith("_count")
        ]
        assert counts == [3.0]
        # Collector families: relay stats, server stats, store counters.
        stats = families["repro_relay_stats_total"]
        by_counter = {
            s.label_dict()["counter"]: s.value for s in stats.samples
        }
        assert by_counter["requests_served"] == 3.0
        server_stats = families["repro_relay_server_total"]
        served = {
            s.label_dict()["counter"]: s.value for s in server_stats.samples
        }
        assert served["frames_served"] >= 3.0
        assert "repro_relay_idempotency_entries" in families

    def test_scrapes_do_not_perturb_serving(self, probed_topology):
        _, _, destination_relay, server = probed_topology
        for sequence in range(2):
            get(f"{server.probe.url}/metrics")
            drive_query(destination_relay, f"interleaved-{sequence}")
        families = parse_exposition(
            get(f"{server.probe.url}/metrics")[2].decode("utf-8")
        )
        stats = families["repro_relay_stats_total"]
        by_counter = {
            s.label_dict()["counter"]: s.value for s in stats.samples
        }
        assert by_counter["requests_served"] == 2.0

    def test_unknown_path_404_and_post_405(self, probed_topology):
        *_, server = probed_topology
        assert get(f"{server.probe.url}/nope")[0] == 404
        request = urllib.request.Request(
            f"{server.probe.url}/metrics", data=b"x", method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=5.0) as response:
                status = response.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 405

    def test_probe_stops_with_the_server(self):
        registry = InMemoryRegistry()
        relay = RelayService(SOURCE, registry)
        relay.register_driver(ProbeDriver(SOURCE))
        server = RelayServer(relay, max_workers=1, probe_port=0).start()
        url = server.probe.url
        assert get(f"{url}/healthz")[0] == 200
        server.stop()
        assert server.probe is None
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(f"{url}/healthz", timeout=2.0)
