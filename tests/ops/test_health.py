"""Health probe semantics and the standard relay readiness checks."""

from __future__ import annotations

from repro.interop.discovery import InMemoryRegistry
from repro.interop.drivers.base import NetworkDriver
from repro.interop.relay import RelayService
from repro.ops.health import CheckResult, HealthProbe, relay_checks
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    NetworkQuery,
    QueryResponse,
)


class StubDriver(NetworkDriver):
    platform = "stub"

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION, nonce=query.nonce, status=STATUS_OK
        )


class TestHealthProbe:
    def test_all_checks_pass(self):
        probe = HealthProbe()
        probe.add_check("a", lambda: True)
        probe.add_check("b", lambda: (True, "detail-b"))
        ready, results = probe.ready()
        assert ready is True
        assert results == (
            CheckResult(name="a", ok=True),
            CheckResult(name="b", ok=True, detail="detail-b"),
        )

    def test_one_failing_check_fails_readiness(self):
        probe = HealthProbe()
        probe.add_check("a", lambda: True)
        probe.add_check("b", lambda: (False, "draining"))
        ready, results = probe.ready()
        assert ready is False
        assert results[1].detail == "draining"

    def test_crashing_check_reports_not_ready_instead_of_raising(self):
        probe = HealthProbe()
        probe.add_check("boom", lambda: 1 / 0)
        ready, (result,) = probe.ready()
        assert ready is False
        assert "ZeroDivisionError" in result.detail

    def test_replacing_a_check_keeps_one_entry(self):
        probe = HealthProbe()
        probe.add_check("a", lambda: False)
        probe.add_check("a", lambda: True)
        ready, results = probe.ready()
        assert ready is True
        assert len(results) == 1

    def test_empty_probe_is_ready(self):
        assert HealthProbe().ready() == (True, ())


class TestRelayChecks:
    def make_relay(self, with_driver: bool = True) -> RelayService:
        registry = InMemoryRegistry()
        relay = RelayService("opsnet", registry)
        if with_driver:
            relay.register_driver(StubDriver("opsnet"))
        return relay

    def test_healthy_relay_is_ready(self):
        probe = relay_checks(self.make_relay())
        ready, results = probe.ready()
        assert ready is True
        assert {r.name for r in results} == {
            "relay_available",
            "drivers_attached",
            "store_open",
        }

    def test_draining_relay_is_not_ready(self):
        relay = self.make_relay()
        relay.available = False
        probe = relay_checks(relay)
        ready, results = probe.ready()
        assert ready is False
        by_name = {r.name: r for r in results}
        assert by_name["relay_available"].detail == "draining"
        assert by_name["drivers_attached"].ok is True

    def test_driverless_relay_is_not_ready(self):
        probe = relay_checks(self.make_relay(with_driver=False))
        ready, results = probe.ready()
        assert ready is False
        by_name = {r.name: r for r in results}
        assert by_name["drivers_attached"].ok is False
