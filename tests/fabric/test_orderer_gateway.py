"""Tests for ordering services (solo + Raft) and the gateway SDK."""

from __future__ import annotations

import pytest

from repro.errors import EndorsementError, OrderingError
from repro.fabric import Chaincode, NetworkBuilder, RaftOrderer, SoloOrderer
from repro.fabric.chaincode import require_args
from repro.fabric.orderer import LEADER


class EchoChaincode(Chaincode):
    name = "echo"

    def invoke(self, stub):
        if stub.function == "init":
            return b"ok"
        if stub.function == "put":
            key, value = require_args(stub, 2)
            stub.put_state(key, value.encode())
            return b"ok"
        if stub.function == "get":
            (key,) = require_args(stub, 1)
            return stub.get_state(key) or b""
        raise Exception("unknown")


def build_network(orderer_kind: str = "solo", **kwargs):
    builder = (
        NetworkBuilder("order-test")
        .add_org("org1")
        .add_peer("peer0", "org1")
        .add_peer("peer1", "org1")
        .add_client("app", "org1")
    )
    if orderer_kind == "raft":
        builder.with_raft_orderer(**kwargs)
    else:
        builder.with_solo_orderer(**kwargs)
    net = builder.build()
    app = net.org("org1").member("app")
    net.deploy_chaincode(EchoChaincode(), "'org1.peer'", initializer=app)
    return net, app


class TestSoloOrderer:
    def test_batching_cuts_at_size(self, *, batch=3):
        net, app = build_network(batch_size=batch)
        start_height = net.peers[0].ledger.height
        for index in range(batch - 1):
            net.gateway.submit(app, "echo", "put", [f"k{index}", "v"], wait=False)
        assert net.peers[0].ledger.height == start_height
        net.gateway.submit(app, "echo", "put", ["last", "v"], wait=False)
        assert net.peers[0].ledger.height == start_height + 1
        block = net.peers[0].ledger.block(start_height)
        assert len(block.transactions) == batch

    def test_flush_forces_partial_batch(self):
        net, app = build_network(batch_size=10)
        start_height = net.peers[0].ledger.height
        net.gateway.submit(app, "echo", "put", ["k", "v"], wait=False)
        assert net.peers[0].ledger.height == start_height
        net.orderer.flush()
        assert net.peers[0].ledger.height == start_height + 1

    def test_flush_with_nothing_pending_is_noop(self):
        net, _ = build_network()
        height = net.peers[0].ledger.height
        net.orderer.flush()
        assert net.peers[0].ledger.height == height

    def test_invalid_batch_size(self):
        with pytest.raises(OrderingError):
            SoloOrderer("ch", batch_size=0)


class TestRaftOrderer:
    def test_basic_ordering(self):
        net, app = build_network("raft", cluster_size=3)
        result = net.gateway.submit(app, "echo", "put", ["k", "v1"])
        assert result.committed
        assert net.gateway.evaluate(app, "echo", "get", ["k"]) == b"v1"

    def test_leader_election_happens(self):
        orderer = RaftOrderer("ch", cluster_size=5)
        orderer.run_until_leader()
        leaders = [n for n in orderer.nodes if n.state == LEADER]
        assert len(leaders) == 1

    def test_leader_crash_failover(self):
        net, app = build_network("raft", cluster_size=3)
        net.gateway.submit(app, "echo", "put", ["k", "v1"])
        old_leader = net.orderer.leader()
        net.orderer.crash(old_leader.node_id)
        result = net.gateway.submit(app, "echo", "put", ["k2", "v2"])
        assert result.committed
        new_leader = net.orderer.leader()
        assert new_leader.node_id != old_leader.node_id

    def test_crashed_follower_does_not_block(self):
        net, app = build_network("raft", cluster_size=3)
        net.gateway.submit(app, "echo", "put", ["a", "1"])
        leader = net.orderer.leader()
        follower = next(n for n in net.orderer.nodes if n.node_id != leader.node_id)
        net.orderer.crash(follower.node_id)
        assert net.gateway.submit(app, "echo", "put", ["b", "2"]).committed

    def test_recovered_node_catches_up(self):
        net, app = build_network("raft", cluster_size=3)
        net.gateway.submit(app, "echo", "put", ["a", "1"])
        leader = net.orderer.leader()
        follower_id = next(
            n.node_id for n in net.orderer.nodes if n.node_id != leader.node_id
        )
        net.orderer.crash(follower_id)
        net.gateway.submit(app, "echo", "put", ["b", "2"])
        net.orderer.recover(follower_id)
        net.gateway.submit(app, "echo", "put", ["c", "3"])
        recovered = net.orderer.nodes[follower_id]
        lead = net.orderer.leader()
        assert recovered.last_log_index == lead.last_log_index

    def test_quorum_loss_detected(self):
        net, app = build_network("raft", cluster_size=3)
        net.gateway.submit(app, "echo", "put", ["a", "1"])
        net.orderer.crash(0)
        net.orderer.crash(1)
        with pytest.raises(OrderingError, match="quorum|leader|converge"):
            net.gateway.submit(app, "echo", "put", ["b", "2"])

    def test_logs_identical_across_live_nodes(self):
        net, app = build_network("raft", cluster_size=5)
        for index in range(4):
            net.gateway.submit(app, "echo", "put", [f"k{index}", "v"])
        live = [n for n in net.orderer.nodes if not n.crashed]
        reference = [(e.term, [t.tx_id for t in e.batch]) for e in live[0].log]
        for node in live[1:]:
            log = [(e.term, [t.tx_id for t in e.batch]) for e in node.log]
            assert log[: len(reference)] == reference[: len(log)]


class TestGateway:
    def test_evaluate_does_not_commit(self):
        net, app = build_network()
        height = net.peers[0].ledger.height
        net.gateway.evaluate(app, "echo", "get", ["missing"])
        assert net.peers[0].ledger.height == height

    def test_unknown_chaincode(self):
        net, app = build_network()
        with pytest.raises(EndorsementError, match="no peer has chaincode"):
            net.gateway.evaluate(app, "ghost", "fn", [])

    def test_divergent_endorsements_detected(self):
        """If peers simulate different results, the gateway must refuse."""
        net, app = build_network()

        class NondeterministicCC(Chaincode):
            name = "chaos"

            def __init__(self):
                self.calls = 0

            def invoke(self, stub):
                if stub.function == "init":
                    return b"ok"
                self.calls += 1
                return str(self.calls).encode()  # differs per endorsement

        cc = NondeterministicCC()
        for peer in net.peers:
            peer.install_chaincode(cc)
        from repro.fabric.gateway import Gateway
        from repro.fabric.peer import Proposal

        proposal = Proposal(
            tx_id="chaos-1",
            channel="main",
            chaincode="chaos",
            function="go",
            args=(),
            creator=app.certificate.to_bytes(),
        )
        responses = [peer.endorse(proposal) for peer in net.peers[:2]]
        assert responses[0].result != responses[1].result
        with pytest.raises(EndorsementError, match="mismatch|divergent"):
            Gateway._check_consistency(responses)

    def test_submit_reports_block_number(self):
        net, app = build_network()
        result = net.gateway.submit(app, "echo", "put", ["k", "v"])
        block = net.peers[0].ledger.block(result.block_number)
        assert any(tx.tx_id == result.tx_id for tx in block.transactions)
