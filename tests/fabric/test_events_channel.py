"""Tests for event delivery and channel configuration."""

from __future__ import annotations

import pytest

from repro.crypto.certs import CertificateAuthority
from repro.errors import CertificateError, MembershipError
from repro.fabric.channel import ChannelConfig
from repro.fabric.events import BlockEvent, ChaincodeEvent, EventHub
from repro.fabric.identity import Organization
from repro.fabric.ledger import Block, Transaction, TxValidationCode
from repro.fabric.policy import parse_endorsement_policy
from repro.fabric.state import ReadWriteSet


def _block_with_events(valid: bool = True) -> Block:
    tx = Transaction(
        tx_id="t1",
        channel="main",
        chaincode="cc",
        function="fn",
        args=[],
        creator=b"",
        rwset=ReadWriteSet(),
        result=b"",
        endorsements=[],
        events=[("cc", "Created", b"payload")],
    )
    block = Block(number=0, previous_hash=b"\x00" * 32, transactions=[tx])
    block.validation_codes = [
        TxValidationCode.VALID if valid else TxValidationCode.MVCC_READ_CONFLICT
    ]
    return block


class TestEventHub:
    def test_block_events_delivered(self):
        hub = EventHub()
        seen: list[BlockEvent] = []
        hub.on_block(seen.append)
        hub.publish_block(_block_with_events(), "main")
        assert len(seen) == 1
        assert seen[0].tx_ids == ("t1",)
        assert seen[0].validation_codes == (TxValidationCode.VALID,)

    def test_chaincode_event_name_filter(self):
        hub = EventHub()
        created: list[ChaincodeEvent] = []
        other: list[ChaincodeEvent] = []
        hub.on_chaincode_event("cc", "Created", created.append)
        hub.on_chaincode_event("cc", "Deleted", other.append)
        hub.publish_block(_block_with_events(), "main")
        assert len(created) == 1 and not other
        assert created[0].payload == b"payload"

    def test_wildcard_subscription(self):
        hub = EventHub()
        seen: list[ChaincodeEvent] = []
        hub.on_chaincode_event("cc", "*", seen.append)
        hub.publish_block(_block_with_events(), "main")
        assert len(seen) == 1

    def test_invalid_tx_events_suppressed(self):
        hub = EventHub()
        seen: list[ChaincodeEvent] = []
        hub.on_chaincode_event("cc", "*", seen.append)
        hub.publish_block(_block_with_events(valid=False), "main")
        assert not seen
        assert not hub.history

    def test_history_accumulates(self):
        hub = EventHub()
        hub.publish_block(_block_with_events(), "main")
        assert [event.name for event in hub.history] == ["Created"]

    def test_other_chaincode_not_matched(self):
        hub = EventHub()
        seen: list[ChaincodeEvent] = []
        hub.on_chaincode_event("different-cc", "*", seen.append)
        hub.publish_block(_block_with_events(), "main")
        assert not seen


class TestChannelConfig:
    def test_validate_member_happy_path(self):
        org = Organization("org1")
        config = ChannelConfig(channel="main")
        config.add_org("org1", org.msp.root_certificate)
        member = org.enroll("alice")
        assert config.validate_member(member.certificate) == "org1"

    def test_unknown_org_rejected(self):
        config = ChannelConfig(channel="main")
        org = Organization("outsider")
        member = org.enroll("bob")
        with pytest.raises(MembershipError, match="not a member"):
            config.validate_member(member.certificate)

    def test_forged_cert_rejected(self):
        org = Organization("org1")
        impostor_ca = CertificateAuthority("org1")  # same name, different keys
        config = ChannelConfig(channel="main")
        config.add_org("org1", org.msp.root_certificate)
        _, forged = impostor_ca.enroll("mallory")
        with pytest.raises(CertificateError):
            config.validate_member(forged)

    def test_policy_registry(self):
        config = ChannelConfig(channel="main")
        policy = parse_endorsement_policy("'org1.peer'")
        config.set_policy("cc", policy)
        assert config.policy_for("cc") is policy
        with pytest.raises(MembershipError, match="no endorsement policy"):
            config.policy_for("ghost")
