"""Tests for organizations/MSPs and endorsement policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EndorsementPolicyError, MembershipError
from repro.fabric.identity import Identity, MembershipServiceProvider, Organization
from repro.fabric.policy import (
    OutOf,
    SignedBy,
    parse_endorsement_policy,
    policy_and,
    policy_or,
)


class TestOrganizations:
    def test_enroll_and_lookup(self):
        org = Organization("org1", network="net")
        member = org.enroll("alice", role="client")
        assert org.member("alice") is member
        assert member.org == "org1"
        assert member.id == "alice.org1"

    def test_duplicate_enrollment_rejected(self):
        org = Organization("org1")
        org.enroll("alice")
        with pytest.raises(MembershipError):
            org.enroll("alice")

    def test_unknown_member_rejected(self):
        with pytest.raises(MembershipError):
            Organization("org1").member("ghost")

    def test_members_filtered_by_role(self):
        org = Organization("org1")
        org.enroll("p0", role="peer")
        org.enroll("c0", role="client")
        assert [m.name for m in org.members(role="peer")] == ["p0"]
        assert len(org.members()) == 2

    def test_msp_validates_own_members_only(self):
        org_a = Organization("a")
        org_b = Organization("b")
        member_a = org_a.enroll("m")
        assert org_a.msp.is_member(member_a.certificate)
        assert not org_b.msp.is_member(member_a.certificate)

    def test_identity_signs_verifiably(self):
        member = Organization("org1").enroll("signer")
        signature = member.sign(b"hello")
        assert member.verify_own(b"hello", signature)
        assert not member.verify_own(b"other", signature)


class TestPolicyEvaluation:
    def test_signed_by_role_match(self):
        policy = SignedBy("org1", "peer")
        assert policy.satisfied_by([("org1", "peer")])
        assert not policy.satisfied_by([("org1", "client")])
        assert not policy.satisfied_by([("org2", "peer")])

    def test_member_role_matches_any(self):
        policy = SignedBy("org1", "member")
        assert policy.satisfied_by([("org1", "client")])
        assert policy.satisfied_by([("org1", "peer")])

    def test_and_requires_all(self):
        policy = policy_and(SignedBy("a", "peer"), SignedBy("b", "peer"))
        assert policy.satisfied_by([("a", "peer"), ("b", "peer")])
        assert not policy.satisfied_by([("a", "peer")])

    def test_or_requires_any(self):
        policy = policy_or(SignedBy("a", "peer"), SignedBy("b", "peer"))
        assert policy.satisfied_by([("b", "peer")])
        assert not policy.satisfied_by([("c", "peer")])

    def test_outof_threshold(self):
        policy = OutOf(2, (SignedBy("a", "peer"), SignedBy("b", "peer"), SignedBy("c", "peer")))
        assert policy.satisfied_by([("a", "peer"), ("c", "peer")])
        assert not policy.satisfied_by([("a", "peer")])

    def test_invalid_threshold_rejected(self):
        with pytest.raises(EndorsementPolicyError):
            OutOf(0, (SignedBy("a"),))
        with pytest.raises(EndorsementPolicyError):
            OutOf(3, (SignedBy("a"), SignedBy("b")))

    def test_minimal_satisfying_orgs(self):
        policy = policy_and(SignedBy("a", "peer"), SignedBy("b", "peer"))
        available = [("a", "peer"), ("b", "peer"), ("c", "peer")]
        selection = policy.minimal_satisfying_orgs(available)
        assert sorted(selection) == [("a", "peer"), ("b", "peer")]

    def test_minimal_selection_unsatisfiable(self):
        policy = SignedBy("z", "peer")
        assert policy.minimal_satisfying_orgs([("a", "peer")]) is None

    def test_principals(self):
        policy = policy_and(SignedBy("a", "peer"), policy_or(SignedBy("b", "peer"), SignedBy("c", "admin")))
        assert policy.principals() == {"a.peer", "b.peer", "c.admin"}


class TestPolicyParser:
    def test_single_principal(self):
        policy = parse_endorsement_policy("'org1.peer'")
        assert policy == SignedBy("org1", "peer")

    def test_and_expression(self):
        policy = parse_endorsement_policy("AND('a.peer', 'b.peer')")
        assert policy.satisfied_by([("a", "peer"), ("b", "peer")])
        assert policy.expression() == "AND('a.peer', 'b.peer')"

    def test_nested_expression(self):
        policy = parse_endorsement_policy("OR('a.member', AND('b.peer', 'c.peer'))")
        assert policy.satisfied_by([("a", "client")])
        assert policy.satisfied_by([("b", "peer"), ("c", "peer")])
        assert not policy.satisfied_by([("b", "peer")])

    def test_outof_expression(self):
        policy = parse_endorsement_policy("OutOf(2, 'a.peer', 'b.peer', 'c.peer')")
        assert policy.satisfied_by([("a", "peer"), ("b", "peer")])
        assert not policy.satisfied_by([("c", "peer")])

    def test_expression_roundtrips_through_parser(self):
        source = "OutOf(2, 'a.peer', AND('b.peer', 'c.admin'), 'd.member')"
        policy = parse_endorsement_policy(source)
        assert parse_endorsement_policy(policy.expression()).expression() == policy.expression()

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "AND(",
            "AND()",
            "'noRole'",
            "AND('a.peer' 'b.peer')",
            "XOR('a.peer')",
            "OutOf(5, 'a.peer')",
            "'a.wizard'",
            "AND('a.peer',) garbage",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(EndorsementPolicyError):
            parse_endorsement_policy(bad)

    @settings(max_examples=30, deadline=None)
    @given(
        orgs=st.lists(
            st.sampled_from(["orgA", "orgB", "orgC", "orgD"]), min_size=1, max_size=4, unique=True
        )
    )
    def test_and_of_orgs_requires_exactly_those(self, orgs):
        expr = (
            f"'{orgs[0]}.peer'"
            if len(orgs) == 1
            else "AND(" + ", ".join(f"'{o}.peer'" for o in orgs) + ")"
        )
        policy = parse_endorsement_policy(expr)
        full = [(org, "peer") for org in orgs]
        assert policy.satisfied_by(full)
        for missing in range(len(orgs)):
            subset = [s for i, s in enumerate(full) if i != missing]
            if subset:
                assert not policy.satisfied_by(subset)
