"""Tests for world state, read/write sets, and the block-chained ledger."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LedgerError, StateError
from repro.fabric.ledger import Block, Endorsement, Ledger, Transaction, TxValidationCode
from repro.fabric.state import (
    ReadWriteSet,
    SimulatedState,
    Version,
    VersionedKV,
    make_composite_key,
    namespaced,
    split_composite_key,
)


class TestVersionedKV:
    def test_apply_and_get(self):
        kv = VersionedKV()
        kv.apply_write("k", b"v", Version(1, 0))
        entry = kv.get("k")
        assert entry.value == b"v"
        assert entry.version == Version(1, 0)

    def test_delete_via_none(self):
        kv = VersionedKV()
        kv.apply_write("k", b"v", Version(1, 0))
        kv.apply_write("k", None, Version(2, 0))
        assert kv.get("k") is None
        assert kv.get_version("k") is None

    def test_range_scan_ordering_and_bounds(self):
        kv = VersionedKV()
        for key in ["a", "b", "c", "d"]:
            kv.apply_write(key, key.encode(), Version(0, 0))
        assert [e.key for e in kv.range_scan("b", "d")] == ["b", "c"]
        assert [e.key for e in kv.range_scan("b", "")] == ["b", "c", "d"]

    def test_snapshot(self):
        kv = VersionedKV()
        kv.apply_write("k", b"v", Version(0, 0))
        assert kv.snapshot() == {"k": b"v"}


class TestSimulatedState:
    def test_reads_record_versions(self):
        kv = VersionedKV()
        kv.apply_write("k", b"v", Version(3, 1))
        sim = SimulatedState(kv)
        assert sim.get("k") == b"v"
        assert sim.rwset.reads["k"] == Version(3, 1)

    def test_missing_read_records_none(self):
        sim = SimulatedState(VersionedKV())
        assert sim.get("missing") is None
        assert sim.rwset.reads["missing"] is None

    def test_read_your_writes(self):
        sim = SimulatedState(VersionedKV())
        sim.put("k", b"new")
        assert sim.get("k") == b"new"
        assert "k" not in sim.rwset.reads  # local write, no committed read

    def test_delete_then_read(self):
        kv = VersionedKV()
        kv.apply_write("k", b"v", Version(0, 0))
        sim = SimulatedState(kv)
        sim.delete("k")
        assert sim.get("k") is None

    def test_writes_do_not_touch_committed(self):
        kv = VersionedKV()
        sim = SimulatedState(kv)
        sim.put("k", b"v")
        assert kv.get("k") is None

    def test_non_bytes_value_rejected(self):
        sim = SimulatedState(VersionedKV())
        with pytest.raises(StateError):
            sim.put("k", "string")  # type: ignore[arg-type]

    def test_range_scan_merges_local_writes(self):
        kv = VersionedKV()
        kv.apply_write("a", b"1", Version(0, 0))
        kv.apply_write("b", b"2", Version(0, 0))
        sim = SimulatedState(kv)
        sim.put("c", b"3")
        sim.delete("a")
        assert sim.range_scan("a", "z") == [("b", b"2"), ("c", b"3")]

    def test_rwset_merge(self):
        outer = ReadWriteSet(reads={"a": Version(0, 0)}, writes={"x": b"1"})
        inner = ReadWriteSet(reads={"a": Version(9, 9), "b": None}, writes={"y": b"2"})
        outer.merge(inner)
        assert outer.reads["a"] == Version(0, 0)  # first read wins
        assert outer.reads["b"] is None
        assert outer.writes == {"x": b"1", "y": b"2"}


class TestCompositeKeys:
    def test_roundtrip(self):
        key = make_composite_key("Shipment", ["po-1", "v2"])
        object_type, attributes = split_composite_key(key)
        assert object_type == "Shipment"
        assert attributes == ["po-1", "v2"]

    def test_prefix_ordering(self):
        base = make_composite_key("T", ["a"])
        extended = make_composite_key("T", ["a", "b"])
        assert extended.startswith(base)

    def test_nul_in_parts_rejected(self):
        with pytest.raises(StateError):
            make_composite_key("T", ["bad\x00part"])

    def test_empty_object_type_rejected(self):
        with pytest.raises(StateError):
            make_composite_key("", ["a"])

    def test_split_rejects_plain_key(self):
        with pytest.raises(StateError):
            split_composite_key("plain")

    def test_namespacing(self):
        assert namespaced("cc", "key") == "cc\x00key"
        with pytest.raises(StateError):
            namespaced("", "key")


def _tx(tx_id: str, writes: dict[str, bytes] | None = None) -> Transaction:
    return Transaction(
        tx_id=tx_id,
        channel="main",
        chaincode="cc",
        function="fn",
        args=["a"],
        creator=b"",
        rwset=ReadWriteSet(writes=writes or {}),
        result=b"r",
        endorsements=[
            Endorsement(peer_id="p", org="o", role="peer", certificate=b"c", signature=b"s")
        ],
    )


class TestLedger:
    def test_genesis_and_append(self):
        ledger = Ledger("main")
        block = Block(number=0, previous_hash=ledger.last_hash(), transactions=[_tx("t1")])
        block.validation_codes = [TxValidationCode.VALID]
        ledger.append(block)
        assert ledger.height == 1
        assert ledger.verify_chain()

    def test_wrong_number_rejected(self):
        ledger = Ledger("main")
        block = Block(number=5, previous_hash=ledger.last_hash(), transactions=[_tx("t1")])
        with pytest.raises(LedgerError, match="does not extend"):
            ledger.append(block)

    def test_broken_chain_rejected(self):
        ledger = Ledger("main")
        block = Block(number=0, previous_hash=b"\x00" * 32, transactions=[_tx("t1")])
        with pytest.raises(LedgerError, match="previous-hash"):
            ledger.append(block)

    def test_tampered_data_hash_rejected(self):
        ledger = Ledger("main")
        block = Block(number=0, previous_hash=ledger.last_hash(), transactions=[_tx("t1")])
        block.transactions.append(_tx("t2"))  # mutate after hash computed
        with pytest.raises(LedgerError, match="data hash"):
            ledger.append(block)

    def test_tx_lookup(self):
        ledger = Ledger("main")
        block = Block(number=0, previous_hash=ledger.last_hash(), transactions=[_tx("t1")])
        block.validation_codes = [TxValidationCode.VALID]
        ledger.append(block)
        tx, code = ledger.get_transaction("t1")
        assert tx.tx_id == "t1"
        assert code is TxValidationCode.VALID
        assert ledger.contains_tx("t1")
        with pytest.raises(LedgerError):
            ledger.get_transaction("missing")

    def test_verify_chain_detects_post_hoc_tampering(self):
        ledger = Ledger("main")
        for number in range(3):
            block = Block(
                number=number,
                previous_hash=ledger.last_hash(),
                transactions=[_tx(f"t{number}")],
            )
            block.validation_codes = [TxValidationCode.VALID]
            ledger.append(block)
        assert ledger.verify_chain()
        ledger.block(1).transactions[0].args.append("tampered")
        assert not ledger.verify_chain()

    @settings(max_examples=15, deadline=None)
    @given(count=st.integers(1, 6))
    def test_chain_of_n_blocks_verifies(self, count):
        ledger = Ledger("prop")
        for number in range(count):
            block = Block(
                number=number,
                previous_hash=ledger.last_hash(),
                transactions=[_tx(f"tx-{number}")],
            )
            block.validation_codes = [TxValidationCode.VALID]
            ledger.append(block)
        assert ledger.height == count
        assert ledger.verify_chain()
