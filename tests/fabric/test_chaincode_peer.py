"""Tests for the chaincode runtime, endorsement, and commit validation."""

from __future__ import annotations

import pytest

from repro.errors import ChaincodeError, EndorsementError
from repro.fabric import Chaincode, NetworkBuilder
from repro.fabric.chaincode import require_args
from repro.fabric.ledger import Block, TxValidationCode
from repro.fabric.peer import Proposal


class CounterChaincode(Chaincode):
    """Test chaincode: counters with events, transient echo, cc2cc calls."""

    name = "counter"

    def invoke(self, stub):
        if stub.function == "init":
            return b"ok"
        if stub.function == "increment":
            (key,) = require_args(stub, 1)
            raw = stub.get_state(key)
            value = int(raw) + 1 if raw else 1
            stub.put_state(key, str(value).encode())
            stub.set_event("incremented", key.encode())
            return str(value).encode()
        if stub.function == "get":
            (key,) = require_args(stub, 1)
            raw = stub.get_state(key)
            if raw is None:
                raise ChaincodeError(f"no counter {key!r}")
            return raw
        if stub.function == "whoami":
            creator = stub.get_creator()
            return creator.subject.common_name.encode()
        if stub.function == "echo_transient":
            value = stub.get_transient("secret")
            return value or b"(none)"
        if stub.function == "scan":
            prefix_pairs = stub.get_state_by_range("", "")
            return str(len(prefix_pairs)).encode()
        if stub.function == "call_helper":
            return stub.invoke_chaincode("helper", "shout", stub.args)
        if stub.function == "recurse":
            return stub.invoke_chaincode("counter", "recurse", [])
        raise ChaincodeError(f"unknown function {stub.function!r}")


class HelperChaincode(Chaincode):
    name = "helper"

    def invoke(self, stub):
        if stub.function == "init":
            return b"ok"
        if stub.function == "shout":
            stub.put_state("called", b"yes")
            return (" ".join(stub.args)).upper().encode()
        raise ChaincodeError(f"unknown function {stub.function!r}")


@pytest.fixture()
def network():
    net = (
        NetworkBuilder("cc-test")
        .add_org("org1")
        .add_org("org2")
        .add_peer("peer0", "org1")
        .add_peer("peer0", "org2")
        .add_client("app", "org1")
        .build()
    )
    app = net.org("org1").member("app")
    net.deploy_chaincode(CounterChaincode(), "AND('org1.peer', 'org2.peer')", initializer=app)
    net.deploy_chaincode(HelperChaincode(), "OR('org1.peer', 'org2.peer')", initializer=app)
    return net


@pytest.fixture()
def app(network):
    return network.org("org1").member("app")


class TestChaincodeRuntime:
    def test_submit_and_query(self, network, app):
        result = network.gateway.submit(app, "counter", "increment", ["c1"])
        assert result.committed
        assert network.gateway.evaluate(app, "counter", "get", ["c1"]) == b"1"

    def test_increments_accumulate(self, network, app):
        for expected in (b"1", b"2", b"3"):
            result = network.gateway.submit(app, "counter", "increment", ["c"])
            assert result.result == expected

    def test_creator_visible_to_chaincode(self, network, app):
        assert network.gateway.evaluate(app, "counter", "whoami", []) == b"app"

    def test_transient_data_passed(self, network, app):
        result = network.gateway.evaluate(
            app, "counter", "echo_transient", [], transient={"secret": b"s3cret"}
        )
        assert result == b"s3cret"

    def test_transient_not_on_ledger(self, network, app):
        network.gateway.submit(app, "counter", "increment", ["k"], transient={"secret": b"s3cret"})
        for peer in network.peers:
            for block in peer.ledger.blocks():
                assert b"s3cret" not in block.transactions[0].to_bytes()

    def test_chaincode_to_chaincode(self, network, app):
        result = network.gateway.submit(app, "counter", "call_helper", ["hello", "world"])
        assert result.result == b"HELLO WORLD"
        # the callee's write landed under the callee's namespace
        assert network.gateway.evaluate(app, "helper", "shout", ["x"]) == b"X"
        entry = network.peers[0].state.get("helper\x00called")
        assert entry is not None and entry.value == b"yes"

    def test_recursion_depth_limited(self, network, app):
        with pytest.raises(EndorsementError, match="call depth"):
            network.gateway.submit(app, "counter", "recurse", [])

    def test_unknown_function_fails_endorsement(self, network, app):
        with pytest.raises(EndorsementError, match="unknown function"):
            network.gateway.submit(app, "counter", "nope", [])

    def test_wrong_arg_count_fails(self, network, app):
        with pytest.raises(EndorsementError, match="expects 1 argument"):
            network.gateway.submit(app, "counter", "increment", [])

    def test_events_delivered_after_commit(self, network, app):
        seen = []
        network.event_hub.on_chaincode_event("counter", "incremented", seen.append)
        network.gateway.submit(app, "counter", "increment", ["ev"])
        assert len(seen) == 1
        assert seen[0].payload == b"ev"

    def test_chaincode_must_declare_name(self, network):
        class Nameless(Chaincode):
            def invoke(self, stub):
                return b""

        with pytest.raises(ChaincodeError):
            network.peers[0].install_chaincode(Nameless())


class TestCommitValidation:
    def test_all_peers_converge(self, network, app):
        for index in range(5):
            network.gateway.submit(app, "counter", "increment", [f"k{index}"])
        snapshots = [peer.state.snapshot() for peer in network.peers]
        assert all(snapshot == snapshots[0] for snapshot in snapshots)
        assert all(peer.ledger.verify_chain() for peer in network.peers)

    def test_mvcc_conflict_within_block(self, network, app):
        """Two txs reading+writing the same key in one block: second invalidated."""
        peer_a = network.peers[0]
        peer_b = network.peers[1]
        proposals = []
        for tag in ("tx-a", "tx-b"):
            proposal = Proposal(
                tx_id=tag,
                channel="main",
                chaincode="counter",
                function="increment",
                args=("shared",),
                creator=app.certificate.to_bytes(),
            )
            responses = [peer_a.endorse(proposal), peer_b.endorse(proposal)]
            proposals.append((proposal, responses))
        from repro.fabric.ledger import Transaction

        txs = []
        for proposal, responses in proposals:
            first = responses[0]
            txs.append(
                Transaction(
                    tx_id=proposal.tx_id,
                    channel=proposal.channel,
                    chaincode=proposal.chaincode,
                    function=proposal.function,
                    args=list(proposal.args),
                    creator=proposal.creator,
                    rwset=first.rwset,
                    result=first.result,
                    endorsements=[r.endorsement for r in responses],
                )
            )
        block = Block(
            number=peer_a.ledger.height,
            previous_hash=peer_a.ledger.last_hash(),
            transactions=txs,
        )
        codes = peer_a.commit_block(block)
        assert codes == [TxValidationCode.VALID, TxValidationCode.MVCC_READ_CONFLICT]
        assert peer_a.state.get("counter\x00shared").value == b"1"

    def test_endorsement_policy_failure(self, network, app):
        """A tx endorsed by only one org fails the AND policy at commit."""
        peer_a = network.peers[0]
        proposal = Proposal(
            tx_id="underendorsed",
            channel="main",
            chaincode="counter",
            function="increment",
            args=("k",),
            creator=app.certificate.to_bytes(),
        )
        response = peer_a.endorse(proposal)
        from repro.fabric.ledger import Transaction

        tx = Transaction(
            tx_id=proposal.tx_id,
            channel="main",
            chaincode="counter",
            function="increment",
            args=["k"],
            creator=proposal.creator,
            rwset=response.rwset,
            result=response.result,
            endorsements=[response.endorsement],
        )
        block = Block(
            number=peer_a.ledger.height,
            previous_hash=peer_a.ledger.last_hash(),
            transactions=[tx],
        )
        codes = peer_a.commit_block(block)
        assert codes == [TxValidationCode.ENDORSEMENT_POLICY_FAILURE]

    def test_tampered_result_invalidates_signature(self, network, app):
        peer_a, peer_b = network.peers[0], network.peers[1]
        proposal = Proposal(
            tx_id="tampered",
            channel="main",
            chaincode="counter",
            function="increment",
            args=("k",),
            creator=app.certificate.to_bytes(),
        )
        responses = [peer_a.endorse(proposal), peer_b.endorse(proposal)]
        from repro.fabric.ledger import Transaction

        tx = Transaction(
            tx_id="tampered",
            channel="main",
            chaincode="counter",
            function="increment",
            args=["k"],
            creator=proposal.creator,
            rwset=responses[0].rwset,
            result=b"FORGED",  # differs from what endorsers signed
            endorsements=[r.endorsement for r in responses],
        )
        block = Block(
            number=peer_a.ledger.height,
            previous_hash=peer_a.ledger.last_hash(),
            transactions=[tx],
        )
        codes = peer_a.commit_block(block)
        assert codes == [TxValidationCode.BAD_SIGNATURE]

    def test_duplicate_txid_rejected(self, network, app):
        result = network.gateway.submit(app, "counter", "increment", ["dup"])
        peer = network.peers[0]
        committed, _ = peer.ledger.get_transaction(result.tx_id)
        block = Block(
            number=peer.ledger.height,
            previous_hash=peer.ledger.last_hash(),
            transactions=[committed],
        )
        codes = peer.commit_block(block)
        assert codes == [TxValidationCode.DUPLICATE_TXID]

    def test_endorsement_counts_tracked(self, network, app):
        before = network.peers[0].endorsement_count
        network.gateway.submit(app, "counter", "increment", ["stat"])
        assert network.peers[0].endorsement_count == before + 1
