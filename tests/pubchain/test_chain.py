"""The simulated public chain: fork choice, reorgs, depth, replay.

Unit coverage for the substrate under the fourth driver — the block-tree
mechanics the conformance finality tests exercise end to end are pinned
here in isolation: longest-chain adoption (ties keep the tip), the
deterministic ``force_reorg`` displacing exactly the suffix it names,
monotonic orphan detection, least-buried confirmation depth, and the
canonical replay that reverts transactions invalid on the current branch.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import EVMError, LedgerError
from repro.pubchain import FinalityPolicy, SimulatedPublicChain
from repro.pubchain.finality import VERB_ASSETS, VERB_QUERY
from repro.quorum.contracts import DocumentRegistryContract
from repro.quorum.network import QuorumTransaction
from repro.utils.clock import SimulatedClock

ADDRESS = DocumentRegistryContract.address


def make_chain(**kwargs) -> SimulatedPublicChain:
    chain = SimulatedPublicChain(
        "pubnet-unit", clock=SimulatedClock(1_000.0), **kwargs
    )
    chain.add_observer("obs1", "org-1")
    chain.deploy_contract(DocumentRegistryContract())
    return chain


def enroll_once(chain, name: str):
    cache = chain.__dict__.setdefault("_test_identities", {})
    if name not in cache:
        cache[name] = chain.enroll_client(name, "org-1")
    return cache[name]


def register(chain, doc_id: str, value: str = "v"):
    sender = enroll_once(chain, "writer")
    return chain.submit_transaction(
        sender, ADDRESS, "RegisterDocument", [doc_id, json.dumps({"value": value})]
    )


def get_document(chain, doc_id: str) -> dict:
    sender = enroll_once(chain, "reader")
    result, _ = chain.view(sender, ADDRESS, "GetDocument", [doc_id])
    return json.loads(result)


class TestForkChoice:
    def test_tie_keeps_current_tip(self):
        """A same-height competing block must *overtake* to reorg: on a
        tie the chain keeps its tip, so adoption is stable."""
        chain = make_chain()
        chain.mine(1)
        tip_before = chain.tip.hash_hex()
        chain.fork_rate = 1.0  # the next submission mines onto tip's parent
        tx = register(chain, "TIED")
        assert chain.tip.hash_hex() == tip_before  # the fork only tied
        assert chain.height_of(tx.tx_id) == chain.tip_height()
        # The canonical branch never saw the forked write.
        with pytest.raises(EVMError, match="no document"):
            get_document(chain, "TIED")
        assert chain.reorged_keys(ADDRESS, {"doc/TIED"}) == {"doc/TIED": tx.tx_id}

    def test_heavier_branch_is_adopted(self):
        chain = make_chain()
        register(chain, "OLD-TIP")
        height_before = chain.tip_height()
        displaced = chain.canonical_branch()[-1].hash_hex()
        chain.force_reorg(1, extra=2)
        assert chain.tip_height() == height_before + 2
        assert displaced not in (
            block.hash_hex() for block in chain.canonical_branch()
        )


class TestForceReorg:
    def test_returns_exactly_the_displaced_transactions(self):
        chain = make_chain()
        settled = register(chain, "SETTLED")
        chain.mine(3)
        victim_a = register(chain, "VICTIM-A")
        victim_b = register(chain, "VICTIM-B")
        orphaned = chain.force_reorg(2)
        assert sorted(orphaned) == sorted([victim_a.tx_id, victim_b.tx_id])
        assert settled.tx_id not in orphaned

    def test_orphaned_write_vanishes_from_canonical_state(self):
        chain = make_chain()
        register(chain, "GONE")
        chain.force_reorg(1)
        with pytest.raises(EVMError, match="no document"):
            get_document(chain, "GONE")

    def test_depth_bounds_are_enforced(self):
        chain = make_chain()
        chain.mine(2)
        with pytest.raises(LedgerError, match="cannot reorg"):
            chain.force_reorg(0)
        with pytest.raises(LedgerError, match="cannot reorg"):
            chain.force_reorg(3)  # deeper than the whole chain


class TestReorgedKeys:
    def test_orphaned_key_maps_to_its_transaction(self):
        chain = make_chain()
        tx = register(chain, "R1")
        chain.force_reorg(1)
        assert chain.reorged_keys(ADDRESS, {"doc/R1"}) == {"doc/R1": tx.tx_id}

    def test_canonical_rewrite_clears_detection(self):
        """Detection is monotonic: once the canonical branch re-establishes
        the key at equal-or-greater height, the orphan is superseded."""
        chain = make_chain()
        register(chain, "R2")
        chain.force_reorg(1)
        assert chain.reorged_keys(ADDRESS, {"doc/R2"})
        register(chain, "R2", value="rewritten")
        assert chain.reorged_keys(ADDRESS, {"doc/R2"}) == {}
        assert get_document(chain, "R2")["value"] == "rewritten"

    def test_untouched_keys_are_clean(self):
        chain = make_chain()
        register(chain, "R3")
        chain.mine(2)
        assert chain.reorged_keys(ADDRESS, {"doc/R3", "doc/NEVER"}) == {}


class TestConfirmationDepth:
    def test_tip_block_has_depth_one_and_mining_buries(self):
        chain = make_chain()
        register(chain, "D1")
        assert chain.confirmation_depth(ADDRESS, {"doc/D1"}) == 1
        chain.mine(4)
        assert chain.confirmation_depth(ADDRESS, {"doc/D1"}) == 5

    def test_none_when_no_canonical_writer(self):
        """A view that observed only *absence* of state has no depth —
        no amount of waiting makes a missing record final."""
        chain = make_chain()
        chain.mine(3)
        assert chain.confirmation_depth(ADDRESS, {"doc/NOPE"}) is None

    def test_depth_is_least_buried_write(self):
        chain = make_chain()
        register(chain, "OLD")
        chain.mine(5)
        register(chain, "NEW")
        depth = chain.confirmation_depth(ADDRESS, {"doc/OLD", "doc/NEW"})
        assert depth == 1  # the fresh write dominates

    def test_height_of_unknown_transaction_raises(self):
        chain = make_chain()
        with pytest.raises(LedgerError, match="no mined transaction"):
            chain.height_of("ptx-never")


class TestCanonicalReplay:
    def test_invalid_transaction_on_branch_reverts(self):
        """Replay robustness: a transaction mined into the canonical
        branch that violates contract rules there (the double-write shape
        a reorg can produce) reverts cleanly — first write wins, nothing
        corrupts, and the reverted transaction never counts as applied."""
        chain = make_chain()
        first = register(chain, "DUP")
        sender = enroll_once(chain, "forger")
        rogue = QuorumTransaction(
            tx_id="ptx-rogue-dup",
            address=ADDRESS,
            function="RegisterDocument",
            args=("DUP", '{"value": "second"}'),
            sender=sender.id,
            sender_org=sender.org,
            timestamp=chain.clock.now(),
        )
        with chain._lock:  # hand-mined: skips submit-time validation
            block = chain._mine_block(chain._tip, (rogue,))
            chain._tx_height[rogue.tx_id] = block.height
            chain._writesets[rogue.tx_id] = (ADDRESS, frozenset({"doc/DUP"}))

        assert get_document(chain, "DUP")["value"] == "v"  # first write won
        # The reverted write is not a canonical writer, so the key's depth
        # still tracks the *applied* transaction, not the reverted one.
        assert chain.confirmation_depth(ADDRESS, {"doc/DUP"}) == 2
        assert chain.height_of(first.tx_id) == 1

    def test_auto_confirm_prebakes_depth(self):
        chain = make_chain(auto_confirm=2)
        register(chain, "BAKED")
        assert chain.confirmation_depth(ADDRESS, {"doc/BAKED"}) == 3


class TestSeededForks:
    def test_same_seed_same_fork_schedule(self):
        """``fork_rate`` draws from the seeded RNG: two chains with the
        same seed orphan the same submissions, so adversarial runs replay."""

        def run(seed: int) -> list[str]:
            chain = make_chain(seed=seed, fork_rate=0.5)
            chain.mine(1)
            orphans = []
            for index in range(8):
                doc_id = f"SEEDED-{index}"
                register(chain, doc_id)
                if chain.reorged_keys(ADDRESS, {f"doc/{doc_id}"}):
                    orphans.append(doc_id)
            return orphans

        assert run(41) == run(41)
        runs = {tuple(run(seed)) for seed in (41, 42, 43, 44)}
        assert len(runs) > 1  # the rate is really probabilistic, not all-or-nothing


class TestFinalityPolicy:
    def test_required_defaults_overrides_and_floor(self):
        policy = FinalityPolicy(confirmations=2, per_verb={VERB_ASSETS: 6})
        assert policy.required(VERB_QUERY) == 2
        assert policy.required(VERB_ASSETS) == 6
        assert policy.required("unknown-verb") == 2
        # Depth never drops below one: the write must at least be mined.
        assert FinalityPolicy(confirmations=0).required(VERB_QUERY) == 1
        assert FinalityPolicy(per_verb={VERB_QUERY: -3}).required(VERB_QUERY) == 1

    def test_policy_is_frozen(self):
        policy = FinalityPolicy()
        with pytest.raises(AttributeError):
            policy.confirmations = 9  # type: ignore[misc]
