"""REP201 fixture tests: blocking calls inside ``async def`` bodies."""

import textwrap

from repro.analysis.checkers.async_safety import AsyncSafetyChecker
from repro.analysis.core import Project


def run(source):
    project = Project.from_sources(
        {"src/repro/net/fixture.py": textwrap.dedent(source)}
    )
    return AsyncSafetyChecker().run(project)


def test_time_sleep_in_async_def_fires():
    findings = run(
        """
        import time

        async def pump():
            time.sleep(0.5)
        """
    )
    assert [f.rule for f in findings] == ["REP201"]
    assert findings[0].symbol == "pump"
    assert "time.sleep" in findings[0].message


def test_socket_and_lock_calls_fire():
    findings = run(
        """
        class Endpoint:
            async def send(self, sock, data):
                sock.sendall(data)

            async def guard(self):
                self._lock.acquire()
        """
    )
    assert sorted(f.symbol for f in findings) == ["Endpoint.guard", "Endpoint.send"]
    assert {f.rule for f in findings} == {"REP201"}


def test_awaited_calls_are_clean():
    findings = run(
        """
        import asyncio

        async def pump(slots, downstream):
            await slots.acquire()
            await asyncio.sleep(0.5)
            return await downstream()
        """
    )
    assert findings == []


def test_args_of_awaited_call_still_scanned():
    findings = run(
        """
        import time

        async def pump(gather):
            await gather(time.sleep(1.0))
        """
    )
    assert [f.rule for f in findings] == ["REP201"]


def test_nested_sync_def_is_deferred_execution():
    findings = run(
        """
        import time

        async def pump(loop):
            def blocking():
                time.sleep(1.0)
            return await loop.run_in_executor(None, blocking)
        """
    )
    assert findings == []


def test_sync_function_is_out_of_scope():
    findings = run(
        """
        import time

        def pump():
            time.sleep(1.0)
        """
    )
    assert findings == []
