"""The meta-test: the shipped tree satisfies its own invariants.

This is the CI tripwire the ISSUE asks for — it runs every checker over
``src/`` exactly the way ``python -m repro.analysis`` does and fails on
any non-baselined finding or stale baseline entry. The sensitivity tests
then *mutate the real sources in memory* and assert the checkers catch
the regression, proving the clean result is earned rather than vacuous.
"""

from pathlib import Path

import textwrap

from repro.analysis.baseline import Baseline
from repro.analysis.core import Project, run_analysis

ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = ROOT / "analysis-baseline.json"

MESSAGES = ROOT / "src" / "repro" / "proto" / "messages.py"
PROTO_INIT = ROOT / "src" / "repro" / "proto" / "__init__.py"
RELAY = ROOT / "src" / "repro" / "interop" / "relay.py"


def analyze_src():
    project = Project.from_paths([ROOT / "src"], base=ROOT)
    return project, run_analysis(project)


def test_src_tree_is_clean_modulo_baseline():
    project, findings = analyze_src()
    assert project.errors == [], f"unparseable sources: {project.errors}"
    result = Baseline.load(BASELINE_PATH).apply(findings)
    rendered = "\n".join(f.render() for f in result.active)
    assert result.active == [], f"non-baselined invariant violations:\n{rendered}"
    stale = "\n".join(e.symbol for e in result.stale)
    assert result.stale == [], f"stale baseline entries (delete them):\n{stale}"


def test_baseline_is_small_and_justified():
    baseline = Baseline.load(BASELINE_PATH)
    assert len(baseline.entries) <= 10, "the baseline is a waiver list, not a dump"
    for entry in baseline.entries:
        # Load() already enforces non-empty; require a real sentence too.
        assert len(entry.rationale.split()) >= 5, (
            f"baseline entry {entry.key} needs a real rationale, "
            f"not a token: {entry.rationale!r}"
        )


# -- sensitivity: the clean result must be falsifiable ---------------------------


def real_wire_sources():
    return {
        "src/repro/proto/messages.py": MESSAGES.read_text(encoding="utf-8"),
        "src/repro/proto/__init__.py": PROTO_INIT.read_text(encoding="utf-8"),
        "src/repro/interop/relay.py": RELAY.read_text(encoding="utf-8"),
    }


def test_real_wire_registry_is_currently_clean():
    findings = run_analysis(Project.from_sources(real_wire_sources()))
    assert [f for f in findings if f.rule == "REP301"] == []


def test_unclassified_kind_regression_is_caught():
    sources = real_wire_sources()
    sources["src/repro/proto/messages.py"] += "\nMSG_KIND_SMOKE = 999\n"
    findings = run_analysis(Project.from_sources(sources))
    messages = [f.message for f in findings if f.rule == "REP301"]
    assert any("MSG_KIND_SMOKE is not classified" in m for m in messages)
    assert any("MSG_KIND_SMOKE is not exported" in m for m in messages)


def test_undispatched_kind_regression_is_caught():
    # Classify and export the new kind but give it no _route branch: the
    # envelope would answer "unexpected message kind" at runtime.
    sources = real_wire_sources()
    sources["src/repro/proto/messages.py"] = (
        sources["src/repro/proto/messages.py"].replace(
            "MSG_KIND_TRANSACT_REQUEST,",
            "MSG_KIND_TRANSACT_REQUEST,\n        MSG_KIND_SMOKE,",
            1,  # first occurrence = the SIDE_EFFECTING_KINDS literal
        )
        + "\nMSG_KIND_SMOKE = 999\n"
    )
    findings = run_analysis(Project.from_sources(sources))
    messages = [f.message for f in findings if f.rule == "REP301"]
    assert any(
        "MSG_KIND_SMOKE has no dispatch branch" in m for m in messages
    ), messages


def test_lock_across_relay_round_trip_regression_is_caught():
    # Append a module-level helper to the *real* relay module that holds
    # a lock across a full relay round-trip — the exact regression shape
    # REP102 exists to stop.
    sources = real_wire_sources()
    sources["src/repro/interop/relay.py"] += textwrap.dedent(
        """

        def _smoke_regression(service, endpoint, payload):
            with service._idempotency_lock:
                return endpoint.handle_request(payload)
        """
    )
    findings = run_analysis(Project.from_sources(sources))
    regressions = [
        f
        for f in findings
        if f.rule == "REP102" and f.symbol == "_smoke_regression"
    ]
    assert len(regressions) == 1
    assert "handle_request" in regressions[0].message
