"""REP501 fixture tests: capability grants must fail closed."""

import textwrap

from repro.analysis.checkers.capabilities import CapabilityFailClosedChecker
from repro.analysis.core import Project

# A project-local stand-in for the real abstract driver: its transaction
# and event verbs decline (DECLINING_DEFAULTS), its asset verbs delegate
# to an attached port and therefore count as real implementations.
BASE = """
class NetworkDriver:
    supports_transactions = False
    supports_events = False
    supports_assets = False

    def execute_transaction(self, invocation):
        raise UnsupportedCapabilityError("transactions")

    def open_event_tap(self, request):
        raise UnsupportedCapabilityError("events")

    def close_event_tap(self, request):
        raise UnsupportedCapabilityError("events")

    def lock_asset(self, command):
        return self._asset_port.lock(command)

    def claim_asset(self, command):
        return self._asset_port.claim(command)

    def unlock_asset(self, command):
        return self._asset_port.unlock(command)

    def asset_status(self, command):
        return self._asset_port.status(command)
"""


def run(driver_source):
    project = Project.from_sources(
        {
            "src/repro/interop/drivers/base.py": textwrap.dedent(BASE),
            "src/repro/interop/drivers/fixture.py": textwrap.dedent(driver_source),
        }
    )
    return CapabilityFailClosedChecker().run(project)


def test_grant_without_verb_fires():
    findings = run(
        """
        from repro.interop.drivers.base import NetworkDriver

        class BrokenDriver(NetworkDriver):
            supports_transactions = True
        """
    )
    assert [f.rule for f in findings] == ["REP501"]
    assert findings[0].symbol == "BrokenDriver"
    assert "execute_transaction" in findings[0].message


def test_grant_with_verb_passes():
    findings = run(
        """
        from repro.interop.drivers.base import NetworkDriver

        class GoodDriver(NetworkDriver):
            supports_transactions = True

            def execute_transaction(self, invocation):
                return self._submit(invocation)
        """
    )
    assert findings == []


def test_declining_default_does_not_satisfy_grant():
    # NetworkDriver *defines* open/close_event_tap, but those defaults
    # decline — a subclass granting supports_events must override both.
    findings = run(
        """
        from repro.interop.drivers.base import NetworkDriver

        class HalfEvents(NetworkDriver):
            supports_events = True

            def open_event_tap(self, request):
                return self._taps.open(request)
        """
    )
    assert [f.rule for f in findings] == ["REP501"]
    assert "close_event_tap" in findings[0].message
    assert "open_event_tap" not in findings[0].message


def test_base_asset_delegation_satisfies_grant():
    # The base's asset verbs are real (port delegation), so granting
    # supports_assets without overriding them is fine.
    findings = run(
        """
        from repro.interop.drivers.base import NetworkDriver

        class AssetDriver(NetworkDriver):
            supports_assets = True
        """
    )
    assert findings == []


def test_instance_level_conditional_grant_fires():
    # `self.supports_events = reader is not None` is still a grant: the
    # flag *can* be truthy at runtime, so the verbs must exist.
    findings = run(
        """
        from repro.interop.drivers.base import NetworkDriver

        class LazyDriver(NetworkDriver):
            def __init__(self, reader):
                self.supports_events = reader is not None
        """
    )
    assert [f.rule for f in findings] == ["REP501"]
    assert findings[0].symbol == "LazyDriver"


def test_explicit_false_is_not_a_grant():
    findings = run(
        """
        from repro.interop.drivers.base import NetworkDriver

        class QuietDriver(NetworkDriver):
            supports_transactions = False
        """
    )
    assert findings == []


def test_verb_inherited_from_intermediate_base_counts():
    findings = run(
        """
        from repro.interop.drivers.base import NetworkDriver

        class TxMixin:
            def execute_transaction(self, invocation):
                return self._submit(invocation)

        class StackedDriver(TxMixin, NetworkDriver):
            supports_transactions = True
        """
    )
    assert findings == []
