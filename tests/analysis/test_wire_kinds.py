"""REP301 fixture tests: the wire-kind registry is closed, classified,
exported, and every request kind has a dispatch branch."""

import textwrap

from repro.analysis.checkers.wire_kinds import WireKindRegistryChecker
from repro.analysis.core import Project

CLEAN_MESSAGES = """
MSG_KIND_PING = 1
MSG_KIND_POKE = 2
MSG_KIND_PONG = 3

SIDE_EFFECTING_KINDS = frozenset({MSG_KIND_POKE})
READ_ONLY_KINDS = frozenset({MSG_KIND_PING})
REPLY_KINDS = frozenset({MSG_KIND_PONG})
"""

CLEAN_EXPORTS = """
__all__ = [
    "MSG_KIND_PING",
    "MSG_KIND_POKE",
    "MSG_KIND_PONG",
    "SIDE_EFFECTING_KINDS",
    "READ_ONLY_KINDS",
    "REPLY_KINDS",
]
"""

CLEAN_RELAY = """
class RelayService:
    def _route(self, kind, envelope):
        if kind == MSG_KIND_PING:
            return self._pong(envelope)
        if kind in SIDE_EFFECTING_KINDS:
            return self._poke(envelope)
        return self._error(envelope)
"""


def run(messages=CLEAN_MESSAGES, exports=CLEAN_EXPORTS, relay=CLEAN_RELAY):
    project = Project.from_sources(
        {
            "src/repro/proto/messages.py": textwrap.dedent(messages),
            "src/repro/proto/__init__.py": textwrap.dedent(exports),
            "src/repro/interop/relay.py": textwrap.dedent(relay),
        }
    )
    return WireKindRegistryChecker().run(project)


def test_clean_registry_passes():
    assert run() == []


def test_unclassified_kind_fires():
    findings = run(messages=CLEAN_MESSAGES + "MSG_KIND_STRAY = 4\n")
    messages = [f.message for f in findings]
    assert any("MSG_KIND_STRAY is not classified" in m for m in messages)
    # …and the new kind is also missing from __all__.
    assert any("not exported" in m for m in messages)
    assert all(f.rule == "REP301" for f in findings)


def test_duplicate_wire_value_fires():
    findings = run(
        messages=CLEAN_MESSAGES.replace("MSG_KIND_PONG = 3", "MSG_KIND_PONG = 1")
    )
    assert any("reuses wire value 1" in f.message for f in findings)


def test_double_classification_fires():
    findings = run(
        messages=CLEAN_MESSAGES.replace(
            "READ_ONLY_KINDS = frozenset({MSG_KIND_PING})",
            "READ_ONLY_KINDS = frozenset({MSG_KIND_PING, MSG_KIND_POKE})",
        )
    )
    assert any("classified twice" in f.message for f in findings)


def test_missing_classification_set_fires():
    findings = run(
        messages=CLEAN_MESSAGES.replace(
            "READ_ONLY_KINDS = frozenset({MSG_KIND_PING})", ""
        )
    )
    assert any(
        "READ_ONLY_KINDS is not defined" in f.message for f in findings
    )


def test_unknown_member_in_set_fires():
    findings = run(
        messages=CLEAN_MESSAGES.replace(
            "REPLY_KINDS = frozenset({MSG_KIND_PONG})",
            "REPLY_KINDS = frozenset({MSG_KIND_PONG, MSG_KIND_GHOST})",
        )
    )
    assert any("MSG_KIND_GHOST" in f.message for f in findings)


def test_missing_export_fires():
    findings = run(exports=CLEAN_EXPORTS.replace('    "MSG_KIND_POKE",\n', ""))
    assert any(
        "MSG_KIND_POKE is not exported" in f.message for f in findings
    )


def test_undispatched_request_kind_fires():
    # Route only the read-only kind; the side-effecting one goes dark.
    findings = run(
        relay="""
        class RelayService:
            def _route(self, kind, envelope):
                if kind == MSG_KIND_PING:
                    return self._pong(envelope)
                return self._error(envelope)
        """
    )
    assert [f.rule for f in findings] == ["REP301"]
    assert "MSG_KIND_POKE has no dispatch branch" in findings[0].message


def test_reply_kinds_need_no_dispatch():
    # MSG_KIND_PONG is never routed in the clean fixture; that is correct.
    assert run() == []


def test_dispatch_via_set_membership_counts():
    # MSG_KIND_POKE is only reachable through `kind in SIDE_EFFECTING_KINDS`.
    findings = run(
        relay="""
        class RelayService:
            def _route(self, kind, envelope):
                if kind in SIDE_EFFECTING_KINDS:
                    return self._poke(envelope)
                if kind in READ_ONLY_KINDS:
                    return self._pong(envelope)
                return self._error(envelope)
        """
    )
    assert findings == []
