"""REP101/REP102 fixture tests: one passing + one failing case per rule,
plus the control-flow subtleties the checker must model (with-blocks,
nested defs as deferred execution, async-with, tuple targets)."""

import textwrap

from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.core import Project

REGISTRY = {"Table": {"_rows": "_lock", "count": "_lock"}}


def run(source, registry=REGISTRY):
    project = Project.from_sources(
        {"src/repro/interop/fixture.py": textwrap.dedent(source)}
    )
    return LockDisciplineChecker(guarded_state=registry).run(project)


# -- REP101: unguarded shared-state writes --------------------------------------


def test_unguarded_write_fires():
    findings = run(
        """
        class Table:
            def put(self, key, value):
                self._rows[key] = value
        """
    )
    assert [f.rule for f in findings] == ["REP101"]
    assert findings[0].line == 4
    assert findings[0].symbol == "Table.put"
    assert "_lock" in findings[0].message


def test_guarded_write_is_clean():
    findings = run(
        """
        class Table:
            def put(self, key, value):
                with self._lock:
                    self._rows[key] = value
        """
    )
    assert findings == []


def test_init_is_exempt():
    findings = run(
        """
        class Table:
            def __init__(self):
                self._rows = {}
                self.count = 0
        """
    )
    assert findings == []


def test_mutator_method_counts_as_write():
    findings = run(
        """
        class Table:
            def drop(self, key):
                self._rows.pop(key, None)
        """
    )
    assert [f.rule for f in findings] == ["REP101"]
    assert "self._rows.pop(...)" in findings[0].message


def test_augmented_and_tuple_targets():
    findings = run(
        """
        class Table:
            def bump(self):
                self.count += 1

            def swap(self):
                old, self._rows = self._rows, {}
        """
    )
    assert [f.rule for f in findings] == ["REP101", "REP101"]
    assert {f.symbol for f in findings} == {"Table.bump", "Table.swap"}


def test_wrong_lock_does_not_satisfy():
    findings = run(
        """
        class Table:
            def put(self, key, value):
                with self._other_lock:
                    self._rows[key] = value
        """
    )
    assert [f.rule for f in findings] == ["REP101"]


def test_unregistered_class_is_ignored():
    findings = run(
        """
        class Elsewhere:
            def put(self, key, value):
                self._rows[key] = value
        """
    )
    assert findings == []


def test_default_registry_guards_relay_state():
    """The shipped registry must cover RelayService's idempotency record."""
    project = Project.from_sources(
        {
            "src/repro/interop/fixture.py": textwrap.dedent(
                """
                class RelayService:
                    def forget(self, request_id):
                        self._idempotency.pop(request_id, None)
                """
            )
        }
    )
    findings = LockDisciplineChecker().run(project)
    assert [f.rule for f in findings] == ["REP101"]
    assert "_idempotency_lock" in findings[0].message


# -- REP102: lock held across blocking operations -------------------------------


def test_lock_across_call_next_fires():
    findings = run(
        """
        class Chain:
            def handle(self, ctx, call_next):
                with self._lock:
                    return call_next(ctx)
        """
    )
    assert [f.rule for f in findings] == ["REP102"]
    assert "call_next" in findings[0].message


def test_lock_across_sleep_and_socket_fires():
    findings = run(
        """
        import time

        class Chain:
            def slow(self):
                with self._mutex:
                    time.sleep(1.0)

            def network(self, sock, data):
                with self._lock:
                    sock.sendall(data)
        """
    )
    assert sorted(f.rule for f in findings) == ["REP102", "REP102"]


def test_call_next_outside_lock_is_clean():
    findings = run(
        """
        class Chain:
            def handle(self, ctx, call_next):
                with self._lock:
                    cached = self._rows.get(ctx)
                if cached is not None:
                    return cached
                return call_next(ctx)
        """
    )
    assert findings == []


def test_await_under_sync_lock_fires():
    findings = run(
        """
        class Chain:
            async def handle(self, ctx):
                with self._lock:
                    return await self.downstream(ctx)
        """
    )
    assert [f.rule for f in findings] == ["REP102"]
    assert "'await'" in findings[0].message


def test_async_with_is_not_a_sync_lock():
    findings = run(
        """
        class Chain:
            async def handle(self, ctx):
                async with self._write_lock:
                    return await self.downstream(ctx)
        """
    )
    assert findings == []


def test_nested_def_is_deferred_execution():
    findings = run(
        """
        class Chain:
            def handle(self, ctx, call_next):
                with self._lock:
                    def later():
                        return call_next(ctx)
                    self._rows[ctx] = later
                return self._rows[ctx]
        """
    )
    assert findings == []


def test_default_registry_flags_relay_lock_across_round_trip():
    """Regression shape: the idempotency lock held across a round-trip."""
    project = Project.from_sources(
        {
            "src/repro/interop/fixture.py": textwrap.dedent(
                """
                class RelayService:
                    def bad(self, endpoint, data):
                        with self._idempotency_lock:
                            return endpoint.handle_request(data)
                """
            )
        }
    )
    findings = LockDisciplineChecker().run(project)
    assert [f.rule for f in findings] == ["REP102"]
    assert "handle_request" in findings[0].message
