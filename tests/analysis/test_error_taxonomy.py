"""REP401 fixture tests: broad except handlers in the protocol layers."""

import textwrap

from repro.analysis.checkers.error_taxonomy import ErrorTaxonomyChecker
from repro.analysis.core import Project


def run(source, path="src/repro/interop/fixture.py"):
    project = Project.from_sources({path: textwrap.dedent(source)})
    return ErrorTaxonomyChecker().run(project)


def test_swallowing_broad_except_fires():
    findings = run(
        """
        def dispatch(envelope):
            try:
                return decode(envelope)
            except Exception:
                return None
        """
    )
    assert [f.rule for f in findings] == ["REP401"]
    assert findings[0].symbol == "dispatch"
    assert findings[0].line == 5


def test_bare_except_fires():
    findings = run(
        """
        def dispatch(envelope):
            try:
                return decode(envelope)
            except:
                pass
        """
    )
    assert [f.rule for f in findings] == ["REP401"]


def test_untyped_reraise_fires():
    # Wrapping in something outside the *Error taxonomy loses the type
    # the failover loop routes on.
    findings = run(
        """
        def dispatch(envelope):
            try:
                return decode(envelope)
            except Exception as exc:
                raise SystemExit(str(exc))
        """
    )
    assert [f.rule for f in findings] == ["REP401"]


def test_bare_reraise_is_allowed():
    findings = run(
        """
        def dispatch(envelope):
            try:
                return decode(envelope)
            except Exception:
                log.warning("dispatch failed")
                raise
        """
    )
    assert findings == []


def test_typed_reraise_is_allowed():
    findings = run(
        """
        def dispatch(envelope):
            try:
                return decode(envelope)
            except Exception as exc:
                raise RelayProtocolError("bad envelope") from exc
        """
    )
    assert findings == []


def test_error_envelope_answer_is_allowed():
    findings = run(
        """
        class RelayService:
            def dispatch(self, envelope):
                try:
                    return self._handle(envelope)
                except Exception as exc:
                    return self._error_envelope(envelope, exc)
        """
    )
    assert findings == []


def test_noqa_with_rationale_is_allowed():
    findings = run(
        """
        def peek(raw):
            try:
                return decode(raw)
            except Exception:  # noqa: BLE001 - adversarial bytes: any parse failure is recorded
                return None
        """
    )
    assert findings == []


def test_bare_noqa_tag_is_itself_a_finding():
    findings = run(
        """
        def peek(raw):
            try:
                return decode(raw)
            except Exception:  # noqa: BLE001
                return None
        """
    )
    assert [f.rule for f in findings] == ["REP401"]
    assert "rationale is mandatory" in findings[0].message


def test_narrow_except_is_out_of_scope():
    findings = run(
        """
        def dispatch(envelope):
            try:
                return decode(envelope)
            except (ValueError, KeyError):
                return None
        """
    )
    assert findings == []


def test_substrate_layers_are_out_of_scope():
    findings = run(
        """
        def poll(client):
            try:
                return client.query()
            except Exception:
                return None
        """,
        path="src/repro/fabric/fixture.py",
    )
    assert findings == []


def test_nested_handler_in_closure_is_scanned():
    findings = run(
        """
        def serve(sock):
            def worker(frame):
                try:
                    return handle(frame)
                except Exception:
                    return None
            return worker
        """
    )
    assert [f.symbol for f in findings] == ["serve.worker"]
