"""Baseline round-trip + CLI behavior (exit codes, JSON report, rules filter)."""

import json
import textwrap

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError
from repro.analysis.cli import main
from repro.analysis.core import Finding

FINDING = Finding(
    rule="REP102",
    path="src/repro/api/middleware.py",
    line=42,
    col=8,
    message="lock held across call_next",
    symbol="SerializingInterceptor.handle",
)


# -- baseline mechanics ----------------------------------------------------------


def test_roundtrip_render_load_apply(tmp_path):
    document = Baseline.render([FINDING], rationale="serialization is the point")
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(document))

    baseline = Baseline.load(path)
    assert [e.rationale for e in baseline.entries] == ["serialization is the point"]

    result = baseline.apply([FINDING])
    assert result.active == []
    assert result.suppressed == [FINDING]
    assert result.stale == []


def test_matching_ignores_line_numbers():
    moved = Finding(
        rule=FINDING.rule,
        path=FINDING.path,
        line=999,
        col=0,
        message=FINDING.message,
        symbol=FINDING.symbol,
    )
    baseline = Baseline(
        [BaselineEntry(FINDING.rule, FINDING.path, FINDING.symbol, "why")]
    )
    result = baseline.apply([moved])
    assert result.active == [] and result.suppressed == [moved]


def test_matching_tolerates_absolute_paths():
    # Runs started outside the repo root report absolute paths; the
    # repo-relative entry must still suppress them.
    absolute = Finding(
        rule=FINDING.rule,
        path="/home/ci/checkout/" + FINDING.path,
        line=FINDING.line,
        col=FINDING.col,
        message=FINDING.message,
        symbol=FINDING.symbol,
    )
    baseline = Baseline(
        [BaselineEntry(FINDING.rule, FINDING.path, FINDING.symbol, "why")]
    )
    result = baseline.apply([absolute])
    assert result.active == [] and result.stale == []
    # …but a mere substring (no `/` boundary) must NOT match.
    lookalike = Finding(
        rule=FINDING.rule,
        path="not-" + FINDING.path,
        line=1,
        col=0,
        message=FINDING.message,
        symbol=FINDING.symbol,
    )
    assert baseline.apply([lookalike]).active == [lookalike]


def test_stale_entry_is_reported():
    baseline = Baseline(
        [BaselineEntry("REP401", "src/repro/net/server.py", "gone.symbol", "why")]
    )
    result = baseline.apply([FINDING])
    assert result.active == [FINDING]
    assert [e.symbol for e in result.stale] == ["gone.symbol"]


def test_missing_rationale_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"rule": "REP102", "path": "a.py", "symbol": "X.h", "rationale": ""}
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="rationale"):
        Baseline.load(path)


def test_malformed_baseline_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("[]")
    with pytest.raises(BaselineError, match="entries"):
        Baseline.load(path)


# -- CLI -------------------------------------------------------------------------

DIRTY_MODULE = textwrap.dedent(
    """
    def dispatch(envelope):
        try:
            return decode(envelope)
        except Exception:
            return None
    """
)


def write_dirty_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "interop"
    pkg.mkdir(parents=True)
    (pkg / "fixture.py").write_text(DIRTY_MODULE)
    return tmp_path / "src"


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "interop"
    pkg.mkdir(parents=True)
    (pkg / "fixture.py").write_text("def ok():\n    return 1\n")
    assert main([str(tmp_path / "src")]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_active_finding_exits_one(tmp_path, capsys):
    src = write_dirty_tree(tmp_path)
    assert main([str(src)]) == 1
    out = capsys.readouterr().out
    assert "REP401" in out and "fixture.py:5" in out


def test_cli_json_report(tmp_path):
    src = write_dirty_tree(tmp_path)
    report_path = tmp_path / "report.json"
    assert main([str(src), "--json", str(report_path)]) == 1
    report = json.loads(report_path.read_text())
    assert report["counts"] == {"REP401": 1}
    assert report["findings"][0]["rule"] == "REP401"
    assert report["findings"][0]["symbol"] == "dispatch"
    assert report["stale_baseline"] == []


def test_cli_write_baseline_then_suppress(tmp_path, capsys):
    src = write_dirty_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"

    # 1. Accept the current findings into a baseline…
    assert main([str(src), "--write-baseline", str(baseline_path)]) == 0
    document = json.loads(baseline_path.read_text())
    assert len(document["entries"]) == 1
    # …the generated rationale is a placeholder the author must replace.
    document["entries"][0]["rationale"] = "legacy shim, tracked in ROADMAP"
    baseline_path.write_text(json.dumps(document))

    # 2. With the baseline the same tree is clean.
    capsys.readouterr()
    assert main([str(src), "--baseline", str(baseline_path)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # 3. Fix the code: the entry goes stale — warning by default…
    (tmp_path / "src" / "repro" / "interop" / "fixture.py").write_text(
        "def ok():\n    return 1\n"
    )
    assert main([str(src), "--baseline", str(baseline_path)]) == 0
    assert "stale baseline entry" in capsys.readouterr().err

    # 4. …and a failure in CI mode.
    assert main([str(src), "--baseline", str(baseline_path), "--fail-stale"]) == 1


def test_cli_unfilled_rationale_placeholder_is_rejected(tmp_path):
    src = write_dirty_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    assert main([str(src), "--write-baseline", str(baseline_path)]) == 0
    # The placeholder rationale loads fine (it is non-empty) but marks
    # unfinished work; spot-check it is present so authors notice.
    document = json.loads(baseline_path.read_text())
    assert document["entries"][0]["rationale"].startswith("TODO")


def test_cli_rules_filter(tmp_path, capsys):
    src = write_dirty_tree(tmp_path)
    # Only lock rules requested: the REP401 finding is not reported.
    assert main([str(src), "--rules", "REP101,REP102"]) == 0
    capsys.readouterr()
    # Unknown rule ids are a usage error.
    assert main([str(src), "--rules", "REP999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("REP101", "REP102", "REP201", "REP301", "REP401", "REP501"):
        assert rule in out


def test_cli_missing_tree_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nowhere")]) == 2
    assert "no python files" in capsys.readouterr().err


def test_cli_parse_error_is_reported_not_fatal(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "interop"
    pkg.mkdir(parents=True)
    (pkg / "broken.py").write_text("def broken(:\n")
    (pkg / "fixture.py").write_text(DIRTY_MODULE)
    assert main([str(tmp_path / "src")]) == 1
    captured = capsys.readouterr()
    assert "parse error" in captured.err
    assert "REP401" in captured.out
