"""Strict Prometheus text-exposition (0.0.4) parser for tests.

:func:`parse_exposition` re-parses what :meth:`repro.ops.MetricsRegistry.render`
produced and enforces the exposition line grammar harder than a real
scraper would: every family must carry a ``# HELP`` then ``# TYPE`` pair
immediately before its contiguous sample block, label values must
round-trip the ``\\\\`` / ``\\"`` / ``\\n`` escapes, histograms must emit
monotonically non-decreasing cumulative buckets ending in ``+Inf`` whose
count equals ``_count``, and the payload must end with a newline. Any
violation raises :class:`ValueError` carrying the 1-based line number —
so a conformance failure points at the exact offending line of the
scrape.

This module deliberately lives in :mod:`repro.testing` (not
:mod:`repro.ops`): it is the *adversarial reader* for the ops plane's
writer, and keeping them apart means a rendering bug cannot hide inside
a shared helper.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Sample-name suffixes a histogram family may (and must) emit.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")

_KNOWN_KINDS = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


@dataclass(frozen=True)
class ParsedSample:
    """One sample line: ``name{labels} value``."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


@dataclass
class ParsedFamily:
    """One ``# HELP``/``# TYPE``-headed family and its sample block."""

    name: str
    kind: str
    help: str
    samples: list[ParsedSample] = field(default_factory=list)

    def series_labels(self) -> set[tuple[tuple[str, str], ...]]:
        """Distinct label sets, with histogram ``le`` stripped."""
        out = set()
        for sample in self.samples:
            out.add(tuple(p for p in sample.labels if p[0] != "le"))
        return out


class _LineError(ValueError):
    pass


def _err(line_no: int, message: str) -> ValueError:
    return ValueError(f"exposition line {line_no}: {message}")


def _parse_value(text: str, line_no: int) -> float:
    text = text.strip()
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise _err(line_no, f"unparseable sample value {text!r}")


def _unescape_label_value(raw: str, line_no: int) -> str:
    out: list[str] = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char == "\\":
            if index + 1 >= len(raw):
                raise _err(line_no, "dangling backslash in label value")
            escape = raw[index + 1]
            if escape == "\\":
                out.append("\\")
            elif escape == '"':
                out.append('"')
            elif escape == "n":
                out.append("\n")
            else:
                raise _err(line_no, f"unknown label escape \\{escape}")
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _parse_labels(raw: str, line_no: int) -> tuple[tuple[str, str], ...]:
    """Parse the inside of ``{...}`` respecting quoted/escaped values."""
    pairs: list[tuple[str, str]] = []
    seen: set[str] = set()
    index = 0
    length = len(raw)
    while index < length:
        # label name
        eq = raw.find("=", index)
        if eq < 0:
            raise _err(line_no, f"label pair missing '=': {raw[index:]!r}")
        name = raw[index:eq].strip()
        if not _LABEL_NAME_RE.match(name):
            raise _err(line_no, f"invalid label name {name!r}")
        if name in seen:
            raise _err(line_no, f"duplicate label name {name!r}")
        seen.add(name)
        # opening quote
        index = eq + 1
        if index >= length or raw[index] != '"':
            raise _err(line_no, f"label {name!r} value is not quoted")
        index += 1
        start = index
        while index < length:
            if raw[index] == "\\":
                index += 2
                continue
            if raw[index] == '"':
                break
            index += 1
        if index >= length:
            raise _err(line_no, f"label {name!r} value is unterminated")
        pairs.append((name, _unescape_label_value(raw[start:index], line_no)))
        index += 1  # past closing quote
        if index < length:
            if raw[index] != ",":
                raise _err(
                    line_no, f"expected ',' between labels, got {raw[index]!r}"
                )
            index += 1
    return tuple(pairs)


def _parse_sample_line(line: str, line_no: int) -> ParsedSample:
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            raise _err(line_no, "unbalanced '{' in sample line")
        name = line[:brace]
        labels = _parse_labels(line[brace + 1 : close], line_no)
        value_text = line[close + 1 :]
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise _err(line_no, f"sample line has no value: {line!r}")
        name, value_text = parts
        labels = ()
    name = name.strip()
    if not _NAME_RE.match(name):
        raise _err(line_no, f"invalid sample name {name!r}")
    return ParsedSample(
        name=name, labels=labels, value=_parse_value(value_text, line_no)
    )


def _base_family_name(sample_name: str, kind: str) -> str:
    if kind == "histogram":
        for suffix in _HISTOGRAM_SUFFIXES:
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    return sample_name


def _check_histogram(family: ParsedFamily, line_no: int) -> None:
    """Per-series: buckets are cumulative, end at +Inf, and match _count."""
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    sums: dict[tuple, float] = {}
    counts: dict[tuple, float] = {}
    for sample in family.samples:
        series = tuple(p for p in sample.labels if p[0] != "le")
        if sample.name == family.name + "_bucket":
            le = sample.label_dict().get("le")
            if le is None:
                raise _err(
                    line_no, f"{sample.name} sample is missing its 'le' label"
                )
            bound = math.inf if le == "+Inf" else float(le)
            buckets.setdefault(series, []).append((bound, sample.value))
        elif sample.name == family.name + "_sum":
            sums[series] = sample.value
        elif sample.name == family.name + "_count":
            counts[series] = sample.value
    if not buckets:
        raise _err(line_no, f"histogram {family.name} has no _bucket samples")
    for series, series_buckets in buckets.items():
        label_text = dict(series) or "{}"
        if series not in counts:
            raise _err(
                line_no, f"histogram {family.name}{label_text} has no _count"
            )
        if series not in sums:
            raise _err(
                line_no, f"histogram {family.name}{label_text} has no _sum"
            )
        bounds = [bound for bound, _ in series_buckets]
        if bounds != sorted(bounds):
            raise _err(
                line_no,
                f"histogram {family.name}{label_text} buckets are not in "
                f"ascending 'le' order",
            )
        if not math.isinf(bounds[-1]):
            raise _err(
                line_no,
                f"histogram {family.name}{label_text} has no '+Inf' bucket",
            )
        cumulative = [value for _, value in series_buckets]
        for previous, current in zip(cumulative, cumulative[1:]):
            if current < previous:
                raise _err(
                    line_no,
                    f"histogram {family.name}{label_text} buckets are not "
                    f"cumulative ({current} < {previous})",
                )
        if cumulative[-1] != counts[series]:
            raise _err(
                line_no,
                f"histogram {family.name}{label_text} '+Inf' bucket "
                f"({cumulative[-1]}) does not equal _count ({counts[series]})",
            )


def parse_exposition(text: str) -> dict[str, ParsedFamily]:
    """Parse and validate one exposition payload; returns families by name.

    Raises :class:`ValueError` (message prefixed with the 1-based line
    number) on any grammar or semantic violation.
    """
    if not text:
        raise ValueError("exposition payload is empty")
    if not text.endswith("\n"):
        raise ValueError("exposition payload does not end with a newline")
    families: dict[str, ParsedFamily] = {}
    pending_help: tuple[str, str, int] | None = None  # (name, help, line)
    current: ParsedFamily | None = None
    current_start = 0
    for line_no, line in enumerate(text.split("\n")[:-1], start=1):
        if not line.strip():
            raise _err(line_no, "blank line inside the exposition payload")
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            parts = rest.split(" ", 1)
            name = parts[0]
            if not _NAME_RE.match(name):
                raise _err(line_no, f"invalid family name {name!r} in HELP")
            if current is not None:
                _finish_family(families, current, current_start)
                current = None
            if name in families:
                raise _err(line_no, f"family {name!r} declared twice")
            pending_help = (name, parts[1] if len(parts) > 1 else "", line_no)
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            parts = rest.split(" ", 1)
            if len(parts) != 2:
                raise _err(line_no, "TYPE line missing a metric kind")
            name, kind = parts[0], parts[1].strip()
            if kind not in _KNOWN_KINDS:
                raise _err(line_no, f"unknown metric kind {kind!r}")
            if pending_help is None or pending_help[0] != name:
                raise _err(
                    line_no,
                    f"TYPE for {name!r} is not immediately preceded by its "
                    f"HELP line",
                )
            current = ParsedFamily(name=name, kind=kind, help=pending_help[1])
            current_start = line_no
            pending_help = None
            continue
        if line.startswith("#"):
            raise _err(line_no, f"unexpected comment line {line!r}")
        if pending_help is not None:
            raise _err(
                line_no,
                f"HELP for {pending_help[0]!r} is not followed by its TYPE "
                f"line",
            )
        if current is None:
            raise _err(line_no, f"sample before any HELP/TYPE header: {line!r}")
        sample = _parse_sample_line(line, line_no)
        if _base_family_name(sample.name, current.kind) != current.name:
            raise _err(
                line_no,
                f"sample {sample.name!r} does not belong to family "
                f"{current.name!r} (samples must be contiguous under their "
                f"header)",
            )
        current.samples.append(sample)
    if pending_help is not None:
        raise _err(pending_help[2], f"HELP for {pending_help[0]!r} has no TYPE")
    if current is not None:
        _finish_family(families, current, current_start)
    if not families:
        raise ValueError("exposition payload declares no metric families")
    return families


def _finish_family(
    families: dict[str, ParsedFamily], family: ParsedFamily, start_line: int
) -> None:
    if not family.samples:
        raise _err(start_line, f"family {family.name!r} has no samples")
    if family.kind == "histogram":
        _check_histogram(family, start_line)
    else:
        seen: set[tuple] = set()
        for sample in family.samples:
            if sample.name != family.name:
                raise _err(
                    start_line,
                    f"sample {sample.name!r} inside non-histogram family "
                    f"{family.name!r}",
                )
            if sample.labels in seen:
                raise _err(
                    start_line,
                    f"duplicate series {dict(sample.labels)!r} in family "
                    f"{family.name!r}",
                )
            seen.add(sample.labels)
    families[family.name] = family
