"""Deterministic fault injection at the relay-envelope layer.

The protocol's central claim is that the relay is *untrusted*: any party
in the communication path may drop, delay, duplicate, reorder, or tamper
with messages, and the protocol still preserves integrity — only
attestation proofs are believed — while redundant relays preserve
availability (§4–§5). This module turns that adversary model into a
*schedule*: a :class:`FaultPlan` is a seeded, deterministic description
of which faults hit which requests, and a :class:`ChaosEndpoint` is a
relay-endpoint wrapper that executes the plan.

Everything derives from one integer seed: the same seed, the same plan,
and the same request sequence produce byte-identical injections, so any
failing adversarial scenario is reproducible by quoting its seed. The
query-only attack wrappers in :mod:`repro.testing.adversary` are the
hand-rolled ancestors of this machinery; the chaos endpoint generalizes
them across every envelope kind (queries, batches, transactions, event
subscribe/publish, asset commands).

Fault vocabulary:

====================  =========================================================
``drop``              the request is censored: never forwarded, the caller
                      sees a transport failure
``delay``             the request is served after a simulated latency (the
                      shared clock advances when it supports it)
``duplicate``         the request is delivered to the inner endpoint twice
                      (network-level duplication of a message in flight)
``reorder``           the reply is delivered mis-correlated — the caller
                      receives a response belonging to an earlier request
                      (out-of-order delivery on the reply path)
``tamper-payload``    one byte of the payload is flipped (reply payload by
                      default; request payload with ``direction="request"``,
                      which for event publishes corrupts the notification
                      *content* while keeping the framing valid)
``tamper-proof``      the attestation proof inside a query/transact reply is
                      corrupted (signature + sealed metadata), the §5
                      integrity experiment
``partition``         the endpoint is unreachable for ``duration``
                      consecutive requests, then heals
``crash-restart``     the endpoint executes the request (side effects land!)
                      but crashes before replying, then restarts healthy —
                      the classic duplicated-side-effect hazard
====================  =========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import RelayUnavailableError
from repro.proto.messages import (
    MSG_KIND_EVENT_PUBLISH,
    MSG_KIND_QUERY_RESPONSE,
    MSG_KIND_TRANSACT_RESPONSE,
    EventNotificationMsg,
    QueryResponse,
    RelayEnvelope,
)

FAULT_DROP = "drop"
FAULT_DELAY = "delay"
FAULT_DUPLICATE = "duplicate"
FAULT_REORDER = "reorder"
FAULT_TAMPER_PAYLOAD = "tamper-payload"
FAULT_TAMPER_PROOF = "tamper-proof"
FAULT_PARTITION = "partition"
FAULT_CRASH_RESTART = "crash-restart"

#: Every fault kind the chaos endpoint can inject, in canonical order.
ALL_FAULT_KINDS = (
    FAULT_DROP,
    FAULT_DELAY,
    FAULT_DUPLICATE,
    FAULT_REORDER,
    FAULT_TAMPER_PAYLOAD,
    FAULT_TAMPER_PROOF,
    FAULT_PARTITION,
    FAULT_CRASH_RESTART,
)

#: Fault kinds that surface as transport failures (never as wrong data).
TRANSPORT_FAULT_KINDS = frozenset(
    {FAULT_DROP, FAULT_PARTITION, FAULT_CRASH_RESTART, FAULT_REORDER}
)

#: Fault kinds that mutate message content (the integrity experiments).
TAMPER_FAULT_KINDS = frozenset({FAULT_TAMPER_PAYLOAD, FAULT_TAMPER_PROOF})


def flip_byte(data: bytes, rng: random.Random) -> bytes:
    """Corrupt one byte of ``data`` (keeping length, so framing survives)."""
    if not data:
        return data
    position = rng.randrange(len(data))
    corrupted = bytearray(data)
    corrupted[position] ^= 0x41
    return bytes(corrupted)


@dataclass(frozen=True)
class FaultSpec:
    """One rule of a fault plan: *what* to inject and *when* it applies.

    A request matches the spec when its zero-based index falls in
    ``[first, last]``, its envelope kind is in ``only_kinds`` (``None`` =
    any), fewer than ``max_injections`` have fired, and a seeded coin at
    ``rate`` comes up heads. ``duration`` sizes partition outages;
    ``delay_seconds`` sizes delays; ``direction`` picks which leg a
    tamper fault corrupts (``"reply"`` or ``"request"``).
    """

    kind: str
    rate: float = 1.0
    first: int = 0
    last: int | None = None
    max_injections: int | None = None
    only_kinds: frozenset[int] | None = None
    duration: int = 2
    delay_seconds: float = 0.05
    direction: str = "reply"

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.direction not in ("reply", "request"):
            raise ValueError(f"unknown tamper direction {self.direction!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} is not a probability")
        if self.duration < 1:
            raise ValueError("duration must be at least one request")


class FaultPlan:
    """A seeded, deterministic injection schedule.

    One integer ``seed`` drives every random decision (rate coins, byte
    positions, attestation victim selection), so replaying the same plan
    against the same request sequence reproduces the run exactly.
    :meth:`fork` hands out an independent same-seed copy — use one fork
    per chaos endpoint so parallel endpoints each stay deterministic.
    """

    def __init__(
        self, seed: int, specs: Sequence[FaultSpec], name: str = ""
    ) -> None:
        self.seed = int(seed)
        self.specs = tuple(specs)
        self.name = name or "+".join(spec.kind for spec in self.specs)
        self.rng = random.Random(self.seed)
        self._injections: dict[int, int] = {}

    @classmethod
    def single(cls, kind: str, seed: int, **spec_kwargs) -> "FaultPlan":
        """A plan with one rule, named after its fault kind."""
        return cls(seed, [FaultSpec(kind=kind, **spec_kwargs)], name=kind)

    def fork(self) -> "FaultPlan":
        """A fresh, independently-consumable copy with the same schedule."""
        return FaultPlan(self.seed, self.specs, self.name)

    def describe(self) -> str:
        return f"plan {self.name!r} (seed={self.seed})"

    def injections_of(self, spec: FaultSpec) -> int:
        try:
            return self._injections.get(self.specs.index(spec), 0)
        except ValueError:
            return 0

    def decide(self, index: int, envelope_kind: int) -> FaultSpec | None:
        """The fault (if any) to inject on request ``index``.

        First matching rule wins; a rule's match consumes one of its
        ``max_injections``. Deterministic given the same call sequence.
        """
        for position, spec in enumerate(self.specs):
            if index < spec.first:
                continue
            if spec.last is not None and index > spec.last:
                continue
            if spec.only_kinds is not None and envelope_kind not in spec.only_kinds:
                continue
            if (
                spec.max_injections is not None
                and self._injections.get(position, 0) >= spec.max_injections
            ):
                continue
            if spec.rate < 1.0 and self.rng.random() >= spec.rate:
                continue
            self._injections[position] = self._injections.get(position, 0) + 1
            return spec
        return None


@dataclass(frozen=True)
class InjectionRecord:
    """One executed injection, for assertions and failure forensics."""

    index: int
    fault: str
    envelope_kind: int
    request_id: str


class ChaosEndpoint:
    """A relay endpoint wrapper executing a :class:`FaultPlan`.

    Sits in the communication path exactly like the paper's malicious
    relay: it sees serialized envelopes only, and everything it can do —
    drop, delay, duplicate, reorder, corrupt — is below the protocol's
    protection boundary, so a conforming deployment must survive it.
    ``injected`` counts per-fault injections and ``log`` records each one
    with the request index and peeked ``request_id``.
    """

    def __init__(self, inner, plan: FaultPlan, clock=None) -> None:
        self._inner = inner
        self.plan = plan
        self._clock = clock
        self._index = 0
        self._down_for = 0
        self._last_request_id = ""
        self.requests_seen = 0
        self.injected: dict[str, int] = {}
        self.log: list[InjectionRecord] = []

    # -- bookkeeping --------------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _record(self, index: int, fault: str, kind: int, request_id: str) -> None:
        self.injected[fault] = self.injected.get(fault, 0) + 1
        self.log.append(
            InjectionRecord(
                index=index, fault=fault, envelope_kind=kind, request_id=request_id
            )
        )

    # -- the endpoint surface -----------------------------------------------------

    def handle_request(self, data: bytes) -> bytes:
        index = self._index
        self._index += 1
        self.requests_seen += 1
        try:
            envelope = RelayEnvelope.decode(data)
        except Exception:
            envelope = None
        kind = envelope.kind if envelope is not None else 0
        request_id = envelope.request_id if envelope is not None else ""
        previous_request_id = self._last_request_id
        self._last_request_id = request_id

        if self._down_for > 0:
            # An open partition window swallows everything, plan or not.
            self._down_for -= 1
            self._record(index, FAULT_PARTITION, kind, request_id)
            raise RelayUnavailableError(
                f"chaos endpoint partitioned (request {index}, "
                f"{self.plan.describe()})"
            )

        spec = self.plan.decide(index, kind)
        if spec is None:
            return self._inner.handle_request(data)
        self._record(index, spec.kind, kind, request_id)

        if spec.kind == FAULT_DROP:
            raise RelayUnavailableError(
                f"chaos endpoint dropped request {index} ({self.plan.describe()})"
            )
        if spec.kind == FAULT_PARTITION:
            self._down_for = spec.duration - 1
            raise RelayUnavailableError(
                f"chaos endpoint partitioned (request {index}, "
                f"{self.plan.describe()})"
            )
        if spec.kind == FAULT_DELAY:
            if self._clock is not None and hasattr(self._clock, "advance"):
                self._clock.advance(spec.delay_seconds)
            return self._inner.handle_request(data)
        if spec.kind == FAULT_DUPLICATE:
            self._inner.handle_request(data)
            return self._inner.handle_request(data)
        if spec.kind == FAULT_CRASH_RESTART:
            # The request executes — side effects land on the source
            # network — but the reply is lost with the crash.
            self._inner.handle_request(data)
            raise RelayUnavailableError(
                f"chaos endpoint crashed before replying (request {index}, "
                f"{self.plan.describe()})"
            )
        if spec.kind == FAULT_REORDER:
            reply = self._inner.handle_request(data)
            return self._miscorrelate(reply, previous_request_id, index)
        if spec.kind == FAULT_TAMPER_PAYLOAD:
            if spec.direction == "request":
                return self._inner.handle_request(self._tamper_request(data))
            return self._tamper_payload(self._inner.handle_request(data))
        if spec.kind == FAULT_TAMPER_PROOF:
            return self._tamper_proof(self._inner.handle_request(data))
        raise AssertionError(f"unhandled fault kind {spec.kind!r}")

    # -- fault mechanics ----------------------------------------------------------

    def _miscorrelate(
        self, reply: bytes, previous_request_id: str, index: int
    ) -> bytes:
        """Deliver the reply as if it answered an *earlier* request."""
        try:
            envelope = RelayEnvelope.decode(reply)
        except Exception:
            return reply
        envelope.request_id = previous_request_id or f"chaos-stale-{index}"
        return envelope.encode()

    def _tamper_payload(self, reply: bytes) -> bytes:
        try:
            envelope = RelayEnvelope.decode(reply)
        except Exception:
            return flip_byte(reply, self.plan.rng)
        envelope.payload = flip_byte(envelope.payload, self.plan.rng)
        return envelope.encode()

    def _tamper_request(self, data: bytes) -> bytes:
        """Corrupt a request in flight, keeping the framing decodable.

        For event publishes the notification *content* is flipped (a
        forged hint with valid framing — the interesting integrity case:
        it reaches the subscriber and must die in verification); anything
        else gets a raw payload flip.
        """
        try:
            envelope = RelayEnvelope.decode(data)
        except Exception:
            return flip_byte(data, self.plan.rng)
        if envelope.kind == MSG_KIND_EVENT_PUBLISH:
            try:
                message = EventNotificationMsg.decode(envelope.payload)
                message.payload = flip_byte(message.payload, self.plan.rng)
                envelope.payload = message.encode()
                return envelope.encode()
            except Exception:
                pass
        envelope.payload = flip_byte(envelope.payload, self.plan.rng)
        return envelope.encode()

    def _tamper_proof(self, reply: bytes) -> bytes:
        """Corrupt the attestation proof inside a query/transact reply.

        Generalizes :class:`repro.testing.adversary.TamperingRelay` to the
        transaction kind; replies of other kinds pass through untouched
        (they carry no attestations to corrupt).
        """
        rng = self.plan.rng
        try:
            envelope = RelayEnvelope.decode(reply)
        except Exception:
            return reply
        if envelope.kind not in (MSG_KIND_QUERY_RESPONSE, MSG_KIND_TRANSACT_RESPONSE):
            return reply
        try:
            response = QueryResponse.decode(envelope.payload)
        except Exception:
            return reply
        if response.attestations:
            victim = response.attestations[rng.randrange(len(response.attestations))]
            if victim.metadata_cipher:
                victim.metadata_cipher = flip_byte(victim.metadata_cipher, rng)
            if victim.metadata_plain:
                victim.metadata_plain = flip_byte(victim.metadata_plain, rng)
            victim.signature = flip_byte(victim.signature, rng)
        elif response.result_cipher:
            response.result_cipher = flip_byte(response.result_cipher, rng)
        elif response.result_plain:
            response.result_plain = flip_byte(response.result_plain, rng)
        envelope.payload = response.encode()
        return envelope.encode()
