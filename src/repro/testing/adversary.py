"""Threat-model harness for the §5 security evaluation.

The paper argues its protocol provides Confidentiality, Integrity and
Availability (the CIA triad). This module implements the attacks those
claims are measured against:

- **Malicious relays** (the protocol's explicitly untrusted component):
  tampering with results or proofs, eavesdropping/exfiltration, dropping
  requests.
- **Byzantine source peers**: returning corrupted results with valid
  signatures.
- **Replay**: re-submitting a previously-valid proof (§4.3's nonce
  mitigation).
- **DoS flooding** of a relay (§5's availability discussion: "not immune
  to DoS ... mitigated by adding redundant relays" and relay-level
  protection).

Every attack is an endpoint/peer *wrapper*, so the same scenario runs with
and without an adversary in place. All randomized attacks thread an
explicit :class:`random.Random` seeded generator, so every adversarial run
is reproducible from its seed — the generalized, schedule-driven form of
these wrappers lives in :mod:`repro.testing.faults`.

This module is the canonical home of the harness; the old import path
``repro.interop.adversary`` remains as a deprecation shim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.certs import Certificate
from repro.errors import ProofError, RelayUnavailableError
from repro.fabric.network import FabricNetwork
from repro.fabric.peer import Peer, Proposal, ProposalResponse
from repro.interop.discovery import RelayEndpoint
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import (
    AttestationProofScheme,
    ProofBundle,
    decrypt_attestation,
)
from repro.proto.messages import (
    MSG_KIND_QUERY_RESPONSE,
    QueryResponse,
    RelayEnvelope,
)

# One corruption primitive for the whole testing package (this module's
# legacy name for :func:`repro.testing.faults.flip_byte`).
from repro.testing.faults import flip_byte as flip_bytes

TAMPER_RESULT = "result"
TAMPER_PROOF = "proof"
TAMPER_BOTH = "both"

__all__ = [
    "TAMPER_RESULT",
    "TAMPER_PROOF",
    "TAMPER_BOTH",
    "TamperingRelay",
    "DroppingRelay",
    "CapturedExchange",
    "EavesdroppingRelay",
    "ByzantinePeerProxy",
    "corrupt_network_peer",
    "restore_network_peer",
    "FloodReport",
    "flood_relay",
    "flip_bytes",
]




class TamperingRelay:
    """A malicious source relay that alters responses in flight.

    It operates below the protocol's protection boundary: it can decode the
    envelope and the response structure (those are not secret) but results
    and proof metadata are encrypted/signed end-to-end, so its mutations
    are detectable — this is the integrity experiment.
    """

    def __init__(self, inner: RelayEndpoint, mode: str = TAMPER_RESULT, seed: int = 13) -> None:
        if mode not in (TAMPER_RESULT, TAMPER_PROOF, TAMPER_BOTH):
            raise ValueError(f"unknown tamper mode {mode!r}")
        self._inner = inner
        self._mode = mode
        self._rng = random.Random(seed)
        self.tampered_responses = 0

    def handle_request(self, data: bytes) -> bytes:
        reply_bytes = self._inner.handle_request(data)
        envelope = RelayEnvelope.decode(reply_bytes)
        if envelope.kind != MSG_KIND_QUERY_RESPONSE:
            return reply_bytes
        response = QueryResponse.decode(envelope.payload)
        if self._mode in (TAMPER_RESULT, TAMPER_BOTH):
            if response.result_cipher:
                response.result_cipher = flip_bytes(response.result_cipher, self._rng)
            if response.result_plain:
                response.result_plain = flip_bytes(response.result_plain, self._rng)
        if self._mode in (TAMPER_PROOF, TAMPER_BOTH) and response.attestations:
            victim = response.attestations[self._rng.randrange(len(response.attestations))]
            if victim.metadata_cipher:
                victim.metadata_cipher = flip_bytes(victim.metadata_cipher, self._rng)
            if victim.metadata_plain:
                victim.metadata_plain = flip_bytes(victim.metadata_plain, self._rng)
            victim.signature = flip_bytes(victim.signature, self._rng)
        self.tampered_responses += 1
        envelope.payload = response.encode()
        return envelope.encode()


class DroppingRelay:
    """A relay that censors traffic (availability attack)."""

    def __init__(self, inner: RelayEndpoint | None = None) -> None:
        self._inner = inner
        self.dropped = 0

    def handle_request(self, data: bytes) -> bytes:
        self.dropped += 1
        raise RelayUnavailableError("relay silently dropped the request")


@dataclass
class CapturedExchange:
    """One request/response pair observed by an eavesdropping relay."""

    request: bytes
    response: bytes


class EavesdroppingRelay:
    """A passive malicious relay: records everything it forwards.

    Used for the confidentiality experiment: can the relay read the data,
    and can it *exfiltrate a verifiable proof* to a third party (§4.3)?
    """

    def __init__(self, inner: RelayEndpoint) -> None:
        self._inner = inner
        self.captured: list[CapturedExchange] = []

    def handle_request(self, data: bytes) -> bytes:
        reply = self._inner.handle_request(data)
        self.captured.append(CapturedExchange(request=data, response=reply))
        return reply

    def plaintext_visible(self, needle: bytes) -> bool:
        """Did ``needle`` (the secret document) appear in any captured bytes?

        Checks the raw form and its hex encoding — a relay that can read
        hex-encoded plaintext has read the plaintext.
        """
        forms = (needle, needle.hex().encode("ascii"))
        for exchange in self.captured:
            for form in forms:
                if form in exchange.request or form in exchange.response:
                    return True
        return False

    def exfiltrated_proof_validates(
        self,
        org_roots: dict[str, Certificate],
        policy_expression: str,
    ) -> bool:
        """Attempt the §4.3 exfiltration: validate a captured proof *without*
        the requesting client's decryption key.

        Returns True if any captured proof validates (the attack succeeded —
        expected only when confidentiality is disabled).
        """
        scheme = AttestationProofScheme()
        policy = parse_verification_policy(policy_expression)
        for exchange in self.captured:
            try:
                envelope = RelayEnvelope.decode(exchange.response)
                if envelope.kind != MSG_KIND_QUERY_RESPONSE:
                    continue
                response = QueryResponse.decode(envelope.payload)
                attestations = tuple(
                    decrypt_attestation(attestation, client_key=None)
                    for attestation in response.attestations
                )
                if not attestations:
                    continue
                bundle = ProofBundle(attestations=attestations)
                metadata = attestations[0].metadata()
                address_msg = metadata.address
                from repro.proto.address import CrossNetworkAddress
                from repro.interop.proofs import envelope_plaintext_hash

                address = CrossNetworkAddress(
                    network=address_msg.network,
                    ledger=address_msg.ledger,
                    contract=address_msg.contract,
                    function=address_msg.function,
                )
                scheme.validate_bundle(
                    bundle,
                    expected_network=metadata.network,
                    expected_address=address,
                    expected_args=list(metadata.args),
                    expected_nonce=metadata.nonce,
                    expected_data_hash=envelope_plaintext_hash(metadata.result),
                    policy=policy,
                    org_roots=org_roots,
                )
                return True
            except (ProofError, Exception):
                continue
        return False


class ByzantinePeerProxy:
    """A source peer that executes honestly but *signs a forged result*.

    Models an insider attack: the peer's signature is cryptographically
    valid, so detection relies on the verification policy requiring
    attestations from organizations the attacker does not control.
    """

    def __init__(self, inner: Peer, forged_payload: bytes) -> None:
        self._inner = inner
        self._forged_payload = forged_payload
        self.forgeries = 0

    # The driver only touches these members.
    @property
    def peer_id(self) -> str:
        return self._inner.peer_id

    @property
    def org(self) -> str:
        return self._inner.org

    @property
    def identity(self):
        return self._inner.identity

    def has_chaincode(self, name: str) -> bool:
        return self._inner.has_chaincode(name)

    def endorse(self, proposal: Proposal, plugin: str | None = None) -> ProposalResponse:
        from repro.interop.proofs import seal_result
        from repro.crypto.keys import PublicKey
        from repro.utils.encoding import from_canonical_json

        response = self._inner.endorse(proposal, plugin=None)
        if plugin is None or not response.success:
            return response
        # Re-run the interop plugin path over a forged sealed result.
        context_raw = proposal.transient.get("interop")
        assert context_raw is not None
        context = from_canonical_json(context_raw)
        confidential = bool(context["confidential"])
        client_key = (
            PublicKey.from_bytes(bytes.fromhex(context["client_pubkey"]))
            if confidential
            else None
        )
        forged_envelope = seal_result(self._forged_payload, client_key, confidential)
        plugin_fn = self._inner._endorsement_plugins[plugin]
        forged_attestation = plugin_fn(
            self._inner, proposal, forged_envelope, response.rwset
        )
        self.forgeries += 1
        from repro.fabric.ledger import Endorsement

        response.result = forged_envelope
        response.endorsement = Endorsement(
            peer_id=self.peer_id,
            org=self.org,
            role="peer",
            certificate=self._inner.identity.certificate.to_bytes(),
            signature=forged_attestation,
        )
        return response


def corrupt_network_peer(
    network: FabricNetwork, peer_id: str, forged_payload: bytes
) -> ByzantinePeerProxy:
    """Replace ``peer_id`` in the network with a byzantine proxy.

    Returns the proxy; call :func:`restore_network_peer` to undo.
    """
    for index, peer in enumerate(network.peers):
        if peer.peer_id == peer_id:
            proxy = ByzantinePeerProxy(peer, forged_payload)
            network.peers[index] = proxy  # type: ignore[assignment]
            return proxy
    raise KeyError(f"network {network.name!r} has no peer {peer_id!r}")


def restore_network_peer(network: FabricNetwork, proxy: ByzantinePeerProxy) -> None:
    for index, peer in enumerate(network.peers):
        if peer is proxy:
            network.peers[index] = proxy._inner
            return


@dataclass
class FloodReport:
    """Outcome of a DoS flood against a relay endpoint."""

    requests_sent: int = 0
    shed_by_rate_limit: int = 0
    served: int = 0
    transport_failures: int = 0
    leftover: list[str] = field(default_factory=list)


def flood_relay(endpoint: RelayEndpoint, request_bytes: bytes, count: int) -> FloodReport:
    """Send ``count`` copies of a request at a relay as fast as possible."""
    report = FloodReport()
    for _ in range(count):
        report.requests_sent += 1
        try:
            reply = endpoint.handle_request(request_bytes)
        except RelayUnavailableError:
            report.transport_failures += 1
            continue
        envelope = RelayEnvelope.decode(reply)
        if envelope.kind == MSG_KIND_QUERY_RESPONSE:
            report.served += 1
        elif b"rate limit" in envelope.payload:
            report.shed_by_rate_limit += 1
        else:
            report.leftover.append(envelope.payload.decode("utf-8", "replace"))
    return report
