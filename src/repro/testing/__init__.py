"""Deterministic adversarial testing: fault injection + driver conformance.

The §5 security evaluation needs two things the production packages do
not provide: *adversaries* (malicious relays, byzantine peers — in
:mod:`repro.testing.adversary`) and *reproducible chaos* (seeded fault
schedules over the whole envelope protocol — in
:mod:`repro.testing.faults`), plus a way to assert that every network
driver upholds the protocol invariants under both
(:mod:`repro.testing.conformance`).

Everything here is deterministic from one integer seed; a failing
scenario prints that seed so the exact adversarial run replays anywhere.
"""

from repro.testing.adversary import (
    TAMPER_BOTH,
    TAMPER_PROOF,
    TAMPER_RESULT,
    ByzantinePeerProxy,
    CapturedExchange,
    DroppingRelay,
    EavesdroppingRelay,
    FloodReport,
    TamperingRelay,
    corrupt_network_peer,
    flip_bytes,
    flood_relay,
    restore_network_peer,
)
from repro.testing.conformance import (
    ALL_VERBS,
    OUTCOME_DEGRADED,
    OUTCOME_FAIL_CLOSED,
    OUTCOME_SERVED,
    VERB_ASSETS,
    VERB_BATCH,
    VERB_QUERY,
    VERB_SUBSCRIBE,
    VERB_TRANSACT,
    ConformanceError,
    ConformanceReport,
    ConformanceTarget,
    DriverConformanceSuite,
    ScenarioOutcome,
    chaos_topology,
    default_fault_plans,
    restart_relay,
)
from repro.testing.prometheus import (
    ParsedFamily,
    ParsedSample,
    parse_exposition,
)
from repro.testing.faults import (
    ALL_FAULT_KINDS,
    FAULT_CRASH_RESTART,
    FAULT_DELAY,
    FAULT_DROP,
    FAULT_DUPLICATE,
    FAULT_PARTITION,
    FAULT_REORDER,
    FAULT_TAMPER_PAYLOAD,
    FAULT_TAMPER_PROOF,
    TAMPER_FAULT_KINDS,
    TRANSPORT_FAULT_KINDS,
    ChaosEndpoint,
    FaultPlan,
    FaultSpec,
    InjectionRecord,
    flip_byte,
)

__all__ = [
    # prometheus (strict exposition reader for the ops plane)
    "parse_exposition",
    "ParsedFamily",
    "ParsedSample",
    # faults
    "FaultPlan",
    "FaultSpec",
    "ChaosEndpoint",
    "InjectionRecord",
    "flip_byte",
    "ALL_FAULT_KINDS",
    "TRANSPORT_FAULT_KINDS",
    "TAMPER_FAULT_KINDS",
    "FAULT_DROP",
    "FAULT_DELAY",
    "FAULT_DUPLICATE",
    "FAULT_REORDER",
    "FAULT_TAMPER_PAYLOAD",
    "FAULT_TAMPER_PROOF",
    "FAULT_PARTITION",
    "FAULT_CRASH_RESTART",
    # conformance
    "ConformanceTarget",
    "DriverConformanceSuite",
    "ConformanceReport",
    "ConformanceError",
    "ScenarioOutcome",
    "chaos_topology",
    "default_fault_plans",
    "restart_relay",
    "ALL_VERBS",
    "VERB_QUERY",
    "VERB_BATCH",
    "VERB_TRANSACT",
    "VERB_SUBSCRIBE",
    "VERB_ASSETS",
    "OUTCOME_SERVED",
    "OUTCOME_DEGRADED",
    "OUTCOME_FAIL_CLOSED",
    # adversary (legacy wrappers, canonical home)
    "TamperingRelay",
    "DroppingRelay",
    "EavesdroppingRelay",
    "CapturedExchange",
    "ByzantinePeerProxy",
    "corrupt_network_peer",
    "restore_network_peer",
    "FloodReport",
    "flood_relay",
    "flip_bytes",
    "TAMPER_RESULT",
    "TAMPER_PROOF",
    "TAMPER_BOTH",
]
