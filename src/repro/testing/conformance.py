"""Cross-driver conformance: every gateway verb, under every fault plan.

The paper claims its protocol survives an untrusted relay (§4–§5) and
generalizes across heterogeneous platforms (§5) — but a claim that is
only ever exercised on one platform and one verb is folklore, not
conformance. :class:`DriverConformanceSuite` makes the claim testable for
*any* :class:`~repro.interop.drivers.base.NetworkDriver`: it drives the
full gateway verb surface — query, batched query, transact, subscribe,
and HTLC asset commands — against one source network while a seeded
:class:`~repro.testing.faults.ChaosEndpoint` injects faults into the
communication path, and asserts the protocol invariants:

- **verified or typed-failure** — a verb either completes with data that
  passes proof verification, or raises a typed protocol error; wrong data
  is never silently accepted;
- **exactly-once side effects** — transactions, asset commands, and event
  deliveries do not double-execute under duplication, reordering, or
  crash-restart of the reply path (the relay's request-id idempotency);
- **failover engages** — with a redundant endpoint present, transport
  faults are survived by failing over, not by erroring out;
- **bounded retries** — a failing endpoint is tried at most once per
  round, never spun on;
- **fail-closed capabilities** — a verb the driver does not support
  raises :class:`~repro.errors.UnsupportedCapabilityError` (typed, final)
  rather than half-executing.

Every scenario is reproducible from one integer seed; conformance
violations raise :class:`ConformanceError` with the seed, verb, and plan
in the message.

Quickstart against a custom driver::

    target = ConformanceTarget(
        platform="mynet", network_id="mynet",
        client=dest_client, registry=registry, relay=source_relay,
        policy="AND(org:a, org:b)",
        query_address="mynet/ledger/contract/Get", query_args=["DOC-1"],
        expected_query=lambda data: b"DOC-1" in data,
        ...  # transact/event/asset hooks for the capabilities you support
    )
    report = DriverConformanceSuite(target, seed=7).run()
    print(report.summary())
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import (
    ReproError,
    UnsupportedCapabilityError,
)
from repro.interop.client import InteropClient
from repro.interop.discovery import InMemoryRegistry
from repro.interop.relay import RelayService
from repro.interop.transactions import RemoteTransactionClient
from repro.ops.logging import capture_logs
from repro.ops.trace import activate, new_trace
from repro.proto.messages import (
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_ASSET_STATUS,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_TRANSACT_REQUEST,
    PROTOCOL_VERSION,
    STATUS_OK,
    AssetCommandMsg,
    AuthInfo,
    NetworkAddressMsg,
)
from repro.store import StateStore
from repro.testing.faults import (
    ALL_FAULT_KINDS,
    FAULT_CRASH_RESTART,
    FAULT_PARTITION,
    FAULT_TAMPER_PROOF,
    ChaosEndpoint,
    FaultPlan,
    FaultSpec,
    TAMPER_FAULT_KINDS,
    TRANSPORT_FAULT_KINDS,
)
from repro.utils.ids import random_id

VERB_QUERY = "query"
VERB_BATCH = "batch"
VERB_TRANSACT = "transact"
VERB_SUBSCRIBE = "subscribe"
VERB_ASSETS = "assets"

#: The full gateway verb surface the matrix exercises.
ALL_VERBS = (VERB_QUERY, VERB_BATCH, VERB_TRANSACT, VERB_SUBSCRIBE, VERB_ASSETS)

#: Scenario outcomes.
OUTCOME_SERVED = "served"  # verb completed with verified data
OUTCOME_DEGRADED = "degraded"  # typed failure, invariants intact
OUTCOME_FAIL_CLOSED = "fail-closed"  # unsupported capability, typed refusal


class ConformanceError(AssertionError):
    """A protocol invariant was violated; the message carries the seed."""

    def __init__(self, message: str, seed: int, verb: str, plan: str) -> None:
        super().__init__(
            f"[conformance seed={seed} verb={verb} plan={plan}] {message}"
        )
        self.seed = seed
        self.verb = verb
        self.plan = plan


@dataclass(frozen=True)
class ScenarioOutcome:
    """One (verb, plan) cell of the matrix."""

    verb: str
    plan: str
    seed: int
    outcome: str
    detail: str = ""
    injections: dict = field(default_factory=dict)


@dataclass
class ConformanceReport:
    """The matrix result for one target."""

    platform: str
    seed: int
    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    def count(self, outcome: str) -> int:
        return sum(1 for cell in self.outcomes if cell.outcome == outcome)

    def summary(self) -> str:
        lines = [
            f"conformance: {self.platform} seed={self.seed} "
            f"({self.count(OUTCOME_SERVED)} served, "
            f"{self.count(OUTCOME_DEGRADED)} degraded, "
            f"{self.count(OUTCOME_FAIL_CLOSED)} fail-closed)"
        ]
        for cell in self.outcomes:
            lines.append(
                f"  {cell.verb:<10} x {cell.plan:<16} -> {cell.outcome}"
                + (f" ({cell.detail})" if cell.detail else "")
            )
        return "\n".join(lines)


def default_fault_plans(seed: int) -> list[FaultPlan]:
    """One plan per fault kind, all derived from one seed.

    Eight distinct plans (≥ the six the matrix guarantees); tamper-proof
    is scoped to the kinds that carry attestations, partition opens one
    three-request outage, crash-restart fires once.
    """
    plans: list[FaultPlan] = []
    for offset, kind in enumerate(ALL_FAULT_KINDS):
        spec_kwargs: dict = {}
        if kind == FAULT_PARTITION:
            spec_kwargs = {"duration": 3, "max_injections": 1}
        elif kind == FAULT_CRASH_RESTART:
            spec_kwargs = {"max_injections": 1}
        elif kind == FAULT_TAMPER_PROOF:
            spec_kwargs = {
                "only_kinds": frozenset(
                    {MSG_KIND_QUERY_REQUEST, MSG_KIND_TRANSACT_REQUEST}
                )
            }
        plans.append(FaultPlan.single(kind, seed + offset, **spec_kwargs))
    return plans


@contextmanager
def chaos_topology(
    registry: InMemoryRegistry,
    network_ids: Sequence[str],
    plan: FaultPlan,
    clock=None,
    redundant: bool = True,
):
    """Interpose a chaos endpoint in front of each network's relay.

    Each network's first registered endpoint is wrapped with a fresh fork
    of ``plan``; with ``redundant`` the clean endpoint stays registered
    *behind* the chaotic one, modeling the paper's redundant-relay
    failover (same relay, second path — so request-id idempotency holds
    across the failover). Restores the original registrations on exit.
    Yields ``{network_id: ChaosEndpoint}``.
    """
    originals: dict[str, list] = {}
    wrappers: dict[str, ChaosEndpoint] = {}
    for network_id in network_ids:
        endpoints = registry.lookup(network_id)
        originals[network_id] = endpoints
        wrapper = ChaosEndpoint(endpoints[0], plan.fork(), clock=clock)
        wrappers[network_id] = wrapper
        for endpoint in endpoints:
            registry.unregister(network_id, endpoint)
        registry.register(network_id, wrapper)
        if redundant:
            registry.register(network_id, endpoints[0])
    try:
        yield wrappers
    finally:
        for network_id, endpoints in originals.items():
            for endpoint in list(registry.lookup(network_id)):
                registry.unregister(network_id, endpoint)
            for endpoint in endpoints:
                registry.register(network_id, endpoint)


def restart_relay(
    target: "ConformanceTarget",
    store: "StateStore | None" = None,
    recover: bool = True,
) -> RelayService:
    """Model an OS-level crash + restart of the target's *source* relay.

    The old :class:`RelayService` object is discarded wholesale (nothing
    in-memory survives, exactly like a killed process); a fresh one is
    built with the same identity, capacity, drivers, and interceptor
    chain — the things an application re-creates at boot — registered in
    the discovery registry in the old one's place, and installed as
    ``target.relay``.

    ``store`` selects what survives: ``None`` restarts with implicit
    empty state (the pre-durability behavior, still the MemoryStore
    default — kept expressible so the old fail-closed assertions stay
    tested), while passing the crashed relay's re-opened
    :class:`~repro.store.StateStore` restarts *with* durable state.
    ``recover`` additionally re-opens persisted event taps
    (:meth:`RelayService.recover`).
    """
    crashed = target.relay
    # The crash kills the process's live hub hooks: close the crashed
    # relay's event taps on the (surviving, shared) driver objects, or
    # their push closures would keep feeding subscribers from beyond the
    # grave and recovery would double-deliver.
    for record in list(crashed._served_subscriptions.values()):
        if record.tap is not None:
            try:
                record.driver.close_event_tap(record.tap)
            except Exception:  # noqa: BLE001 - a half-dead tap is already what the crash model wants
                pass
    restarted = RelayService(
        crashed.network_id,
        crashed._discovery,
        clock=crashed._clock,
        relay_id=crashed.relay_id,
        store=store,
        idempotency_capacity=crashed.idempotency_capacity,
    )
    # Drivers are process objects the app re-registers at boot; keep the
    # same instances (``#tx`` pseudo-network aliases included).
    for network_id, driver in crashed._drivers.items():
        restarted._drivers[network_id] = driver
    if crashed.interceptors:
        restarted.use(*crashed.interceptors)
    registry = target.registry
    for endpoint in list(registry.lookup(target.network_id)):
        if endpoint is crashed:
            registry.unregister(target.network_id, endpoint)
    registry.register(target.network_id, restarted)
    target.relay = restarted
    if recover:
        restarted.recover()
    return restarted


@dataclass
class ConformanceTarget:
    """Everything the suite needs to drive one source network.

    ``client`` is a destination-side :class:`InteropClient` whose relay
    reaches the source network through ``registry``; ``relay`` is the
    *source* network's relay (whose driver capabilities decide which
    verbs must conform and which must fail closed). The per-verb hooks
    parameterize platform differences: fresh transact arguments per
    scenario tag, a server-side commit counter, an event trigger, asset
    issuance, and a server-side lock reader (ledger truth for the
    exactly-once assertions).
    """

    platform: str
    network_id: str
    client: InteropClient
    registry: InMemoryRegistry
    relay: RelayService
    policy: str
    query_address: str
    query_args: list[str]
    expected_query: Callable[[bytes], bool]
    clock: object | None = None
    destination_network_id: str = ""
    # -- transact hooks
    transact_address: str | None = None
    transact_args: Callable[[str], list[str]] | None = None
    commit_count: Callable[[str], int] | None = None
    # -- event hooks
    event_address: str | None = None
    event_name: str | None = None
    trigger_event: Callable[[str], bytes] | None = None
    event_verifier: Callable[[], object] | None = None
    # -- asset hooks
    asset_contract_address: str | None = None
    issue_asset: Callable[[str, str], str] | None = None
    read_lock: Callable[[str], dict] | None = None
    counter_client: InteropClient | None = None
    #: The underlying ledger object, for scenario-specific manipulation the
    #: verb hooks cannot express (e.g. a public chain's mine/force_reorg).
    substrate: object | None = None

    def __post_init__(self) -> None:
        if not self.destination_network_id:
            self.destination_network_id = self.client.network_id

    @property
    def driver(self):
        return self.relay.driver_for(self.network_id)

    @property
    def supports_transactions(self) -> bool:
        # Routed exactly as the relay serve path routes them (plain or
        # legacy ``#tx`` registration).
        return self.relay._transaction_driver(self.network_id) is not None

    @property
    def supports_events(self) -> bool:
        driver = self.driver
        return driver is not None and driver.supports_events

    @property
    def supports_assets(self) -> bool:
        driver = self.driver
        return driver is not None and driver.supports_assets

    def party(self, client: InteropClient) -> str:
        return f"{client.identity.name}@{client.network_id}"

    def asset_command(
        self,
        client: InteropClient,
        asset_id: str,
        recipient: str = "",
        hashlock: bytes = b"",
        timeout: float = 0.0,
        preimage: bytes = b"",
    ) -> AssetCommandMsg:
        address_text = self.asset_contract_address or (
            f"{self.network_id}/vault/conformance-vault"
        )
        network, ledger, contract = address_text.split("/")
        identity = client.identity
        return AssetCommandMsg(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network=network, ledger=ledger, contract=contract, function=""
            ),
            asset_id=asset_id,
            recipient=recipient,
            hashlock=hashlock,
            timeout=timeout,
            preimage=preimage,
            auth=AuthInfo(
                requesting_network=client.network_id,
                requesting_org=identity.org,
                requestor=identity.name,
                certificate=identity.certificate.to_bytes(),
                public_key=identity.keypair.public.to_bytes(),
            ),
            nonce=random_id("conf-asset-"),
        )


class DriverConformanceSuite:
    """Runs the verb × fault-plan matrix against one target."""

    def __init__(
        self,
        target: ConformanceTarget,
        seed: int,
        plans: Sequence[FaultPlan] | None = None,
    ) -> None:
        self.target = target
        self.seed = int(seed)
        self.plans = (
            list(plans) if plans is not None else default_fault_plans(self.seed)
        )
        self._serial = 0

    # -- entry points -------------------------------------------------------------

    def run(self, verbs: Sequence[str] = ALL_VERBS) -> ConformanceReport:
        report = ConformanceReport(platform=self.target.platform, seed=self.seed)
        for plan in self.plans:
            for verb in verbs:
                report.outcomes.append(self.run_scenario(verb, plan))
        return report

    def run_plan(self, plan: FaultPlan, verbs: Sequence[str] = ALL_VERBS) -> list[ScenarioOutcome]:
        return [self.run_scenario(verb, plan) for verb in verbs]

    def run_scenario(self, verb: str, plan: FaultPlan) -> ScenarioOutcome:
        runner = {
            VERB_QUERY: self._scenario_query,
            VERB_BATCH: self._scenario_batch,
            VERB_TRANSACT: self._scenario_transact,
            VERB_SUBSCRIBE: self._scenario_subscribe,
            VERB_ASSETS: self._scenario_assets,
        }.get(verb)
        if runner is None:
            raise ValueError(f"unknown conformance verb {verb!r}")
        return runner(plan)

    # -- shared helpers -----------------------------------------------------------

    def _tag(self, verb: str, plan: FaultPlan) -> str:
        self._serial += 1
        safe_plan = plan.name.replace("+", "-")
        return f"CONF-{verb}-{safe_plan}-{self.seed}-{self._serial}"

    def _fail(self, message: str, verb: str, plan: FaultPlan) -> ConformanceError:
        return ConformanceError(message, seed=self.seed, verb=verb, plan=plan.name)

    def _must_succeed(self, plan: FaultPlan) -> bool:
        """Transport-only plans must be fully survived via failover."""
        return all(spec.kind not in TAMPER_FAULT_KINDS for spec in plan.specs)

    def _classify_failure(
        self, exc: Exception, verb: str, plan: FaultPlan, detail: str
    ) -> ScenarioOutcome:
        # Tampering legitimately surfaces anywhere in the verification
        # stack — proof checks (InteropError) or the crypto/wire layers
        # beneath them — but never as an untyped Python error.
        if not isinstance(exc, ReproError):
            raise self._fail(
                f"{detail}: failure is not a typed protocol error: "
                f"{type(exc).__name__}: {exc}",
                verb,
                plan,
            )
        if self._must_succeed(plan):
            raise self._fail(
                f"{detail}: transport fault with a redundant endpoint must be "
                f"survived by failover, but raised {type(exc).__name__}: {exc}",
                verb,
                plan,
            )
        return ScenarioOutcome(
            verb=verb,
            plan=plan.name,
            seed=self.seed,
            outcome=OUTCOME_DEGRADED,
            detail=f"{type(exc).__name__}",
        )

    def _expect_fail_closed(
        self, verb: str, plan: FaultPlan, action: Callable[[], object]
    ) -> ScenarioOutcome:
        """Unsupported verbs must raise the typed capability error, even
        with faults in the path."""
        with chaos_topology(
            self.target.registry,
            [self.target.network_id],
            plan,
            clock=self.target.clock,
        ):
            try:
                action()
            except UnsupportedCapabilityError as exc:
                return ScenarioOutcome(
                    verb=verb,
                    plan=plan.name,
                    seed=self.seed,
                    outcome=OUTCOME_FAIL_CLOSED,
                    detail=str(exc)[:80],
                )
            except Exception as exc:  # noqa: BLE001 - must be the typed error
                raise self._fail(
                    f"unsupported verb must fail closed with "
                    f"UnsupportedCapabilityError, got {type(exc).__name__}: {exc}",
                    verb,
                    plan,
                )
        raise self._fail(
            "unsupported verb completed instead of failing closed", verb, plan
        )

    # -- verb scenarios -----------------------------------------------------------

    def _scenario_query(self, plan: FaultPlan) -> ScenarioOutcome:
        target = self.target
        failovers_before = target.client.relay.stats.failovers
        with chaos_topology(
            target.registry, [target.network_id], plan, clock=target.clock
        ) as wrappers:
            chaos = wrappers[target.network_id]
            # Trace correlation is part of the protocol surface under
            # test: the query runs under an explicit trace, and a served
            # outcome must show that trace arriving at the serving relay
            # even with the fault plan in the path.
            with capture_logs("repro.relay") as relay_logs:
                with activate(new_trace()) as trace:
                    try:
                        result = target.client.remote_query(
                            target.query_address,
                            target.query_args,
                            policy=target.policy,
                        )
                    except Exception as exc:  # noqa: BLE001 - classified below
                        return self._classify_failure(
                            exc, VERB_QUERY, plan, "query"
                        )
            served_under_trace = [
                record
                for record in relay_logs.with_trace(trace.trace_id)
                if record["message"] == "serving inbound envelope"
            ]
            if not served_under_trace:
                raise self._fail(
                    f"served query's trace id {trace.trace_id} never reached "
                    f"the serving relay's log records",
                    VERB_QUERY,
                    plan,
                )
            if not target.expected_query(result.data):
                raise self._fail(
                    f"query returned unverified/wrong data: {result.data[:80]!r}",
                    VERB_QUERY,
                    plan,
                )
            if chaos.requests_seen > 1:
                raise self._fail(
                    f"unbounded retry: the chaotic endpoint saw "
                    f"{chaos.requests_seen} requests for one query",
                    VERB_QUERY,
                    plan,
                )
            if any(kind in chaos.injected for kind in TRANSPORT_FAULT_KINDS):
                delta = target.client.relay.stats.failovers - failovers_before
                if delta < 1:
                    raise self._fail(
                        "transport fault injected but failover never engaged",
                        VERB_QUERY,
                        plan,
                    )
        return ScenarioOutcome(
            verb=VERB_QUERY,
            plan=plan.name,
            seed=self.seed,
            outcome=OUTCOME_SERVED,
            injections=dict(chaos.injected),
        )

    def _scenario_batch(self, plan: FaultPlan) -> ScenarioOutcome:
        target = self.target
        members = [(target.query_address, list(target.query_args))] * 3
        with chaos_topology(
            target.registry, [target.network_id], plan, clock=target.clock
        ) as wrappers:
            chaos = wrappers[target.network_id]
            try:
                results = target.client.remote_query_batch(
                    members, policy=target.policy
                )
            except Exception as exc:  # noqa: BLE001 - classified below
                return self._classify_failure(exc, VERB_BATCH, plan, "batch")
            if len(results) != len(members):
                raise self._fail(
                    f"batch returned {len(results)} results for "
                    f"{len(members)} members",
                    VERB_BATCH,
                    plan,
                )
            for position, result in enumerate(results):
                if not target.expected_query(result.data):
                    raise self._fail(
                        f"batch member {position} returned unverified/wrong "
                        f"data: {result.data[:80]!r}",
                        VERB_BATCH,
                        plan,
                    )
        return ScenarioOutcome(
            verb=VERB_BATCH,
            plan=plan.name,
            seed=self.seed,
            outcome=OUTCOME_SERVED,
            injections=dict(chaos.injected),
        )

    def _scenario_transact(self, plan: FaultPlan) -> ScenarioOutcome:
        target = self.target
        if not target.supports_transactions or target.transact_address is None:
            return self._expect_fail_closed(
                VERB_TRANSACT,
                plan,
                lambda: RemoteTransactionClient(target.client).remote_transact(
                    target.transact_address
                    or f"{target.network_id}/ledger/contract/Invoke",
                    ["CONF-UNSUPPORTED"],
                    policy=target.policy,
                ),
            )
        assert target.transact_args is not None and target.commit_count is not None
        tag = self._tag(VERB_TRANSACT, plan)
        committed_before = target.commit_count(tag)
        tx_client = RemoteTransactionClient(target.client)
        with chaos_topology(
            target.registry, [target.network_id], plan, clock=target.clock
        ) as wrappers:
            chaos = wrappers[target.network_id]
            try:
                result = tx_client.remote_transact(
                    target.transact_address,
                    target.transact_args(tag),
                    policy=target.policy,
                )
            except Exception as exc:  # noqa: BLE001 - classified below
                outcome = self._classify_failure(exc, VERB_TRANSACT, plan, "transact")
                delta = target.commit_count(tag) - committed_before
                if delta > 1:
                    raise self._fail(
                        f"double commit under failure: {delta} commits for "
                        f"one transaction",
                        VERB_TRANSACT,
                        plan,
                    )
                return outcome
            delta = target.commit_count(tag) - committed_before
            if delta != 1:
                raise self._fail(
                    f"expected exactly one commit, ledger shows {delta} "
                    f"(tx_id={result.tx_id!r})",
                    VERB_TRANSACT,
                    plan,
                )
            if not result.tx_id:
                raise self._fail(
                    "transaction result carries no committed tx id",
                    VERB_TRANSACT,
                    plan,
                )
        return ScenarioOutcome(
            verb=VERB_TRANSACT,
            plan=plan.name,
            seed=self.seed,
            outcome=OUTCOME_SERVED,
            detail=f"tx={result.tx_id[:16]}",
            injections=dict(chaos.injected),
        )

    def _scenario_subscribe(self, plan: FaultPlan) -> ScenarioOutcome:
        target = self.target
        from repro.api.gateway import InteropGateway

        gateway = InteropGateway.from_client(target.client)
        if not target.supports_events or target.event_address is None:
            return self._expect_fail_closed(
                VERB_SUBSCRIBE,
                plan,
                lambda: gateway.subscribe(
                    target.event_address
                    or f"{target.network_id}/ledger/contract",
                    target.event_name or "*",
                ),
            )
        assert target.trigger_event is not None and target.event_verifier is not None
        tag = self._tag(VERB_SUBSCRIBE, plan)
        dropped_before = target.relay.stats.events_dropped
        stream = None
        with chaos_topology(
            target.registry,
            [target.network_id, target.destination_network_id],
            plan,
            clock=target.clock,
        ) as wrappers:
            chaos = wrappers[target.network_id]
            try:
                try:
                    stream = gateway.subscribe(
                        target.event_address,
                        target.event_name,
                        verifier=target.event_verifier(),
                    )
                except Exception as exc:  # noqa: BLE001 - classified below
                    return self._classify_failure(
                        exc, VERB_SUBSCRIBE, plan, "subscribe"
                    )
                payload = target.trigger_event(tag)
                pending = stream.pending_count
                if pending > 1:
                    raise self._fail(
                        f"duplicate event delivery: {pending} notifications "
                        f"for one committed event",
                        VERB_SUBSCRIBE,
                        plan,
                    )
                if pending == 0:
                    dropped = target.relay.stats.events_dropped - dropped_before
                    if dropped < 1:
                        raise self._fail(
                            "event notification silently lost: not delivered "
                            "and not counted as dropped",
                            VERB_SUBSCRIBE,
                            plan,
                        )
                    if self._must_succeed(plan):
                        raise self._fail(
                            "event dropped despite a redundant delivery path",
                            VERB_SUBSCRIBE,
                            plan,
                        )
                    return ScenarioOutcome(
                        verb=VERB_SUBSCRIBE,
                        plan=plan.name,
                        seed=self.seed,
                        outcome=OUTCOME_DEGRADED,
                        detail="notification dropped (reported)",
                        injections=dict(chaos.injected),
                    )
                try:
                    event = stream.take()
                except Exception as exc:  # noqa: BLE001 - classified below
                    return self._classify_failure(
                        exc, VERB_SUBSCRIBE, plan, "event verification"
                    )
                if event is None:
                    # Rejected in verification: acceptable only when the
                    # notification content could have been corrupted.
                    if self._must_succeed(plan):
                        reasons = "; ".join(
                            rejected.reason for rejected in stream.rejected
                        )
                        raise self._fail(
                            f"clean notification failed verification: {reasons}",
                            VERB_SUBSCRIBE,
                            plan,
                        )
                    return ScenarioOutcome(
                        verb=VERB_SUBSCRIBE,
                        plan=plan.name,
                        seed=self.seed,
                        outcome=OUTCOME_DEGRADED,
                        detail="notification rejected by verification",
                        injections=dict(chaos.injected),
                    )
                if payload not in event.data and payload != event.notification.payload:
                    raise self._fail(
                        f"verified event does not cover the committed payload "
                        f"{payload!r}",
                        VERB_SUBSCRIBE,
                        plan,
                    )
            finally:
                if stream is not None:
                    stream.close()
        return ScenarioOutcome(
            verb=VERB_SUBSCRIBE,
            plan=plan.name,
            seed=self.seed,
            outcome=OUTCOME_SERVED,
            injections=dict(chaos.injected),
        )

    def _scenario_assets(self, plan: FaultPlan) -> ScenarioOutcome:
        target = self.target
        if not target.supports_assets:
            return self._expect_fail_closed(
                VERB_ASSETS,
                plan,
                lambda: target.client.relay.remote_asset(
                    MSG_KIND_ASSET_LOCK,
                    target.asset_command(
                        target.client,
                        "CONF-UNSUPPORTED",
                        recipient="nobody@nowhere",
                        hashlock=b"\x00" * 32,
                        timeout=1e12,
                    ),
                ),
            )
        assert (
            target.issue_asset is not None
            and target.read_lock is not None
            and target.counter_client is not None
            and target.clock is not None
        )
        from repro.assets.htlc import (
            STATE_CLAIMED,
            STATE_LOCKED,
            make_hashlock,
        )

        tag = self._tag(VERB_ASSETS, plan)
        owner_party = target.party(target.client)
        counter_party = target.party(target.counter_client)
        asset_id = target.issue_asset(tag, owner_party)
        preimage = f"preimage-{tag}".encode("utf-8")
        hashlock = make_hashlock(preimage)
        deadline = target.clock.now() + 600.0
        outcome = OUTCOME_SERVED
        detail = ""
        with chaos_topology(
            target.registry, [target.network_id], plan, clock=target.clock
        ) as wrappers:
            chaos = wrappers[target.network_id]
            steps_failed: list[str] = []
            # Step 1: escrow under the hashlock.
            try:
                lock_ack = target.client.relay.remote_asset(
                    MSG_KIND_ASSET_LOCK,
                    target.asset_command(
                        target.client,
                        asset_id,
                        recipient=counter_party,
                        hashlock=hashlock,
                        timeout=deadline,
                    ),
                )
                if lock_ack.status != STATUS_OK:
                    steps_failed.append(f"lock refused: {lock_ack.error}")
            except ReproError as exc:
                steps_failed.append(f"lock: {type(exc).__name__}")
            # Server-side truth: the lock either landed exactly once with
            # our terms, or not at all — never a mangled escrow.
            truth = target.read_lock(asset_id)
            if truth["state"] == STATE_LOCKED:
                if truth["hashlock"] != hashlock.hex() or truth["recipient"] != counter_party:
                    raise self._fail(
                        f"fake/mangled escrow on ledger: {truth}",
                        VERB_ASSETS,
                        plan,
                    )
                # Step 2: counterparty upgrades the lock to trusted data
                # with a proof-carrying GetLock query before acting.
                assert target.asset_contract_address is not None
                try:
                    import json

                    fetched = target.counter_client.remote_query(
                        f"{target.asset_contract_address}/GetLock",
                        [asset_id],
                        policy=target.policy,
                    )
                    record = json.loads(fetched.data)
                    if record["hashlock"] != hashlock.hex():
                        raise self._fail(
                            "proof-verified lock record does not match the "
                            "ledger escrow (fake escrow accepted)",
                            VERB_ASSETS,
                            plan,
                        )
                except ReproError as exc:
                    steps_failed.append(f"verify: {type(exc).__name__}")
                # Step 3: counterparty claims with the preimage.
                try:
                    claim_ack = target.counter_client.relay.remote_asset(
                        MSG_KIND_ASSET_CLAIM,
                        target.asset_command(
                            target.counter_client, asset_id, preimage=preimage
                        ),
                    )
                    if claim_ack.status != STATUS_OK:
                        steps_failed.append(f"claim refused: {claim_ack.error}")
                except ReproError as exc:
                    steps_failed.append(f"claim: {type(exc).__name__}")
            else:
                steps_failed.append(f"lock never landed (state {truth['state']!r})")
            # Final ledger truth: the asset is locked by us or claimed by
            # the counterparty with OUR preimage — nothing else.
            final = target.read_lock(asset_id)
            if final["state"] == STATE_CLAIMED:
                if final["preimage"] != preimage.hex():
                    raise self._fail(
                        f"claimed with a foreign preimage: {final}",
                        VERB_ASSETS,
                        plan,
                    )
            elif final["state"] != STATE_LOCKED and final["state"] != "available":
                raise self._fail(
                    f"escrow reached an illegal state: {final}", VERB_ASSETS, plan
                )
            if steps_failed:
                if self._must_succeed(plan):
                    raise self._fail(
                        "asset verbs must survive transport faults via "
                        "failover: " + "; ".join(steps_failed),
                        VERB_ASSETS,
                        plan,
                    )
                outcome = OUTCOME_DEGRADED
                detail = "; ".join(steps_failed)[:120]
            elif final["state"] != STATE_CLAIMED:
                raise self._fail(
                    f"all verbs acked but the ledger shows {final['state']!r}",
                    VERB_ASSETS,
                    plan,
                )
        # Read-only status probe outside the chaos window: the record must
        # reflect exactly what the ledger holds.
        status = target.client.relay.remote_asset(
            MSG_KIND_ASSET_STATUS,
            target.asset_command(target.client, asset_id),
        )
        final = target.read_lock(asset_id)
        if status.status == STATUS_OK and status.state != final["state"]:
            raise self._fail(
                f"status ack disagrees with ledger truth: {status.state!r} "
                f"vs {final['state']!r}",
                VERB_ASSETS,
                plan,
            )
        return ScenarioOutcome(
            verb=VERB_ASSETS,
            plan=plan.name,
            seed=self.seed,
            outcome=outcome,
            detail=detail,
            injections=dict(chaos.injected),
        )
