"""Shared low-level utilities: canonical encoding, identifiers, clocks."""

from repro.utils.encoding import (
    canonical_json,
    from_canonical_json,
    from_hex,
    to_hex,
    utf8,
)
from repro.utils.ids import deterministic_id, random_id
from repro.utils.clock import Clock, SimulatedClock, SystemClock

__all__ = [
    "canonical_json",
    "from_canonical_json",
    "from_hex",
    "to_hex",
    "utf8",
    "deterministic_id",
    "random_id",
    "Clock",
    "SimulatedClock",
    "SystemClock",
]
