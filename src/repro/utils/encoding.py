"""Canonical byte encodings.

Signatures and hashes in this library are always computed over *canonical*
byte strings so that two peers serializing the same logical value sign the
same bytes. Canonical JSON (sorted keys, no whitespace, UTF-8) plays the
role that deterministic protobuf marshaling plays in Hyperledger Fabric.
"""

from __future__ import annotations

import json
from typing import Any


def utf8(text: str) -> bytes:
    """Encode ``text`` as UTF-8 bytes."""
    return text.encode("utf-8")


def to_hex(data: bytes) -> str:
    """Render ``data`` as a lowercase hex string."""
    return data.hex()


def from_hex(text: str) -> bytes:
    """Parse a hex string produced by :func:`to_hex`."""
    return bytes.fromhex(text)


def canonical_json(value: Any) -> bytes:
    """Serialize ``value`` to canonical JSON bytes.

    Keys are sorted, separators carry no whitespace, and non-ASCII text is
    escaped, so the output is byte-stable across platforms and Python
    versions. Raises ``TypeError`` for values JSON cannot represent.
    """
    return json.dumps(
        value,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    ).encode("utf-8")


def from_canonical_json(data: bytes) -> Any:
    """Parse bytes produced by :func:`canonical_json`."""
    return json.loads(data.decode("utf-8"))
