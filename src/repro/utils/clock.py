"""Clock abstraction so protocol components are testable without sleeping.

Production-style code paths take a :class:`Clock`; tests and benchmarks
inject a :class:`SimulatedClock` that advances instantly, which also powers
the latency model in :mod:`repro.sim`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Monotonic clock interface used throughout the library."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in (fractional) seconds."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds``."""


class SystemClock(Clock):
    """Wall-clock backed implementation."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock(Clock):
    """Virtual clock that advances only when told to.

    ``sleep`` advances virtual time instantly, so a simulation of a
    multi-second protocol run completes in microseconds while still
    producing meaningful latency measurements.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Alias for :meth:`sleep`, reads better at call sites in tests."""
        self.sleep(seconds)
