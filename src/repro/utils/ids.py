"""Identifier helpers.

Transaction ids, block hashes and nonces in the simulators are derived from
SHA-256 so they are reproducible under a seeded RNG, while still being
unique in practice.
"""

from __future__ import annotations

import hashlib
import os


def random_id(prefix: str = "", nbytes: int = 16) -> str:
    """Return a fresh random identifier, optionally prefixed.

    Uses ``os.urandom`` — suitable for nonces and transaction ids where
    unpredictability matters (e.g. replay protection).
    """
    token = os.urandom(nbytes).hex()
    return f"{prefix}{token}" if prefix else token


def deterministic_id(*parts: bytes | str, prefix: str = "", nbytes: int = 16) -> str:
    """Derive a stable identifier from ``parts``.

    Used where reproducibility matters more than unpredictability (block
    hashes, composite keys). ``parts`` may mix ``str`` and ``bytes``.
    """
    digest = hashlib.sha256()
    for part in parts:
        raw = part.encode("utf-8") if isinstance(part, str) else part
        digest.update(len(raw).to_bytes(8, "big"))
        digest.update(raw)
    token = digest.hexdigest()[: nbytes * 2]
    return f"{prefix}{token}" if prefix else token
