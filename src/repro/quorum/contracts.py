"""Quorum-style contracts: deterministic state machines over a KV storage."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import EVMError


@dataclass
class CallContext:
    """Execution context a contract sees (who called, when)."""

    sender: str
    sender_org: str
    timestamp: float


class QuorumContract(ABC):
    """A contract deployed at an address.

    ``execute`` mutates storage (transaction functions); ``call`` must be
    read-only (view functions). All peers run ``execute`` deterministically
    when applying blocks.
    """

    address: str = ""

    @abstractmethod
    def execute(
        self, function: str, args: list[str], storage: dict[str, bytes], ctx: CallContext
    ) -> bytes:
        """Apply a state-changing function."""

    @abstractmethod
    def call(
        self, function: str, args: list[str], storage: dict[str, bytes], ctx: CallContext
    ) -> bytes:
        """Evaluate a read-only (view) function."""


class DocumentRegistryContract(QuorumContract):
    """A registry of business documents (the cross-network query target).

    Functions:

    - ``RegisterDocument(doc_id, content_json)`` (transaction)
    - ``GetDocument(doc_id)`` (view)
    - ``ListDocuments()`` (view)
    """

    address = "document-registry"

    def execute(
        self, function: str, args: list[str], storage: dict[str, bytes], ctx: CallContext
    ) -> bytes:
        if function == "RegisterDocument":
            if len(args) != 2:
                raise EVMError("RegisterDocument expects (doc_id, content_json)")
            doc_id, content = args
            key = f"doc/{doc_id}"
            if key in storage:
                raise EVMError(f"document {doc_id!r} already registered")
            storage[key] = content.encode("utf-8")
            storage[f"meta/{doc_id}"] = (
                f"{ctx.sender}@{ctx.timestamp}".encode("utf-8")
            )
            return b"ok"
        raise EVMError(f"unknown transaction function {function!r}")

    def call(
        self, function: str, args: list[str], storage: dict[str, bytes], ctx: CallContext
    ) -> bytes:
        if function == "GetDocument":
            if len(args) != 1:
                raise EVMError("GetDocument expects (doc_id,)")
            value = storage.get(f"doc/{args[0]}")
            if value is None:
                raise EVMError(f"no document {args[0]!r}")
            return value
        if function == "ListDocuments":
            doc_ids = sorted(
                key[len("doc/"):] for key in storage if key.startswith("doc/")
            )
            return (",".join(doc_ids)).encode("utf-8")
        raise EVMError(f"unknown view function {function!r}")
