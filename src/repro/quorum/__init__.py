"""Quorum-like permissioned EVM-style substrate.

A minimal account/contract platform for the paper's §5 generalization
claim: "In Quorum, proof generation may require augmenting a peer to
return a signed query response in addition to implementing our system
contracts." Peers here carry identities and sign query responses; state
evolves through proposer-signed blocks applied deterministically by every
peer.
"""

from repro.quorum.contracts import DocumentRegistryContract, QuorumContract
from repro.quorum.node import QuorumPeer
from repro.quorum.network import QuorumBlock, QuorumNetwork, QuorumTransaction

__all__ = [
    "QuorumContract",
    "DocumentRegistryContract",
    "QuorumPeer",
    "QuorumNetwork",
    "QuorumBlock",
    "QuorumTransaction",
]
