"""Quorum peers: replicated contract state plus signed query responses."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EVMError, LedgerError
from repro.fabric.identity import Identity
from repro.quorum.contracts import CallContext, QuorumContract

if TYPE_CHECKING:  # pragma: no cover
    from repro.quorum.network import QuorumBlock


class QuorumPeer:
    """One Quorum node: contract storage replica + block validation.

    The §5 interop augmentation is that a peer carries a network identity
    and can sign query responses — here that identity is ``self.identity``
    and signing happens through the shared attestation proof scheme in the
    Quorum driver.
    """

    def __init__(self, identity: Identity) -> None:
        self.identity = identity
        self._storage: dict[str, dict[str, bytes]] = {}
        self._contracts: dict[str, QuorumContract] = {}
        self.block_height = 0
        self.last_block_hash = b""

    @property
    def peer_id(self) -> str:
        return self.identity.id

    @property
    def org(self) -> str:
        return self.identity.org

    def deploy(self, contract: QuorumContract) -> None:
        if not contract.address:
            raise EVMError("contract must declare an address")
        self._contracts[contract.address] = contract
        self._storage.setdefault(contract.address, {})

    def _contract(self, address: str) -> QuorumContract:
        contract = self._contracts.get(address)
        if contract is None:
            raise EVMError(f"no contract at address {address!r}")
        return contract

    def apply_block(self, block: "QuorumBlock") -> None:
        """Validate chain linkage and apply every transaction."""
        if block.number != self.block_height:
            raise LedgerError(
                f"peer {self.peer_id}: block {block.number} does not extend "
                f"height {self.block_height}"
            )
        if block.number > 0 and block.previous_hash != self.last_block_hash:
            raise LedgerError(f"peer {self.peer_id}: broken hash chain")
        for tx in block.transactions:
            contract = self._contract(tx.address)
            ctx = CallContext(
                sender=tx.sender, sender_org=tx.sender_org, timestamp=tx.timestamp
            )
            contract.execute(
                tx.function, list(tx.args), self._storage[tx.address], ctx
            )
        self.block_height += 1
        self.last_block_hash = block.hash()

    def view(self, address: str, function: str, args: list[str], ctx: CallContext) -> bytes:
        """Execute a read-only call against this peer's replica."""
        contract = self._contract(address)
        return contract.call(function, list(args), self._storage[address], ctx)

    def storage_snapshot(self, address: str) -> dict[str, bytes]:
        return dict(self._storage.get(address, {}))
