"""The Quorum-like network: round-robin proposers, replicated blocks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.ecdsa import Signature, verify
from repro.crypto.hashing import sha256
from repro.errors import LedgerError, MembershipError
from repro.fabric.identity import Identity, Organization
from repro.quorum.contracts import CallContext, QuorumContract
from repro.quorum.node import QuorumPeer
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg, PeerConfigMsg
from repro.utils.clock import Clock, SystemClock
from repro.utils.encoding import canonical_json
from repro.utils.ids import random_id


@dataclass(frozen=True)
class QuorumTransaction:
    """A signed state-changing call."""

    tx_id: str
    address: str
    function: str
    args: tuple[str, ...]
    sender: str
    sender_org: str
    timestamp: float

    def to_bytes(self) -> bytes:
        return canonical_json(
            {
                "tx_id": self.tx_id,
                "address": self.address,
                "function": self.function,
                "args": list(self.args),
                "sender": self.sender,
                "sender_org": self.sender_org,
                "timestamp": self.timestamp,
            }
        )


@dataclass
class QuorumBlock:
    """A proposer-signed block."""

    number: int
    previous_hash: bytes
    transactions: list[QuorumTransaction]
    proposer: str
    proposer_signature: bytes = b""

    def signable_bytes(self) -> bytes:
        return canonical_json(
            {
                "number": self.number,
                "previous_hash": self.previous_hash.hex(),
                "transactions": [tx.to_bytes().hex() for tx in self.transactions],
                "proposer": self.proposer,
            }
        )

    def hash(self) -> bytes:
        return sha256(self.signable_bytes())


class QuorumNetwork:
    """Peers run by operator organizations; blocks rotate among proposers."""

    def __init__(self, name: str, clock: Clock | None = None) -> None:
        self.name = name
        self.clock = clock or SystemClock()
        self._orgs: dict[str, Organization] = {}
        self._peers: list[QuorumPeer] = []
        self._contracts: dict[str, QuorumContract] = {}
        self.blocks: list[QuorumBlock] = []
        self._next_proposer = 0

    # -- membership --------------------------------------------------------------

    def add_peer(self, peer_name: str, org_id: str) -> QuorumPeer:
        org = self._orgs.get(org_id)
        if org is None:
            org = Organization(org_id, network=self.name)
            self._orgs[org_id] = org
        identity = org.enroll(peer_name, role="peer")
        peer = QuorumPeer(identity)
        for contract in self._contracts.values():
            peer.deploy(contract)
        self._peers.append(peer)
        return peer

    def enroll_client(self, name: str, org_id: str) -> Identity:
        org = self._orgs.get(org_id)
        if org is None:
            raise MembershipError(f"no organization {org_id!r} in {self.name!r}")
        return org.enroll(name, role="client")

    @property
    def peers(self) -> list[QuorumPeer]:
        return list(self._peers)

    def peer(self, peer_id: str) -> QuorumPeer:
        for peer in self._peers:
            if peer.peer_id == peer_id or peer.identity.name == peer_id:
                return peer
        raise MembershipError(f"quorum network {self.name!r} has no peer {peer_id!r}")

    # -- contracts -----------------------------------------------------------------

    def deploy_contract(self, contract: QuorumContract) -> None:
        self._contracts[contract.address] = contract
        for peer in self._peers:
            peer.deploy(contract)

    # -- block production --------------------------------------------------------------

    def submit_transaction(
        self, sender: Identity, address: str, function: str, args: list[str]
    ) -> QuorumTransaction:
        """Order one transaction into a block and apply it on every peer."""
        if not self._peers:
            raise LedgerError("network has no peers")
        tx = QuorumTransaction(
            tx_id=random_id("qtx-"),
            address=address,
            function=function,
            args=tuple(args),
            sender=sender.id,
            sender_org=sender.org,
            timestamp=self.clock.now(),
        )
        proposer = self._peers[self._next_proposer % len(self._peers)]
        self._next_proposer += 1
        previous_hash = self.blocks[-1].hash() if self.blocks else b""
        block = QuorumBlock(
            number=len(self.blocks),
            previous_hash=previous_hash,
            transactions=[tx],
            proposer=proposer.peer_id,
        )
        block.proposer_signature = proposer.identity.sign(
            block.signable_bytes()
        ).to_bytes()
        for peer in self._peers:
            if not verify(
                proposer.identity.keypair.public,
                block.signable_bytes(),
                Signature.from_bytes(block.proposer_signature),
            ):
                raise LedgerError("invalid proposer signature on block")
            peer.apply_block(block)
        self.blocks.append(block)
        return tx

    def view(
        self, peer: QuorumPeer, sender: Identity, address: str, function: str, args: list[str]
    ) -> bytes:
        ctx = CallContext(
            sender=sender.id, sender_org=sender.org, timestamp=self.clock.now()
        )
        return peer.view(address, function, args, ctx)

    # -- interop configuration export ------------------------------------------------------

    def export_config(self) -> NetworkConfigMsg:
        organizations = []
        for org_id in sorted(self._orgs):
            org = self._orgs[org_id]
            peers = [
                PeerConfigMsg(
                    peer_id=peer.peer_id,
                    org=org_id,
                    endpoint=f"sim://{self.name}/{peer.peer_id}",
                    certificate=peer.identity.certificate.to_bytes(),
                )
                for peer in self._peers
                if peer.org == org_id
            ]
            organizations.append(
                OrganizationConfigMsg(
                    org_id=org_id,
                    msp_id=org.msp.msp_id,
                    root_certificate=org.msp.root_certificate.to_bytes(),
                    peers=peers,
                )
            )
        return NetworkConfigMsg(
            network_id=self.name,
            platform="quorum",
            organizations=organizations,
            ledgers=["state"],
        )
