"""Versioned world state and read/write sets.

Fabric's execute-order-validate model relies on multi-version concurrency
control: endorsement *simulates* a transaction against current state and
records the version of every key read; commit-time validation re-checks
those versions so that conflicting transactions ordered later in a block
are invalidated rather than applied.

Keys are namespaced by chaincode (``namespace`` below) exactly as Fabric
namespaces state by chaincode id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import StateError

# Composite keys use the same 0x00 delimiter trick as Fabric.
_COMPOSITE_DELIMITER = "\x00"


@dataclass(frozen=True, order=True)
class Version:
    """The (block, transaction-within-block) coordinate of a key's last write."""

    block_num: int
    tx_num: int


@dataclass(frozen=True)
class KeyValue:
    """One world-state entry."""

    key: str
    value: bytes
    version: Version


@dataclass
class ReadWriteSet:
    """The effects captured while simulating one transaction.

    ``reads`` maps namespaced key -> version observed (None if the key was
    absent); ``writes`` maps namespaced key -> new value, with ``None``
    meaning delete.
    """

    reads: dict[str, Version | None] = field(default_factory=dict)
    writes: dict[str, bytes | None] = field(default_factory=dict)

    def merge(self, other: "ReadWriteSet") -> None:
        """Fold a nested (chaincode-to-chaincode) simulation into this one."""
        for key, version in other.reads.items():
            self.reads.setdefault(key, version)
        self.writes.update(other.writes)

    def to_dict(self) -> dict:
        return {
            "reads": {
                key: None if version is None else [version.block_num, version.tx_num]
                for key, version in sorted(self.reads.items())
            },
            "writes": {
                key: None if value is None else value.hex()
                for key, value in sorted(self.writes.items())
            },
        }


def namespaced(namespace: str, key: str) -> str:
    """Join a chaincode namespace and a key into a state-store key."""
    if not namespace:
        raise StateError("state namespace must be non-empty")
    return f"{namespace}{_COMPOSITE_DELIMITER}{key}"


def make_composite_key(object_type: str, attributes: list[str]) -> str:
    """Build a Fabric-style composite key from a type and attribute list."""
    if not object_type:
        raise StateError("composite key object_type must be non-empty")
    parts = [object_type, *attributes]
    for part in parts:
        if _COMPOSITE_DELIMITER in part:
            raise StateError("composite key parts must not contain NUL")
    return _COMPOSITE_DELIMITER.join(parts) + _COMPOSITE_DELIMITER


def split_composite_key(composite: str) -> tuple[str, list[str]]:
    """Inverse of :func:`make_composite_key`."""
    parts = composite.split(_COMPOSITE_DELIMITER)
    if len(parts) < 2 or parts[-1] != "":
        raise StateError(f"not a composite key: {composite!r}")
    return parts[0], parts[1:-1]


class VersionedKV:
    """The world state: a key/value store with per-key write versions."""

    def __init__(self) -> None:
        self._store: dict[str, KeyValue] = {}

    def get(self, key: str) -> KeyValue | None:
        return self._store.get(key)

    def get_version(self, key: str) -> Version | None:
        entry = self._store.get(key)
        return entry.version if entry else None

    def apply_write(self, key: str, value: bytes | None, version: Version) -> None:
        """Apply one committed write (``None`` deletes the key)."""
        if value is None:
            self._store.pop(key, None)
        else:
            self._store[key] = KeyValue(key=key, value=value, version=version)

    def range_scan(self, start: str, end: str) -> Iterator[KeyValue]:
        """Yield entries with ``start <= key < end`` in key order.

        An empty ``end`` means "to the end of the keyspace", matching
        Fabric's ``GetStateByRange`` convention.
        """
        for key in sorted(self._store):
            if key < start:
                continue
            if end and key >= end:
                break
            yield self._store[key]

    def keys(self) -> list[str]:
        return sorted(self._store)

    def __len__(self) -> int:
        return len(self._store)

    def snapshot(self) -> dict[str, bytes]:
        """Copy of current key -> value (for assertions and debugging)."""
        return {key: entry.value for key, entry in self._store.items()}


class SimulatedState:
    """A read-through overlay used during transaction simulation.

    Reads consult local writes first (read-your-writes within a
    simulation), then the underlying committed state, recording versions
    into the :class:`ReadWriteSet`. Nothing touches committed state until
    the block commits.
    """

    def __init__(self, committed: VersionedKV) -> None:
        self._committed = committed
        self.rwset = ReadWriteSet()

    def get(self, key: str) -> bytes | None:
        if key in self.rwset.writes:
            return self.rwset.writes[key]
        entry = self._committed.get(key)
        self.rwset.reads.setdefault(key, entry.version if entry else None)
        return entry.value if entry else None

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise StateError(f"state values must be bytes, got {type(value).__name__}")
        self.rwset.writes[key] = bytes(value)

    def delete(self, key: str) -> None:
        self.rwset.writes[key] = None

    def range_scan(self, start: str, end: str) -> list[tuple[str, bytes]]:
        """Range read over committed state merged with local writes.

        Every committed key touched is recorded in the read set (phantom
        protection is deliberately not modeled, as in Fabric's default
        validation).
        """
        merged: dict[str, bytes] = {}
        for entry in self._committed.range_scan(start, end):
            self.rwset.reads.setdefault(entry.key, entry.version)
            merged[entry.key] = entry.value
        for key, value in self.rwset.writes.items():
            if key < start or (end and key >= end):
                continue
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        return sorted(merged.items())
