"""Chaincode (smart contract) runtime.

Chaincodes subclass :class:`Chaincode` and implement ``invoke``; the
:class:`ChaincodeStub` gives them the same surface Fabric's shim gives Go
or Node chaincode: state access, composite keys, chaincode-to-chaincode
invocation, the creator's certificate, transient data, and event emission.

Simulation happens against a :class:`~repro.fabric.state.SimulatedState`
overlay, so invoking a chaincode never mutates committed state directly —
that is the job of block commit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.crypto.certs import Certificate
from repro.errors import ChaincodeError
from repro.fabric.state import (
    SimulatedState,
    make_composite_key,
    namespaced,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.fabric.peer import Peer


@dataclass
class ChaincodeEventRecord:
    """An event set by chaincode during simulation."""

    chaincode: str
    name: str
    payload: bytes


class Chaincode(ABC):
    """Base class for smart contracts deployed on the Fabric substrate."""

    name: str = ""

    def init(self, stub: "ChaincodeStub") -> bytes:
        """One-time initialization hook (optional)."""
        return b""

    @abstractmethod
    def invoke(self, stub: "ChaincodeStub") -> bytes:
        """Dispatch ``stub.function`` with ``stub.args``; return result bytes."""


@dataclass
class InvocationContext:
    """Everything a single chaincode invocation can see."""

    tx_id: str
    channel: str
    function: str
    args: list[str]
    creator: Certificate | None
    transient: Mapping[str, bytes] = field(default_factory=dict)
    timestamp: float = 0.0


class ChaincodeStub:
    """The API surface chaincode uses to interact with the ledger."""

    def __init__(
        self,
        peer: "Peer",
        chaincode_name: str,
        context: InvocationContext,
        state: SimulatedState,
        events: list[ChaincodeEventRecord],
        call_depth: int = 0,
    ) -> None:
        self._peer = peer
        self._chaincode_name = chaincode_name
        self._context = context
        self._state = state
        self._events = events
        self._call_depth = call_depth

    # -- invocation metadata -------------------------------------------------

    @property
    def tx_id(self) -> str:
        return self._context.tx_id

    @property
    def channel(self) -> str:
        return self._context.channel

    @property
    def function(self) -> str:
        return self._context.function

    @property
    def args(self) -> list[str]:
        return list(self._context.args)

    @property
    def timestamp(self) -> float:
        return self._context.timestamp

    def get_creator(self) -> Certificate | None:
        """The certificate of the identity that created the proposal."""
        return self._context.creator

    def get_transient(self, key: str) -> bytes | None:
        """Transient data travels with the proposal but is never written to
        the ledger — Fabric's channel for secrets like encryption keys."""
        return self._context.transient.get(key)

    # -- state access ---------------------------------------------------------

    def _ns(self, key: str) -> str:
        return namespaced(self._chaincode_name, key)

    def get_state(self, key: str) -> bytes | None:
        return self._state.get(self._ns(key))

    def put_state(self, key: str, value: bytes) -> None:
        self._state.put(self._ns(key), value)

    def del_state(self, key: str) -> None:
        self._state.delete(self._ns(key))

    def get_state_by_range(self, start: str, end: str) -> list[tuple[str, bytes]]:
        """Range scan within this chaincode's namespace."""
        ns_prefix = namespaced(self._chaincode_name, "")
        ns_start = self._ns(start)
        ns_end = self._ns(end) if end else ns_prefix + "￿"
        return [
            (key[len(ns_prefix):], value)
            for key, value in self._state.range_scan(ns_start, ns_end)
        ]

    def create_composite_key(self, object_type: str, attributes: list[str]) -> str:
        return make_composite_key(object_type, attributes)

    def get_state_by_partial_composite_key(
        self, object_type: str, attributes: list[str]
    ) -> list[tuple[str, bytes]]:
        prefix = make_composite_key(object_type, attributes)
        # Composite keys are prefix-ordered, so a range scan over the prefix
        # (up to the next possible byte) returns exactly the matches.
        return self.get_state_by_range(prefix, prefix + "￿")

    # -- chaincode-to-chaincode -----------------------------------------------

    def invoke_chaincode(self, chaincode_name: str, function: str, args: list[str]) -> bytes:
        """Invoke another chaincode within the same transaction simulation.

        Reads/writes of the callee are folded into the caller's read/write
        set, as in Fabric same-channel cc2cc invocation. This is how
        application chaincode consults the ECC and CMDAC system contracts.
        """
        if self._call_depth >= 8:
            raise ChaincodeError("chaincode call depth exceeded (possible recursion)")
        callee = self._peer.get_chaincode(chaincode_name)
        sub_context = InvocationContext(
            tx_id=self._context.tx_id,
            channel=self._context.channel,
            function=function,
            args=list(args),
            creator=self._context.creator,
            transient=self._context.transient,
            timestamp=self._context.timestamp,
        )
        sub_stub = ChaincodeStub(
            peer=self._peer,
            chaincode_name=chaincode_name,
            context=sub_context,
            state=self._state,
            events=self._events,
            call_depth=self._call_depth + 1,
        )
        return callee.invoke(sub_stub)

    # -- events ----------------------------------------------------------------

    def set_event(self, name: str, payload: bytes) -> None:
        """Register a chaincode event, delivered after the block commits."""
        if not name:
            raise ChaincodeError("event name must be non-empty")
        self._events.append(
            ChaincodeEventRecord(
                chaincode=self._chaincode_name, name=name, payload=payload
            )
        )


def require_args(stub: ChaincodeStub, count: int) -> list[str]:
    """Validate the argument count of an invocation; returns the args.

    A convenience used by every chaincode in :mod:`repro.apps` and the
    system contracts.
    """
    args = stub.args
    if len(args) != count:
        raise ChaincodeError(
            f"{stub.function} expects {count} argument(s), got {len(args)}"
        )
    return args
