"""Ordering services: solo and Raft-like.

Fabric separates ordering from execution: "a separate ordering service
creates and disseminates blocks" (§4.1). Two implementations are provided:

- :class:`SoloOrderer` — a single-node orderer that cuts a block per batch;
  the default for protocol experiments where ordering is not under test.
- :class:`RaftOrderer` — a simulated crash-fault-tolerant cluster with
  leader election, log replication and majority commit, supporting crash
  and recovery injection. Used by the fault-tolerance tests and benches.

Both deliver blocks to registered committers (peers) in order.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.hashing import sha256
from repro.errors import OrderingError
from repro.fabric.ledger import Block, Transaction

Committer = Callable[[Block], None]


class OrderingService(ABC):
    """Common machinery: batching, block cutting, ordered delivery."""

    def __init__(self, channel: str, batch_size: int = 1) -> None:
        if batch_size < 1:
            raise OrderingError(f"batch size must be >= 1, got {batch_size}")
        self.channel = channel
        self.batch_size = batch_size
        self._committers: list[Committer] = []
        self._height = 0
        self._last_hash = sha256(b"genesis:" + channel.encode("utf-8"))
        self.blocks_delivered = 0

    def register_committer(self, committer: Committer) -> None:
        """Register a peer's ``commit_block`` to receive delivered blocks."""
        self._committers.append(committer)

    def _deliver(self, transactions: list[Transaction]) -> Block:
        block = Block(
            number=self._height,
            previous_hash=self._last_hash,
            transactions=transactions,
        )
        self._height += 1
        self._last_hash = block.hash()
        self.blocks_delivered += 1
        for committer in self._committers:
            committer(block)
        return block

    @abstractmethod
    def submit(self, transaction: Transaction) -> None:
        """Enqueue an endorsed transaction for ordering."""

    @abstractmethod
    def flush(self) -> None:
        """Force any partial batch to be cut and delivered."""


class SoloOrderer(OrderingService):
    """A single trusted orderer node (Fabric's development profile)."""

    def __init__(self, channel: str, batch_size: int = 1) -> None:
        super().__init__(channel, batch_size)
        self._pending: list[Transaction] = []

    def submit(self, transaction: Transaction) -> None:
        self._pending.append(transaction)
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._deliver(batch)


# ---------------------------------------------------------------------------
# Raft-like ordering cluster
# ---------------------------------------------------------------------------

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


@dataclass
class _LogEntry:
    term: int
    batch: list[Transaction]


@dataclass
class _Message:
    kind: str  # request_vote | vote | append | append_reply
    sender: int
    term: int
    payload: dict = field(default_factory=dict)


class _RaftNode:
    """One consenter in the Raft cluster (persistent state survives crashes)."""

    def __init__(self, node_id: int, cluster_size: int, rng: random.Random) -> None:
        self.node_id = node_id
        self.cluster_size = cluster_size
        self._rng = rng
        self.state = FOLLOWER
        self.current_term = 0
        self.voted_for: int | None = None
        self.log: list[_LogEntry] = []
        self.commit_index = -1
        self.crashed = False
        self.inbox: list[_Message] = []
        self._election_ticks = 0
        self._election_timeout = self._new_timeout()
        self._votes: set[int] = set()
        self.next_index: dict[int, int] = {}
        self.match_index: dict[int, int] = {}

    def _new_timeout(self) -> int:
        return self._rng.randint(4, 8)

    @property
    def last_log_index(self) -> int:
        return len(self.log) - 1

    @property
    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def _log_up_to_date(self, last_index: int, last_term: int) -> bool:
        if last_term != self.last_log_term:
            return last_term > self.last_log_term
        return last_index >= self.last_log_index

    def _become_follower(self, term: int) -> None:
        self.state = FOLLOWER
        self.current_term = term
        self.voted_for = None
        self._election_ticks = 0
        self._election_timeout = self._new_timeout()

    def _become_leader(self) -> None:
        self.state = LEADER
        self.next_index = {
            peer: len(self.log) for peer in range(self.cluster_size) if peer != self.node_id
        }
        self.match_index = {
            peer: -1 for peer in range(self.cluster_size) if peer != self.node_id
        }

    # -- message handling ------------------------------------------------------

    def step(self, message: _Message, outbox: list[tuple[int, _Message]]) -> None:
        if message.term > self.current_term:
            self._become_follower(message.term)
        if message.kind == "request_vote":
            grant = (
                message.term >= self.current_term
                and self.voted_for in (None, message.sender)
                and self._log_up_to_date(
                    message.payload["last_log_index"], message.payload["last_log_term"]
                )
            )
            if grant:
                self.voted_for = message.sender
                self._election_ticks = 0
            outbox.append(
                (
                    message.sender,
                    _Message(
                        kind="vote",
                        sender=self.node_id,
                        term=self.current_term,
                        payload={"granted": grant},
                    ),
                )
            )
        elif message.kind == "vote":
            if (
                self.state == CANDIDATE
                and message.term == self.current_term
                and message.payload["granted"]
            ):
                self._votes.add(message.sender)
                if len(self._votes) > self.cluster_size // 2:
                    self._become_leader()
        elif message.kind == "append":
            success = False
            match_index = -1
            if message.term >= self.current_term:
                self.state = FOLLOWER
                self._election_ticks = 0
                prev_index = message.payload["prev_index"]
                prev_term = message.payload["prev_term"]
                ok = prev_index == -1 or (
                    prev_index < len(self.log) and self.log[prev_index].term == prev_term
                )
                if ok:
                    success = True
                    entries: list[_LogEntry] = message.payload["entries"]
                    insert_at = prev_index + 1
                    for offset, entry in enumerate(entries):
                        index = insert_at + offset
                        if index < len(self.log):
                            if self.log[index].term != entry.term:
                                del self.log[index:]
                                self.log.append(entry)
                        else:
                            self.log.append(entry)
                    match_index = prev_index + len(entries)
                    leader_commit = message.payload["leader_commit"]
                    if leader_commit > self.commit_index:
                        self.commit_index = min(leader_commit, self.last_log_index)
            outbox.append(
                (
                    message.sender,
                    _Message(
                        kind="append_reply",
                        sender=self.node_id,
                        term=self.current_term,
                        payload={"success": success, "match_index": match_index},
                    ),
                )
            )
        elif message.kind == "append_reply":
            if self.state != LEADER or message.term != self.current_term:
                return
            peer = message.sender
            if message.payload["success"]:
                self.match_index[peer] = max(
                    self.match_index[peer], message.payload["match_index"]
                )
                self.next_index[peer] = self.match_index[peer] + 1
                self._advance_commit()
            else:
                self.next_index[peer] = max(0, self.next_index[peer] - 1)

    def _advance_commit(self) -> None:
        for index in range(self.last_log_index, self.commit_index, -1):
            if self.log[index].term != self.current_term:
                continue
            replicated = 1 + sum(
                1 for match in self.match_index.values() if match >= index
            )
            if replicated > self.cluster_size // 2:
                self.commit_index = index
                break

    # -- timers ------------------------------------------------------------------

    def tick(self, outbox: list[tuple[int, _Message]]) -> None:
        if self.state == LEADER:
            if self.cluster_size == 1:
                # No followers to acknowledge: a single-node cluster commits
                # its own log immediately.
                self.commit_index = self.last_log_index
                return
            for peer in range(self.cluster_size):
                if peer == self.node_id:
                    continue
                next_idx = self.next_index[peer]
                prev_index = next_idx - 1
                prev_term = self.log[prev_index].term if prev_index >= 0 else 0
                entries = self.log[next_idx:]
                outbox.append(
                    (
                        peer,
                        _Message(
                            kind="append",
                            sender=self.node_id,
                            term=self.current_term,
                            payload={
                                "prev_index": prev_index,
                                "prev_term": prev_term,
                                "entries": entries,
                                "leader_commit": self.commit_index,
                            },
                        ),
                    )
                )
            return
        self._election_ticks += 1
        if self._election_ticks >= self._election_timeout:
            self.state = CANDIDATE
            self.current_term += 1
            self.voted_for = self.node_id
            self._votes = {self.node_id}
            self._election_ticks = 0
            self._election_timeout = self._new_timeout()
            if self.cluster_size == 1:
                self._become_leader()
                return
            for peer in range(self.cluster_size):
                if peer == self.node_id:
                    continue
                outbox.append(
                    (
                        peer,
                        _Message(
                            kind="request_vote",
                            sender=self.node_id,
                            term=self.current_term,
                            payload={
                                "last_log_index": self.last_log_index,
                                "last_log_term": self.last_log_term,
                            },
                        ),
                    )
                )


class RaftOrderer(OrderingService):
    """A crash-fault-tolerant ordering cluster.

    The cluster advances via :meth:`tick`; callers (tests, benches, the
    network helper) drive ticks until submitted batches commit. Crash and
    recovery of individual consenters is injectable.
    """

    def __init__(
        self,
        channel: str,
        cluster_size: int = 3,
        batch_size: int = 1,
        seed: int = 7,
    ) -> None:
        super().__init__(channel, batch_size)
        if cluster_size < 1:
            raise OrderingError("raft cluster needs at least one node")
        rng = random.Random(seed)
        self.nodes = [
            _RaftNode(node_id, cluster_size, random.Random(rng.random()))
            for node_id in range(cluster_size)
        ]
        self._pending: list[Transaction] = []
        self._delivered_through = -1

    # -- cluster introspection ---------------------------------------------------

    def leader(self) -> _RaftNode | None:
        leaders = [
            node for node in self.nodes if node.state == LEADER and not node.crashed
        ]
        if not leaders:
            return None
        return max(leaders, key=lambda node: node.current_term)

    def crash(self, node_id: int) -> None:
        """Crash a consenter: it stops ticking and drops its inbox."""
        node = self.nodes[node_id]
        node.crashed = True
        node.inbox.clear()

    def recover(self, node_id: int) -> None:
        """Recover a crashed consenter with persistent state intact."""
        self.nodes[node_id].crashed = False

    # -- ordering API --------------------------------------------------------------

    def submit(self, transaction: Transaction) -> None:
        self._pending.append(transaction)
        if len(self._pending) >= self.batch_size:
            self._propose()
        self.run_until_idle()

    def flush(self) -> None:
        self._propose()
        self.run_until_idle()

    def _propose(self) -> None:
        if not self._pending:
            return
        leader = self.leader()
        if leader is None:
            self.run_until_leader()
            leader = self.leader()
            if leader is None:
                raise OrderingError("no raft leader available (quorum lost?)")
        batch, self._pending = self._pending, []
        leader.log.append(_LogEntry(term=leader.current_term, batch=batch))

    # -- simulation loop -------------------------------------------------------------

    def tick(self) -> None:
        """Advance the cluster by one time step (timers + message exchange)."""
        outbox: list[tuple[int, _Message]] = []
        for node in self.nodes:
            if node.crashed:
                continue
            for message in node.inbox:
                node.step(message, outbox)
            node.inbox.clear()
            node.tick(outbox)
        for target, message in outbox:
            node = self.nodes[target]
            if not node.crashed:
                node.inbox.append(message)
        self._deliver_committed()

    def _quorum_commit_index(self) -> int:
        live = [node for node in self.nodes if not node.crashed]
        if not live:
            return self._delivered_through
        return max(node.commit_index for node in live)

    def _deliver_committed(self) -> None:
        commit = self._quorum_commit_index()
        if commit <= self._delivered_through:
            return
        source = max(
            (node for node in self.nodes if not node.crashed),
            key=lambda node: node.commit_index,
        )
        for index in range(self._delivered_through + 1, commit + 1):
            self._deliver(source.log[index].batch)
        self._delivered_through = commit

    def run_until_leader(self, max_ticks: int = 200) -> None:
        for _ in range(max_ticks):
            if self.leader() is not None:
                return
            self.tick()
        raise OrderingError(f"no leader elected within {max_ticks} ticks")

    def run_until_idle(self, max_ticks: int = 400) -> None:
        """Tick until all proposed entries are committed and delivered."""
        for _ in range(max_ticks):
            leader = self.leader()
            outstanding = any(
                not node.crashed and node.last_log_index > self._delivered_through
                for node in self.nodes
            )
            if leader is not None and not outstanding and not self._pending:
                return
            self.tick()
        live = sum(1 for node in self.nodes if not node.crashed)
        if live <= self.cluster_size // 2:
            raise OrderingError(
                f"raft quorum lost: only {live}/{self.cluster_size} consenters live"
            )
        raise OrderingError("raft cluster failed to converge")

    @property
    def cluster_size(self) -> int:
        return len(self.nodes)
