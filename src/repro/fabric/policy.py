"""Endorsement policy language.

Fabric requires "a subset of endorsers, selected through a predetermined
policy, to agree on the result" (§4.1). Policies here use Fabric's
familiar expression syntax::

    AND('SellerOrg.peer', 'CarrierOrg.peer')
    OR('Org1.member', AND('Org2.peer', 'Org3.peer'))
    OutOf(2, 'Org1.peer', 'Org2.peer', 'Org3.peer')

A principal is ``Org.role`` where role is ``peer``, ``client``, ``admin``
or ``member`` (any role). Evaluation takes the set of (org, role) pairs
that produced valid signatures and returns whether the policy is
satisfied; ``required_orgs`` supports minimal endorser selection.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from repro.errors import EndorsementPolicyError

_ROLES = {"peer", "client", "admin", "orderer", "member"}

Signer = tuple[str, str]  # (org_id, role)


class EndorsementPolicy(ABC):
    """A boolean predicate over sets of endorsement signers."""

    @abstractmethod
    def satisfied_by(self, signers: Iterable[Signer]) -> bool:
        """True iff the signer set satisfies this policy."""

    @abstractmethod
    def principals(self) -> set[str]:
        """All ``Org.role`` principals mentioned anywhere in the policy."""

    @abstractmethod
    def expression(self) -> str:
        """Canonical source-text form of the policy."""

    def minimal_satisfying_orgs(self, available: Sequence[Signer]) -> list[Signer] | None:
        """Smallest subset of ``available`` signers that satisfies the policy.

        Used by gateways to pick the fewest endorsers to contact. Returns
        ``None`` when no subset works. Exponential in the worst case but
        policies and networks here are small.
        """
        pool = list(dict.fromkeys(available))
        for size in range(1, len(pool) + 1):
            for subset in combinations(pool, size):
                if self.satisfied_by(subset):
                    return list(subset)
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.expression()!r})"


@dataclass(frozen=True)
class SignedBy(EndorsementPolicy):
    """Leaf: a signature from a member of ``org`` with a matching role."""

    org: str
    role: str = "member"

    def __post_init__(self) -> None:
        if self.role not in _ROLES:
            raise EndorsementPolicyError(
                f"unknown role {self.role!r}; expected one of {sorted(_ROLES)}"
            )

    def satisfied_by(self, signers: Iterable[Signer]) -> bool:
        for org, role in signers:
            if org != self.org:
                continue
            if self.role == "member" or self.role == role:
                return True
        return False

    def principals(self) -> set[str]:
        return {f"{self.org}.{self.role}"}

    def expression(self) -> str:
        return f"'{self.org}.{self.role}'"


@dataclass(frozen=True)
class OutOf(EndorsementPolicy):
    """At least ``threshold`` of the sub-policies must be satisfied.

    ``AND`` is ``OutOf(len(children))``; ``OR`` is ``OutOf(1)``. Each
    signer may satisfy multiple children (Fabric semantics are the same:
    the policy is over principals, not signature counts).
    """

    threshold: int
    children: tuple[EndorsementPolicy, ...]
    label: str = "OutOf"

    def __post_init__(self) -> None:
        if not self.children:
            raise EndorsementPolicyError("policy combinator requires sub-policies")
        if not (1 <= self.threshold <= len(self.children)):
            raise EndorsementPolicyError(
                f"threshold {self.threshold} out of range for "
                f"{len(self.children)} sub-policies"
            )

    def satisfied_by(self, signers: Iterable[Signer]) -> bool:
        signer_list = list(signers)
        satisfied = sum(1 for child in self.children if child.satisfied_by(signer_list))
        return satisfied >= self.threshold

    def principals(self) -> set[str]:
        result: set[str] = set()
        for child in self.children:
            result |= child.principals()
        return result

    def expression(self) -> str:
        inner = ", ".join(child.expression() for child in self.children)
        if self.label == "AND":
            return f"AND({inner})"
        if self.label == "OR":
            return f"OR({inner})"
        return f"OutOf({self.threshold}, {inner})"


def policy_and(*children: EndorsementPolicy) -> OutOf:
    return OutOf(threshold=len(children), children=tuple(children), label="AND")


def policy_or(*children: EndorsementPolicy) -> OutOf:
    return OutOf(threshold=1, children=tuple(children), label="OR")


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)"
    r"|(?P<number>\d+)"
    r"|(?P<principal>'[^']+')"
    r"|(?P<word>AND|OR|OutOf))",
    re.IGNORECASE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise EndorsementPolicyError(
                f"unexpected character at position {position} in policy: {text!r}"
            )
        position = match.end()
        for kind, value in match.groupdict().items():
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._position = 0

    def _peek(self) -> tuple[str, str] | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self, expected: str | None = None) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise EndorsementPolicyError(f"unexpected end of policy: {self._source!r}")
        if expected is not None and token[0] != expected:
            raise EndorsementPolicyError(
                f"expected {expected} but found {token[1]!r} in policy: {self._source!r}"
            )
        self._position += 1
        return token

    def parse(self) -> EndorsementPolicy:
        policy = self._parse_node()
        if self._peek() is not None:
            raise EndorsementPolicyError(
                f"trailing tokens after policy expression: {self._source!r}"
            )
        return policy

    def _parse_node(self) -> EndorsementPolicy:
        kind, value = self._next()
        if kind == "principal":
            return self._parse_principal(value)
        if kind == "word":
            return self._parse_combinator(value.upper())
        raise EndorsementPolicyError(
            f"expected a principal or combinator, found {value!r} in: {self._source!r}"
        )

    def _parse_principal(self, value: str) -> SignedBy:
        body = value.strip("'")
        if "." not in body:
            raise EndorsementPolicyError(
                f"principal {body!r} must have the form Org.role"
            )
        org, role = body.rsplit(".", 1)
        return SignedBy(org=org, role=role)

    def _parse_combinator(self, word: str) -> EndorsementPolicy:
        self._next("lparen")
        threshold: int | None = None
        if word == "OUTOF":
            number = self._next("number")
            threshold = int(number[1])
            self._next("comma")
        children = [self._parse_node()]
        while True:
            token = self._peek()
            if token is None:
                raise EndorsementPolicyError(
                    f"unterminated combinator in policy: {self._source!r}"
                )
            if token[0] == "comma":
                self._next()
                children.append(self._parse_node())
            elif token[0] == "rparen":
                self._next()
                break
            else:
                raise EndorsementPolicyError(
                    f"expected ',' or ')' but found {token[1]!r} in: {self._source!r}"
                )
        if word == "AND":
            return policy_and(*children)
        if word == "OR":
            return policy_or(*children)
        assert threshold is not None
        return OutOf(threshold=threshold, children=tuple(children))


def parse_endorsement_policy(text: str) -> EndorsementPolicy:
    """Parse a Fabric-style endorsement policy expression.

    Examples::

        parse_endorsement_policy("AND('Org1.peer', 'Org2.peer')")
        parse_endorsement_policy("OutOf(2, 'A.peer', 'B.peer', 'C.peer')")
    """
    tokens = _tokenize(text)
    if not tokens:
        raise EndorsementPolicyError("empty policy expression")
    return _Parser(tokens, text).parse()
