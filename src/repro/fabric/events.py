"""Block and chaincode event delivery.

Applications "publish and subscribe to events" as one of the three interop
primitives the paper lists (§2). The hub delivers block events and named
chaincode events to registered callbacks after commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.fabric.ledger import Block, TxValidationCode


@dataclass(frozen=True)
class BlockEvent:
    """Emitted once per committed block."""

    channel: str
    block_number: int
    tx_ids: tuple[str, ...]
    validation_codes: tuple[TxValidationCode, ...]


@dataclass(frozen=True)
class ChaincodeEvent:
    """Emitted for each event set by a *valid* transaction's chaincode."""

    channel: str
    block_number: int
    tx_id: str
    chaincode: str
    name: str
    payload: bytes


BlockListener = Callable[[BlockEvent], None]
ChaincodeListener = Callable[[ChaincodeEvent], None]


class EventHub:
    """Fan-out of commit events to application listeners."""

    def __init__(self) -> None:
        self._block_listeners: list[BlockListener] = []
        self._chaincode_listeners: list[tuple[str, str, ChaincodeListener]] = []
        self.history: list[ChaincodeEvent] = []

    def on_block(self, listener: BlockListener) -> None:
        self._block_listeners.append(listener)

    def on_chaincode_event(
        self, chaincode: str, name: str, listener: ChaincodeListener
    ) -> None:
        """Subscribe to events from ``chaincode`` named ``name`` ('*' matches any)."""
        self._chaincode_listeners.append((chaincode, name, listener))

    def publish_block(self, block: Block, channel: str) -> None:
        event = BlockEvent(
            channel=channel,
            block_number=block.number,
            tx_ids=tuple(tx.tx_id for tx in block.transactions),
            validation_codes=tuple(block.validation_codes),
        )
        for listener in self._block_listeners:
            listener(event)
        for position, tx in enumerate(block.transactions):
            if block.validation_codes[position] is not TxValidationCode.VALID:
                continue
            for chaincode, name, payload in tx.events:
                cc_event = ChaincodeEvent(
                    channel=channel,
                    block_number=block.number,
                    tx_id=tx.tx_id,
                    chaincode=chaincode,
                    name=name,
                    payload=payload,
                )
                self.history.append(cc_event)
                for sub_cc, sub_name, listener in self._chaincode_listeners:
                    if sub_cc == chaincode and sub_name in (name, "*"):
                        listener(cc_event)
