"""Peers: chaincode execution, endorsement, validation, and commit.

"Though every peer node maintains shared ledger replicas and commits
transactions, only a subset run smart contract code (chaincode) as
endorsers" (§4.1). A :class:`Peer` here does both jobs:

- **endorse**: simulate a proposal against its current state, capture the
  read/write set, and sign the results;
- **commit**: validate each transaction in an ordered block (endorsement
  signatures, endorsement policy, MVCC read conflicts) and apply the
  writes of valid transactions.

Peers also support *pluggable endorsement* — the mechanism the paper's
§4.3 uses ("the normal peer endorsement process ... is replaced with
custom logic that signs the metadata (including the result) and then
encrypts it"). The interop layer registers such a plugin on source-network
peers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.crypto.certs import Certificate
from repro.crypto.ecdsa import Signature, verify
from repro.errors import ChaincodeError, EndorsementError, ReproError
from repro.fabric.chaincode import (
    Chaincode,
    ChaincodeEventRecord,
    ChaincodeStub,
    InvocationContext,
)
from repro.fabric.channel import ChannelConfig
from repro.fabric.events import EventHub
from repro.fabric.identity import Identity
from repro.fabric.ledger import Block, Endorsement, Ledger, Transaction, TxValidationCode
from repro.fabric.state import ReadWriteSet, SimulatedState, Version, VersionedKV
from repro.utils.encoding import canonical_json


@dataclass(frozen=True)
class Proposal:
    """A client's request that endorsing peers simulate a transaction."""

    tx_id: str
    channel: str
    chaincode: str
    function: str
    args: tuple[str, ...]
    creator: bytes  # serialized client certificate
    transient: Mapping[str, bytes] = field(default_factory=dict)
    timestamp: float = 0.0

    def signed_payload(self, rwset: ReadWriteSet, result: bytes) -> bytes:
        """The canonical bytes an endorser signs for this proposal."""
        return canonical_json(
            {
                "tx_id": self.tx_id,
                "channel": self.channel,
                "chaincode": self.chaincode,
                "function": self.function,
                "args": list(self.args),
                "rwset": rwset.to_dict(),
                "result": result.hex(),
            }
        )


@dataclass
class ProposalResponse:
    """An endorsing peer's reply to a proposal."""

    peer_id: str
    org: str
    success: bool
    message: str
    result: bytes
    rwset: ReadWriteSet
    events: list[ChaincodeEventRecord]
    endorsement: Endorsement | None


# An endorsement plugin maps (peer, proposal, result, rwset) to opaque
# endorsement bytes, replacing the default signature scheme.
EndorsementPlugin = Callable[["Peer", Proposal, bytes, ReadWriteSet], bytes]


class Peer:
    """One peer node: ledger replica, world state, installed chaincodes."""

    def __init__(
        self,
        identity: Identity,
        channel_config: ChannelConfig,
        event_hub: EventHub | None = None,
    ) -> None:
        if identity.role != "peer":
            raise EndorsementError(
                f"identity {identity.id!r} has role {identity.role!r}, expected 'peer'"
            )
        self.identity = identity
        self.channel_config = channel_config
        self.ledger = Ledger(channel_config.channel)
        self.state = VersionedKV()
        self.event_hub = event_hub or EventHub()
        self._chaincodes: dict[str, Chaincode] = {}
        self._endorsement_plugins: dict[str, EndorsementPlugin] = {}
        self.endorsement_count = 0
        self.commit_count = 0

    @property
    def peer_id(self) -> str:
        return self.identity.id

    @property
    def org(self) -> str:
        return self.identity.org

    # -- chaincode lifecycle ---------------------------------------------------

    def install_chaincode(self, chaincode: Chaincode) -> None:
        if not chaincode.name:
            raise ChaincodeError("chaincode must declare a non-empty name")
        self._chaincodes[chaincode.name] = chaincode

    def get_chaincode(self, name: str) -> Chaincode:
        try:
            return self._chaincodes[name]
        except KeyError:
            raise ChaincodeError(
                f"chaincode {name!r} is not installed on peer {self.peer_id!r}"
            ) from None

    def has_chaincode(self, name: str) -> bool:
        return name in self._chaincodes

    def register_endorsement_plugin(self, name: str, plugin: EndorsementPlugin) -> None:
        """Register custom endorsement logic (Fabric 'pluggable endorsement')."""
        self._endorsement_plugins[name] = plugin

    # -- endorsement (the EXECUTE phase) ----------------------------------------

    def simulate(self, proposal: Proposal) -> tuple[bytes, ReadWriteSet, list[ChaincodeEventRecord]]:
        """Run the chaincode against current state; nothing is committed."""
        chaincode = self.get_chaincode(proposal.chaincode)
        simulated = SimulatedState(self.state)
        events: list[ChaincodeEventRecord] = []
        creator = (
            Certificate.from_bytes(proposal.creator) if proposal.creator else None
        )
        context = InvocationContext(
            tx_id=proposal.tx_id,
            channel=proposal.channel,
            function=proposal.function,
            args=list(proposal.args),
            creator=creator,
            transient=proposal.transient,
            timestamp=proposal.timestamp,
        )
        stub = ChaincodeStub(
            peer=self,
            chaincode_name=proposal.chaincode,
            context=context,
            state=simulated,
            events=events,
        )
        result = chaincode.invoke(stub)
        if result is None:
            result = b""
        return result, simulated.rwset, events

    def endorse(self, proposal: Proposal, plugin: str | None = None) -> ProposalResponse:
        """Simulate and sign a proposal.

        With ``plugin`` set, the named endorsement plugin produces the
        endorsement bytes instead of the default ECDSA-over-payload scheme.
        """
        self.endorsement_count += 1
        try:
            result, rwset, events = self.simulate(proposal)
        except ReproError as exc:
            # Any library-level failure inside chaincode (including access
            # denials and proof rejections from the system contracts) yields
            # a failed proposal rather than an endorsement. The error type
            # is carried in the message so callers (gateways, drivers) can
            # classify failures without string matching on free text.
            return ProposalResponse(
                peer_id=self.peer_id,
                org=self.org,
                success=False,
                message=f"{type(exc).__name__}: {exc}",
                result=b"",
                rwset=ReadWriteSet(),
                events=[],
                endorsement=None,
            )
        if plugin is not None:
            custom = self._endorsement_plugins.get(plugin)
            if custom is None:
                raise EndorsementError(
                    f"no endorsement plugin {plugin!r} on peer {self.peer_id!r}"
                )
            signature_bytes = custom(self, proposal, result, rwset)
        else:
            payload = proposal.signed_payload(rwset, result)
            signature_bytes = self.identity.sign(payload).to_bytes()
        endorsement = Endorsement(
            peer_id=self.peer_id,
            org=self.org,
            role=self.identity.role,
            certificate=self.identity.certificate.to_bytes(),
            signature=signature_bytes,
        )
        return ProposalResponse(
            peer_id=self.peer_id,
            org=self.org,
            success=True,
            message="",
            result=result,
            rwset=rwset,
            events=events,
            endorsement=endorsement,
        )

    # -- validation and commit (the VALIDATE phase) ------------------------------

    def _validate_transaction(self, tx: Transaction) -> TxValidationCode:
        if self.ledger.contains_tx(tx.tx_id):
            return TxValidationCode.DUPLICATE_TXID

        payload = tx.signed_payload()
        valid_signers: list[tuple[str, str]] = []
        for endorsement in tx.endorsements:
            try:
                certificate = Certificate.from_bytes(endorsement.certificate)
                org_id = self.channel_config.validate_member(certificate)
            except Exception:
                return TxValidationCode.BAD_SIGNATURE
            if org_id != endorsement.org:
                return TxValidationCode.BAD_SIGNATURE
            if not verify(
                certificate.public_key,
                payload,
                Signature.from_bytes(endorsement.signature),
            ):
                return TxValidationCode.BAD_SIGNATURE
            valid_signers.append((org_id, certificate.subject.role))

        policy = self.channel_config.policy_for(tx.chaincode)
        if not policy.satisfied_by(valid_signers):
            return TxValidationCode.ENDORSEMENT_POLICY_FAILURE
        return TxValidationCode.VALID

    def _check_mvcc(self, tx: Transaction) -> bool:
        """True iff every key the tx read is still at the observed version."""
        for key, observed in tx.rwset.reads.items():
            current = self.state.get_version(key)
            if current != observed:
                return False
        return True

    def commit_block(self, block: Block) -> list[TxValidationCode]:
        """Validate and commit an ordered block; returns per-tx verdicts.

        MVCC validation is sequential within the block, exactly as Fabric
        does it: a write by tx *i* invalidates a conflicting read by tx
        *j > i* in the same block.
        """
        codes: list[TxValidationCode] = []
        pending_writes: list[tuple[int, dict[str, bytes | None]]] = []
        # Track intra-block writes for MVCC: a later tx reading a key written
        # earlier in this block must be invalidated (its read version is stale).
        written_this_block: set[str] = set()
        for tx_num, tx in enumerate(block.transactions):
            code = self._validate_transaction(tx)
            if code is TxValidationCode.VALID:
                stale_read = any(key in written_this_block for key in tx.rwset.reads)
                if stale_read or not self._check_mvcc(tx):
                    code = TxValidationCode.MVCC_READ_CONFLICT
            if code is TxValidationCode.VALID:
                pending_writes.append((tx_num, dict(tx.rwset.writes)))
                written_this_block.update(tx.rwset.writes)
            codes.append(code)

        block.validation_codes = codes
        self.ledger.append(block)
        for tx_num, writes in pending_writes:
            version = Version(block_num=block.number, tx_num=tx_num)
            for key, value in writes.items():
                self.state.apply_write(key, value, version)
        self.commit_count += 1
        self.event_hub.publish_block(block, self.channel_config.channel)
        return codes
