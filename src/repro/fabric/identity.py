"""Organizations, identities, and Membership Service Providers.

Fabric classifies peers and clients into organizations, "each typically
having its own Membership Service Provider (MSP) for identity management
and certificate authorization" (§4.1). An :class:`Identity` bundles a key
pair with its CA-issued certificate; an MSP validates presented
certificates against the organization's root.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.certs import Certificate, CertificateAuthority, validate_chain
from repro.crypto.ecdsa import Signature, sign, verify
from repro.crypto.keys import KeyPair
from repro.errors import MembershipError


@dataclass(frozen=True)
class Identity:
    """A network member: key pair plus CA-issued certificate."""

    name: str
    org: str
    role: str
    keypair: KeyPair = field(repr=False)
    certificate: Certificate = field(repr=False)

    def sign(self, message: bytes) -> Signature:
        return sign(self.keypair.private, message)

    def verify_own(self, message: bytes, signature: Signature) -> bool:
        return verify(self.keypair.public, message, signature)

    @property
    def id(self) -> str:
        """Stable qualified identifier, e.g. ``peer0.seller-org``."""
        return f"{self.name}.{self.org}"


class MembershipServiceProvider:
    """One organization's identity authority.

    Wraps a :class:`CertificateAuthority`: enrolls members, and validates
    certificates presented by (possibly remote) parties against the org
    root.
    """

    def __init__(self, org_id: str, network: str = "") -> None:
        self.org_id = org_id
        self.msp_id = f"{org_id}MSP"
        self._ca = CertificateAuthority(org_id, network=network)

    @property
    def root_certificate(self) -> Certificate:
        return self._ca.root_certificate

    def enroll(self, name: str, role: str = "client") -> Identity:
        """Generate keys and a certificate for a new member."""
        keypair, certificate = self._ca.enroll(name, role=role)
        return Identity(
            name=name,
            org=self.org_id,
            role=role,
            keypair=keypair,
            certificate=certificate,
        )

    def validate(self, certificate: Certificate, at_time: float = 0.0) -> Certificate:
        """Validate that ``certificate`` chains to this org's root.

        Returns the root on success; raises
        :class:`repro.errors.CertificateError` otherwise.
        """
        return validate_chain(certificate, [self.root_certificate], at_time=at_time)

    def is_member(self, certificate: Certificate) -> bool:
        """True iff the certificate chains to this org's root."""
        try:
            self.validate(certificate)
        except Exception:
            return False
        return True


class Organization:
    """A business entity in the consortium: an MSP plus its members."""

    def __init__(self, org_id: str, network: str = "") -> None:
        self.org_id = org_id
        self.network = network
        self.msp = MembershipServiceProvider(org_id, network=network)
        self._members: dict[str, Identity] = {}

    def enroll(self, name: str, role: str = "client") -> Identity:
        if name in self._members:
            raise MembershipError(
                f"{name!r} is already enrolled in organization {self.org_id!r}"
            )
        identity = self.msp.enroll(name, role=role)
        self._members[name] = identity
        return identity

    def member(self, name: str) -> Identity:
        try:
            return self._members[name]
        except KeyError:
            raise MembershipError(
                f"no member {name!r} in organization {self.org_id!r}"
            ) from None

    def members(self, role: str | None = None) -> list[Identity]:
        if role is None:
            return list(self._members.values())
        return [m for m in self._members.values() if m.role == role]
