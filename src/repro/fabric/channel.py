"""Channel configuration shared by peers, orderers and gateways.

A channel's config names its member organizations (with their MSP root
certificates) and the endorsement policy of each deployed chaincode —
the information commit-time validation needs to check signatures and
policies without consulting any central party.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.certs import Certificate, validate_chain
from repro.errors import MembershipError
from repro.fabric.policy import EndorsementPolicy


@dataclass
class ChannelConfig:
    """Shared, consensus-governed channel metadata."""

    channel: str
    org_roots: dict[str, Certificate] = field(default_factory=dict)
    endorsement_policies: dict[str, EndorsementPolicy] = field(default_factory=dict)

    def add_org(self, org_id: str, root: Certificate) -> None:
        self.org_roots[org_id] = root

    def set_policy(self, chaincode: str, policy: EndorsementPolicy) -> None:
        self.endorsement_policies[chaincode] = policy

    def policy_for(self, chaincode: str) -> EndorsementPolicy:
        try:
            return self.endorsement_policies[chaincode]
        except KeyError:
            raise MembershipError(
                f"no endorsement policy registered for chaincode {chaincode!r}"
            ) from None

    def validate_member(self, certificate: Certificate) -> str:
        """Validate a member certificate against all org roots.

        Returns the org id that anchored trust; raises
        :class:`MembershipError` if no channel org issued the certificate.
        """
        org_id = certificate.subject.organization
        root = self.org_roots.get(org_id)
        if root is None:
            raise MembershipError(
                f"organization {org_id!r} is not a member of channel {self.channel!r}"
            )
        validate_chain(certificate, [root])
        return org_id
