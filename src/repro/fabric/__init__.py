"""Hyperledger Fabric-like permissioned blockchain substrate.

A faithful in-process simulation of the Fabric transaction model the paper
builds on (§4.1): an *execute-order-validate* pipeline where endorsing
peers simulate chaincode and sign read/write sets, an ordering service
cuts blocks, and every peer validates endorsement policies and MVCC
conflicts before committing. Organizations own peers and run Membership
Service Providers (MSPs) that issue ECDSA certificates.

Public surface:

- :class:`FabricNetwork` / :class:`NetworkBuilder` — assemble a network
- :class:`Chaincode` / :class:`ChaincodeStub` — smart-contract runtime
- :class:`Gateway` — the client SDK (submit / evaluate transactions)
- :func:`parse_endorsement_policy` — policy expressions like
  ``AND('SellerOrg.peer', 'CarrierOrg.peer')``
"""

from repro.fabric.identity import Identity, MembershipServiceProvider, Organization
from repro.fabric.policy import EndorsementPolicy, parse_endorsement_policy
from repro.fabric.state import KeyValue, ReadWriteSet, VersionedKV, Version
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.fabric.ledger import Block, Ledger, Transaction, TxValidationCode
from repro.fabric.peer import Peer, ProposalResponse
from repro.fabric.orderer import OrderingService, RaftOrderer, SoloOrderer
from repro.fabric.gateway import Gateway
from repro.fabric.network import FabricNetwork, NetworkBuilder
from repro.fabric.events import BlockEvent, ChaincodeEvent, EventHub

__all__ = [
    "Identity",
    "MembershipServiceProvider",
    "Organization",
    "EndorsementPolicy",
    "parse_endorsement_policy",
    "VersionedKV",
    "Version",
    "KeyValue",
    "ReadWriteSet",
    "Chaincode",
    "ChaincodeStub",
    "Ledger",
    "Block",
    "Transaction",
    "TxValidationCode",
    "Peer",
    "ProposalResponse",
    "OrderingService",
    "SoloOrderer",
    "RaftOrderer",
    "Gateway",
    "FabricNetwork",
    "NetworkBuilder",
    "EventHub",
    "BlockEvent",
    "ChaincodeEvent",
]
