"""Transactions, blocks, and the hash-chained ledger.

"These transactions are approved and ordered by a consensus protocol into
a cryptographically linked chain of blocks distributed across multiple
peers, thereby ensuring immutability of the ledger data" (§2). Blocks
here carry a Merkle data hash over their transactions and chain by header
hash; each peer keeps a full replica.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import sha256
from repro.crypto.merkle import MerkleTree
from repro.errors import LedgerError
from repro.fabric.state import ReadWriteSet
from repro.utils.encoding import canonical_json


class TxValidationCode(enum.Enum):
    """Commit-time verdict for a transaction (subset of Fabric's codes)."""

    VALID = "VALID"
    MVCC_READ_CONFLICT = "MVCC_READ_CONFLICT"
    ENDORSEMENT_POLICY_FAILURE = "ENDORSEMENT_POLICY_FAILURE"
    BAD_SIGNATURE = "BAD_SIGNATURE"
    DUPLICATE_TXID = "DUPLICATE_TXID"


@dataclass(frozen=True)
class Endorsement:
    """One endorsing peer's signature over a proposal's simulation results."""

    peer_id: str
    org: str
    role: str
    certificate: bytes  # serialized repro.crypto.certs.Certificate
    signature: bytes  # serialized repro.crypto.ecdsa.Signature

    def decoded_signature(self) -> Signature:
        return Signature.from_bytes(self.signature)

    def to_dict(self) -> dict:
        return {
            "peer_id": self.peer_id,
            "org": self.org,
            "role": self.role,
            "certificate": self.certificate.hex(),
            "signature": self.signature.hex(),
        }


@dataclass
class Transaction:
    """An endorsed transaction as submitted to the ordering service."""

    tx_id: str
    channel: str
    chaincode: str
    function: str
    args: list[str]
    creator: bytes  # serialized certificate of the submitting client
    rwset: ReadWriteSet
    result: bytes
    endorsements: list[Endorsement]
    events: list[tuple[str, str, bytes]] = field(default_factory=list)
    timestamp: float = 0.0

    def signed_payload(self) -> bytes:
        """The bytes every endorser signs: proposal identity + effects.

        All endorsers must produce an identical simulation for their
        signatures to cover the same payload — result divergence between
        peers therefore surfaces as an endorsement mismatch, as in Fabric.
        """
        return canonical_json(
            {
                "tx_id": self.tx_id,
                "channel": self.channel,
                "chaincode": self.chaincode,
                "function": self.function,
                "args": self.args,
                "rwset": self.rwset.to_dict(),
                "result": self.result.hex(),
            }
        )

    def to_bytes(self) -> bytes:
        return canonical_json(
            {
                "tx_id": self.tx_id,
                "channel": self.channel,
                "chaincode": self.chaincode,
                "function": self.function,
                "args": self.args,
                "creator": self.creator.hex(),
                "rwset": self.rwset.to_dict(),
                "result": self.result.hex(),
                "endorsements": [e.to_dict() for e in self.endorsements],
                "timestamp": self.timestamp,
            }
        )


@dataclass
class Block:
    """A block: header linking to the previous block, plus ordered txs."""

    number: int
    previous_hash: bytes
    transactions: list[Transaction]
    data_hash: bytes = b""
    validation_codes: list[TxValidationCode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.data_hash:
            self.data_hash = self.compute_data_hash()

    def compute_data_hash(self) -> bytes:
        if not self.transactions:
            return sha256(b"empty-block")
        tree = MerkleTree([tx.to_bytes() for tx in self.transactions])
        return tree.root

    def header_bytes(self) -> bytes:
        return canonical_json(
            {
                "number": self.number,
                "previous_hash": self.previous_hash.hex(),
                "data_hash": self.data_hash.hex(),
            }
        )

    def hash(self) -> bytes:
        return sha256(self.header_bytes())


class Ledger:
    """An append-only, hash-verified chain of blocks."""

    def __init__(self, channel: str) -> None:
        self.channel = channel
        self._blocks: list[Block] = []
        self._tx_index: dict[str, tuple[int, int]] = {}

    @property
    def height(self) -> int:
        return len(self._blocks)

    def last_hash(self) -> bytes:
        if not self._blocks:
            return sha256(b"genesis:" + self.channel.encode("utf-8"))
        return self._blocks[-1].hash()

    def append(self, block: Block) -> None:
        """Append a block after verifying the hash chain and data hash."""
        if block.number != self.height:
            raise LedgerError(
                f"block number {block.number} does not extend ledger at height "
                f"{self.height}"
            )
        if block.previous_hash != self.last_hash():
            raise LedgerError(
                f"block {block.number} previous-hash mismatch: chain is broken"
            )
        if block.data_hash != block.compute_data_hash():
            raise LedgerError(f"block {block.number} data hash does not match contents")
        self._blocks.append(block)
        for position, tx in enumerate(block.transactions):
            self._tx_index.setdefault(tx.tx_id, (block.number, position))

    def block(self, number: int) -> Block:
        try:
            return self._blocks[number]
        except IndexError:
            raise LedgerError(
                f"no block {number}; ledger height is {self.height}"
            ) from None

    def blocks(self) -> Iterator[Block]:
        return iter(self._blocks)

    def get_transaction(self, tx_id: str) -> tuple[Transaction, TxValidationCode]:
        """Look up a committed transaction and its validation verdict."""
        location = self._tx_index.get(tx_id)
        if location is None:
            raise LedgerError(f"transaction {tx_id!r} not found on channel {self.channel!r}")
        block_num, position = location
        block = self._blocks[block_num]
        code = (
            block.validation_codes[position]
            if position < len(block.validation_codes)
            else TxValidationCode.VALID
        )
        return block.transactions[position], code

    def contains_tx(self, tx_id: str) -> bool:
        return tx_id in self._tx_index

    def verify_chain(self) -> bool:
        """Recompute and verify every hash link; True iff intact."""
        previous = sha256(b"genesis:" + self.channel.encode("utf-8"))
        for block in self._blocks:
            if block.previous_hash != previous:
                return False
            if block.data_hash != block.compute_data_hash():
                return False
            previous = block.hash()
        return True
