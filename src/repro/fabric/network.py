"""Network assembly: organizations, peers, orderer, channel, chaincode.

:class:`NetworkBuilder` provides the declarative construction the paper's
use case needs (e.g. STL: "2 peers: one belongs to a Seller organization
and the other to a Carrier organization", §4.2), and
:class:`FabricNetwork` is the running network with deployment and gateway
access, plus export of the network's identity configuration for sharing
with foreign networks (§3.3).
"""

from __future__ import annotations

from repro.errors import LedgerError, MembershipError
from repro.fabric.chaincode import Chaincode
from repro.fabric.channel import ChannelConfig
from repro.fabric.events import EventHub
from repro.fabric.gateway import Gateway
from repro.fabric.identity import Identity, Organization
from repro.fabric.orderer import OrderingService, RaftOrderer, SoloOrderer
from repro.fabric.peer import Peer
from repro.fabric.policy import parse_endorsement_policy
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg, PeerConfigMsg
from repro.utils.clock import Clock, SystemClock


class FabricNetwork:
    """A running Fabric-like network with a single channel/ledger.

    (The paper assumes "a network has a single ledger" and uses network
    and ledger interchangeably, §2.)
    """

    def __init__(
        self,
        name: str,
        channel: str,
        organizations: dict[str, Organization],
        peers: list[Peer],
        orderer: OrderingService,
        channel_config: ChannelConfig,
        event_hub: EventHub,
        clock: Clock,
    ) -> None:
        self.name = name
        self.channel = channel
        self.organizations = organizations
        self.peers = peers
        self.orderer = orderer
        self.channel_config = channel_config
        self.event_hub = event_hub
        self.clock = clock
        self._gateway = Gateway(peers, orderer, channel_config, clock=clock)

    # -- lookup -------------------------------------------------------------------

    def org(self, org_id: str) -> Organization:
        try:
            return self.organizations[org_id]
        except KeyError:
            raise MembershipError(
                f"network {self.name!r} has no organization {org_id!r}"
            ) from None

    def peer(self, peer_id: str) -> Peer:
        for peer in self.peers:
            if peer.peer_id == peer_id or peer.identity.name == peer_id:
                return peer
        raise MembershipError(f"network {self.name!r} has no peer {peer_id!r}")

    def peers_of_org(self, org_id: str) -> list[Peer]:
        return [peer for peer in self.peers if peer.org == org_id]

    @property
    def gateway(self) -> Gateway:
        return self._gateway

    # -- deployment ------------------------------------------------------------------

    def deploy_chaincode(
        self,
        chaincode: Chaincode,
        endorsement_policy: str,
        initializer: Identity | None = None,
        init_args: list[str] | None = None,
    ) -> None:
        """Install a chaincode on every peer and record its policy.

        If ``initializer`` is given, an init transaction is submitted so
        chaincode bootstrapping goes through consensus like any update.
        """
        policy = parse_endorsement_policy(endorsement_policy)
        for peer in self.peers:
            peer.install_chaincode(chaincode)
        self.channel_config.set_policy(chaincode.name, policy)
        if initializer is not None:
            result = self._gateway.submit(
                initializer, chaincode.name, "init", init_args or []
            )
            if not result.committed:
                raise LedgerError(
                    f"chaincode {chaincode.name!r} init transaction failed: "
                    f"{result.validation_code.value}"
                )

    # -- configuration sharing (for the CMDAC of foreign networks) ---------------------

    def export_config(self) -> NetworkConfigMsg:
        """Serialize this network's identity/topology for foreign ledgers.

        This is the "organization and peer identities and root certificates
        used by MSPs to issue membership credentials" the paper records on
        the counterparty ledger (§4.3).
        """
        org_messages = []
        for org_id in sorted(self.organizations):
            org = self.organizations[org_id]
            peer_messages = [
                PeerConfigMsg(
                    peer_id=peer.peer_id,
                    org=org_id,
                    endpoint=f"sim://{self.name}/{peer.peer_id}",
                    certificate=peer.identity.certificate.to_bytes(),
                )
                for peer in self.peers_of_org(org_id)
            ]
            org_messages.append(
                OrganizationConfigMsg(
                    org_id=org_id,
                    msp_id=org.msp.msp_id,
                    root_certificate=org.msp.root_certificate.to_bytes(),
                    peers=peer_messages,
                )
            )
        return NetworkConfigMsg(
            network_id=self.name,
            platform="fabric",
            organizations=org_messages,
            ledgers=[self.channel],
        )


class NetworkBuilder:
    """Declarative construction of a :class:`FabricNetwork`."""

    def __init__(self, name: str, channel: str = "main", clock: Clock | None = None) -> None:
        self._name = name
        self._channel = channel
        self._clock = clock or SystemClock()
        self._organizations: dict[str, Organization] = {}
        self._peer_specs: list[tuple[str, str]] = []
        self._client_specs: list[tuple[str, str]] = []
        self._orderer_kind = "solo"
        self._orderer_options: dict = {}

    def add_org(self, org_id: str) -> "NetworkBuilder":
        if org_id in self._organizations:
            raise MembershipError(f"organization {org_id!r} already added")
        self._organizations[org_id] = Organization(org_id, network=self._name)
        return self

    def add_peer(self, name: str, org_id: str) -> "NetworkBuilder":
        if org_id not in self._organizations:
            raise MembershipError(f"add organization {org_id!r} before its peers")
        self._peer_specs.append((name, org_id))
        return self

    def add_client(self, name: str, org_id: str) -> "NetworkBuilder":
        if org_id not in self._organizations:
            raise MembershipError(f"add organization {org_id!r} before its clients")
        self._client_specs.append((name, org_id))
        return self

    def with_solo_orderer(self, batch_size: int = 1) -> "NetworkBuilder":
        self._orderer_kind = "solo"
        self._orderer_options = {"batch_size": batch_size}
        return self

    def with_raft_orderer(
        self, cluster_size: int = 3, batch_size: int = 1, seed: int = 7
    ) -> "NetworkBuilder":
        self._orderer_kind = "raft"
        self._orderer_options = {
            "cluster_size": cluster_size,
            "batch_size": batch_size,
            "seed": seed,
        }
        return self

    def build(self) -> FabricNetwork:
        if not self._organizations:
            raise MembershipError("a network needs at least one organization")
        if not self._peer_specs:
            raise MembershipError("a network needs at least one peer")
        channel_config = ChannelConfig(channel=self._channel)
        for org_id, org in self._organizations.items():
            channel_config.add_org(org_id, org.msp.root_certificate)
        # Applications subscribe to one peer's event service (as in Fabric);
        # the network-level hub is backed by the first peer. Other peers get
        # private hubs so a commit is not reported once per replica.
        event_hub = EventHub()
        peers = []
        for index, (name, org_id) in enumerate(self._peer_specs):
            identity = self._organizations[org_id].enroll(name, role="peer")
            hub = event_hub if index == 0 else EventHub()
            peers.append(Peer(identity, channel_config, event_hub=hub))
        for name, org_id in self._client_specs:
            self._organizations[org_id].enroll(name, role="client")
        if self._orderer_kind == "raft":
            orderer: OrderingService = RaftOrderer(
                self._channel, **self._orderer_options
            )
        else:
            orderer = SoloOrderer(self._channel, **self._orderer_options)
        for peer in peers:
            orderer.register_committer(peer.commit_block)
        return FabricNetwork(
            name=self._name,
            channel=self._channel,
            organizations=self._organizations,
            peers=peers,
            orderer=orderer,
            channel_config=channel_config,
            event_hub=event_hub,
            clock=self._clock,
        )
