"""Gateway: the client SDK for the Fabric substrate.

Applications interact with the network through a gateway, which hides the
execute-order-validate choreography: it collects endorsements satisfying
the chaincode's policy, checks that all endorsers simulated identical
results, submits the endorsed transaction for ordering, and reports the
commit verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import EndorsementError
from repro.fabric.channel import ChannelConfig
from repro.fabric.identity import Identity
from repro.fabric.ledger import Transaction, TxValidationCode
from repro.fabric.orderer import OrderingService
from repro.fabric.peer import Peer, Proposal, ProposalResponse
from repro.utils.clock import Clock, SystemClock
from repro.utils.ids import random_id


@dataclass
class SubmitResult:
    """Outcome of a submitted transaction."""

    tx_id: str
    result: bytes
    validation_code: TxValidationCode
    block_number: int

    @property
    def committed(self) -> bool:
        return self.validation_code is TxValidationCode.VALID


class Gateway:
    """Submits and evaluates transactions on behalf of client identities."""

    def __init__(
        self,
        peers: Sequence[Peer],
        orderer: OrderingService,
        channel_config: ChannelConfig,
        clock: Clock | None = None,
    ) -> None:
        if not peers:
            raise EndorsementError("a gateway needs at least one peer")
        self._peers = list(peers)
        self._orderer = orderer
        self._config = channel_config
        self._clock = clock or SystemClock()

    # -- helpers -----------------------------------------------------------------

    def _peers_with_chaincode(self, chaincode: str) -> list[Peer]:
        peers = [peer for peer in self._peers if peer.has_chaincode(chaincode)]
        if not peers:
            raise EndorsementError(f"no peer has chaincode {chaincode!r} installed")
        return peers

    def _select_endorsers(self, chaincode: str) -> list[Peer]:
        """Choose a minimal peer set whose signatures satisfy the policy."""
        policy = self._config.policy_for(chaincode)
        candidates = self._peers_with_chaincode(chaincode)
        available = [(peer.org, peer.identity.role) for peer in candidates]
        chosen_signers = policy.minimal_satisfying_orgs(available)
        if chosen_signers is None:
            raise EndorsementError(
                f"endorsement policy {policy.expression()} cannot be satisfied by "
                f"available peers {sorted(peer.peer_id for peer in candidates)}"
            )
        endorsers: list[Peer] = []
        remaining = list(candidates)
        for org, role in chosen_signers:
            for peer in remaining:
                if peer.org == org and peer.identity.role == role:
                    endorsers.append(peer)
                    remaining.remove(peer)
                    break
        return endorsers

    @staticmethod
    def _check_consistency(responses: list[ProposalResponse]) -> None:
        """All endorsers must report byte-identical results and effects."""
        first = responses[0]
        for response in responses[1:]:
            if (
                response.result != first.result
                or response.rwset.to_dict() != first.rwset.to_dict()
            ):
                raise EndorsementError(
                    f"endorsement mismatch between {first.peer_id!r} and "
                    f"{response.peer_id!r}: peers simulated divergent results"
                )

    # -- public API -----------------------------------------------------------------

    def evaluate(
        self,
        identity: Identity,
        chaincode: str,
        function: str,
        args: Sequence[str],
        transient: Mapping[str, bytes] | None = None,
    ) -> bytes:
        """Run a read-only query against one peer; nothing is ordered."""
        peer = self._peers_with_chaincode(chaincode)[0]
        proposal = Proposal(
            tx_id=random_id("query-"),
            channel=self._config.channel,
            chaincode=chaincode,
            function=function,
            args=tuple(args),
            creator=identity.certificate.to_bytes(),
            transient=dict(transient or {}),
            timestamp=self._clock.now(),
        )
        response = peer.endorse(proposal)
        if not response.success:
            raise EndorsementError(
                f"query {chaincode}.{function} failed on {peer.peer_id}: "
                f"{response.message}"
            )
        return response.result

    def submit(
        self,
        identity: Identity,
        chaincode: str,
        function: str,
        args: Sequence[str],
        transient: Mapping[str, bytes] | None = None,
        wait: bool = True,
    ) -> SubmitResult:
        """Endorse, order, and commit a transaction.

        With ``wait`` (the default) any partial ordering batch is flushed so
        the verdict is available on return.
        """
        endorsers = self._select_endorsers(chaincode)
        proposal = Proposal(
            tx_id=random_id("tx-"),
            channel=self._config.channel,
            chaincode=chaincode,
            function=function,
            args=tuple(args),
            creator=identity.certificate.to_bytes(),
            transient=dict(transient or {}),
            timestamp=self._clock.now(),
        )
        responses = [peer.endorse(proposal) for peer in endorsers]
        failures = [r for r in responses if not r.success]
        if failures:
            raise EndorsementError(
                f"{chaincode}.{function} endorsement failed on "
                f"{failures[0].peer_id}: {failures[0].message}"
            )
        self._check_consistency(responses)
        first = responses[0]
        transaction = Transaction(
            tx_id=proposal.tx_id,
            channel=proposal.channel,
            chaincode=chaincode,
            function=function,
            args=list(args),
            creator=proposal.creator,
            rwset=first.rwset,
            result=first.result,
            endorsements=[r.endorsement for r in responses if r.endorsement],
            events=[(e.chaincode, e.name, e.payload) for e in first.events],
            timestamp=proposal.timestamp,
        )
        self._orderer.submit(transaction)
        if wait:
            self._orderer.flush()
        reference = self._peers[0].ledger
        if not reference.contains_tx(proposal.tx_id):
            # Batched ordering without wait: verdict not yet known.
            return SubmitResult(
                tx_id=proposal.tx_id,
                result=first.result,
                validation_code=TxValidationCode.VALID,
                block_number=-1,
            )
        committed, code = reference.get_transaction(proposal.tx_id)
        block_number = reference.height - 1
        for block in reference.blocks():
            if any(tx.tx_id == proposal.tx_id for tx in block.transactions):
                block_number = block.number
                break
        if wait and code is not TxValidationCode.VALID:
            return SubmitResult(
                tx_id=proposal.tx_id,
                result=committed.result,
                validation_code=code,
                block_number=block_number,
            )
        return SubmitResult(
            tx_id=proposal.tx_id,
            result=committed.result,
            validation_code=code,
            block_number=block_number,
        )
