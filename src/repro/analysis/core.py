"""Core machinery of the invariant checkers: project model + findings.

The analysis pass is deliberately dependency-free: it parses the tree
with the stdlib :mod:`ast` module and never imports the code it checks,
so it can run on any checkout (including one that is currently broken at
import time) and inside CI before the test suite.

Vocabulary:

- a :class:`ModuleSource` is one parsed ``.py`` file;
- a :class:`Project` is the set of modules one analysis run covers
  (normally ``src/``, or in-memory sources in fixture tests);
- a :class:`Checker` encodes ONE repo invariant and emits
  :class:`Finding` records; checkers are registered with
  :func:`register` and discovered via :func:`all_checkers`;
- :func:`run_analysis` runs every checker over a project and returns
  the findings sorted by location.

Checkers receive the *whole* project, not single files, because the
interesting invariants are cross-file (a wire kind declared in
``proto/messages.py`` must be dispatched in ``interop/relay.py``; a
capability flag granted in one driver module may be implemented in a
base class defined in another).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator


@dataclass(frozen=True)
class Finding:
    """One invariant violation at one source location."""

    rule: str  #: rule id, e.g. "REP102"
    path: str  #: project-relative posix path
    line: int
    col: int
    message: str
    symbol: str = ""  #: enclosing qualname, e.g. "RelayService._dispatch"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.location()}: {self.rule} {self.message}{where}"


class ModuleSource:
    """One parsed source file."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def endswith(self, suffix: str) -> bool:
        return self.path.endswith(suffix)


class Project:
    """The set of modules covered by one analysis run."""

    def __init__(self, modules: Iterable[ModuleSource]) -> None:
        self.modules = list(modules)
        self.errors: list[str] = []

    @classmethod
    def from_paths(cls, roots: Iterable[str | Path], base: str | Path | None = None) -> "Project":
        """Load every ``.py`` file under ``roots``.

        Paths in findings are made relative to ``base`` (default: the
        current working directory) when possible, absolute otherwise.
        Files that fail to parse are recorded in :attr:`errors` rather
        than aborting the run — a syntax error in one module must not
        hide findings in the others.
        """
        base_path = Path(base) if base is not None else Path.cwd()
        modules: list[ModuleSource] = []
        errors: list[str] = []
        for root in roots:
            root_path = Path(root)
            if root_path.is_file():
                files = [root_path]
            else:
                files = sorted(root_path.rglob("*.py"))
            for file in files:
                try:
                    rel = file.resolve().relative_to(base_path.resolve())
                    shown = rel.as_posix()
                except ValueError:
                    shown = file.as_posix()
                try:
                    text = file.read_text(encoding="utf-8")
                    modules.append(ModuleSource(shown, text))
                except (OSError, SyntaxError, ValueError) as exc:
                    errors.append(f"{shown}: {exc}")
        project = cls(modules)
        project.errors = errors
        return project

    @classmethod
    def from_sources(cls, sources: dict) -> "Project":
        """An in-memory project (fixture tests)."""
        return cls(ModuleSource(path, text) for path, text in sources.items())

    def find(self, suffix: str) -> ModuleSource | None:
        """The module whose path ends with ``suffix`` (``None`` if absent)."""
        for module in self.modules:
            if module.endswith(suffix):
                return module
        return None


# ---------------------------------------------------------------------------
# Checker registry
# ---------------------------------------------------------------------------


class Checker:
    """One repo invariant, encoded. Subclass and override :meth:`run`."""

    #: Rule ids this checker can emit (shown by ``--list-rules``).
    rule_ids: tuple[str, ...] = ()
    #: One-line statement of the invariant being enforced.
    invariant: str = ""

    def run(self, project: Project) -> list[Finding]:
        raise NotImplementedError


_REGISTRY: list[Callable[[], Checker]] = []


def register(factory: Callable[[], Checker]) -> Callable[[], Checker]:
    """Class decorator: add a checker to the default suite."""
    _REGISTRY.append(factory)
    return factory


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker."""
    # Importing the checker modules registers them; done lazily so that
    # `import repro.analysis.core` alone stays side-effect free.
    from repro.analysis import checkers  # noqa: F401 - registration import

    return [factory() for factory in _REGISTRY]


def run_analysis(project: Project, checkers: Iterable[Checker] | None = None) -> list[Finding]:
    """Run ``checkers`` (default: all registered) over ``project``."""
    suite = list(checkers) if checkers is not None else all_checkers()
    findings: list[Finding] = []
    for checker in suite:
        findings.extend(checker.run(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains as a string (else ``None``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def last_segment(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


@dataclass
class FunctionInfo:
    """One function/method definition with its enclosing context."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    class_name: str | None = None
    is_async: bool = field(init=False)

    def __post_init__(self) -> None:
        self.is_async = isinstance(self.node, ast.AsyncFunctionDef)


def walk_frame(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without entering nested def/lambda frames.

    Nested functions are separate :func:`iter_functions` entries; a
    checker that walked them from the enclosing frame too would report
    every nested finding twice (once per qualname).
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_functions(module: ModuleSource) -> Iterator[FunctionInfo]:
    """Yield every function/method in the module with its qualname.

    Nested functions are yielded too (their bodies are otherwise skipped
    by the scanners, which treat a nested ``def`` as a deferred-execution
    boundary), each with a dotted qualname.
    """

    def walk(body: list[ast.stmt], prefix: str, class_name: str | None) -> Iterator[FunctionInfo]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                yield FunctionInfo(node=node, qualname=qual, class_name=class_name)
                yield from walk(node.body, f"{qual}.", class_name)
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.", node.name)

    yield from walk(module.tree.body, "", None)
