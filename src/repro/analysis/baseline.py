"""Baseline suppression for intentional, rationale-tagged findings.

Some findings are the design (the :class:`SerializingInterceptor` exists
to hold a lock across ``call_next``). Those are recorded in a baseline
file — JSON, one entry per accepted finding, each with a **mandatory
rationale** — and suppressed by the CLI/meta-test. Matching is by
``(rule, path, symbol)``, *not* line number, so ordinary edits that move
code around do not resurrect suppressed findings; a rename or refactor
that changes the qualname retires the entry, which then shows up as
**stale** and must be deleted (stale entries are warnings by default and
failures under ``--fail-stale``, which CI uses).

Format::

    {
      "version": 1,
      "entries": [
        {
          "rule": "REP102",
          "path": "src/repro/api/middleware.py",
          "symbol": "SerializingInterceptor.handle",
          "rationale": "serializing the chain is this interceptor's purpose"
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed (wrong shape or missing rationale)."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    rationale: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "rationale": self.rationale,
        }


@dataclass
class BaselineResult:
    active: list[Finding]
    suppressed: list[Finding]
    stale: list[BaselineEntry]


class Baseline:
    def __init__(self, entries: list[BaselineEntry]) -> None:
        self.entries = entries

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        entries: list[BaselineEntry] = []
        for position, raw in enumerate(data["entries"]):
            if not isinstance(raw, dict):
                raise BaselineError(f"baseline entry [{position}] is not an object")
            missing = [k for k in ("rule", "path", "symbol", "rationale") if not raw.get(k)]
            if missing:
                raise BaselineError(
                    f"baseline entry [{position}] is missing {', '.join(missing)} "
                    f"— every suppression must name its finding AND justify it"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]).replace("\\", "/"),
                    symbol=str(raw["symbol"]),
                    rationale=str(raw["rationale"]),
                )
            )
        return cls(entries)

    def apply(self, findings: list[Finding]) -> BaselineResult:
        """Split findings into active/suppressed; report stale entries.

        Entry paths are repo-relative; a run started from another
        directory reports absolute paths, so an entry also matches any
        finding whose path *ends with* it at a ``/`` boundary.
        """
        active: list[Finding] = []
        suppressed: list[Finding] = []
        used: set[tuple[str, str, str]] = set()
        for finding in findings:
            entry = self._match(finding)
            if entry is not None:
                suppressed.append(finding)
                used.add(entry.key)
            else:
                active.append(finding)
        stale = [entry for entry in self.entries if entry.key not in used]
        return BaselineResult(active=active, suppressed=suppressed, stale=stale)

    def _match(self, finding: Finding) -> BaselineEntry | None:
        for entry in self.entries:
            if entry.rule != finding.rule or entry.symbol != finding.symbol:
                continue
            if finding.path == entry.path or finding.path.endswith("/" + entry.path):
                return entry
        return None

    @staticmethod
    def render(findings: list[Finding], rationale: str = "TODO: justify") -> dict:
        """A baseline document accepting ``findings`` (for --write-baseline)."""
        seen: set[tuple[str, str, str]] = set()
        entries = []
        for finding in findings:
            key = (finding.rule, finding.path, finding.symbol)
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    symbol=finding.symbol,
                    rationale=rationale,
                ).to_dict()
            )
        return {"version": BASELINE_VERSION, "entries": entries}
